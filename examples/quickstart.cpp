// Quickstart: evaluate a workload on SparseTrain vs the dense baseline.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <cstdio>

#include "core/session.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  // 1. Pick a workload: the layer geometry of AlexNet at CIFAR input size.
  const workload::NetworkConfig net = workload::alexnet_cifar();

  // 2. Pick an operand sparsity profile. `pruned` stacks ReLU natural
  //    sparsity with the analytic effect of stochastic gradient pruning at
  //    rate p (here 90%).
  const auto profile = workload::SparsityProfile::pruned(net, /*p=*/0.9,
                                                         /*act_density=*/0.45);

  // 3. Compare: compiles the workload to the accelerator ISA, runs the
  //    cycle-level SparseTrain simulator and the Eyeriss-like dense
  //    baseline (both 168 PEs, 386 KB buffer).
  core::Session session;
  const core::ComparisonResult result = session.compare(net, profile);

  std::printf("workload: %s\n", net.name.c_str());
  std::printf("  dense baseline : %8.3f ms/sample, %8.1f uJ on-chip\n",
              result.dense_latency_ms(),
              result.dense.energy.on_chip_pj() * 1e-6);
  std::printf("  SparseTrain    : %8.3f ms/sample, %8.1f uJ on-chip\n",
              result.sparse_latency_ms(),
              result.sparse.energy.on_chip_pj() * 1e-6);
  std::printf("  speedup %.2fx, energy efficiency %.2fx\n", result.speedup(),
              result.energy_efficiency());
  return 0;
}
