// Quickstart: evaluate a workload through the Session evaluation service.
//
// Build and run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_quickstart
#include <cstdio>

#include "core/session.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  // 1. Pick a workload: the layer geometry of AlexNet at CIFAR input size.
  const workload::NetworkConfig net = workload::alexnet_cifar();

  // 2. Pick an operand sparsity profile. `pruned` stacks ReLU natural
  //    sparsity with the analytic effect of stochastic gradient pruning at
  //    rate p (here 90%).
  const auto profile = workload::SparsityProfile::pruned(net, /*p=*/0.9,
                                                         /*act_density=*/0.45);

  // 3. A Session comes with "sparsetrain" (168 PEs, 386 KB, sparse
  //    semantics) and "eyeriss-dense" (same budget, sparsity-blind)
  //    registered. Any ArchConfig variant can join the registry — here a
  //    half-array SparseTrain for scale comparison.
  core::Session session;
  sim::ArchConfig half = session.config().sparse_arch;
  half.name = "SparseTrain-28g";
  half.pe_groups = 28;
  session.backends().register_arch("sparsetrain-28g", half);

  // 4. Submit the workload against all three backends. The job runs on
  //    the session's thread pool; the compiler runs once per distinct
  //    (net, profile) — both sparse backends share one compiled program.
  const auto job = session.submit(
      net, profile, {"sparsetrain", "eyeriss-dense", "sparsetrain-28g"});
  const core::EvalResult& r = session.wait(job);

  std::printf("workload: %s  (profile: %s)\n", net.name.c_str(),
              profile.name().c_str());
  for (const auto& run : r.runs) {
    std::printf("  %-16s %8.3f ms/sample, %8.1f uJ on-chip, util %3.0f%%\n",
                run.backend.c_str(), run.report.latency_ms(),
                run.report.energy.on_chip_pj() * 1e-6,
                run.report.utilization() * 100.0);
  }
  std::printf("  speedup %.2fx, energy efficiency %.2fx\n",
              r.cycle_ratio("eyeriss-dense", "sparsetrain"),
              r.energy_ratio("eyeriss-dense", "sparsetrain"));

  // 5. The classic two-way comparison is a thin wrapper over the same
  //    path — and hits the program cache, so nothing recompiles.
  const core::ComparisonResult result = session.compare(net, profile);
  const auto stats = session.program_cache().stats();
  std::printf(
      "\ncompare(): speedup %.2fx, energy efficiency %.2fx\n"
      "program cache: %zu compiles for %zu program requests\n",
      result.speedup(), result.energy_efficiency(), stats.misses,
      stats.lookups());
  return 0;
}
