// End-to-end trade-off sweep: for each pruning rate p, train a scaled
// model (accuracy + measured gradient density), then feed the measured
// density into the architecture simulator to get the speedup — connecting
// the algorithm side (Table II) to the architecture side (Fig. 8) of the
// paper in one program.
#include <cstdio>

#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "pruning/sparsity_meter.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  data::SyntheticConfig dcfg;
  dcfg.classes = 6;
  dcfg.samples = 360;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 17;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(180, 18);

  const auto sim_net = workload::resnet18_cifar();
  core::Session session;

  std::printf(
      "Pruning-rate sweep: train ResNet-S (scaled), measure accuracy and\n"
      "operand densities, then simulate ResNet-18/CIFAR with the measured\n"
      "densities.\n\n");
  TextTable table({"p", "accuracy", "measured I rho", "measured dO rho",
                   "sim speedup", "sim energy eff"});

  for (double p : {0.0, 0.5, 0.7, 0.9, 0.99}) {
    nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                              dcfg.classes};
    auto net = nn::models::resnet_s(mi, 1, 6);
    Rng rng(19);
    nn::kaiming_init(*net, rng);

    auto meter = std::make_shared<pruning::SparsityMeter>();
    pruning::SparsityMeter::attach(*net, meter);
    pruning::AttachedPruners attached;
    if (p > 0.0) {
      pruning::PruningConfig pcfg;
      pcfg.target_sparsity = p;
      pcfg.fifo_depth = 2;
      attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
    }

    nn::TrainConfig tcfg;
    tcfg.batch_size = 18;
    tcfg.epochs = 5;
    tcfg.sgd.learning_rate = 0.04f;
    nn::Trainer trainer(*net, tcfg);
    const auto result = trainer.fit(train, test);

    const auto overall = meter->overall();
    // Feed measured densities into the full-size simulator workload.
    const auto profile = workload::SparsityProfile::calibrated(
        sim_net, overall.input_acts, overall.output_grads, "measured");
    const auto cmp = session.compare(sim_net, profile);

    table.add_row({TextTable::num(p), TextTable::pct(result.test_accuracy, 1),
                   TextTable::num(overall.input_acts),
                   TextTable::num(overall.output_grads),
                   TextTable::times(cmp.speedup()),
                   TextTable::times(cmp.energy_efficiency())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "The paper's trade-off: accuracy stays flat while dO density — and\n"
      "with it simulated training latency/energy — drops as p grows.\n");
  return 0;
}
