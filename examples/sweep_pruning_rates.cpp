// End-to-end trade-off sweep: for each pruning rate p, train a scaled
// model (accuracy + measured gradient density), then feed the measured
// density into the architecture simulator to get the speedup — connecting
// the algorithm side (Table II) to the architecture side (Fig. 8) of the
// paper in one program.
//
// The simulation side is one dse::Explorer grid: every measured density
// pair becomes a Scenario on the scenario axis, the architecture axes
// pair the full-size SparseTrain array, a half-array variant and the
// dense baseline, and the Explorer batches the whole cross product as
// Session jobs — the dense baseline program is compiled once and shared
// across every scenario, so compiles stay far below program requests.
#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "dse/export.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "pruning/sparsity_meter.hpp"
#include "data/synthetic.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  data::SyntheticConfig dcfg;
  dcfg.classes = 6;
  dcfg.samples = 360;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 17;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(180, 18);

  const auto sim_net = workload::resnet18_cifar();

  std::printf(
      "Pruning-rate sweep: train ResNet-S (scaled), measure accuracy and\n"
      "operand densities, then explore ResNet-18/CIFAR with the measured\n"
      "densities across the architecture axes.\n\n");

  struct TrainedPoint {
    double p = 0.0;
    double accuracy = 0.0;
    double i_rho = 0.0;
    double do_rho = 0.0;
    std::string scenario;
  };
  std::vector<TrainedPoint> points;
  std::vector<dse::Scenario> scenarios;

  for (double p : {0.0, 0.5, 0.7, 0.9, 0.99}) {
    nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                              dcfg.classes};
    auto net = nn::models::resnet_s(mi, 1, 6);
    Rng rng(19);
    nn::kaiming_init(*net, rng);

    auto meter = std::make_shared<pruning::SparsityMeter>();
    pruning::SparsityMeter::attach(*net, meter);
    pruning::AttachedPruners attached;
    if (p > 0.0) {
      pruning::PruningConfig pcfg;
      pcfg.target_sparsity = p;
      pcfg.fifo_depth = 2;
      attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
    }

    nn::TrainConfig tcfg;
    tcfg.batch_size = 18;
    tcfg.epochs = 5;
    tcfg.sgd.learning_rate = 0.04f;
    nn::Trainer trainer(*net, tcfg);
    const auto result = trainer.fit(train, test);

    // Each trained point becomes one measured-density scenario on the
    // exploration's scenario axis.
    const auto overall = meter->overall();
    char name[32];
    std::snprintf(name, sizeof name, "measured-p%.0f", p * 100.0);
    scenarios.push_back(dse::Scenario::calibrated(name, overall.input_acts,
                                                  overall.output_grads));
    points.push_back(
        {p, result.test_accuracy, overall.input_acts, overall.output_grads,
         name});
  }

  // Architecture axes: the full 56-group array and a half array, each
  // with its dense twin (the 28-group dense point simply rides along in
  // the cross product).
  core::Session session;
  dse::Explorer explorer(session);
  dse::SpaceSpec space;
  space.pe_groups = {56, 28};
  space.sparse = {true, false};
  space.scenarios = scenarios;
  const auto explored = explorer.explore(space, {sim_net});

  const auto cycles = [&](std::size_t groups, bool sparse,
                          const std::string& scenario) {
    const auto* pt = explored.find([&](const dse::DesignPoint& p) {
      return p.arch.pe_groups == groups && p.arch.sparse == sparse &&
             p.scenario.name == scenario;
    });
    return static_cast<double>(pt->evals[0].report.total_cycles);
  };
  const auto on_chip = [&](std::size_t groups, bool sparse,
                           const std::string& scenario) {
    const auto* pt = explored.find([&](const dse::DesignPoint& p) {
      return p.arch.pe_groups == groups && p.arch.sparse == sparse &&
             p.scenario.name == scenario;
    });
    return pt->evals[0].report.energy.on_chip_pj();
  };

  TextTable table({"p", "accuracy", "measured I rho", "measured dO rho",
                   "sim speedup", "sim energy eff", "28g speedup"});
  for (const auto& pt : points) {
    table.add_row(
        {TextTable::num(pt.p), TextTable::pct(pt.accuracy, 1),
         TextTable::num(pt.i_rho), TextTable::num(pt.do_rho),
         TextTable::times(cycles(56, false, pt.scenario) /
                          cycles(56, true, pt.scenario)),
         TextTable::times(on_chip(56, false, pt.scenario) /
                          on_chip(56, true, pt.scenario)),
         TextTable::times(cycles(56, false, pt.scenario) /
                          cycles(28, true, pt.scenario))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "program cache: %zu compiles for %zu program requests across %zu "
      "backend runs\n(the dense baseline program is compiled once and "
      "shared by every scenario;\neach sparse program serves both "
      "SparseTrain variants)\n",
      explored.cache.misses, explored.cache.lookups(), explored.evaluations);

  dse::export_points_csv(explored, "sweep_pruning_rates.csv");
  std::printf("per-point results written to sweep_pruning_rates.csv\n");
  std::printf(
      "\nThe paper's trade-off: accuracy stays flat while dO density — and\n"
      "with it simulated training latency/energy — drops as p grows.\n");
  return 0;
}
