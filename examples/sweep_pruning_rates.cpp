// End-to-end trade-off sweep: for each pruning rate p, train a scaled
// model (accuracy + measured gradient density), then feed the measured
// density into the architecture simulator to get the speedup — connecting
// the algorithm side (Table II) to the architecture side (Fig. 8) of the
// paper in one program.
//
// The simulation side goes through the Session evaluation service: every
// p submits one job against three registered backends, the jobs run in
// parallel on the session pool, and the ProgramCache compiles each
// distinct (net, profile) once — the dense baseline program is shared by
// all five jobs, so compiles stay far below program requests.
#include <cstdio>
#include <vector>

#include "core/export.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "pruning/sparsity_meter.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  data::SyntheticConfig dcfg;
  dcfg.classes = 6;
  dcfg.samples = 360;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 17;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(180, 18);

  const auto sim_net = workload::resnet18_cifar();
  core::Session session;

  // Third backend: a half-array SparseTrain variant, to show how the
  // measured densities translate at a different compute budget.
  sim::ArchConfig half = session.config().sparse_arch;
  half.name = "SparseTrain-28g";
  half.pe_groups = 28;
  session.backends().register_arch("sparsetrain-28g", half);
  const std::vector<std::string> backends = {"sparsetrain", "eyeriss-dense",
                                             "sparsetrain-28g"};

  std::printf(
      "Pruning-rate sweep: train ResNet-S (scaled), measure accuracy and\n"
      "operand densities, then simulate ResNet-18/CIFAR with the measured\n"
      "densities on %zu backends.\n\n",
      backends.size());

  struct TrainedPoint {
    double p = 0.0;
    double accuracy = 0.0;
    double i_rho = 0.0;
    double do_rho = 0.0;
    core::Session::JobHandle job;
  };
  std::vector<TrainedPoint> points;

  for (double p : {0.0, 0.5, 0.7, 0.9, 0.99}) {
    nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                              dcfg.classes};
    auto net = nn::models::resnet_s(mi, 1, 6);
    Rng rng(19);
    nn::kaiming_init(*net, rng);

    auto meter = std::make_shared<pruning::SparsityMeter>();
    pruning::SparsityMeter::attach(*net, meter);
    pruning::AttachedPruners attached;
    if (p > 0.0) {
      pruning::PruningConfig pcfg;
      pcfg.target_sparsity = p;
      pcfg.fifo_depth = 2;
      attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
    }

    nn::TrainConfig tcfg;
    tcfg.batch_size = 18;
    tcfg.epochs = 5;
    tcfg.sgd.learning_rate = 0.04f;
    nn::Trainer trainer(*net, tcfg);
    const auto result = trainer.fit(train, test);

    const auto overall = meter->overall();
    // Feed measured densities into the full-size simulator workload; the
    // job evaluates asynchronously while the next p trains.
    const auto profile = workload::SparsityProfile::calibrated(
        sim_net, overall.input_acts, overall.output_grads, "measured");
    points.push_back({p, result.test_accuracy, overall.input_acts,
                      overall.output_grads,
                      session.submit(sim_net, profile, backends)});
  }

  TextTable table({"p", "accuracy", "measured I rho", "measured dO rho",
                   "sim speedup", "sim energy eff", "28g speedup"});
  for (const auto& pt : points) {
    const core::EvalResult& r = session.wait(pt.job);
    table.add_row(
        {TextTable::num(pt.p), TextTable::pct(pt.accuracy, 1),
         TextTable::num(pt.i_rho), TextTable::num(pt.do_rho),
         TextTable::times(r.cycle_ratio("eyeriss-dense", "sparsetrain")),
         TextTable::times(r.energy_ratio("eyeriss-dense", "sparsetrain")),
         TextTable::times(r.cycle_ratio("eyeriss-dense", "sparsetrain-28g"))});
  }
  std::printf("%s\n", table.to_string().c_str());

  const auto stats = session.program_cache().stats();
  std::printf(
      "program cache: %zu compiles for %zu program requests across %zu "
      "jobs\n(the dense baseline program is compiled once and shared by "
      "every job;\neach sparse program serves both SparseTrain variants)\n",
      stats.misses, stats.lookups(), points.size());

  core::export_csv(session.results(), "sweep_pruning_rates.csv");
  std::printf("per-backend results written to sweep_pruning_rates.csv\n");
  std::printf(
      "\nThe paper's trade-off: accuracy stays flat while dO density — and\n"
      "with it simulated training latency/energy — drops as p grows.\n");
  return 0;
}
