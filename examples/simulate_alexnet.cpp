// Per-layer, per-stage architecture simulation of AlexNet at ImageNet
// scale: where the cycles and the energy go, and what sparsity saves.
#include <cstdio>

#include "core/session.hpp"
#include "isa/instruction.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

int main() {
  using namespace sparsetrain;

  const auto net = workload::alexnet_imagenet();
  const auto profile = workload::SparsityProfile::calibrated(
      net, workload::paper_act_density(workload::ModelFamily::AlexNet),
      workload::paper_table2_do_density(workload::ModelFamily::AlexNet,
                                        /*imagenet=*/true, 0.9),
      "table2-p90");

  core::Session session;
  const auto report = session.run_sparse(net, profile);

  std::printf("SparseTrain per-layer-stage breakdown: %s\n\n",
              report.program_name.c_str());
  TextTable table({"layer", "stage", "cycles", "cycles%", "MACs (M)",
                   "SRAM KB", "on-chip uJ"});
  const auto total = static_cast<double>(report.total_cycles);
  for (const auto& s : report.stages) {
    table.add_row({s.layer_name, isa::stage_name(s.stage),
                   std::to_string(s.cycles),
                   TextTable::pct(static_cast<double>(s.cycles) / total, 1),
                   TextTable::num(static_cast<double>(s.activity.macs) * 1e-6,
                                  1),
                   TextTable::num(
                       static_cast<double>(s.activity.sram_bytes) / 1024.0, 0),
                   TextTable::num(s.energy.on_chip_pj() * 1e-6, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("total: %zu cycles = %.3f ms/sample @ %.1f GHz, %.1f uJ "
              "on-chip, PE utilisation %.0f%%\n",
              report.total_cycles, report.latency_ms(), report.clock_ghz,
              report.energy.on_chip_pj() * 1e-6,
              report.utilization() * 100);

  if (sim::write_chrome_trace(report, "alexnet_trace.json")) {
    std::printf(
        "timeline written to alexnet_trace.json (open in Perfetto / "
        "chrome://tracing)\n");
  }
  return 0;
}
