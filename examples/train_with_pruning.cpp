// Train a CNN with the SparseTrain gradient-pruning algorithm and watch
// accuracy and gradient density per epoch.
//
// Demonstrates the algorithm half of the paper: stochastic pruning with
// FIFO threshold prediction attached at the correct per-structure pruning
// positions, with no accuracy loss at high sparsity.
#include <cstdio>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sparsetrain;

  // Synthetic 10-class dataset (stand-in for CIFAR-10; see DESIGN.md).
  data::SyntheticConfig dcfg;
  dcfg.classes = 10;
  dcfg.samples = 600;
  dcfg.height = 16;
  dcfg.width = 16;
  dcfg.seed = 7;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(300, 8);

  // A scaled AlexNet-style model (CONV-ReLU structure → dI pruning
  // position) and a pruner per conv layer.
  nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                            dcfg.classes};
  auto net = nn::models::alexnet_s(mi, 12);
  Rng rng(1);
  nn::kaiming_init(*net, rng);

  pruning::PruningConfig pcfg;
  pcfg.target_sparsity = 0.9;  // the paper's p
  pcfg.fifo_depth = 4;         // the paper's N_F
  const auto attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
  std::printf("attached %zu gradient pruners (p=%.0f%%, N_F=%zu)\n\n",
              attached.pruners.size(), pcfg.target_sparsity * 100,
              pcfg.fifo_depth);

  nn::TrainConfig tcfg;
  tcfg.batch_size = 25;
  tcfg.epochs = 8;
  tcfg.sgd.learning_rate = 0.04f;
  nn::Trainer trainer(*net, tcfg);

  std::printf("epoch  train-loss  train-acc  grad-density  pred-threshold\n");
  std::size_t epoch = 0;
  double density = 1.0, tau = 0.0;
  trainer.set_step_hook([&] {
    density = attached.mean_last_density();
    tau = attached.mean_predicted_threshold();
  });
  // Run epoch by epoch to report as we go.
  for (epoch = 0; epoch < tcfg.epochs; ++epoch) {
    nn::TrainConfig one = tcfg;
    one.epochs = 1;
    nn::Trainer step_trainer(*net, one);
    step_trainer.set_step_hook([&] {
      density = attached.mean_last_density();
      tau = attached.mean_predicted_threshold();
    });
    const auto r = step_trainer.fit(train, test);
    std::printf("%5zu  %10.4f  %8.1f%%  %11.2f  %13.5f\n", epoch + 1,
                r.epochs.back().train_loss,
                r.epochs.back().train_accuracy * 100, density, tau);
  }

  nn::Trainer eval_trainer(*net, tcfg);
  std::printf("\nfinal held-out accuracy: %.1f%%\n",
              eval_trainer.evaluate(test) * 100);
  std::printf(
      "Gradient density settles well below 1.0 while accuracy climbs —\n"
      "the paper's Table II behaviour at miniature scale.\n");
  return 0;
}
