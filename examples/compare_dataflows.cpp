// Demonstrates the 1-D convolution dataflow on a real layer: the SRC /
// MSRC / OSRC decomposition produces bit-identical results to the dense
// layer for all three training stages, while doing a fraction of the work.
#include <cstdio>

#include "dataflow/conv_decompose.hpp"
#include "nn/conv2d.hpp"
#include "nn/relu.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sparsetrain;

  // One CONV-ReLU pair with sparse inputs/gradients, like mid-AlexNet.
  Rng rng(42);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.2f);

  nn::ReLU prev_relu;
  Tensor pre_act(Shape{1, 8, 24, 24});
  pre_act.fill_normal(rng, 0.0f, 1.0f);
  const Tensor acts = prev_relu.forward(pre_act, true);  // sparse I + mask

  dataflow::ConvGeometry geo;
  geo.in_channels = cfg.in_channels;
  geo.out_channels = cfg.out_channels;

  // Forward: dense layer vs SRC row decomposition.
  const Tensor out_dense = conv.forward(acts, true);
  const Tensor out_rows = dataflow::forward_by_rows(
      acts, conv.weight().value, &conv.bias_param().value, geo);
  std::printf("Forward  max |dense - rows| = %.2e  (I density %.2f)\n",
              static_cast<double>(max_abs_diff(out_dense, out_rows)),
              acts.density());

  // Backward operands: a sparse dO.
  Tensor grad_out(out_dense.shape());
  grad_out.fill_sparse_normal(rng, 0.3);

  // GTA: dense backward + ReLU mask vs MSRC with mask skipping.
  const Tensor dI_dense = conv.backward(grad_out);
  const Tensor d_pre_dense = prev_relu.backward(dI_dense);
  const Tensor mask = prev_relu.mask();
  const Tensor dI_rows = dataflow::gta_by_rows(grad_out, conv.weight().value,
                                               acts.shape(), &mask, geo);
  const Tensor d_pre_rows = prev_relu.backward(dI_rows);
  std::printf("GTA      max |dense - rows| = %.2e  (dO density %.2f)\n",
              static_cast<double>(max_abs_diff(d_pre_dense, d_pre_rows)),
              grad_out.density());

  // GTW: accumulated dW vs OSRC decomposition.
  Tensor dbias(Shape::vec(cfg.out_channels));
  const Tensor dW_rows = dataflow::gtw_by_rows(grad_out, acts, &dbias, geo);
  std::printf("GTW      max |dense - rows| = %.2e\n",
              static_cast<double>(max_abs_diff(conv.weight().grad, dW_rows)));

  // Work counting: what the sparsity actually saves.
  const auto fwd = dataflow::forward_work(acts, geo);
  const auto gta = dataflow::gta_work(grad_out, acts.shape(), &mask, geo);
  const auto gtw = dataflow::gtw_work(grad_out, acts, geo);
  const double dense_fwd_macs = static_cast<double>(
      geo.out_channels * 24 * 24 * geo.in_channels * 9);
  std::printf(
      "\nwork (useful MACs vs dense):\n"
      "  Forward %8zu MACs (%.0f%% of dense)\n"
      "  GTA     %8zu MACs, %zu inputs skipped whole by mask look-ahead\n"
      "  GTW     %8zu MACs (sparse x sparse)\n",
      fwd.work.macs, 100.0 * static_cast<double>(fwd.work.macs) /
                         dense_fwd_macs,
      gta.work.macs, gta.work.skipped_inputs, gtw.work.macs);
  return 0;
}
