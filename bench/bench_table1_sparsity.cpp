// Reproduces Table I: sparsity of the six data types involved in training.
//
// Trains the two canonical structures (CONV-ReLU like AlexNet, and
// CONV-BN-ReLU like ResNet) on synthetic data, with and without gradient
// pruning, and reports the measured mean density of W / dW / I / dI / O /
// dO over all conv layers and steps. Expected pattern (Table I):
//   W dense, dW dense, I sparse, dI dense (pre-pruning), O dense,
//   dO sparse — and pruning makes dO sparse even for CONV-BN-ReLU.
#include <cstdio>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "pruning/sparsity_meter.hpp"
#include "util/table.hpp"

using namespace sparsetrain;

namespace {

struct RunResult {
  pruning::LayerSparsitySummary overall;
};

RunResult run(bool resnet_style, bool prune) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 4;
  dcfg.samples = 128;
  dcfg.height = 16;
  dcfg.width = 16;
  dcfg.seed = 11;
  const data::SyntheticDataset train(dcfg);

  nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                            dcfg.classes};
  std::unique_ptr<nn::Sequential> net =
      resnet_style ? nn::models::resnet_s(mi, 1, 6)
                   : nn::models::alexnet_s(mi, 8);
  Rng rng(21);
  nn::kaiming_init(*net, rng);

  auto meter = std::make_shared<pruning::SparsityMeter>();
  pruning::SparsityMeter::attach(*net, meter);

  pruning::AttachedPruners attached;
  if (prune) {
    pruning::PruningConfig pcfg;
    pcfg.target_sparsity = 0.9;
    pcfg.fifo_depth = 2;
    attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
  }

  nn::TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.epochs = 3;
  tcfg.sgd.learning_rate = 0.03f;
  nn::Trainer trainer(*net, tcfg);
  (void)trainer.fit(train, train);

  return RunResult{meter->overall()};
}

}  // namespace

int main() {
  std::printf("Table I reproduction: density of the six training operands\n");
  std::printf("(mean over all conv layers and steps; 1.00 = dense)\n\n");

  TextTable table({"structure", "pruning", "W", "dW", "I", "dI", "O", "dO"});
  const struct {
    const char* name;
    bool resnet;
    bool prune;
  } configs[] = {
      {"CONV-ReLU (AlexNet-style)", false, false},
      {"CONV-ReLU + grad pruning", false, true},
      {"CONV-BN-ReLU (ResNet-style)", true, false},
      {"CONV-BN-ReLU + grad pruning", true, true},
  };
  for (const auto& cfg : configs) {
    const RunResult r = run(cfg.resnet, cfg.prune);
    table.add_row({cfg.name, cfg.prune ? "p=0.9" : "off",
                   TextTable::num(r.overall.weights),
                   TextTable::num(r.overall.weight_grads),
                   TextTable::num(r.overall.input_acts),
                   TextTable::num(r.overall.input_grads),
                   TextTable::num(r.overall.output_acts),
                   TextTable::num(r.overall.output_grads)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper's Table I expectation: W dense, dW dense, I sparse, dI dense,\n"
      "O dense, dO sparse. Gradient pruning sparsifies the gradients even\n"
      "for CONV-BN-ReLU networks, whose dO would otherwise be dense.\n");
  return 0;
}
