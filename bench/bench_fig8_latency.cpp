// Reproduces Fig. 8: average training latency per sample for each
// model × dataset, on the dense Eyeriss-like baseline and on SparseTrain,
// plus the speedup. Densities come from the paper's published Table II
// operating points (p = 90%); a natural-sparsity-only row is included for
// AlexNet since the paper's abstract quotes that configuration.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;
using workload::ModelFamily;

int main() {
  std::printf(
      "Fig. 8 reproduction: training latency per sample (ms) and speedup.\n"
      "168 PEs / 386 KB buffer on both architectures; densities from the\n"
      "paper's Table II at p = 90%%.\n\n");

  struct W {
    workload::NetworkConfig net;
    ModelFamily family;
    bool imagenet;
  };
  const std::vector<W> workloads = {
      {workload::alexnet_cifar(), ModelFamily::AlexNet, false},
      {workload::resnet18_cifar(), ModelFamily::ResNet, false},
      {workload::resnet34_cifar(), ModelFamily::ResNet, false},
      {workload::alexnet_imagenet(), ModelFamily::AlexNet, true},
      {workload::resnet18_imagenet(), ModelFamily::ResNet, true},
      {workload::resnet34_imagenet(), ModelFamily::ResNet, true},
  };

  core::Session session;
  TextTable table({"workload", "baseline ms", "SparseTrain ms", "speedup",
                   "Fwd cyc%", "GTA cyc%", "GTW cyc%"});
  CsvWriter csv("fig8_latency.csv",
                {"workload", "dense_ms", "sparse_ms", "speedup"});

  double log_speedup_sum = 0.0;
  double max_speedup = 0.0;
  std::string max_name;

  for (const auto& w : workloads) {
    const double p = 0.9;
    const auto profile = workload::SparsityProfile::calibrated(
        w.net, workload::paper_act_density(w.family),
        workload::paper_table2_do_density(w.family, w.imagenet, p),
        "table2-p90");
    const auto result = session.compare(w.net, profile);
    const double speedup = result.speedup();
    log_speedup_sum += std::log(speedup);
    if (speedup > max_speedup) {
      max_speedup = speedup;
      max_name = w.net.name;
    }

    const auto total = static_cast<double>(result.sparse.total_cycles);
    auto pct = [&](isa::Stage s) {
      return TextTable::pct(
          static_cast<double>(result.sparse.stage_cycles(s)) / total, 0);
    };
    table.add_row({w.net.name, TextTable::num(result.dense_latency_ms(), 3),
                   TextTable::num(result.sparse_latency_ms(), 3),
                   TextTable::times(speedup), pct(isa::Stage::Forward),
                   pct(isa::Stage::GTA), pct(isa::Stage::GTW)});
    csv.add_row({w.net.name, TextTable::num(result.dense_latency_ms(), 5),
                 TextTable::num(result.sparse_latency_ms(), 5),
                 TextTable::num(speedup, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(workloads.size()));
  std::printf("geomean speedup: %.2fx (paper: ~2.7x average)\n", geomean);
  std::printf("max speedup: %.2fx on %s (paper: 4.5x max, on AlexNet)\n",
              max_speedup, max_name.c_str());

  // The abstract's AlexNet-with-natural-sparsity configuration.
  const auto alex = workload::alexnet_cifar();
  const auto natural = workload::SparsityProfile::natural(
      alex, workload::paper_act_density(ModelFamily::AlexNet));
  const auto nat_result = session.compare(alex, natural);
  std::printf(
      "\nAlexNet/CIFAR with natural sparsity only (no pruning): %.2fx "
      "speedup\n",
      nat_result.speedup());
  std::printf("CSV written to fig8_latency.csv.\n");
  return 0;
}
