// Reproduces Fig. 8: average training latency per sample for each
// model × dataset, on the dense Eyeriss-like baseline and on SparseTrain,
// plus the speedup. Densities come from the paper's published Table II
// operating points (p = 90%); a natural-sparsity-only row is included for
// AlexNet since the paper's abstract quotes that configuration.
//
// All seven jobs are submitted to the Session up front and evaluated in
// parallel on its thread pool; per-job seeding keeps the numbers
// identical whatever the worker count.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/export.hpp"
#include "core/session.hpp"
#include "serve/store.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;
using workload::ModelFamily;

int main(int argc, char** argv) {
  const Args args(
      argc, argv,
      {{"store", "persistent result-store directory (reused across runs)"}});
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  std::printf(
      "Fig. 8 reproduction: training latency per sample (ms) and speedup.\n"
      "168 PEs / 386 KB buffer on both architectures; densities from the\n"
      "paper's Table II at p = 90%% (VGG-16 zoo rows calibrate like\n"
      "AlexNet and are excluded from the paper-comparison aggregates).\n\n");

  const auto& workloads = workload::workload_zoo();
  const std::vector<std::string> backends = {core::Session::kSparseBackend,
                                             core::Session::kDenseBackend};

  core::SessionConfig scfg;
  const std::string store_dir = args.get("store", std::string());
  if (!store_dir.empty()) {
    scfg.store = std::make_shared<serve::ResultStore>(store_dir);
  }
  core::Session session(scfg);
  std::vector<core::Session::JobHandle> jobs;
  for (const auto& w : workloads) {
    const auto profile = workload::SparsityProfile::calibrated(
        w.net, workload::paper_act_density(w.family),
        workload::paper_table2_do_density(w.family, w.imagenet, 0.9),
        "table2-p90");
    jobs.push_back(session.submit(w.net, profile, backends));
  }
  // The abstract's AlexNet-with-natural-sparsity configuration rides along.
  const auto alex = workload::alexnet_cifar();
  const auto natural = workload::SparsityProfile::natural(
      alex, workload::paper_act_density(ModelFamily::AlexNet));
  const auto natural_job = session.submit(alex, natural, backends);

  TextTable table({"workload", "baseline ms", "SparseTrain ms", "speedup",
                   "Fwd cyc%", "GTA cyc%", "GTW cyc%"});
  double log_speedup_sum = 0.0;
  std::size_t paper_count = 0;
  double max_speedup = 0.0;
  std::string max_name;

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const core::EvalResult& r = session.wait(jobs[i]);
    const auto& sparse = r.report(core::Session::kSparseBackend);
    const auto& dense = r.report(core::Session::kDenseBackend);
    const double speedup =
        r.cycle_ratio(core::Session::kDenseBackend,
                      core::Session::kSparseBackend);
    if (workloads[i].family != ModelFamily::VGG) {
      log_speedup_sum += std::log(speedup);
      ++paper_count;
      if (speedup > max_speedup) {
        max_speedup = speedup;
        max_name = r.net.name;
      }
    }

    const auto total = static_cast<double>(sparse.total_cycles);
    auto pct = [&](isa::Stage s) {
      return TextTable::pct(
          static_cast<double>(sparse.stage_cycles(s)) / total, 0);
    };
    table.add_row({r.net.name, TextTable::num(dense.latency_ms(), 3),
                   TextTable::num(sparse.latency_ms(), 3),
                   TextTable::times(speedup), pct(isa::Stage::Forward),
                   pct(isa::Stage::GTA), pct(isa::Stage::GTW)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(paper_count));
  std::printf("geomean speedup: %.2fx (paper: ~2.7x average)\n", geomean);
  std::printf("max speedup: %.2fx on %s (paper: 4.5x max, on AlexNet)\n",
              max_speedup, max_name.c_str());

  const core::EvalResult& nat = session.wait(natural_job);
  std::printf(
      "\nAlexNet/CIFAR with natural sparsity only (no pruning): %.2fx "
      "speedup\n",
      nat.cycle_ratio(core::Session::kDenseBackend,
                      core::Session::kSparseBackend));

  core::export_csv(session.results(), "fig8_latency.csv");
  std::printf("per-backend CSV written to fig8_latency.csv.\n");
  if (session.result_store()) {
    const serve::StoreStats s = session.result_store()->stats();
    std::printf(
        "result store (%s): %zu hits / %zu lookups, %zu entries\n",
        store_dir.c_str(), static_cast<std::size_t>(s.hits),
        static_cast<std::size_t>(s.lookups()),
        static_cast<std::size_t>(s.entries));
  }
  return 0;
}
