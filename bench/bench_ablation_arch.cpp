// Ablation A3: architecture scaling (paper §V/§VI setup choices).
//
// Sweeps the PE-group count (the paper fixes 168 PEs = 56 groups × 3) and
// the buffer size (the paper fixes 386 KB) and reports SparseTrain latency
// and speedup over the equally-provisioned dense baseline, on
// ResNet-18/CIFAR with the Table II p=90% profile.
//
// Every swept architecture is registered as a named backend and the whole
// sweep is two submit() calls; the ProgramCache compiles each (net,
// profile) once however many architectures run it.
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/eyeriss_like.hpp"
#include "core/session.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

int main() {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::calibrated(
      net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9),
      "table2-p90");

  core::Session session;
  const std::vector<std::size_t> group_counts = {14, 28, 56, 112, 224};
  std::vector<std::string> pe_backends;
  for (const std::size_t groups : group_counts) {
    sim::ArchConfig sc = session.config().sparse_arch;
    sc.pe_groups = groups;
    sim::ArchConfig dc = baseline::eyeriss_like_config();
    dc.pe_groups = groups;
    const std::string tag = "g" + std::to_string(groups);
    session.backends().register_arch("sparse-" + tag, sc);
    session.backends().register_arch("dense-" + tag, dc);
    pe_backends.push_back("sparse-" + tag);
    pe_backends.push_back("dense-" + tag);
  }

  // The CIFAR workload fits in every buffer size, so sweep the buffer on
  // the ImageNet-scale workload where working sets actually spill.
  const auto big_net = workload::resnet18_imagenet();
  const auto big_profile = workload::SparsityProfile::calibrated(
      big_net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, true,
                                        0.9),
      "table2-p90");
  const std::vector<std::size_t> buffer_kbs = {48, 96, 192, 386, 772, 1544};
  std::vector<std::string> buf_backends;
  for (const std::size_t kb : buffer_kbs) {
    sim::ArchConfig sc = session.config().sparse_arch;
    sc.buffer_bytes = kb * 1024;
    sim::ArchConfig dc = baseline::eyeriss_like_config();
    dc.buffer_bytes = kb * 1024;
    const std::string tag = "b" + std::to_string(kb);
    session.backends().register_arch("sparse-" + tag, sc);
    session.backends().register_arch("dense-" + tag, dc);
    buf_backends.push_back("sparse-" + tag);
    buf_backends.push_back("dense-" + tag);
  }

  // Registration done — submit both sweeps (the registry contract is
  // register-everything, then submit).
  const auto pe_job = session.submit(net, profile, pe_backends);
  const auto buf_job = session.submit(big_net, big_profile, buf_backends);

  std::printf(
      "Architecture scaling ablation on ResNet-18/CIFAR (p=90%% profile).\n\n"
      "PE-group sweep (3 PEs per group, 386 KB buffer):\n");
  TextTable pe_table({"PE groups", "PEs", "SparseTrain cycles", "speedup",
                      "PE utilisation"});
  const core::EvalResult& pe_result = session.wait(pe_job);
  for (const std::size_t groups : group_counts) {
    const std::string tag = "g" + std::to_string(groups);
    const auto& rs = pe_result.report("sparse-" + tag);
    pe_table.add_row(
        {std::to_string(groups), std::to_string(groups * 3),
         std::to_string(rs.total_cycles),
         TextTable::times(
             pe_result.cycle_ratio("dense-" + tag, "sparse-" + tag)),
         TextTable::pct(rs.utilization(), 0)});
  }
  std::printf("%s\n", pe_table.to_string().c_str());

  std::printf("Buffer sweep on ResNet-18/ImageNet (56 groups; working sets\n"
              "that spill refetch weights from DRAM):\n");
  TextTable buf_table({"buffer KB", "SparseTrain DRAM uJ", "baseline DRAM uJ",
                       "baseline/SparseTrain DRAM"});
  const core::EvalResult& buf_result = session.wait(buf_job);
  for (const std::size_t kb : buffer_kbs) {
    const std::string tag = "b" + std::to_string(kb);
    const auto& rs = buf_result.report("sparse-" + tag);
    const auto& rd = buf_result.report("dense-" + tag);
    buf_table.add_row(
        {std::to_string(kb), TextTable::num(rs.energy.dram_pj * 1e-6, 1),
         TextTable::num(rd.energy.dram_pj * 1e-6, 1),
         TextTable::times(rd.energy.dram_pj / rs.energy.dram_pj)});
  }
  std::printf("%s\n", buf_table.to_string().c_str());

  const auto stats = session.program_cache().stats();
  std::printf(
      "program cache: %zu compiles for %zu program requests across %zu "
      "backend runs.\n\n",
      stats.misses, stats.lookups(),
      pe_result.runs.size() + buf_result.runs.size());
  std::printf(
      "Reading: speedup is roughly flat across PE counts (both sides\n"
      "scale), utilisation drops as groups outnumber ready tasks for the\n"
      "small CIFAR layers; compression lets SparseTrain tolerate smaller\n"
      "buffers with less DRAM refetch than the dense baseline.\n");
  return 0;
}
