// Ablation A3: architecture scaling (paper §V/§VI setup choices).
//
// Sweeps the PE-group count (the paper fixes 168 PEs = 56 groups × 3) and
// the buffer size (the paper fixes 386 KB) and reports SparseTrain latency
// and speedup over the equally-provisioned dense baseline, on
// ResNet-18/CIFAR with the Table II p=90% profile.
//
// Both sweeps are dse::Explorer grids over a SpaceSpec whose sparse axis
// is {true, false} — every swept architecture is paired with its dense
// twin in one enumeration, the Explorer registers the backends and
// batches the evaluations as Session jobs, and the ProgramCache compiles
// each (net, profile) once however many architectures run it.
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

namespace {

/// The two sweep cells of one swept value: the SparseTrain point and its
/// equally-provisioned dense twin.
struct Pair {
  const dse::PointResult* sparse = nullptr;
  const dse::PointResult* dense = nullptr;
};

Pair find_pair(const dse::ExploreResult& result,
               const std::function<bool(const sim::ArchConfig&)>& match) {
  Pair pair;
  pair.sparse = result.find([&](const dse::DesignPoint& p) {
    return p.arch.sparse && match(p.arch);
  });
  pair.dense = result.find([&](const dse::DesignPoint& p) {
    return !p.arch.sparse && match(p.arch);
  });
  return pair;
}

double cycle_ratio(const Pair& pair) {
  return static_cast<double>(pair.dense->evals[0].report.total_cycles) /
         static_cast<double>(pair.sparse->evals[0].report.total_cycles);
}

}  // namespace

int main() {
  const auto net = workload::resnet18_cifar();
  const dse::Scenario cifar_scenario = dse::Scenario::calibrated(
      "table2-p90",
      workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9));

  core::Session session;
  dse::Explorer explorer(session);

  // PE-group sweep (3 PEs per group, 386 KB buffer), each point paired
  // with its dense twin by the sparse axis.
  dse::SpaceSpec pe_space;
  pe_space.pe_groups = {14, 28, 56, 112, 224};
  pe_space.sparse = {true, false};
  pe_space.scenarios = {cifar_scenario};
  const auto pe_result = explorer.explore(pe_space, {net});

  std::printf(
      "Architecture scaling ablation on ResNet-18/CIFAR (p=90%% profile).\n\n"
      "PE-group sweep (3 PEs per group, 386 KB buffer):\n");
  TextTable pe_table({"PE groups", "PEs", "SparseTrain cycles", "speedup",
                      "PE utilisation"});
  for (const std::size_t groups : pe_space.pe_groups) {
    const Pair pair = find_pair(pe_result, [&](const sim::ArchConfig& a) {
      return a.pe_groups == groups;
    });
    const auto& rs = pair.sparse->evals[0].report;
    pe_table.add_row({std::to_string(groups), std::to_string(groups * 3),
                      std::to_string(rs.total_cycles),
                      TextTable::times(cycle_ratio(pair)),
                      TextTable::pct(rs.utilization(), 0)});
  }
  std::printf("%s\n", pe_table.to_string().c_str());

  // The CIFAR workload fits in every buffer size, so sweep the buffer on
  // the ImageNet-scale workload where working sets actually spill.
  const auto big_net = workload::resnet18_imagenet();
  dse::SpaceSpec buf_space;
  buf_space.buffer_bytes = {48 * 1024,  96 * 1024,  192 * 1024,
                            386 * 1024, 772 * 1024, 1544 * 1024};
  buf_space.sparse = {true, false};
  buf_space.scenarios = {dse::Scenario::calibrated(
      "table2-p90",
      workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, true,
                                        0.9))};
  const auto buf_result = explorer.explore(buf_space, {big_net});

  std::printf("Buffer sweep on ResNet-18/ImageNet (56 groups; working sets\n"
              "that spill refetch weights from DRAM):\n");
  TextTable buf_table({"buffer KB", "SparseTrain DRAM uJ", "baseline DRAM uJ",
                       "baseline/SparseTrain DRAM"});
  for (const std::size_t bytes : buf_space.buffer_bytes) {
    const Pair pair = find_pair(buf_result, [&](const sim::ArchConfig& a) {
      return a.buffer_bytes == bytes;
    });
    const auto& rs = pair.sparse->evals[0].report;
    const auto& rd = pair.dense->evals[0].report;
    buf_table.add_row({std::to_string(bytes / 1024),
                       TextTable::num(rs.energy.dram_pj * 1e-6, 1),
                       TextTable::num(rd.energy.dram_pj * 1e-6, 1),
                       TextTable::times(rd.energy.dram_pj /
                                        rs.energy.dram_pj)});
  }
  std::printf("%s\n", buf_table.to_string().c_str());

  std::printf(
      "program cache: %zu compiles for %zu lookups across %zu backend "
      "runs.\n\n",
      pe_result.cache.misses + buf_result.cache.misses,
      pe_result.cache.lookups() + buf_result.cache.lookups(),
      pe_result.evaluations + buf_result.evaluations);
  std::printf(
      "Reading: speedup is roughly flat across PE counts (both sides\n"
      "scale), utilisation drops as groups outnumber ready tasks for the\n"
      "small CIFAR layers; compression lets SparseTrain tolerate smaller\n"
      "buffers with less DRAM refetch than the dense baseline.\n");
  return 0;
}
