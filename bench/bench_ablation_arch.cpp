// Ablation A3: architecture scaling (paper §V/§VI setup choices).
//
// Sweeps the PE-group count (the paper fixes 168 PEs = 56 groups × 3) and
// the buffer size (the paper fixes 386 KB) and reports SparseTrain latency
// and speedup over the equally-provisioned dense baseline, on
// ResNet-18/CIFAR with the Table II p=90% profile.
#include <cstdio>

#include "baseline/eyeriss_like.hpp"
#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

int main() {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::calibrated(
      net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9),
      "table2-p90");
  const auto dense_profile = workload::SparsityProfile::dense(net);
  const auto sparse_prog = compiler::compile(net, profile);
  const auto dense_prog = compiler::compile(net, dense_profile);

  std::printf(
      "Architecture scaling ablation on ResNet-18/CIFAR (p=90%% profile).\n\n"
      "PE-group sweep (3 PEs per group, 386 KB buffer):\n");
  TextTable pe_table({"PE groups", "PEs", "SparseTrain cycles", "speedup",
                      "PE utilisation"});
  for (std::size_t groups : {14u, 28u, 56u, 112u, 224u}) {
    sim::ArchConfig sc;
    sc.pe_groups = groups;
    sim::ArchConfig dc = baseline::eyeriss_like_config();
    dc.pe_groups = groups;
    const auto rs = sim::Accelerator(sc).run(sparse_prog, net, profile);
    const auto rd = sim::Accelerator(dc).run(dense_prog, net, dense_profile);
    pe_table.add_row(
        {std::to_string(groups), std::to_string(groups * 3),
         std::to_string(rs.total_cycles),
         TextTable::times(static_cast<double>(rd.total_cycles) /
                          static_cast<double>(rs.total_cycles)),
         TextTable::pct(rs.utilization(groups * 3), 0)});
  }
  std::printf("%s\n", pe_table.to_string().c_str());

  // The CIFAR workload fits in every buffer size, so sweep the buffer on
  // the ImageNet-scale workload where working sets actually spill.
  const auto big_net = workload::resnet18_imagenet();
  const auto big_profile = workload::SparsityProfile::calibrated(
      big_net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, true,
                                        0.9),
      "table2-p90");
  const auto big_dense_profile = workload::SparsityProfile::dense(big_net);
  const auto big_sparse_prog = compiler::compile(big_net, big_profile);
  const auto big_dense_prog = compiler::compile(big_net, big_dense_profile);

  std::printf("Buffer sweep on ResNet-18/ImageNet (56 groups; working sets\n"
              "that spill refetch weights from DRAM):\n");
  TextTable buf_table({"buffer KB", "SparseTrain DRAM uJ", "baseline DRAM uJ",
                       "baseline/SparseTrain DRAM"});
  for (std::size_t kb : {48u, 96u, 192u, 386u, 772u, 1544u}) {
    sim::ArchConfig sc;
    sc.buffer_bytes = kb * 1024;
    sim::ArchConfig dc = baseline::eyeriss_like_config();
    dc.buffer_bytes = kb * 1024;
    const auto rs =
        sim::Accelerator(sc).run(big_sparse_prog, big_net, big_profile);
    const auto rd = sim::Accelerator(dc).run(big_dense_prog, big_net,
                                             big_dense_profile);
    buf_table.add_row(
        {std::to_string(kb), TextTable::num(rs.energy.dram_pj * 1e-6, 1),
         TextTable::num(rd.energy.dram_pj * 1e-6, 1),
         TextTable::times(rd.energy.dram_pj / rs.energy.dram_pj)});
  }
  std::printf("%s\n", buf_table.to_string().c_str());
  std::printf(
      "Reading: speedup is roughly flat across PE counts (both sides\n"
      "scale), utilisation drops as groups outnumber ready tasks for the\n"
      "small CIFAR layers; compression lets SparseTrain tolerate smaller\n"
      "buffers with less DRAM refetch than the dense baseline.\n");
  return 0;
}
