// Microbenchmarks (google-benchmark): throughput of the core primitives —
// stochastic pruning, threshold determination, compression, the three row
// ops, dense conv forward/backward, and the full-network simulator.
#include <benchmark/benchmark.h>

#include "compiler/compiler.hpp"
#include "dataflow/row_ops.hpp"
#include "nn/conv2d.hpp"
#include "pruning/gradient_pruner.hpp"
#include "pruning/stochastic_pruner.hpp"
#include "pruning/threshold.hpp"
#include "sim/accelerator.hpp"
#include "tensor/bit_mask.hpp"
#include "tensor/compressed_rows.hpp"
#include "tensor/sparse_row.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace {

using namespace sparsetrain;

std::vector<float> normal_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// A {1,1,rows,len} tensor at the given density, compressed into one
/// arena — the exact engine's operand layout.
CompressedRows random_rows(std::size_t rows, std::size_t len, double density,
                           std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{1, 1, rows, len});
  t.fill_sparse_normal(rng, density);
  return compress_tensor(t);
}

void BM_ThresholdDetermination(benchmark::State& state) {
  const auto g = normal_data(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pruning::determine_threshold(g, 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThresholdDetermination)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StochasticPrune(benchmark::State& state) {
  const auto base = normal_data(static_cast<std::size_t>(state.range(0)), 2);
  Rng rng(3);
  for (auto _ : state) {
    auto g = base;
    benchmark::DoNotOptimize(pruning::stochastic_prune(g, 1.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StochasticPrune)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_GradientPrunerFusedPass(benchmark::State& state) {
  pruning::PruningConfig cfg;
  cfg.fifo_depth = 1;
  pruning::GradientPruner pruner(cfg, Rng(4));
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    Tensor g(Shape::vec(static_cast<std::size_t>(state.range(0))));
    g.fill_normal(rng, 0.0f, 1.0f);
    state.ResumeTiming();
    pruner.apply(g);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GradientPrunerFusedPass)->Arg(1 << 16);

void BM_CompressRow(benchmark::State& state) {
  Rng rng(6);
  std::vector<float> dense(1024, 0.0f);
  for (auto& x : dense)
    if (rng.bernoulli(0.4)) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_row(dense));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CompressRow);

void BM_SrcRowConv(benchmark::State& state) {
  Rng rng(7);
  std::vector<float> dense(256, 0.0f);
  for (auto& x : dense)
    if (rng.bernoulli(static_cast<double>(state.range(0)) / 100.0))
      x = static_cast<float>(rng.normal());
  const SparseRow row = compress_row(dense);
  const std::vector<float> kernel = {0.5f, 1.0f, -0.5f};
  dataflow::RowGeometry geo{3, 1, 1};
  std::vector<float> out(256, 0.0f);
  for (auto _ : state) {
    src_row_conv(row, kernel, geo, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SrcRowConv)->Arg(10)->Arg(45)->Arg(100);

// ---- row-op inner loops on view-based (arena) rows -------------------
// The exact engine's hot path at {dense, 0.5, 0.9}-sparsity operating
// points (Arg = density %). Any regression in the O(1)/two-pointer work
// kernels shows up here in isolation, without engine scheduling noise.

constexpr std::size_t kViewRows = 64;
constexpr std::size_t kViewLen = 256;

void BM_SrcWorkView(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const CompressedRows rows = random_rows(kViewRows, kViewLen, density, 41);
  const dataflow::RowGeometry geo{3, 1, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto w = dataflow::src_work(rows.row(i), geo, kViewLen);
    benchmark::DoNotOptimize(w.macs);
    i = (i + 1) % kViewRows;
  }
  state.SetItemsProcessed(state.iterations() * kViewLen);
}
BENCHMARK(BM_SrcWorkView)->Arg(100)->Arg(50)->Arg(10);

void BM_MsrcWorkView(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const CompressedRows rows = random_rows(kViewRows, kViewLen, density, 42);
  Rng rng(43);
  std::vector<float> mask_dense(kViewLen, 0.0f);
  for (auto& v : mask_dense)
    if (rng.bernoulli(0.5)) v = 1.0f;
  const BitMask mask = bitmask_from_dense(mask_dense);
  const dataflow::RowGeometry geo{3, 1, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto w = dataflow::msrc_work(rows.row(i), mask, geo, kViewLen);
    benchmark::DoNotOptimize(w.macs);
    i = (i + 1) % kViewRows;
  }
  state.SetItemsProcessed(state.iterations() * kViewLen);
}
BENCHMARK(BM_MsrcWorkView)->Arg(100)->Arg(50)->Arg(10);

void BM_OsrcWorkView(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const CompressedRows acts = random_rows(kViewRows, kViewLen, density, 44);
  const CompressedRows grads = random_rows(kViewRows, kViewLen, density, 45);
  const dataflow::RowGeometry geo{3, 1, 1};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto w = dataflow::osrc_work(acts.row(i), grads.row(i), geo);
    benchmark::DoNotOptimize(w.macs);
    i = (i + 1) % kViewRows;
  }
  state.SetItemsProcessed(state.iterations() * kViewLen);
}
BENCHMARK(BM_OsrcWorkView)->Arg(100)->Arg(50)->Arg(10);

void BM_CompressTensorArena(benchmark::State& state) {
  Rng rng(46);
  Tensor t(Shape{1, 16, 64, 256});
  t.fill_sparse_normal(rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_tensor(t));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_CompressTensorArena);

void BM_Conv2DForward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  Rng rng(8);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.2f);
  Tensor in(Shape{1, 16, 16, 16});
  in.fill_sparse_normal(rng, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(in, false));
  }
}
BENCHMARK(BM_Conv2DForward);

void BM_Conv2DBackward(benchmark::State& state) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = 16;
  cfg.out_channels = 16;
  nn::Conv2D conv(cfg);
  Rng rng(9);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.2f);
  Tensor in(Shape{1, 16, 16, 16});
  in.fill_sparse_normal(rng, 0.5);
  (void)conv.forward(in, true);
  Tensor grad(conv.output_shape(in.shape()));
  grad.fill_sparse_normal(rng, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.backward(grad));
  }
}
BENCHMARK(BM_Conv2DBackward);

void BM_SimulateResnet18Cifar(benchmark::State& state) {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  const auto prog = compiler::compile(net, profile);
  sim::Accelerator accel((sim::ArchConfig()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run(prog, net, profile));
  }
}
BENCHMARK(BM_SimulateResnet18Cifar);

void BM_CompileResnet34Imagenet(benchmark::State& state) {
  const auto net = workload::resnet34_imagenet();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile(net, profile));
  }
}
BENCHMARK(BM_CompileResnet34Imagenet);

}  // namespace

BENCHMARK_MAIN();
