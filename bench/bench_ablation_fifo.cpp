// Ablation A1: FIFO depth for threshold prediction (paper §III-B).
//
// The prediction scheme replaces a second pass over the gradients with the
// mean of the last N_F determined thresholds. This bench measures, on a
// drifting gradient stream (σ decays over batches, as losses do), how the
// prediction error and the realised sparsity depend on N_F — the design
// choice behind the paper's "almost no overhead" claim.
#include <cmath>
#include <cstdio>

#include "pruning/gradient_pruner.hpp"
#include "tensor/tensor.hpp"
#include "util/table.hpp"

using namespace sparsetrain;

int main() {
  std::printf(
      "FIFO threshold-prediction ablation: prediction error and realised\n"
      "density vs FIFO depth N_F, on a drifting gradient stream\n"
      "(sigma decays 2%% per batch, like a converging loss).\n\n");

  const double p = 0.9;
  const std::size_t batches = 64;
  const std::size_t n = 20000;

  TextTable table({"N_F", "mean |tau_hat - tau| / tau", "mean density",
                   "batches pruned"});
  for (std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    pruning::PruningConfig cfg;
    cfg.target_sparsity = p;
    cfg.fifo_depth = depth;
    pruning::GradientPruner pruner(cfg, Rng(71));

    Rng data_rng(72);
    double err_sum = 0.0;
    double density_sum = 0.0;
    std::size_t pruned_batches = 0;
    double sigma = 1.0;
    for (std::size_t b = 0; b < batches; ++b) {
      Tensor g(Shape::vec(n));
      g.fill_normal(data_rng, 0.0f, static_cast<float>(sigma));
      pruner.apply(g);
      if (pruner.last_predicted_threshold() > 0.0) {
        ++pruned_batches;
        err_sum += std::abs(pruner.last_predicted_threshold() -
                            pruner.last_determined_threshold()) /
                   pruner.last_determined_threshold();
        density_sum += pruner.last_density();
      }
      sigma *= 0.98;  // drift
    }
    table.add_row(
        {std::to_string(depth),
         pruned_batches ? TextTable::pct(err_sum / pruned_batches, 2) : "-",
         pruned_batches ? TextTable::num(density_sum / pruned_batches) : "-",
         std::to_string(pruned_batches)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: small N_F tracks drift best (low error) but is noisier;\n"
      "large N_F lags the drifting threshold and loses warm-up batches.\n"
      "N_F around 2-8 is the sweet spot the paper's scheme relies on.\n");
  return 0;
}
