// Reproduces Table II: training accuracy and gradient density (ρ_nnz)
// across models × datasets × pruning rates p ∈ {baseline, 70, 80, 90, 99%}.
//
// Substitution (see DESIGN.md): the paper trains full AlexNet/ResNet on
// CIFAR-10/100 and ImageNet for 180–300 epochs; here scaled-down models
// with the same operator structures are trained on synthetic datasets with
// CIFAR-like class counts. The claims under test are the paper's:
//   (1) accuracy with pruning ≈ baseline accuracy for moderate p,
//   (2) gradient density drops several-fold and shrinks as p grows,
//   (3) deeper networks reach lower densities.
#include <cstdio>
#include <memory>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sparsetrain;

namespace {

struct Setup {
  const char* model;
  const char* dataset;
  std::size_t classes;
  std::size_t blocks;     // residual blocks per stage (0 = AlexNet-style)
  std::size_t width;
  std::uint64_t seed;
};

struct Outcome {
  double accuracy = 0.0;
  double density = 1.0;  // ρ_nnz of activation gradients after pruning
};

Outcome run(const Setup& s, double p) {
  data::SyntheticConfig dcfg;
  dcfg.classes = s.classes;
  dcfg.samples = 36 * s.classes;
  // AlexNet-S needs >= 16x16 (three pooling stages); ResNet-S trains
  // faster at 12x12.
  dcfg.height = s.blocks == 0 ? 16 : 12;
  dcfg.width = dcfg.height;
  dcfg.noise = 0.3f;
  dcfg.seed = s.seed;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(18 * s.classes,
                                                     s.seed + 1);

  nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                            dcfg.classes};
  std::unique_ptr<nn::Sequential> net =
      s.blocks == 0 ? nn::models::alexnet_s(mi, s.width)
                    : nn::models::resnet_s(mi, s.blocks, s.width);
  Rng rng(s.seed + 2);
  nn::kaiming_init(*net, rng);

  pruning::AttachedPruners attached;
  if (p > 0.0) {
    pruning::PruningConfig pcfg;
    pcfg.target_sparsity = p;
    pcfg.fifo_depth = 2;
    attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
  }

  nn::TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.epochs = 4;
  // AlexNet-S (larger head, no BN) needs a gentler rate to stay stable
  // across all pruning levels.
  tcfg.sgd.learning_rate = s.blocks == 0 ? 0.015f : 0.03f;
  nn::Trainer trainer(*net, tcfg);

  // Track mean gradient density over the final epoch.
  double density_sum = 0.0;
  std::size_t density_count = 0;
  trainer.set_step_hook([&] {
    if (!attached.pruners.empty()) {
      density_sum += attached.mean_last_density();
      ++density_count;
    }
  });

  const nn::TrainResult result = trainer.fit(train, test);
  Outcome out;
  out.accuracy = result.test_accuracy;
  out.density =
      density_count == 0 ? 1.0 : density_sum / static_cast<double>(density_count);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Table II reproduction: accuracy (acc%%) and gradient density (rho)\n"
      "for scaled models on synthetic datasets (see DESIGN.md for the\n"
      "substitution rationale).\n\n");

  const Setup setups[] = {
      {"AlexNet-S", "cifar10-like", 10, 0, 8, 100},
      {"ResNet-S18", "cifar10-like", 10, 2, 5, 200},
      {"ResNet-S34", "cifar10-like", 10, 3, 5, 300},
      {"AlexNet-S", "cifar100-like", 15, 0, 8, 400},
      {"ResNet-S18", "cifar100-like", 15, 2, 5, 500},
      {"ResNet-S34", "cifar100-like", 15, 3, 5, 600},
      {"AlexNet-S", "imagenet-like", 20, 0, 8, 700},
      {"ResNet-S18", "imagenet-like", 20, 2, 6, 800},
  };
  const double rates[] = {0.0, 0.7, 0.8, 0.9, 0.99};

  TextTable table({"model", "dataset", "metric", "baseline", "p=70%", "p=80%",
                   "p=90%", "p=99%"});
  CsvWriter csv("table2_accuracy.csv",
                {"model", "dataset", "p", "accuracy", "density"});

  for (const Setup& s : setups) {
    std::vector<std::string> acc_row = {s.model, s.dataset, "acc%"};
    std::vector<std::string> rho_row = {s.model, s.dataset, "rho"};
    for (double p : rates) {
      const Outcome o = run(s, p);
      acc_row.push_back(TextTable::num(o.accuracy * 100.0, 1));
      rho_row.push_back(p == 0.0 ? "1.00" : TextTable::num(o.density));
      csv.add_row({s.model, s.dataset, TextTable::num(p),
                   TextTable::num(o.accuracy, 4), TextTable::num(o.density, 4)});
    }
    table.add_row(acc_row);
    table.add_row(rho_row);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected shape (paper Table II): accuracy roughly flat across p\n"
      "(small drop only at p=99%%); density falls well below 1 and\n"
      "decreases with p. CSV written to table2_accuracy.csv.\n");
  return 0;
}
