// Ablation A2: the 1-D sparse dataflow itself (paper §IV design choices).
//
// Sweeps operand density and reports per-row-op PE cycles for SRC, MSRC
// (with and without mask skipping) and OSRC, from both the exact
// cycle-stepped PE and the closed-form model the full-network simulator
// uses. Shows (a) cycles scale with nnz, (b) the MSRC mask-skip
// optimisation's contribution, (c) OSRC's sparse×sparse product effect.
#include <cstdio>

#include "isa/instruction.hpp"
#include "sim/pe_model.hpp"
#include "tensor/sparse_row.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace sparsetrain;

namespace {

SparseRow random_row(std::size_t len, double density, Rng& rng) {
  std::vector<float> dense(len, 0.0f);
  for (auto& x : dense)
    if (rng.bernoulli(density)) x = static_cast<float>(rng.normal());
  return compress_row(dense);
}

MaskRow random_mask(std::size_t len, double density, Rng& rng) {
  std::vector<float> dense(len, 0.0f);
  for (auto& x : dense)
    if (rng.bernoulli(density)) x = 1.0f;
  return mask_from_dense(dense);
}

}  // namespace

int main() {
  std::printf(
      "Dataflow ablation: mean PE cycles per row op vs operand density\n"
      "(row length 64, K=3; exact cycle-stepped PE, 500 trials; closed\n"
      "form in parentheses). Dense baseline row op costs %u cycles.\n\n",
      2 + 64 + 2);

  const std::size_t L = 64;
  const int trials = 500;
  sim::PeExact pe;

  TextTable table({"density", "SRC", "MSRC mask=1.0", "MSRC mask=0.45",
                   "OSRC (I rho=0.45)"});
  for (double rho : {0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    Rng rng(81);
    isa::RowBlock src;
    src.kind = isa::RowOpKind::SRC;
    src.in_len = L;
    src.out_len = L;
    src.kernel = 3;
    src.stride = 1;
    src.padding = 1;
    src.density_in = rho;

    isa::RowBlock msrc_full = src;
    msrc_full.kind = isa::RowOpKind::MSRC;
    msrc_full.density_mask = 1.0;
    isa::RowBlock msrc_masked = msrc_full;
    msrc_masked.density_mask = 0.45;

    isa::RowBlock osrc = src;
    osrc.kind = isa::RowOpKind::OSRC;
    osrc.second_len = L;
    osrc.density_second = 0.45;
    osrc.out_len = 3;

    double c_src = 0, c_mf = 0, c_mm = 0, c_o = 0;
    for (int t = 0; t < trials; ++t) {
      const SparseRow row = random_row(L, rho, rng);
      c_src += static_cast<double>(pe.run_src(row, src).cycles);
      MaskRow full;
      full.length = L;
      for (std::uint32_t i = 0; i < L; ++i) full.offsets.push_back(i);
      c_mf += static_cast<double>(pe.run_msrc(row, full, msrc_full).cycles);
      const MaskRow partial = random_mask(L, 0.45, rng);
      c_mm +=
          static_cast<double>(pe.run_msrc(row, partial, msrc_masked).cycles);
      const SparseRow i_row = random_row(L, 0.45, rng);
      c_o += static_cast<double>(pe.run_osrc(i_row, row, osrc).cycles);
    }
    const sim::PeTiming timing;
    auto fmt = [&](double exact, const isa::RowBlock& b) {
      const auto cf = sim::row_op_cost(b, timing, true);
      return TextTable::num(exact / trials, 1) + " (" +
             TextTable::num(cf.mean_cycles, 1) + ")";
    };
    table.add_row({TextTable::num(rho), fmt(c_src, src),
                   fmt(c_mf, msrc_full), fmt(c_mm, msrc_masked),
                   fmt(c_o, osrc)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: SRC/MSRC cycles track nnz (68 cycles dense -> ~8 at 10%%\n"
      "density); the 0.45 mask skips whole inputs only rarely at K=3 but\n"
      "saves MAC energy; OSRC cycles scale with the *product* of the two\n"
      "operands' nnz through the chunk count.\n");
  return 0;
}
