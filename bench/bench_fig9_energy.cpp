// Reproduces Fig. 9: average energy per sample broken down by component
// (combinational logic, registers, SRAM; DRAM reported separately), for
// the dense baseline and SparseTrain, plus the energy-efficiency ratio and
// the paper's headline reduction percentages.
//
// Jobs are submitted to the Session up front and evaluated in parallel;
// the per-backend reports (with stage breakdowns) are exported as JSON.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/export.hpp"
#include "core/session.hpp"
#include "serve/store.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;
using workload::ModelFamily;

int main(int argc, char** argv) {
  const Args args(
      argc, argv,
      {{"store", "persistent result-store directory (reused across runs)"}});
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }
  std::printf(
      "Fig. 9 reproduction: energy per sample (uJ) by component.\n"
      "\"Comb\" = combinational logic (MACs + PE control), on-chip =\n"
      "Comb + Reg + SRAM (the synthesised design + buffer, as in the\n"
      "paper); DRAM is reported separately.\n\n");

  // The full workload zoo: the paper's six plus VGG-16 (which calibrates
  // like AlexNet). Paper-comparison aggregates below use the paper's six.
  const auto& workloads = workload::workload_zoo();

  core::SessionConfig scfg;
  const std::string store_dir = args.get("store", std::string());
  if (!store_dir.empty()) {
    scfg.store = std::make_shared<serve::ResultStore>(store_dir);
  }
  core::Session session(scfg);
  std::vector<core::Session::JobHandle> jobs;
  for (const auto& w : workloads) {
    const auto profile = workload::SparsityProfile::calibrated(
        w.net, workload::paper_act_density(w.family),
        workload::paper_table2_do_density(w.family, w.imagenet, 0.9),
        "table2-p90");
    jobs.push_back(session.submit(
        w.net, profile,
        {core::Session::kSparseBackend, core::Session::kDenseBackend}));
  }

  TextTable table({"workload", "arch", "Comb uJ", "Reg uJ", "SRAM uJ",
                   "on-chip uJ", "DRAM uJ", "SRAM share"});
  double log_eff_sum = 0.0;
  std::size_t paper_count = 0;
  double min_eff = 1e9, max_eff = 0.0;
  double min_sram_red = 1.0, max_sram_red = 0.0;
  double min_comb_red = 1.0, max_comb_red = 0.0;

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const core::EvalResult& r = session.wait(jobs[i]);
    const auto& sparse = r.report(core::Session::kSparseBackend).energy;
    const auto& dense = r.report(core::Session::kDenseBackend).energy;

    auto add = [&](const char* arch, const sim::EnergyBreakdown& e) {
      table.add_row({r.net.name, arch, TextTable::num(e.comb_pj * 1e-6, 1),
                     TextTable::num(e.reg_pj * 1e-6, 1),
                     TextTable::num(e.sram_pj * 1e-6, 1),
                     TextTable::num(e.on_chip_pj() * 1e-6, 1),
                     TextTable::num(e.dram_pj * 1e-6, 1),
                     TextTable::pct(e.sram_pj / e.on_chip_pj(), 0)});
    };
    add("baseline", dense);
    add("SparseTrain", sparse);
    if (workloads[i].family == ModelFamily::VGG) continue;

    const double eff = r.energy_ratio(core::Session::kDenseBackend,
                                      core::Session::kSparseBackend);
    log_eff_sum += std::log(eff);
    ++paper_count;
    min_eff = std::min(min_eff, eff);
    max_eff = std::max(max_eff, eff);
    const double sram_red = 1.0 - sparse.sram_pj / dense.sram_pj;
    const double comb_red = 1.0 - sparse.comb_pj / dense.comb_pj;
    min_sram_red = std::min(min_sram_red, sram_red);
    max_sram_red = std::max(max_sram_red, sram_red);
    min_comb_red = std::min(min_comb_red, comb_red);
    max_comb_red = std::max(max_comb_red, comb_red);
  }
  std::printf("%s\n", table.to_string().c_str());

  const double geomean =
      std::exp(log_eff_sum / static_cast<double>(paper_count));
  std::printf("energy efficiency: %.2fx-%.2fx, geomean %.2fx "
              "(paper: 1.5x-2.8x, avg 2.2x)\n",
              min_eff, max_eff, geomean);
  std::printf("SRAM energy reduction: %.0f%%-%.0f%% (paper: 30%%-59%%)\n",
              min_sram_red * 100.0, max_sram_red * 100.0);
  std::printf("Comb energy reduction: %.0f%%-%.0f%% (paper: 53%%-88%%)\n",
              min_comb_red * 100.0, max_comb_red * 100.0);

  core::export_json(session.results(), "fig9_energy.json");
  std::printf("per-backend JSON (with stage breakdowns) written to "
              "fig9_energy.json.\n");
  if (session.result_store()) {
    const serve::StoreStats s = session.result_store()->stats();
    std::printf(
        "result store (%s): %zu hits / %zu lookups, %zu entries\n",
        store_dir.c_str(), static_cast<std::size_t>(s.hits),
        static_cast<std::size_t>(s.lookups()),
        static_cast<std::size_t>(s.entries));
  }
  return 0;
}
