// Ablation A4: minibatch size.
//
// The paper reports per-sample latency/energy; this bench verifies the
// per-sample metrics are stable across batch sizes (more samples per
// iteration = more tasks per layer stage, which if anything improves load
// balance), i.e. the Fig. 8/9 numbers are not an artefact of batch = 1.
//
// The sweep is a dse::Explorer grid over the batch axis with the sparse
// axis supplying the dense twin — one enumeration, one shared Session
// pool, one compiled program per (batch, profile).
#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

int main() {
  const auto net = workload::resnet18_cifar();

  core::Session session;
  dse::Explorer explorer(session);

  dse::SpaceSpec space;
  space.batch = {1, 2, 4, 8, 16};
  space.sparse = {true, false};
  space.scenarios = {dse::Scenario::calibrated(
      "table2-p90",
      workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9))};
  const auto result = explorer.explore(space, {net});

  std::printf(
      "Batch-size ablation on ResNet-18/CIFAR: per-sample latency and\n"
      "speedup vs minibatch size (168 PEs, 386 KB).\n\n");
  TextTable table({"batch", "SparseTrain ms/sample", "baseline ms/sample",
                   "speedup", "PE utilisation"});
  for (const std::size_t batch : space.batch) {
    const auto* sparse = result.find([&](const dse::DesignPoint& p) {
      return p.arch.sparse && p.batch == batch;
    });
    const auto* dense = result.find([&](const dse::DesignPoint& p) {
      return !p.arch.sparse && p.batch == batch;
    });
    const auto& rs = sparse->evals[0].report;
    const auto& rd = dense->evals[0].report;
    const double per_sample = static_cast<double>(batch);
    table.add_row(
        {std::to_string(batch), TextTable::num(rs.latency_ms() / per_sample, 3),
         TextTable::num(rd.latency_ms() / per_sample, 3),
         TextTable::times(static_cast<double>(rd.total_cycles) /
                          static_cast<double>(rs.total_cycles)),
         TextTable::pct(rs.utilization(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: per-sample latency flat or slightly improving with batch\n"
      "(better load balance from more concurrent tasks); speedup stable.\n");
  return 0;
}
