// Ablation A4: minibatch size.
//
// The paper reports per-sample latency/energy; this bench verifies the
// per-sample metrics are stable across batch sizes (more samples per
// iteration = more tasks per layer stage, which if anything improves load
// balance), i.e. the Fig. 8/9 numbers are not an artefact of batch = 1.
//
// Each batch size is one job with a per-job batch override; all five jobs
// evaluate in parallel on the Session pool.
#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

int main() {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::calibrated(
      net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9),
      "table2-p90");

  core::Session session;
  const std::vector<std::size_t> batches = {1, 2, 4, 8, 16};
  std::vector<core::Session::JobHandle> jobs;
  for (const std::size_t batch : batches) {
    core::Session::JobOptions opts;
    opts.batch = batch;
    jobs.push_back(session.submit(
        net, profile,
        {core::Session::kSparseBackend, core::Session::kDenseBackend}, opts));
  }

  std::printf(
      "Batch-size ablation on ResNet-18/CIFAR: per-sample latency and\n"
      "speedup vs minibatch size (168 PEs, 386 KB).\n\n");
  TextTable table({"batch", "SparseTrain ms/sample", "baseline ms/sample",
                   "speedup", "PE utilisation"});
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const core::EvalResult& r = session.wait(jobs[i]);
    const auto& rs = r.report(core::Session::kSparseBackend);
    const auto& rd = r.report(core::Session::kDenseBackend);
    const double per_sample = static_cast<double>(batches[i]);
    table.add_row(
        {std::to_string(batches[i]),
         TextTable::num(rs.latency_ms() / per_sample, 3),
         TextTable::num(rd.latency_ms() / per_sample, 3),
         TextTable::times(r.cycle_ratio(core::Session::kDenseBackend,
                                        core::Session::kSparseBackend)),
         TextTable::pct(rs.utilization(), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: per-sample latency flat or slightly improving with batch\n"
      "(better load balance from more concurrent tasks); speedup stable.\n");
  return 0;
}
