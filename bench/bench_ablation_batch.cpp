// Ablation A4: minibatch size.
//
// The paper reports per-sample latency/energy; this bench verifies the
// per-sample metrics are stable across batch sizes (more samples per
// iteration = more tasks per layer stage, which if anything improves load
// balance), i.e. the Fig. 8/9 numbers are not an artefact of batch = 1.
#include <cstdio>

#include "baseline/eyeriss_like.hpp"
#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

using namespace sparsetrain;

int main() {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::calibrated(
      net, workload::paper_act_density(workload::ModelFamily::ResNet),
      workload::paper_table2_do_density(workload::ModelFamily::ResNet, false,
                                        0.9),
      "table2-p90");
  const auto dense_profile = workload::SparsityProfile::dense(net);

  std::printf(
      "Batch-size ablation on ResNet-18/CIFAR: per-sample latency and\n"
      "speedup vs minibatch size (168 PEs, 386 KB).\n\n");
  TextTable table({"batch", "SparseTrain ms/sample", "baseline ms/sample",
                   "speedup", "PE utilisation"});
  for (std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    compiler::CompileOptions opts;
    opts.batch = batch;
    const auto sparse_prog = compiler::compile(net, profile, opts);
    const auto dense_prog = compiler::compile(net, dense_profile, opts);
    const sim::Accelerator sparse_accel{sim::ArchConfig{}};
    const baseline::EyerissLikeBaseline dense_accel;
    const auto rs = sparse_accel.run(sparse_prog, net, profile);
    const auto rd = dense_accel.run(dense_prog, net, dense_profile);
    const double per_sample = static_cast<double>(batch);
    table.add_row(
        {std::to_string(batch),
         TextTable::num(rs.latency_ms() / per_sample, 3),
         TextTable::num(rd.latency_ms() / per_sample, 3),
         TextTable::times(static_cast<double>(rd.total_cycles) /
                          static_cast<double>(rs.total_cycles)),
         TextTable::pct(rs.utilization(168), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expected: per-sample latency flat or slightly improving with batch\n"
      "(better load balance from more concurrent tasks); speedup stable.\n");
  return 0;
}
