// Exact-engine throughput benchmark — the repo's perf trajectory.
//
// For a set of workload-zoo conv layers this driver times the three
// training stages (Forward / GTA-with-mask / GTW) on the tensor-driven
// exact engine, single-threaded, on deterministically synthesised
// operands, and reports rows/s (row ops per second) and MACs/s. A second
// pass re-runs each stage with a worker pool to record the parallel
// scaling factor; with --scaling the pass becomes a {1, 2, 4, 8}-worker
// sweep and each entry carries its whole speedup curve. Results go to
// stdout as a table and to a JSON file (default BENCH_exact_engine.json —
// schema sparsetrain.bench_exact_throughput/v3, documented in the
// README's Performance section) so CI can archive the trajectory run
// over run and gate on the 4-worker speedup.
//
// The JSON records which row-op kernel path the binary was built with
// (`"simd"`, from dataflow::simd_mode()). --baseline PATH merges a prior
// run of the *other* build into each entry (`baseline` object with that
// run's seconds and the resulting speedup), which is how the committed
// snapshot carries both the scalar and the SIMD measurement of one host:
// bench the scalar build first, then the SIMD build with
// --baseline scalar.json. The simulated fields must agree exactly with
// the baseline's — the driver fails loudly if they don't, because a
// simulated-field mismatch between kernel paths is a correctness bug,
// not a perf regression.
//
// Layer selection: every zoo workload contributes its median-MACs conv
// layer, and AlexNet/ImageNet conv2 (the acceptance geometry tracked
// since PR 3) is always included. --full benches every conv layer of
// every zoo workload; --quick benches only the CIFAR AlexNet entry (the
// CI perf-smoke subset).
//
// The simulated numbers (cycles, MACs, row ops) are pure functions of
// the inputs — only the seconds/throughput fields vary run to run (and
// with the host: `hw_concurrency` records how many cores the scaling
// columns could possibly use).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <string>
#include <vector>

#include "dataflow/conv_decompose.hpp"
#include "dataflow/row_ops.hpp"
#include "serve/json.hpp"
#include "sim/exact_engine.hpp"
#include "util/args.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/layer_config.hpp"

using namespace sparsetrain;

namespace {

// The operating point every entry is synthesised at (recorded in the
// JSON): moderately sparse activations, 90%-pruned gradients, a typical
// ReLU mask.
constexpr double kInputDensity = 0.35;
constexpr double kGradDensity = 0.10;
constexpr double kMaskDensity = 0.5;

/// The --scaling sweep and the worker count the headline
/// `parallel_speedup` field is defined at.
constexpr std::size_t kSweepWorkers[] = {1, 2, 4, 8};
constexpr std::size_t kHeadlineWorkers = 4;

struct BenchCase {
  std::string workload;
  const workload::LayerConfig* layer = nullptr;
};

struct ScalePoint {
  std::size_t workers = 0;
  double seconds = 0.0;
  double speedup = 0.0;
};

struct StageRun {
  std::string stage;
  std::size_t tasks = 0;
  std::size_t row_ops = 0;
  std::size_t macs = 0;
  std::size_t cycles = 0;
  double seconds_serial = 0.0;
  double rows_per_s = 0.0;
  double macs_per_s = 0.0;
  double seconds_parallel = 0.0;
  double parallel_speedup = 0.0;
  std::vector<ScalePoint> scaling;
};

/// Median-forward-MACs conv layer of a network (FC layers excluded: the
/// FC dot-product stage has its own cost model and tiny spatial rows).
const workload::LayerConfig* median_conv_layer(
    const workload::NetworkConfig& net) {
  std::vector<const workload::LayerConfig*> convs;
  for (const auto& l : net.layers)
    if (!l.is_fc) convs.push_back(&l);
  if (convs.empty()) return nullptr;
  std::sort(convs.begin(), convs.end(),
            [](const auto* a, const auto* b) {
              return a->forward_macs() < b->forward_macs();
            });
  return convs[convs.size() / 2];
}

/// Times `fn` (which returns an ExactStageResult) until it has run for
/// at least `min_time` seconds, returning seconds per run.
template <typename Fn>
double time_stage(const Fn& fn, double min_time, int* reps_out = nullptr) {
  WallTimer timer;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (timer.seconds() < min_time);
  if (reps_out != nullptr) *reps_out = reps;
  return timer.seconds() / reps;
}

void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// One entry of a prior run loaded via --baseline: the timing to compare
/// against plus the simulated fields, which must match exactly.
struct BaselineEntry {
  double seconds_serial = 0.0;
  std::size_t tasks = 0;
  std::size_t row_ops = 0;
  std::size_t macs = 0;
  std::size_t cycles = 0;
};

struct Baseline {
  std::string simd = "unknown";
  std::map<std::string, BaselineEntry> entries;  // workload|layer|stage
};

std::string baseline_key(const std::string& workload,
                         const std::string& layer, const std::string& stage) {
  return workload + "|" + layer + "|" + stage;
}

bool load_baseline(const std::string& path, Baseline& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const serve::JsonValue doc = serve::parse_json(buf.str());
    out.simd = doc.get_string("simd", "unknown");
    const serve::JsonValue* entries = doc.find("entries");
    if (entries == nullptr) return false;
    for (const serve::JsonValue& e : entries->as_array()) {
      BaselineEntry be;
      be.seconds_serial = e.get_number("seconds_serial", 0.0);
      be.tasks = static_cast<std::size_t>(e.get_number("tasks", 0.0));
      be.row_ops = static_cast<std::size_t>(e.get_number("row_ops", 0.0));
      be.macs = static_cast<std::size_t>(e.get_number("macs", 0.0));
      be.cycles = static_cast<std::size_t>(e.get_number("cycles", 0.0));
      out.entries[baseline_key(e.get_string("workload", ""),
                               e.get_string("layer", ""),
                               e.get_string("stage", ""))] = be;
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "baseline %s: %s\n", path.c_str(), ex.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(
      argc, argv,
      {{"out", "output JSON path (default BENCH_exact_engine.json)"},
       {"min-time", "minimum seconds per timed point (default 0.3)"},
       {"quick", "CIFAR AlexNet entry only (the CI subset)", false},
       {"full", "every conv layer of every zoo workload", false},
       {"scaling", "sweep workers {1,2,4,8} per entry", false},
       {"workers", "parallel-pass worker count (0 = hardware)"},
       {"baseline",
        "prior run's JSON to merge (records its timings per entry; "
        "simulated fields must match exactly)"}});
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }
  const std::string out_path = args.get("out", "BENCH_exact_engine.json");
  const double min_time = args.get("min-time", 0.3);
  const bool quick = args.has("quick");
  const bool full = args.has("full");
  const bool scaling = args.has("scaling");
  const auto workers = static_cast<std::size_t>(args.get("workers", 0L));
  const std::string baseline_path = args.get("baseline", "");
  Baseline baseline;
  const bool have_baseline = !baseline_path.empty();
  if (have_baseline && !load_baseline(baseline_path, baseline)) return 1;

  // ---- select the bench cases
  std::vector<BenchCase> cases;
  const auto add_case = [&](const std::string& wl,
                            const workload::LayerConfig* l) {
    if (l == nullptr) return;
    for (const auto& c : cases)
      if (c.workload == wl && c.layer->name == l->name) return;
    cases.push_back({wl, l});
  };
  if (quick) {
    add_case("AlexNet/CIFAR",
             median_conv_layer(workload::find_workload("AlexNet/CIFAR").net));
  } else {
    // The tracked acceptance geometry first, then one representative
    // layer per zoo workload (or all conv layers with --full).
    add_case("AlexNet/ImageNet",
             &workload::find_layer("AlexNet/ImageNet", "conv2"));
    for (const auto& entry : workload::workload_zoo()) {
      if (full) {
        for (const auto& l : entry.net.layers)
          if (!l.is_fc) add_case(entry.net.name, &l);
      } else {
        add_case(entry.net.name, median_conv_layer(entry.net));
      }
    }
  }

  sim::ArchConfig cfg;
  const sim::ExactEngine serial(cfg);

  // The parallel engines: the --scaling sweep set, or the single
  // --workers pass. One long-lived engine per worker count so pool
  // threads and arenas are warm across every case.
  std::vector<std::size_t> sweep;
  if (scaling) {
    sweep.assign(std::begin(kSweepWorkers), std::end(kSweepWorkers));
  } else {
    sweep.push_back(workers);  // 0 = hardware concurrency
  }
  std::vector<std::unique_ptr<sim::ExactEngine>> engines;
  for (const std::size_t w : sweep) {
    sim::ExactOptions popts;
    popts.workers = w;
    engines.push_back(std::make_unique<sim::ExactEngine>(cfg, popts));
  }

  const std::size_t hw = std::thread::hardware_concurrency();
  std::printf("exact-engine throughput, single-thread (parallel pass: %s; "
              "%zu hardware threads)\n\n",
              scaling ? "1/2/4/8-worker sweep"
                      : (workers == 0 ? "hw workers" : "fixed workers"),
              hw);
  TextTable table({"workload", "layer", "stage", "row ops", "s/run",
                   "Mrows/s", "MMACs/s", "par x"});

  std::string json;
  json += "{\n";
  json += "  \"schema\": \"sparsetrain.bench_exact_throughput/v3\",\n";
  json += "  \"simd\": \"" + std::string(dataflow::simd_mode()) + "\",\n";
  if (have_baseline) {
    json += "  \"baseline_simd\": \"" + baseline.simd + "\",\n";
  }
  json += "  \"densities\": {\"input_acts\": " + std::to_string(kInputDensity) +
          ", \"output_grads\": " + std::to_string(kGradDensity) +
          ", \"mask\": " + std::to_string(kMaskDensity) + "},\n";
  json += "  \"arch\": {\"pe_groups\": " + std::to_string(cfg.pe_groups) +
          ", \"pes_per_group\": " + std::to_string(cfg.pes_per_group) + "},\n";
  json += "  \"hw_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"entries\": [\n";
  bool first_entry = true;

  for (const auto& bc : cases) {
    const workload::LayerConfig& l = *bc.layer;
    const dataflow::ConvGeometry geo = dataflow::layer_geometry(l);

    // Deterministic operands: the stream depends only on the names.
    Rng rng(mix64(fnv1a(bc.workload), fnv1a(l.name)));
    Tensor input(Shape{1, l.in_channels, l.in_h, l.in_w});
    input.fill_sparse_normal(rng, kInputDensity);
    Tensor grad(Shape{1, l.out_channels, l.out_h(), l.out_w()});
    grad.fill_sparse_normal(rng, kGradDensity);
    Tensor mask(input.shape());
    mask.fill_sparse_normal(rng, kMaskDensity);
    for (float& v : mask.flat())
      if (v != 0.0f) v = 1.0f;

    // One arena per operand: compress_tensor's layout is byte-identical
    // for any worker count, so every engine shares the same rows.
    const auto in_rows = serial.compress(input);
    const auto go_rows = serial.compress(grad);
    const Shape in_shape = input.shape();
    const Shape out_shape = grad.shape();

    std::vector<StageRun> runs;
    const auto bench_stage = [&](const char* name, const auto& run_on) {
      StageRun sr;
      sr.stage = name;
      const sim::ExactStageResult r = run_on(serial);
      sr.tasks = r.tasks;
      sr.row_ops = r.row_ops;
      sr.macs = r.activity.macs;
      sr.cycles = r.cycles;
      sr.seconds_serial =
          time_stage([&] { return run_on(serial); }, min_time);
      sr.rows_per_s = static_cast<double>(sr.row_ops) / sr.seconds_serial;
      sr.macs_per_s = static_cast<double>(sr.macs) / sr.seconds_serial;
      for (std::size_t i = 0; i < engines.size(); ++i) {
        ScalePoint p;
        p.workers = sweep[i] == 0 ? hw : sweep[i];
        p.seconds =
            time_stage([&] { return run_on(*engines[i]); }, min_time);
        p.speedup = p.seconds > 0.0 ? sr.seconds_serial / p.seconds : 0.0;
        sr.scaling.push_back(p);
      }
      // The headline speedup: the 4-worker point of the sweep, or the
      // single parallel pass when no sweep ran.
      const ScalePoint* headline = &sr.scaling.back();
      for (const ScalePoint& p : sr.scaling)
        if (p.workers == kHeadlineWorkers) headline = &p;
      sr.seconds_parallel = headline->seconds;
      sr.parallel_speedup = headline->speedup;
      runs.push_back(sr);
    };

    bench_stage("forward", [&](const sim::ExactEngine& e) {
      return e.run_forward(in_rows, in_shape, geo);
    });
    bench_stage("gta", [&](const sim::ExactEngine& e) {
      return e.run_gta(go_rows, out_shape, in_shape, &mask, geo);
    });
    bench_stage("gtw", [&](const sim::ExactEngine& e) {
      return e.run_gtw(go_rows, out_shape, in_rows, in_shape, geo);
    });

    for (const StageRun& sr : runs) {
      table.add_row(
          {bc.workload, l.name, sr.stage, std::to_string(sr.row_ops),
           TextTable::num(sr.seconds_serial, 4),
           TextTable::num(sr.rows_per_s / 1e6, 2),
           TextTable::num(sr.macs_per_s / 1e6, 1),
           TextTable::num(sr.parallel_speedup, 2)});

      if (!first_entry) json += ",\n";
      first_entry = false;
      std::string wl_escaped, layer_escaped;
      json_escape(wl_escaped, bc.workload);
      json_escape(layer_escaped, l.name);
      json += "    {\"workload\": \"" + wl_escaped + "\", \"layer\": \"" +
              layer_escaped + "\", \"stage\": \"" + sr.stage + "\"";
      json += ", \"tasks\": " + std::to_string(sr.tasks);
      json += ", \"row_ops\": " + std::to_string(sr.row_ops);
      json += ", \"macs\": " + std::to_string(sr.macs);
      json += ", \"cycles\": " + std::to_string(sr.cycles);
      json += ", \"seconds_serial\": " + std::to_string(sr.seconds_serial);
      json += ", \"rows_per_s\": " + std::to_string(sr.rows_per_s);
      json += ", \"macs_per_s\": " + std::to_string(sr.macs_per_s);
      json += ", \"seconds_parallel\": " + std::to_string(sr.seconds_parallel);
      json +=
          ", \"parallel_speedup\": " + std::to_string(sr.parallel_speedup);
      json += ", \"scaling\": [";
      for (std::size_t i = 0; i < sr.scaling.size(); ++i) {
        const ScalePoint& p = sr.scaling[i];
        if (i != 0) json += ", ";
        json += "{\"workers\": " + std::to_string(p.workers) +
                ", \"seconds\": " + std::to_string(p.seconds) +
                ", \"speedup\": " + std::to_string(p.speedup) + "}";
      }
      json += "]";
      if (have_baseline) {
        const auto it = baseline.entries.find(
            baseline_key(bc.workload, l.name, sr.stage));
        if (it != baseline.entries.end()) {
          const BaselineEntry& be = it->second;
          // Kernel-path equivalence gate: the simulated fields are pure
          // functions of the inputs, so any divergence from the baseline
          // build is a bug, not noise.
          if (be.tasks != sr.tasks || be.row_ops != sr.row_ops ||
              be.macs != sr.macs || be.cycles != sr.cycles) {
            std::fprintf(stderr,
                         "FATAL: simulated fields diverge from baseline "
                         "for %s/%s %s\n",
                         bc.workload.c_str(), l.name.c_str(),
                         sr.stage.c_str());
            return 1;
          }
          const double speedup = sr.seconds_serial > 0.0
                                     ? be.seconds_serial / sr.seconds_serial
                                     : 0.0;
          json += ", \"baseline\": {\"simd\": \"" + baseline.simd +
                  "\", \"seconds_serial\": " +
                  std::to_string(be.seconds_serial) +
                  ", \"speedup\": " + std::to_string(speedup) + "}";
        }
      }
      json += "}";
    }
  }
  json += "\n  ]\n}\n";

  std::printf("%s", table.to_string().c_str());

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%zu entries)\n", out_path.c_str(),
              cases.size() * 3);
  return 0;
}
