// DSE throughput benchmark: Pareto search over the architecture space.
//
// Where bench_exact_throughput measures the engine from below (row ops
// per second), this driver measures the evaluation *service* from above:
// a grid (or seeded-random / successive-halving) exploration of a few
// hundred SparseTrain variants — PE array geometry × buffer capacity ×
// clock — across multiple zoo workloads at the paper's p=90% pruning
// operating point, through dse::Explorer batching everything onto one
// core::Session. The ProgramCache makes the sweep cheap (every
// architecture sharing a (net, profile) shares one compile; the hit-rate
// is reported and CI-gated), and the result is the latency / on-chip
// energy / area-proxy Pareto frontier.
//
// Output: a table of the frontier, a frontier CSV, and a JSON file
// (default BENCH_dse_pareto.json, schema sparsetrain.bench_dse/v1) with
// points evaluated, points/sec, frontier size and cache hit-rate — CI
// runs `--quick` and fails on an empty frontier or a hit-rate below 50%.
#include <cstdio>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "dse/export.hpp"
#include "serve/store.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/layer_config.hpp"

using namespace sparsetrain;

namespace {

std::string num_json(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

void append_axis(std::string& json, const char* name,
                 const std::vector<std::size_t>& values) {
  json += std::string("  \"") + name + "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) json += ", ";
    json += std::to_string(values[i]);
  }
  json += "],\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(
      argc, argv,
      {{"quick", "small space + one workload (the CI subset)", false},
       {"out", "output JSON path (default BENCH_dse_pareto.json)"},
       {"csv", "frontier CSV path (default dse_pareto_frontier.csv)"},
       {"strategy", "grid | random | halving (default grid)"},
       {"samples", "random strategy: points to draw (default 64)"},
       {"seed", "random strategy seed (default 1)"},
       {"workers", "session pool workers (0 = hardware)"},
       {"store", "persistent result-store directory (reused across runs)"},
       {"max-store-bytes", "store size cap in bytes (0 = unbounded)"},
       {"exact-validate",
        "promote this many frontier points to exact runs (default 0)"}});
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }
  const bool quick = args.has("quick");
  const std::string out_path = args.get("out", "BENCH_dse_pareto.json");
  const std::string csv_path = args.get("csv", "dse_pareto_frontier.csv");
  const std::string strategy_str = args.get("strategy", std::string("grid"));

  // ---- the space: PE array geometry × buffer × clock at the paper's
  // p=90% pruning scenario. The full grid is 252 architectures; --quick
  // is 16 (CI smoke). All axes are plain data — edit freely.
  dse::SpaceSpec space;
  if (quick) {
    space.pe_groups = {14, 28, 56, 112};
    space.pes_per_group = {2, 3};
    space.buffer_bytes = {192 * 1024, 386 * 1024};
    space.clock_ghz = {0.8};
  } else {
    space.pe_groups = {14, 28, 42, 56, 84, 112, 168};
    space.pes_per_group = {2, 3, 4};
    space.buffer_bytes = {96 * 1024, 192 * 1024, 386 * 1024, 772 * 1024};
    space.clock_ghz = {0.6, 0.8, 1.0};
  }
  space.scenarios = {dse::Scenario::pruned(0.9)};

  std::vector<workload::NetworkConfig> workloads;
  workloads.push_back(workload::find_workload("AlexNet/CIFAR").net);
  if (!quick) {
    // An ImageNet-scale second workload so the buffer axis has a real
    // DRAM-refetch consequence, not just an area cost.
    workloads.push_back(workload::find_workload("ResNet-18/ImageNet").net);
  }

  dse::ExploreOptions opts;
  if (strategy_str == "grid") {
    opts.strategy = dse::Strategy::Grid;
  } else if (strategy_str == "random") {
    opts.strategy = dse::Strategy::Random;
    opts.samples = static_cast<std::size_t>(args.get("samples", 64L));
  } else if (strategy_str == "halving") {
    opts.strategy = dse::Strategy::SuccessiveHalving;
  } else {
    std::fprintf(stderr, "unknown --strategy '%s' (grid|random|halving)\n",
                 strategy_str.c_str());
    return 1;
  }
  if (opts.strategy != dse::Strategy::Random &&
      (args.has("samples") || args.has("seed"))) {
    std::fprintf(stderr,
                 "--samples/--seed only apply to --strategy random\n");
    return 1;
  }
  opts.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  opts.exact_validate =
      static_cast<std::size_t>(args.get("exact-validate", 0L));

  core::SessionConfig scfg;
  scfg.workers = static_cast<std::size_t>(args.get("workers", 0L));
  const std::string store_dir = args.get("store", std::string());
  if (!store_dir.empty()) {
    serve::StoreOptions sopts;
    sopts.max_bytes =
        static_cast<std::uint64_t>(args.get("max-store-bytes", 0L));
    scfg.store = std::make_shared<serve::ResultStore>(store_dir, sopts);
  }
  core::Session session(scfg);
  dse::Explorer explorer(session);

  std::printf(
      "DSE Pareto search: %zu-point %s over %zu architectures x %zu "
      "scenario(s), %zu workload(s)\n\n",
      space.size(), dse::strategy_name(opts.strategy), space.arch_points(),
      space.scenarios.size(), workloads.size());

  WallTimer timer;
  const dse::ExploreResult result = explorer.explore(space, workloads, opts);
  const double seconds = timer.seconds();

  // ---- report
  TextTable table({"backend", "PEs", "buffer KB", "GHz", "latency ms",
                   "on-chip uJ", "area"});
  for (const std::size_t i : result.frontier) {
    const dse::PointResult& p = result.points[i];
    table.add_row({p.point.backend_name(),
                   std::to_string(p.point.arch.pe_groups *
                                  p.point.arch.pes_per_group),
                   std::to_string(p.point.arch.buffer_bytes / 1024),
                   TextTable::num(p.point.arch.clock_ghz, 1),
                   TextTable::num(p.objectives.latency_ms, 3),
                   TextTable::num(p.objectives.energy_uj, 1),
                   TextTable::num(p.objectives.area, 0)});
  }
  std::printf("Pareto frontier (%zu of %zu candidates):\n%s\n",
              result.frontier.size(), result.points.size(),
              table.to_string().c_str());

  const double hit_rate = result.cache_hit_rate();
  const double points_per_sec =
      seconds > 0.0 ? static_cast<double>(result.points.size()) / seconds
                    : 0.0;
  const double evals_per_sec =
      seconds > 0.0 ? static_cast<double>(result.evaluations) / seconds : 0.0;
  std::printf(
      "%zu points (%zu backend runs) in %.2f s — %.1f points/s, %.1f "
      "evals/s\nprogram cache: %zu compiles for %zu lookups (hit rate "
      "%.1f%%)\n",
      result.points.size(), result.evaluations, seconds, points_per_sec,
      evals_per_sec, result.cache.misses, result.cache.lookups(),
      hit_rate * 100.0);
  if (result.store_attached) {
    std::printf(
        "result store (%s): %zu hits / %zu lookups (hit rate %.1f%%), %zu "
        "simulations, %zu entries (%zu bytes)\n",
        store_dir.c_str(), static_cast<std::size_t>(result.store.hits),
        static_cast<std::size_t>(result.store.lookups()),
        result.store_hit_rate() * 100.0, result.simulations,
        static_cast<std::size_t>(result.store.entries),
        static_cast<std::size_t>(result.store.bytes));
  }

  dse::export_frontier_csv(result, csv_path);
  std::printf("frontier CSV written to %s\n", csv_path.c_str());

  // ---- JSON (schema sparsetrain.bench_dse/v1)
  std::string json;
  json += "{\n  \"schema\": \"sparsetrain.bench_dse/v1\",\n";
  json += std::string("  \"strategy\": \"") +
          dse::strategy_name(opts.strategy) + "\",\n";
  json += "  \"seed\": " + std::to_string(opts.seed) + ",\n";
  json += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  json += "  \"workloads\": [";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (i) json += ", ";
    json += "\"" + workloads[i].name + "\"";
  }
  json += "],\n";
  append_axis(json, "pe_groups", space.pe_groups);
  append_axis(json, "pes_per_group", space.pes_per_group);
  append_axis(json, "buffer_bytes", space.buffer_bytes);
  json += "  \"clock_ghz\": [";
  for (std::size_t i = 0; i < space.clock_ghz.size(); ++i) {
    if (i) json += ", ";
    json += num_json(space.clock_ghz[i]);
  }
  json += "],\n";
  json += "  \"space_points\": " + std::to_string(space.size()) + ",\n";
  json += "  \"arch_points\": " + std::to_string(space.arch_points()) + ",\n";
  json +=
      "  \"points_evaluated\": " + std::to_string(result.points.size()) +
      ",\n";
  json += "  \"evaluations\": " + std::to_string(result.evaluations) + ",\n";
  json += "  \"seconds\": " + num_json(seconds) + ",\n";
  json += "  \"points_per_sec\": " + num_json(points_per_sec) + ",\n";
  json += "  \"evals_per_sec\": " + num_json(evals_per_sec) + ",\n";
  json += "  \"frontier_size\": " + std::to_string(result.frontier.size()) +
          ",\n";
  json += "  \"cache\": {\"hits\": " + std::to_string(result.cache.hits) +
          ", \"misses\": " + std::to_string(result.cache.misses) +
          ", \"hit_rate\": " + num_json(hit_rate) + "},\n";
  json += std::string("  \"store\": {\"attached\": ") +
          (result.store_attached ? "true" : "false") +
          ", \"hits\": " + std::to_string(result.store.hits) +
          ", \"misses\": " + std::to_string(result.store.misses) +
          ", \"hit_rate\": " + num_json(result.store_hit_rate()) +
          ", \"simulations\": " + std::to_string(result.simulations) +
          "},\n";
  json += "  \"frontier\": [\n";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const dse::PointResult& p = result.points[result.frontier[i]];
    json += "    {\"point\": " + std::to_string(p.point.index) +
            ", \"backend\": \"" + p.point.backend_name() +
            "\", \"pe_groups\": " + std::to_string(p.point.arch.pe_groups) +
            ", \"pes_per_group\": " +
            std::to_string(p.point.arch.pes_per_group) +
            ", \"buffer_bytes\": " +
            std::to_string(p.point.arch.buffer_bytes) + ", \"clock_ghz\": " +
            num_json(p.point.arch.clock_ghz) + ", \"latency_ms\": " +
            num_json(p.objectives.latency_ms) + ", \"energy_uj\": " +
            num_json(p.objectives.energy_uj) + ", \"area\": " +
            num_json(p.objectives.area) + "}";
    json += (i + 1 < result.frontier.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (result.frontier.empty()) {
    std::fprintf(stderr, "ERROR: empty Pareto frontier\n");
    return 1;
  }
  return 0;
}
