// Reproduces the §VI-B convergence study: training-loss curves with and
// without gradient pruning. The paper's claim: with reasonable p the
// pruned run has the same convergence behaviour as the dense baseline.
#include <cstdio>
#include <vector>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sparsetrain;

namespace {

std::vector<double> loss_curve(double p, std::size_t epochs) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 6;
  dcfg.samples = 360;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise = 0.3f;
  dcfg.seed = 33;
  const data::SyntheticDataset train(dcfg);

  nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                            dcfg.classes};
  auto net = nn::models::resnet_s(mi, 1, 6);
  Rng rng(34);
  nn::kaiming_init(*net, rng);

  pruning::AttachedPruners attached;
  if (p > 0.0) {
    pruning::PruningConfig pcfg;
    pcfg.target_sparsity = p;
    pcfg.fifo_depth = 2;
    attached = pruning::attach_gradient_pruners(*net, pcfg, rng);
  }

  nn::TrainConfig tcfg;
  tcfg.batch_size = 18;
  tcfg.epochs = epochs;
  tcfg.sgd.learning_rate = 0.04f;
  nn::Trainer trainer(*net, tcfg);
  const nn::TrainResult result = trainer.fit(train, train);

  std::vector<double> losses;
  losses.reserve(result.epochs.size());
  for (const auto& e : result.epochs) losses.push_back(e.train_loss);
  return losses;
}

}  // namespace

int main() {
  std::printf(
      "Convergence study (paper SVI-B): training loss per epoch,\n"
      "ResNet-S on synthetic data, baseline vs pruned runs.\n\n");

  const std::size_t epochs = 10;
  const double rates[] = {0.0, 0.7, 0.9, 0.99};
  std::vector<std::vector<double>> curves;
  for (double p : rates) curves.push_back(loss_curve(p, epochs));

  TextTable table({"epoch", "baseline", "p=70%", "p=90%", "p=99%"});
  CsvWriter csv("convergence.csv",
                {"epoch", "baseline", "p70", "p90", "p99"});
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    std::vector<std::string> csv_row = {std::to_string(e + 1)};
    for (std::size_t c = 0; c < curves.size(); ++c) {
      row.push_back(TextTable::num(curves[c][e], 4));
      csv_row.push_back(TextTable::num(curves[c][e], 6));
    }
    table.add_row(row);
    csv.add_row(csv_row);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Simple quantitative check printed for the record: final-loss gap.
  for (std::size_t c = 1; c < curves.size(); ++c) {
    std::printf("final-loss gap vs baseline at p=%s: %+.4f\n",
                c == 1 ? "70%" : (c == 2 ? "90%" : "99%"),
                curves[c].back() - curves[0].back());
  }
  std::printf(
      "\nExpected (paper): pruned curves track the baseline closely for\n"
      "reasonable p; only aggressive pruning slows convergence slightly.\n"
      "CSV written to convergence.csv.\n");
  return 0;
}
