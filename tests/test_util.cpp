// Unit tests for the utility substrate: RNG, statistics, tables, CSV.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sparsetrain {
namespace {

TEST(Require, ThrowsWithContext) {
  try {
    ST_REQUIRE(1 == 2, "message text");
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("message text"), std::string::npos);
  }
}

TEST(Require, PassesQuietly) { EXPECT_NO_THROW(ST_REQUIRE(2 > 1, "ok")); }

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), ContractError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParams) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 0.5));
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // Child stream should not replay the parent stream.
  Rng parent_copy(5);
  (void)parent_copy();  // advance same as split() consumed
  EXPECT_NE(child(), parent_copy());
}

TEST(Stats, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-9);
}

TEST(Stats, InverseNormalCdfRoundTrips) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(Stats, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(inverse_normal_cdf(0.84134474606854293), 1.0, 1e-7);
}

TEST(Stats, InverseNormalCdfRejectsOutOfDomain) {
  EXPECT_THROW(inverse_normal_cdf(0.0), ContractError);
  EXPECT_THROW(inverse_normal_cdf(1.0), ContractError);
  EXPECT_THROW(inverse_normal_cdf(-0.5), ContractError);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Stats, RunningStatsMergeEqualsBulk) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(Stats, MeanAbsAndDensity) {
  const std::vector<float> xs = {0.0f, -2.0f, 0.0f, 4.0f};
  EXPECT_DOUBLE_EQ(mean_abs(xs), 1.5);
  EXPECT_DOUBLE_EQ(zero_fraction(xs), 0.5);
  EXPECT_DOUBLE_EQ(density(xs), 0.5);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs = {1.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
}

TEST(Stats, Quantile) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"model", "speedup"});
  t.add_row({"AlexNet", "2.70x"});
  t.add_row({"ResNet-18", "2.10x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("ResNet-18"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::num(2.718, 2), "2.72");
  EXPECT_EQ(TextTable::times(2.7), "2.70x");
  EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
}

TEST(Csv, WritesQuotedValues) {
  const std::string path = "test_util_tmp.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.add_row({"plain", "1"});
    csv.add_row({"with,comma", "2"});
    csv.add_row({"with\"quote", "3"});
    EXPECT_TRUE(csv.ok());
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("name,value"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sparsetrain
