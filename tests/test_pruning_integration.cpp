// Integration tests: pruners attached to real networks during training —
// correct positions, sparsity actually produced, accuracy preserved.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling_misc.hpp"
#include "nn/relu.hpp"
#include "nn/sequential.hpp"
#include "nn/init.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/attach.hpp"
#include "pruning/sparsity_meter.hpp"
#include "util/rng.hpp"

namespace sparsetrain::pruning {
namespace {

using nn::models::ModelInput;

TEST(Attach, AlexNetUsesInputGradPosition) {
  // AlexNet has no BN → every attached pruner sits at the CONV-ReLU (dI)
  // position. Verify via the structure walker directly.
  auto net = nn::models::alexnet_s(ModelInput{}, 8);
  std::size_t convs = 0, with_bn = 0;
  net->for_each_conv_structure([&](nn::Conv2D&, bool bn) {
    ++convs;
    if (bn) ++with_bn;
  });
  EXPECT_EQ(convs, 4u);
  EXPECT_EQ(with_bn, 0u);
}

TEST(Attach, ResNetUsesOutputGradPosition) {
  auto net = nn::models::resnet_s(ModelInput{}, 1, 4);
  std::size_t convs = 0, with_bn = 0;
  net->for_each_conv_structure([&](nn::Conv2D&, bool bn) {
    ++convs;
    if (bn) ++with_bn;
  });
  EXPECT_EQ(convs, 9u);
  EXPECT_EQ(with_bn, 9u);  // every ResNet conv is followed by BN
}

TEST(Attach, SkipsFirstConvByDefault) {
  auto net = nn::models::alexnet_s(ModelInput{}, 8);
  Rng rng(71);
  const AttachedPruners attached =
      attach_gradient_pruners(*net, PruningConfig{}, rng);
  EXPECT_EQ(attached.pruners.size(), 3u);  // 4 convs − skipped first

  Rng rng2(71);
  auto net2 = nn::models::alexnet_s(ModelInput{}, 8);
  const AttachedPruners all =
      attach_gradient_pruners(*net2, PruningConfig{}, rng2,
                              /*skip_first_conv=*/false);
  EXPECT_EQ(all.pruners.size(), 4u);
}

TEST(Attach, TrainingProducesSparseGradients) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 4;
  dcfg.samples = 96;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 73;
  const data::SyntheticDataset train(dcfg);

  ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};
  auto net = nn::models::tiny_cnn(mi, 6);
  Rng rng(74);
  nn::kaiming_init(*net, rng);

  PruningConfig pcfg;
  pcfg.target_sparsity = 0.9;
  pcfg.fifo_depth = 2;
  const AttachedPruners attached = attach_gradient_pruners(*net, pcfg, rng);
  ASSERT_EQ(attached.pruners.size(), 1u);

  nn::TrainConfig tcfg;
  tcfg.batch_size = 12;
  tcfg.epochs = 4;
  tcfg.sgd.learning_rate = 0.05f;
  nn::Trainer trainer(*net, tcfg);
  (void)trainer.fit(train, train);

  // After warm-up the pruner must be active and producing sparsity.
  EXPECT_GT(attached.pruners[0]->batches(), pcfg.fifo_depth);
  EXPECT_GT(attached.pruners[0]->last_predicted_threshold(), 0.0);
  EXPECT_LT(attached.mean_last_density(), 0.6);
}

TEST(Attach, PrunedTrainingMatchesBaselineAccuracy) {
  // The paper's central algorithmic claim at miniature scale: training with
  // p = 0.9 gradient pruning reaches (approximately) baseline accuracy.
  data::SyntheticConfig dcfg;
  dcfg.classes = 4;
  dcfg.samples = 160;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise = 0.3f;
  dcfg.seed = 75;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(80, 76);
  const ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};

  auto run = [&](bool prune) {
    auto net = nn::models::tiny_cnn(mi, 6);
    Rng rng(77);
    nn::kaiming_init(*net, rng);
    AttachedPruners attached;
    if (prune) {
      PruningConfig pcfg;
      pcfg.target_sparsity = 0.9;
      pcfg.fifo_depth = 2;
      attached = attach_gradient_pruners(*net, pcfg, rng);
    }
    nn::TrainConfig tcfg;
    tcfg.batch_size = 16;
    tcfg.epochs = 6;
    tcfg.sgd.learning_rate = 0.05f;
    nn::Trainer trainer(*net, tcfg);
    return trainer.fit(train, test).test_accuracy;
  };

  const double base_acc = run(false);
  const double pruned_acc = run(true);
  EXPECT_GT(base_acc, 0.7);
  // Within a few points of baseline (generous band for the tiny setup).
  EXPECT_GT(pruned_acc, base_acc - 0.15);
}

TEST(SparsityMeterTest, RecordsSixDensities) {
  SparsityMeter meter;
  nn::ConvStepDensities d;
  d.weights = 1.0;
  d.weight_grads = 0.9;
  d.input_acts = 0.4;
  d.input_grads = 0.8;
  d.output_acts = 1.0;
  d.output_grads = 0.3;
  meter.record("conv1", d);
  meter.record("conv1", d);
  meter.record("conv2", d);

  const auto sums = meter.summaries();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_EQ(sums[0].layer, "conv1");
  EXPECT_EQ(sums[0].steps, 2u);
  EXPECT_DOUBLE_EQ(sums[0].input_acts, 0.4);
  EXPECT_DOUBLE_EQ(sums[0].output_grads, 0.3);

  const auto overall = meter.overall();
  EXPECT_EQ(overall.steps, 3u);
  EXPECT_DOUBLE_EQ(overall.weights, 1.0);
}

TEST(SparsityMeterTest, ObservesNaturalSparsityDuringTraining) {
  // Without pruning: I is sparse (ReLU/pool upstream), W is dense, dO of
  // the conv after a ReLU is sparse — the paper's Table I pattern.
  data::SyntheticConfig dcfg;
  dcfg.classes = 3;
  dcfg.samples = 48;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 79;
  const data::SyntheticDataset train(dcfg);
  const ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};

  // Conv directly after ReLU (no pooling in between) so the natural
  // sparsity of I is visible: conv1 → relu → conv2 → relu → head.
  nn::Sequential net("probe-net");
  nn::Conv2DConfig c1;
  c1.in_channels = dcfg.channels;
  c1.out_channels = 6;
  net.emplace<nn::Conv2D>(c1, "conv1");
  net.emplace<nn::ReLU>();
  nn::Conv2DConfig c2;
  c2.in_channels = 6;
  c2.out_channels = 6;
  net.emplace<nn::Conv2D>(c2, "conv2");
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Linear>(6 * dcfg.height * dcfg.width, dcfg.classes);

  Rng rng(80);
  nn::kaiming_init(net, rng);
  auto meter = std::make_shared<SparsityMeter>();
  SparsityMeter::attach(net, meter);

  nn::TrainConfig tcfg;
  tcfg.batch_size = 12;
  tcfg.epochs = 2;
  nn::Trainer trainer(net, tcfg);
  (void)trainer.fit(train, train);

  const auto sums = meter->summaries();
  ASSERT_EQ(sums.size(), 2u);
  // Summaries are in first-recorded order and backward runs layers in
  // reverse, so conv2 comes first; find by name to be explicit.
  auto find = [&](const std::string& name) {
    for (const auto& s : sums)
      if (s.layer == name) return s;
    ADD_FAILURE() << "layer not found: " << name;
    return LayerSparsitySummary{};
  };
  const auto conv1 = find("conv1");
  const auto conv2 = find("conv2");
  // conv2's input is a ReLU output → roughly half zeros.
  EXPECT_LT(conv2.input_acts, 0.8);
  // Weights stay dense.
  EXPECT_GT(conv1.weights, 0.99);
  // conv2's dO passed through a ReLU mask → sparse.
  EXPECT_LT(conv2.output_grads, 0.8);
}

}  // namespace
}  // namespace sparsetrain::pruning
