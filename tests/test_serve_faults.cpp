// Store fault injection: the exhaustive crash matrix (killing publication
// at every I/O step leaves the store openable with byte-identical replay),
// checked-write failures (ENOSPC, EIO, short writes, fsync/rename
// failures) that never corrupt the previous record, graceful degradation
// to read-only after persistent publish failure, stale tmp cleanup, and a
// core::Session that keeps computing while its store is sick.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/export.hpp"
#include "core/session.hpp"
#include "serve/io_hooks.hpp"
#include "serve/report_io.hpp"
#include "serve/store.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using serve::FaultIoHooks;
using serve::InjectedCrash;
using serve::ResultStore;
using serve::StoreOptions;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

sim::SimReport report_with_cycles(std::uint64_t cycles) {
  sim::SimReport r;
  r.program_name = "prog";
  r.arch_name = "sparsetrain-168pe";
  r.backend = "sparsetrain";
  r.profile_name = "pruned-p0.9";
  r.engine = isa::EngineKind::Statistical;
  r.clock_ghz = 1.0;
  r.total_pes = 168;
  r.total_cycles = cycles;
  r.activity = {1, 2, 3, 4, 5};
  r.energy = {1.0 / 3.0, 3.14159, 2.0 / 7.0, 1e-17};
  return r;
}

StoreOptions with_hooks(const std::shared_ptr<FaultIoHooks>& hooks) {
  StoreOptions opts;
  opts.hooks = hooks;
  return opts;
}

/// One clean publication's hooked-I/O op count — the crash matrix runs
/// once per index in [1, N].
std::uint64_t publication_op_count() {
  const std::string dir = fresh_dir("faults_opcount");
  auto hooks = std::make_shared<FaultIoHooks>();
  ResultStore store(dir, with_hooks(hooks));
  hooks->arm({});
  EXPECT_TRUE(store.put_result(1, report_with_cycles(1)));
  const std::uint64_t n = hooks->ops();
  fs::remove_all(dir);
  return n;
}

TEST(StoreFaults, PublicationOpCountCoversEveryStep) {
  // open + 2 writes + flush + fsync + close + rename: the matrix below
  // must cover at least these; if the publication path grows a step the
  // count (and the matrix) follows automatically.
  EXPECT_GE(publication_op_count(), 7u);
}

TEST(StoreFaults, CrashMatrixEveryStepRecoversByteIdentical) {
  const std::uint64_t n = publication_op_count();
  ASSERT_GE(n, 7u);
  const sim::SimReport before = report_with_cycles(100);
  const sim::SimReport after = report_with_cycles(200);
  const std::string before_bytes = serve::serialize_report(before);
  const std::string after_bytes = serve::serialize_report(after);

  for (std::uint64_t k = 1; k <= n; ++k) {
    SCOPED_TRACE("crash at io op " + std::to_string(k));
    const std::string dir = fresh_dir("faults_crash_" + std::to_string(k));
    auto hooks = std::make_shared<FaultIoHooks>();
    {
      ResultStore store(dir, with_hooks(hooks));
      ASSERT_TRUE(store.put_result(7, before));  // the record at risk
      hooks->arm({.crash_at = k});
      EXPECT_THROW(store.put_result(7, after), InjectedCrash);
    }
    // "Process death" at step k: reopen and the previous record must
    // replay byte-identically — the torn publication never made it in.
    hooks->arm({});
    ResultStore reopened(dir, with_hooks(hooks));
    EXPECT_EQ(reopened.stats().torn_skipped, 0u);
    sim::SimReport out;
    ASSERT_TRUE(reopened.get_result(7, out));
    EXPECT_EQ(serve::serialize_report(out), before_bytes);
    // The store stayed fully writable: the interrupted overwrite now
    // lands.
    EXPECT_FALSE(reopened.read_only());
    EXPECT_TRUE(reopened.put_result(7, after));
    ASSERT_TRUE(reopened.get_result(7, out));
    EXPECT_EQ(serve::serialize_report(out), after_bytes);
    fs::remove_all(dir);
  }
}

TEST(StoreFaults, CrashOnFirstPublicationLeavesNoRecord) {
  const std::uint64_t n = publication_op_count();
  for (std::uint64_t k = 1; k <= n; ++k) {
    SCOPED_TRACE("crash at io op " + std::to_string(k));
    const std::string dir = fresh_dir("faults_first_" + std::to_string(k));
    auto hooks = std::make_shared<FaultIoHooks>();
    {
      ResultStore store(dir, with_hooks(hooks));
      hooks->arm({.crash_at = k});
      EXPECT_THROW(store.put_result(7, report_with_cycles(1)),
                   InjectedCrash);
    }
    hooks->arm({});
    ResultStore reopened(dir, with_hooks(hooks));
    // All-or-nothing: either the crash hit after the rename was issued
    // (impossible here — the crash replaces the op) or no record exists.
    sim::SimReport out;
    EXPECT_FALSE(reopened.get_result(7, out));
    EXPECT_EQ(reopened.stats().torn_skipped, 0u);
    fs::remove_all(dir);
  }
}

TEST(StoreFaults, FailedStepKeepsOldRecordAndReportsFailure) {
  const std::uint64_t n = publication_op_count();
  const sim::SimReport before = report_with_cycles(100);
  const std::string before_bytes = serve::serialize_report(before);
  for (std::uint64_t k = 1; k <= n; ++k) {
    SCOPED_TRACE("fail at io op " + std::to_string(k));
    const std::string dir = fresh_dir("faults_fail_" + std::to_string(k));
    auto hooks = std::make_shared<FaultIoHooks>();
    ResultStore store(dir, with_hooks(hooks));
    ASSERT_TRUE(store.put_result(7, before));
    hooks->arm({.fail_at = k, .error = EIO});
    EXPECT_FALSE(store.put_result(7, report_with_cycles(200)));
    const serve::StoreStats s = store.stats();
    EXPECT_EQ(s.publish_failures, 1u);
    EXPECT_FALSE(s.read_only);  // one failure is not degradation
    EXPECT_NE(store.last_publish_error(), "");
    // The old record is still served, and the tmp debris is gone.
    sim::SimReport out;
    ASSERT_TRUE(store.get_result(7, out));
    EXPECT_EQ(serve::serialize_report(out), before_bytes);
    EXPECT_TRUE(fs::is_empty(fs::path(dir) / "tmp"));
    // A later healthy put recovers and resets the failure streak.
    EXPECT_TRUE(store.put_result(7, report_with_cycles(300)));
    fs::remove_all(dir);
  }
}

TEST(StoreFaults, ShortWriteNeverPublishesTornBytes) {
  const std::string dir = fresh_dir("faults_short");
  auto hooks = std::make_shared<FaultIoHooks>();
  ResultStore store(dir, with_hooks(hooks));
  // Op 3 is the payload write: half the bytes land, then EIO.
  hooks->arm({.fail_at = 3, .error = EIO, .short_write = true});
  EXPECT_FALSE(store.put_result(9, report_with_cycles(1)));
  EXPECT_EQ(store.stats().publish_failures, 1u);
  sim::SimReport out;
  EXPECT_FALSE(store.get_result(9, out));
  // Nothing under results/, nothing under tmp/ — the torn file was
  // discarded, not renamed into place.
  EXPECT_TRUE(fs::is_empty(fs::path(dir) / "results"));
  EXPECT_TRUE(fs::is_empty(fs::path(dir) / "tmp"));
  fs::remove_all(dir);
}

TEST(StoreFaults, PersistentEnospcFlipsReadOnlyGetsKeepServing) {
  const std::string dir = fresh_dir("faults_enospc");
  auto hooks = std::make_shared<FaultIoHooks>();
  StoreOptions opts = with_hooks(hooks);
  opts.read_only_after = 3;
  ResultStore store(dir, opts);
  const sim::SimReport kept = report_with_cycles(42);
  ASSERT_TRUE(store.put_result(1, kept));

  // The disk fills: every subsequent operation reports ENOSPC.
  hooks->arm({.fail_at = 1, .error = ENOSPC, .sticky = true});
  EXPECT_FALSE(store.put_result(2, report_with_cycles(2)));
  EXPECT_FALSE(store.read_only());
  EXPECT_FALSE(store.put_result(3, report_with_cycles(3)));
  EXPECT_FALSE(store.read_only());
  EXPECT_FALSE(store.put_result(4, report_with_cycles(4)));
  EXPECT_TRUE(store.read_only());  // third consecutive failure degrades

  // Read-only is sticky even after the disk recovers: puts are dropped
  // without touching the filesystem, gets serve what was published.
  hooks->arm({});
  EXPECT_FALSE(store.put_result(5, report_with_cycles(5)));
  sim::SimReport out;
  ASSERT_TRUE(store.get_result(1, out));
  EXPECT_EQ(serve::serialize_report(out), serve::serialize_report(kept));

  const serve::StoreStats s = store.stats();
  EXPECT_TRUE(s.read_only);
  EXPECT_EQ(s.publish_failures, 3u);
  EXPECT_EQ(s.dropped_publishes, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_NE(store.last_publish_error().find("errno"), std::string::npos);

  // A reopen (operator fixed the disk, restarted the daemon) is writable
  // again — degradation is per-instance, not persisted.
  ResultStore reopened(dir, opts);
  EXPECT_FALSE(reopened.read_only());
  EXPECT_TRUE(reopened.put_result(6, report_with_cycles(6)));
  fs::remove_all(dir);
}

TEST(StoreFaults, StaleTmpFilesAreCleanedAtOpen) {
  const std::string dir = fresh_dir("faults_tmp");
  { ResultStore store(dir); }  // create the layout
  std::ofstream(fs::path(dir) / "tmp" / "deadbeef.1.tmp") << "half a rec";
  std::ofstream(fs::path(dir) / "tmp" / "deadbeef.2.tmp") << "more debris";
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.stats().tmp_cleaned, 2u);
  EXPECT_TRUE(fs::is_empty(fs::path(dir) / "tmp"));
  fs::remove_all(dir);
}

TEST(SessionFaults, SessionKeepsComputingWithASickStore) {
  const std::string dir = fresh_dir("faults_session");
  auto hooks = std::make_shared<FaultIoHooks>();
  StoreOptions sopts = with_hooks(hooks);
  sopts.read_only_after = 1;  // degrade on the first failed publication
  core::SessionConfig cfg;
  cfg.workers = 2;
  cfg.store = std::make_shared<ResultStore>(dir, sopts);
  core::Session session(cfg);

  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);

  // Disk dies before the first evaluation publishes.
  hooks->arm({.fail_at = 1, .error = ENOSPC, .sticky = true});
  const core::EvalResult first = session.wait(
      session.submit(net, profile, {core::Session::kSparseBackend}));
  EXPECT_FALSE(first.runs[0].from_store);
  EXPECT_GT(first.runs[0].report.total_cycles, 0u);  // the eval succeeded
  EXPECT_TRUE(session.result_store()->read_only());

  // Serving continues: the next evaluation computes again (nothing was
  // persisted) and does not attempt to publish.
  const core::EvalResult second = session.wait(
      session.submit(net, profile, {core::Session::kSparseBackend}));
  EXPECT_FALSE(second.runs[0].from_store);
  EXPECT_EQ(second.runs[0].report.total_cycles,
            first.runs[0].report.total_cycles);
  EXPECT_EQ(session.result_store()->stats().puts, 0u);

  // Operators can see the degradation in the stats export.
  std::ostringstream os;
  core::export_stats_json(core::service_stats(session), os);
  EXPECT_NE(os.str().find("\"read_only\": true"), std::string::npos);
  EXPECT_NE(os.str().find("\"publish_failures\": 1"), std::string::npos);
  fs::remove_all(dir);
}

TEST(StoreFaults, EvictingPutIsNeverAPublishFailure) {
  // Eviction runs inside the successful-put path; even at the harshest
  // degradation threshold (one failure flips read-only) a store that
  // evicts on every put must stay healthy and writable.
  const std::string dir = fresh_dir("faults_evict_ok");
  const std::uint64_t record =
      serve::serialize_report(report_with_cycles(100)).size();
  StoreOptions opts;
  opts.max_bytes = record + record / 2;  // room for one record, not two
  opts.read_only_after = 1;
  ResultStore store(dir, opts);

  for (std::uint64_t fp = 1; fp <= 5; ++fp) {
    ASSERT_TRUE(store.put_result(fp, report_with_cycles(100 + fp)));
  }
  const serve::StoreStats s = store.stats();
  EXPECT_FALSE(s.read_only);
  EXPECT_EQ(s.publish_failures, 0u);
  EXPECT_EQ(s.evictions, 4u);  // each put past the first evicted one
  EXPECT_EQ(s.entries, 1u);
  sim::SimReport out;
  EXPECT_TRUE(store.get_result(5, out));  // newest survived
  EXPECT_FALSE(store.get_result(1, out));
  fs::remove_all(dir);
}

TEST(StoreFaults, EvictRemoveFailureDoesNotFailThePut) {
  const std::string dir = fresh_dir("faults_evict_remove");
  auto hooks = std::make_shared<FaultIoHooks>();
  const std::uint64_t record =
      serve::serialize_report(report_with_cycles(100)).size();
  StoreOptions opts = with_hooks(hooks);
  opts.max_bytes = record + record / 2;
  opts.read_only_after = 1;
  ResultStore store(dir, opts);
  ASSERT_TRUE(store.put_result(1, report_with_cycles(100)));

  // The publication itself is 7 hooked ops; the eviction's remove is the
  // 8th. Failing it must not fail the put, mark the store degraded, or
  // leave the victim in the index (the orphan file is reindexed only by
  // a reopen).
  hooks->arm({.fail_at = 8, .error = EIO});
  ASSERT_TRUE(store.put_result(2, report_with_cycles(200)));
  const serve::StoreStats s = store.stats();
  EXPECT_FALSE(s.read_only);
  EXPECT_EQ(s.publish_failures, 0u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
  sim::SimReport out;
  EXPECT_TRUE(store.get_result(2, out));
  EXPECT_FALSE(store.get_result(1, out));
  fs::remove_all(dir);
}

TEST(StoreFaults, ReadOnlyStoreNeverEvictsAndDropsStayDropped) {
  // A degraded (read-only) store under a size cap: dropped puts must not
  // trigger eviction of healthy records, must not count as publish
  // failures, and must not resurrect after a reopen.
  const std::string dir = fresh_dir("faults_ro_lru");
  auto hooks = std::make_shared<FaultIoHooks>();
  const std::uint64_t record =
      serve::serialize_report(report_with_cycles(100)).size();
  StoreOptions opts = with_hooks(hooks);
  opts.max_bytes = 3 * record;  // fits the two survivors comfortably
  opts.read_only_after = 2;
  ResultStore store(dir, opts);
  ASSERT_TRUE(store.put_result(1, report_with_cycles(100)));
  ASSERT_TRUE(store.put_result(2, report_with_cycles(200)));

  hooks->arm({.fail_at = 1, .error = ENOSPC, .sticky = true});
  EXPECT_FALSE(store.put_result(3, report_with_cycles(300)));
  EXPECT_FALSE(store.put_result(4, report_with_cycles(400)));
  ASSERT_TRUE(store.read_only());
  const serve::StoreStats degraded = store.stats();

  // The disk heals, but this instance stays read-only: a burst of puts
  // (enough to overflow the cap, were they admitted) is dropped without
  // evicting anything or touching the failure counters.
  hooks->arm({});
  for (std::uint64_t fp = 10; fp < 16; ++fp) {
    EXPECT_FALSE(store.put_result(fp, report_with_cycles(fp)));
  }
  const serve::StoreStats s = store.stats();
  EXPECT_EQ(s.evictions, degraded.evictions);
  EXPECT_EQ(s.publish_failures, degraded.publish_failures);
  EXPECT_EQ(s.dropped_publishes, degraded.dropped_publishes + 6);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, degraded.bytes);
  sim::SimReport out;
  EXPECT_TRUE(store.get_result(1, out));
  EXPECT_TRUE(store.get_result(2, out));

  // Reopen: the survivors are there, the dropped puts are gone for good
  // (dropping never left half-written records to resurrect).
  ResultStore reopened(dir, opts);
  EXPECT_FALSE(reopened.read_only());
  EXPECT_TRUE(reopened.get_result(1, out));
  EXPECT_TRUE(reopened.get_result(2, out));
  for (std::uint64_t fp = 3; fp < 16; ++fp) {
    EXPECT_FALSE(reopened.get_result(fp, out));
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sparsetrain
