// Stream transport: endpoint-spec parsing, EINTR-safe syscall wrappers,
// NDJSON round trips over both AF_UNIX and TCP through serve_listener,
// per-connection idle timeouts, the connection cap's explicit rejection,
// and the oversized-line defense.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/require.hpp"
#include "util/syscall.hpp"

namespace sparsetrain {
namespace {

using serve::Client;
using serve::ClientOptions;
using serve::Conn;
using serve::Endpoint;
using serve::Listener;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;

std::string fresh_socket(const std::string& name) {
  return ::testing::TempDir() + "sparsetrain_" + name + ".sock";
}

TEST(Endpoints, SpecParsing) {
  Endpoint ep = serve::parse_endpoint("127.0.0.1:7117");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 7117);

  ep = serve::parse_endpoint("localhost:0");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
  EXPECT_EQ(ep.host, "localhost");
  EXPECT_EQ(ep.port, 0);

  // Anything with a '/' is a unix path, even when it contains ':'.
  ep = serve::parse_endpoint("/tmp/with:colon.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ep.path, "/tmp/with:colon.sock");

  // The unix: prefix forces a path unconditionally.
  ep = serve::parse_endpoint("unix:relative.sock");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);
  EXPECT_EQ(ep.path, "relative.sock");

  // A non-numeric suffix is not a port — it's a (relative) path.
  ep = serve::parse_endpoint("some.file.name");
  EXPECT_EQ(ep.kind, Endpoint::Kind::Unix);

  EXPECT_THROW(serve::parse_endpoint(""), ContractError);
  EXPECT_THROW(serve::parse_endpoint("host:99999"), ContractError);
}

TEST(Syscalls, RetryEintrRetriesOnlyEintr) {
  int calls = 0;
  const int r = util::retry_eintr([&]() -> int {
    ++calls;
    if (calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  });
  EXPECT_EQ(r, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  const int e = util::retry_eintr([&]() -> int {
    ++calls;
    errno = EIO;
    return -1;
  });
  EXPECT_EQ(e, -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(calls, 1);  // a real failure is not retried
}

TEST(Transport, ListenFailureCarriesErrnoText) {
  try {
    Listener::listen("/this/dir/does/not/exist/x.sock");
    FAIL() << "listen should have thrown";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("errno"), std::string::npos);
  }
}

/// Runs one daemon round trip against `spec`: eval twice (second one is
/// answered by coalescing/session replay), a malformed line, status, then
/// shutdown.
void round_trip(const std::string& spec) {
  ServerOptions opts;
  opts.request_workers = 2;
  Server server(opts);
  Listener listener = Listener::listen(spec);
  const Endpoint bound = listener.endpoint();
  std::thread daemon([&]() { server.serve_listener(listener); });

  const std::string connect_spec =
      bound.kind == Endpoint::Kind::Tcp
          ? bound.host + ":" + std::to_string(bound.port)
          : bound.path;
  Client client(connect_spec);
  Request eval;
  eval.type = "eval";
  eval.workload = "tiny";

  const Response first = client.submit(eval);
  EXPECT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(first.source, "computed");
  const Response second = client.submit(eval);
  EXPECT_EQ(second.status, "ok") << second.error;
  EXPECT_GT(second.fingerprint, 0u);
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  // A malformed line answers with an error, not a dropped connection.
  const Response bad = client.request("{\"type\":");
  EXPECT_EQ(bad.status, "error");

  // The payload rides inside the response line (parse_response does not
  // re-extract it), so assert on the raw line.
  const std::string status = client.request_raw("{\"type\":\"status\"}");
  EXPECT_NE(status.find("\"completed\": 2"), std::string::npos) << status;

  const Response bye = client.shutdown();
  EXPECT_EQ(bye.type, "bye");
  daemon.join();
}

TEST(Transport, UnixRoundTrip) { round_trip(fresh_socket("rt_unix")); }

TEST(Transport, TcpRoundTrip) { round_trip("127.0.0.1:0"); }

TEST(Transport, IdleConnectionsAreToldAndClosed) {
  ServerOptions opts;
  opts.idle_timeout_ms = 80;
  Server server(opts);
  Listener listener = Listener::listen(fresh_socket("idle"));
  std::thread daemon([&]() { server.serve_listener(listener); });

  std::string error;
  Conn conn = serve::connect_endpoint(listener.endpoint(), &error);
  ASSERT_TRUE(conn.valid()) << error;
  // Send nothing: the daemon must cut us loose instead of pinning a
  // thread on a silent connection forever.
  std::string line;
  ASSERT_EQ(conn.read_line(line, 5000), Conn::ReadStatus::Ok);
  const Response resp = serve::parse_response(line);
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("idle timeout"), std::string::npos);
  EXPECT_EQ(conn.read_line(line, 5000), Conn::ReadStatus::Eof);
  conn.close();

  // The daemon itself is unharmed — a fresh connection still serves.
  Client client(listener.endpoint().path);
  EXPECT_EQ(client.shutdown().type, "bye");
  daemon.join();
  EXPECT_GE(server.counters().idle_closed, 1u);
}

TEST(Transport, ConnectionCapRejectsExplicitly) {
  ServerOptions opts;
  opts.max_connections = 1;
  Server server(opts);
  Listener listener = Listener::listen(fresh_socket("cap"));
  std::thread daemon([&]() { server.serve_listener(listener); });

  // First connection occupies the only slot.
  std::string error;
  Conn first = serve::connect_endpoint(listener.endpoint(), &error);
  ASSERT_TRUE(first.valid()) << error;

  // Second gets an explicit "rejected: overloaded" line, then EOF — an
  // answer, not a hang.
  Conn second = serve::connect_endpoint(listener.endpoint(), &error);
  ASSERT_TRUE(second.valid()) << error;
  std::string line;
  ASSERT_EQ(second.read_line(line, 5000), Conn::ReadStatus::Ok);
  const Response rej = serve::parse_response(line);
  EXPECT_EQ(rej.status, "rejected");
  EXPECT_NE(rej.error.find("overloaded"), std::string::npos);
  EXPECT_EQ(second.read_line(line, 5000), Conn::ReadStatus::Eof);
  second.close();
  first.close();

  // Once the slot frees, new connections are admitted again. The client
  // retries "rejected" responses, so it rides out the reaping delay.
  ClientOptions copts;
  copts.retries = 50;
  copts.backoff_base_ms = 5;
  copts.backoff_cap_ms = 50;
  Client client(listener.endpoint().path, copts);
  EXPECT_EQ(client.shutdown().type, "bye");
  daemon.join();
  EXPECT_GE(server.counters().overloaded, 1u);
}

TEST(Transport, OversizedLinesDropTheConnection) {
  ServerOptions opts;
  Server server(opts);
  Listener listener = Listener::listen(fresh_socket("oversize"));
  std::thread daemon([&]() { server.serve_listener(listener); });

  std::string error;
  Conn conn = serve::connect_endpoint(listener.endpoint(), &error);
  ASSERT_TRUE(conn.valid()) << error;
  // Stream past the per-line cap without ever sending a newline: the
  // daemon must drop us rather than buffer without bound. The write side
  // may fail midway once the daemon closes — that is the point.
  const std::string chunk(1 << 16, 'x');
  for (std::size_t sent = 0; sent <= Conn::kMaxLine + chunk.size();
       sent += chunk.size()) {
    if (!conn.write_all(chunk.data(), chunk.size())) break;
  }
  std::string line;
  const Conn::ReadStatus st = conn.read_line(line, 10000);
  EXPECT_NE(st, Conn::ReadStatus::Ok) << line;
  EXPECT_NE(st, Conn::ReadStatus::Timeout);
  conn.close();

  Client client(listener.endpoint().path);
  EXPECT_EQ(client.shutdown().type, "bye");
  daemon.join();
}

}  // namespace
}  // namespace sparsetrain
