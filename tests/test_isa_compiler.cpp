// ISA and compiler coverage: instruction stream structure, FC lowering,
// store densities, and headline end-to-end simulator properties.
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "core/session.hpp"
#include "isa/instruction.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

using isa::Opcode;
using isa::RowOpKind;
using isa::Stage;

isa::Program tiny_program() {
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::natural(net);
  return compiler::compile(net, profile);
}

TEST(IsaNames, StageAndOpNames) {
  EXPECT_STREQ(isa::stage_name(Stage::Forward), "Forward");
  EXPECT_STREQ(isa::stage_name(Stage::GTA), "GTA");
  EXPECT_STREQ(isa::stage_name(Stage::GTW), "GTW");
  EXPECT_STREQ(isa::row_op_name(RowOpKind::SRC), "SRC");
  EXPECT_STREQ(isa::row_op_name(RowOpKind::MSRC), "MSRC");
  EXPECT_STREQ(isa::row_op_name(RowOpKind::OSRC), "OSRC");
  EXPECT_STREQ(isa::row_op_name(RowOpKind::FC), "FC");
}

TEST(CompilerStream, StagesAreConfigRunStoreBarrierSequences) {
  const isa::Program prog = tiny_program();
  // Walk the stream: every stage segment must start with ConfigLayer and
  // end with Barrier, with exactly one Run in between.
  std::size_t i = 0;
  const auto& ins = prog.instructions;
  while (i < ins.size()) {
    ASSERT_EQ(ins[i].op, Opcode::ConfigLayer) << "at " << i;
    const Stage stage = ins[i].stage;
    const std::size_t layer = ins[i].layer_index;
    ++i;
    std::size_t runs = 0;
    while (i < ins.size() && ins[i].op != Opcode::Barrier) {
      EXPECT_EQ(ins[i].stage, stage);
      EXPECT_EQ(ins[i].layer_index, layer);
      if (ins[i].op == Opcode::Run) ++runs;
      ++i;
    }
    ASSERT_LT(i, ins.size()) << "unterminated stage";
    EXPECT_EQ(runs, 1u);
    ++i;  // consume Barrier
  }
}

TEST(CompilerStream, RowOpKindsMatchStages) {
  const isa::Program prog = tiny_program();
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::Run) continue;
    switch (inst.stage) {
      case Stage::Forward:
        EXPECT_EQ(inst.block.kind, RowOpKind::SRC);
        break;
      case Stage::GTA:
        EXPECT_EQ(inst.block.kind, RowOpKind::MSRC);
        break;
      case Stage::GTW:
        EXPECT_EQ(inst.block.kind, RowOpKind::OSRC);
        break;
    }
  }
}

TEST(CompilerStream, TaskCountsMatchGeometry) {
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::natural(net);
  const isa::Program prog = compiler::compile(net, profile);
  const auto& l0 = net.layers[0];
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::Run || inst.layer_index != 0) continue;
    if (inst.stage == Stage::Forward) {
      EXPECT_EQ(inst.block.tasks, l0.out_channels * l0.out_h());
      EXPECT_EQ(inst.block.ops_per_task, l0.in_channels * l0.kernel);
      EXPECT_EQ(inst.block.in_len, l0.in_w);
    }
    if (inst.stage == Stage::GTW) {
      EXPECT_EQ(inst.block.tasks, l0.out_channels * l0.in_channels);
      EXPECT_EQ(inst.block.ops_per_task, l0.out_h() * l0.kernel);
      EXPECT_EQ(inst.block.second_len, l0.in_w);
    }
  }
}

TEST(CompilerStream, GtaDensitiesComeFromProfile) {
  const auto net = workload::resnet18_cifar();
  const auto profile = workload::SparsityProfile::calibrated(net, 0.41, 0.27);
  const isa::Program prog = compiler::compile(net, profile);
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::Run || inst.stage != Stage::GTA) continue;
    // FC layers encode the mask in their task count (lane packing), not in
    // density_mask.
    if (net.layers[inst.layer_index].is_fc) continue;
    EXPECT_NEAR(inst.block.density_in, 0.27, 1e-12);
    EXPECT_NEAR(inst.block.density_mask, 0.41, 1e-12);
  }
}

TEST(CompilerFc, LowersToFcKind) {
  const auto net = workload::alexnet_cifar();
  const auto profile = workload::SparsityProfile::natural(net);
  const isa::Program prog = compiler::compile(net, profile);
  std::size_t fc_runs = 0;
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::Run) continue;
    if (net.layers[inst.layer_index].is_fc) {
      EXPECT_EQ(inst.block.kind, RowOpKind::FC);
      EXPECT_EQ(inst.block.ops_per_task, 1u);
      EXPECT_GT(inst.block.fc_lanes, 0u);
      ++fc_runs;
    } else {
      EXPECT_NE(inst.block.kind, RowOpKind::FC);
    }
  }
  // 3 FC layers × 3 stages (fc6 gets GTA since it is not the first layer).
  EXPECT_EQ(fc_runs, 9u);
}

TEST(CompilerFc, ForwardTaskCountPacksLanes) {
  const auto net = workload::alexnet_cifar();
  const auto profile = workload::SparsityProfile::natural(net);
  const isa::Program prog = compiler::compile(net, profile);
  const std::size_t fc8 = net.layers.size() - 1;  // 4096 -> 10 classifier
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::Run || inst.layer_index != fc8 ||
        inst.stage != Stage::Forward)
      continue;
    // ceil(10 outputs / fc_lanes).
    EXPECT_EQ(inst.block.tasks,
              (10 + inst.block.fc_lanes - 1) / inst.block.fc_lanes);
    EXPECT_EQ(inst.block.in_len, 4096u);
  }
}

TEST(CompilerFc, GtwTasksScaleWithGradDensity) {
  const auto net = workload::alexnet_cifar();
  const auto sparse = workload::SparsityProfile::calibrated(net, 0.35, 0.10);
  const auto dense = workload::SparsityProfile::dense(net);
  const auto ps = compiler::compile(net, sparse);
  const auto pd = compiler::compile(net, dense);
  auto gtw_tasks = [&](const isa::Program& p, std::size_t layer) {
    for (const auto& inst : p.instructions)
      if (inst.op == Opcode::Run && inst.stage == Stage::GTW &&
          inst.layer_index == layer)
        return inst.block.tasks;
    return std::size_t{0};
  };
  const std::size_t fc7 = net.layers.size() - 2;
  EXPECT_LT(gtw_tasks(ps, fc7), gtw_tasks(pd, fc7) / 5);  // ~10% density
}

TEST(CompilerStream, StoreDensityReflectsReluAndMask) {
  const auto net = workload::alexnet_cifar();
  const auto profile = workload::SparsityProfile::calibrated(net, 0.35, 0.1);
  const isa::Program prog = compiler::compile(net, profile);
  for (const auto& inst : prog.instructions) {
    if (inst.op != Opcode::StoreOutputs) continue;
    const auto& l = net.layers[inst.layer_index];
    if (inst.stage == Stage::Forward && l.relu_after && !l.first_layer) {
      EXPECT_NEAR(inst.store_density, 0.35, 1e-12) << l.name;
    }
    if (inst.stage == Stage::GTW) {
      EXPECT_EQ(inst.store_density, 1.0) << l.name;  // dW is dense
    }
  }
}

TEST(Headline, AlexNetNaturalSparsityNearPaperAverage) {
  // The abstract's configuration: AlexNet with natural sparsity only
  // reaches about 2.7x speedup and 2.2x energy efficiency. Lock a band
  // around our calibration so regressions are caught.
  core::Session session;
  const auto net = workload::alexnet_cifar();
  const auto profile = workload::SparsityProfile::natural(
      net, workload::paper_act_density(workload::ModelFamily::AlexNet));
  const auto r = session.compare(net, profile);
  EXPECT_GT(r.speedup(), 2.0);
  EXPECT_LT(r.speedup(), 3.5);
  EXPECT_GT(r.energy_efficiency(), 1.5);
  EXPECT_LT(r.energy_efficiency(), 3.2);
}

TEST(Headline, SpeedupOrderingAcrossPruningLevels) {
  core::Session session;
  const auto net = workload::resnet18_cifar();
  double prev = 1.0;
  for (double p : {0.0, 0.7, 0.9, 0.99}) {
    const auto profile = workload::SparsityProfile::pruned(net, p, 0.45);
    const double s = session.compare(net, profile).speedup();
    EXPECT_GE(s, prev * 0.98) << "p=" << p;  // monotone up to sim noise
    prev = s;
  }
}

}  // namespace
}  // namespace sparsetrain
