// Dataflow tests: the SRC/MSRC/OSRC row ops and the proof that the 1-D
// decomposition reproduces the dense conv layer's Forward/GTA/GTW results.
#include <gtest/gtest.h>

#include "dataflow/conv_decompose.hpp"
#include "dataflow/row_ops.hpp"
#include "nn/conv2d.hpp"
#include "nn/relu.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::dataflow {
namespace {

SparseRow sparse_from(const std::vector<float>& dense) {
  return compress_row(dense);
}

TEST(SrcRowConv, DenseEquivalence) {
  // in = [1 0 2 0 3], K=3, S=1, P=1: out[ox] = Σ ker[k]·in[ox+k−1].
  const std::vector<float> in = {1, 0, 2, 0, 3};
  const std::vector<float> ker = {0.5f, 1.0f, -1.0f};
  RowGeometry geo{3, 1, 1};
  std::vector<float> out(5, 0.0f);
  src_row_conv(sparse_from(in), ker, geo, out);
  for (std::size_t ox = 0; ox < 5; ++ox) {
    float expect = 0.0f;
    for (std::size_t k = 0; k < 3; ++k) {
      const std::int64_t ip = static_cast<std::int64_t>(ox + k) - 1;
      if (ip >= 0 && ip < 5) expect += ker[k] * in[static_cast<size_t>(ip)];
    }
    EXPECT_FLOAT_EQ(out[ox], expect) << "ox=" << ox;
  }
}

TEST(SrcRowConv, StridedMapping) {
  const std::vector<float> in = {1, 2, 3, 4, 5, 6};
  const std::vector<float> ker = {1.0f, 1.0f, 1.0f};
  RowGeometry geo{3, 2, 0};
  std::vector<float> out(2, 0.0f);  // floor((6-3)/2)+1 = 2
  src_row_conv(sparse_from(in), ker, geo, out);
  EXPECT_FLOAT_EQ(out[0], 1 + 2 + 3);
  EXPECT_FLOAT_EQ(out[1], 3 + 4 + 5);
}

TEST(SrcRowConv, SkipsZeros) {
  // Work counting: only nonzeros contribute cycles.
  const std::vector<float> in = {0, 0, 5, 0, 0, 0, 7, 0};
  RowGeometry geo{3, 1, 1};
  const RowOpWork w = src_work(sparse_from(in), geo, 8);
  EXPECT_EQ(w.active_inputs, 2u);
  EXPECT_EQ(w.macs, 6u);  // each nonzero touches K=3 outputs (interior)
}

TEST(SrcRowConv, RejectsWrongKernelLength) {
  RowGeometry geo{3, 1, 1};
  std::vector<float> out(4, 0.0f);
  const std::vector<float> ker = {1.0f};
  EXPECT_THROW(src_row_conv(sparse_from({1, 2, 3, 4}), ker, geo, out),
               ContractError);
}

TEST(MsrcRowConv, MaskSkipsForcedZeros) {
  const std::vector<float> in = {1, 0, 2, 0};
  const std::vector<float> ker = {1.0f, 1.0f, 1.0f};
  RowGeometry geo{3, 1, 1};

  // Full mask: plain scatter.
  std::vector<float> out_full(4, 0.0f);
  MaskRow full;
  full.length = 4;
  full.offsets = {0, 1, 2, 3};
  msrc_row_conv(sparse_from(in), ker, full, geo, out_full);

  // Restricted mask: only position 1 allowed.
  std::vector<float> out_masked(4, 0.0f);
  MaskRow restricted;
  restricted.length = 4;
  restricted.offsets = {1};
  msrc_row_conv(sparse_from(in), ker, restricted, geo, out_masked);

  EXPECT_FLOAT_EQ(out_masked[1], out_full[1]);
  EXPECT_FLOAT_EQ(out_masked[0], 0.0f);
  EXPECT_FLOAT_EQ(out_masked[2], 0.0f);
  EXPECT_FLOAT_EQ(out_masked[3], 0.0f);
}

TEST(MsrcRowConv, WorkCountsLookAheadSkips) {
  // An input whose entire output window is masked costs zero cycles.
  const std::vector<float> in = {1, 0, 0, 0, 0, 0, 0, 2};
  RowGeometry geo{3, 1, 1};
  MaskRow mask;
  mask.length = 8;
  mask.offsets = {6, 7};  // only the tail is allowed
  const RowOpWork w = msrc_work(sparse_from(in), mask, geo, 8);
  EXPECT_EQ(w.skipped_inputs, 1u);  // position 0's window {0,1} all masked
  EXPECT_EQ(w.active_inputs, 1u);   // position 7 writes 6,7(,8 oob)
  EXPECT_EQ(w.macs, 2u);
}

TEST(MsrcRowConv, MaskLengthChecked) {
  RowGeometry geo{3, 1, 1};
  MaskRow mask;
  mask.length = 3;
  std::vector<float> out(4, 0.0f);
  const std::vector<float> ker = {1.0f, 1.0f, 1.0f};
  EXPECT_THROW(msrc_row_conv(sparse_from({1, 0, 0, 0}), ker, mask, geo, out),
               ContractError);
}

TEST(OsrcRowConv, ComputesKernelCorrelation) {
  // dw[k] = Σ_ox dO[ox] · I[ox + k − 1] with S=1, P=1.
  const std::vector<float> I = {1, 2, 3, 4, 5};
  const std::vector<float> dO = {0, 1, 0, 2, 0};
  RowGeometry geo{3, 1, 1};
  std::vector<float> dw(3, 0.0f);
  osrc_row_conv(sparse_from(I), sparse_from(dO), geo, dw);
  // dw[k] = dO[1]·I[k] + dO[3]·I[2+k]
  EXPECT_FLOAT_EQ(dw[0], 1 * 1 + 2 * 3);
  EXPECT_FLOAT_EQ(dw[1], 1 * 2 + 2 * 4);
  EXPECT_FLOAT_EQ(dw[2], 1 * 3 + 2 * 5);
}

TEST(OsrcRowConv, SparseSparseProductWork) {
  // Work scales with pairs of overlapping nonzeros, not row length.
  std::vector<float> I(100, 0.0f), dO(100, 0.0f);
  I[10] = 1.0f;
  I[50] = 2.0f;
  dO[10] = 3.0f;  // only dO[10] overlaps I[10]'s window (K=3,P=1)
  RowGeometry geo{3, 1, 1};
  const RowOpWork w = osrc_work(sparse_from(I), sparse_from(dO), geo);
  EXPECT_EQ(w.active_inputs, 1u);
  EXPECT_EQ(w.macs, 1u);  // I[10] aligns with dO[10] at k=1 only
}

TEST(OsrcRowConv, EmptyOperandsNoWork) {
  RowGeometry geo{3, 1, 1};
  std::vector<float> dw(3, 0.0f);
  osrc_row_conv(sparse_from({0, 0, 0}), sparse_from({0, 0, 0}), geo, dw);
  EXPECT_FLOAT_EQ(dw[0] + dw[1] + dw[2], 0.0f);
  const RowOpWork w = osrc_work(sparse_from({0, 0, 0}), sparse_from({0, 0, 0}),
                                geo);
  EXPECT_EQ(w.macs, 0u);
}

// ---------------------------------------------------------------------------
// Stage-level equivalence against the dense Conv2D layer, parameterized
// over geometry (kernel, stride, padding).

struct GeoParam {
  std::size_t kernel, stride, padding;
};

class DecomposeEquivalence : public ::testing::TestWithParam<GeoParam> {};

nn::Conv2DConfig to_nn_cfg(const GeoParam& p, std::size_t in_c,
                           std::size_t out_c) {
  nn::Conv2DConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = p.kernel;
  cfg.stride = p.stride;
  cfg.padding = p.padding;
  cfg.bias = true;
  return cfg;
}

ConvGeometry to_geo(const GeoParam& p, std::size_t in_c, std::size_t out_c) {
  ConvGeometry geo;
  geo.in_channels = in_c;
  geo.out_channels = out_c;
  geo.kernel = p.kernel;
  geo.stride = p.stride;
  geo.padding = p.padding;
  return geo;
}

TEST_P(DecomposeEquivalence, ForwardMatchesDenseConv) {
  const GeoParam p = GetParam();
  Rng rng(91);
  nn::Conv2D conv(to_nn_cfg(p, 2, 3));
  for (auto* param : conv.params()) param->value.fill_normal(rng, 0.0f, 0.5f);

  Tensor in(Shape{2, 2, 7, 7});
  in.fill_sparse_normal(rng, 0.5);  // exercise the sparse path
  const Tensor dense_out = conv.forward(in, false);
  const Tensor row_out = forward_by_rows(in, conv.weight().value,
                                         &conv.bias_param().value,
                                         to_geo(p, 2, 3));
  EXPECT_LT(max_abs_diff(dense_out, row_out), 1e-4f);
}

TEST_P(DecomposeEquivalence, GtaMatchesDenseConv) {
  const GeoParam p = GetParam();
  Rng rng(92);
  nn::Conv2D conv(to_nn_cfg(p, 2, 3));
  for (auto* param : conv.params()) param->value.fill_normal(rng, 0.0f, 0.5f);

  Tensor in(Shape{1, 2, 7, 7});
  in.fill_normal(rng, 0.0f, 1.0f);
  (void)conv.forward(in, true);
  Tensor grad_out(conv.output_shape(in.shape()));
  grad_out.fill_sparse_normal(rng, 0.4);

  const Tensor dense_dI = conv.backward(grad_out);
  const Tensor row_dI = gta_by_rows(grad_out, conv.weight().value, in.shape(),
                                    /*prev_mask=*/nullptr, to_geo(p, 2, 3));
  EXPECT_LT(max_abs_diff(dense_dI, row_dI), 1e-4f);
}

TEST_P(DecomposeEquivalence, GtwMatchesDenseConv) {
  const GeoParam p = GetParam();
  Rng rng(93);
  nn::Conv2D conv(to_nn_cfg(p, 2, 3));
  for (auto* param : conv.params()) param->value.fill_normal(rng, 0.0f, 0.5f);

  Tensor in(Shape{1, 2, 7, 7});
  in.fill_sparse_normal(rng, 0.6);
  (void)conv.forward(in, true);
  Tensor grad_out(conv.output_shape(in.shape()));
  grad_out.fill_sparse_normal(rng, 0.4);
  (void)conv.backward(grad_out);  // accumulates conv.weight().grad

  Tensor dbias(Shape::vec(3));
  const Tensor row_dW =
      gtw_by_rows(grad_out, in, &dbias, to_geo(p, 2, 3));
  EXPECT_LT(max_abs_diff(conv.weight().grad, row_dW), 1e-4f);
  EXPECT_LT(max_abs_diff(conv.bias_param().grad, dbias), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DecomposeEquivalence,
    ::testing::Values(GeoParam{3, 1, 1}, GeoParam{3, 2, 1}, GeoParam{1, 1, 0},
                      GeoParam{5, 1, 2}, GeoParam{3, 1, 0}, GeoParam{1, 2, 0}),
    [](const ::testing::TestParamInfo<GeoParam>& info) {
      const GeoParam& p = info.param;
      return "k" + std::to_string(p.kernel) + "s" + std::to_string(p.stride) +
             "p" + std::to_string(p.padding);
    });

TEST(GtaMasked, MaskedPositionsAreZeroAndOthersMatch) {
  // GTA with the previous layer's ReLU mask: allowed positions match the
  // unmasked result; disallowed positions are exactly zero (their values
  // would be discarded by the mask anyway).
  Rng rng(94);
  ConvGeometry geo;
  geo.in_channels = 2;
  geo.out_channels = 3;
  Tensor weights(Shape{3, 2, 3, 3});
  weights.fill_normal(rng, 0.0f, 0.5f);

  const Shape in_shape{1, 2, 6, 6};
  Tensor grad_out(Shape{1, 3, 6, 6});
  grad_out.fill_sparse_normal(rng, 0.5);
  Tensor mask(in_shape);
  mask.fill_sparse_normal(rng, 0.5);
  for (float& v : mask.flat())
    if (v != 0.0f) v = 1.0f;

  const Tensor unmasked =
      gta_by_rows(grad_out, weights, in_shape, nullptr, geo);
  const Tensor masked = gta_by_rows(grad_out, weights, in_shape, &mask, geo);

  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (mask[i] != 0.0f) {
      EXPECT_NEAR(masked[i], unmasked[i], 1e-5f);
    } else {
      EXPECT_EQ(masked[i], 0.0f);
    }
  }
}

TEST(GtaMasked, MatchesConvThenReluBackward) {
  // End-to-end check of the paper's GTA optimisation: computing the conv
  // backward only at mask-allowed positions equals computing it densely
  // and then applying the ReLU mask of the *previous* layer.
  Rng rng(95);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  nn::Conv2D conv(cfg);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.5f);
  nn::ReLU prev_relu;

  Tensor pre_act(Shape{1, 2, 6, 6});
  pre_act.fill_normal(rng, 0.0f, 1.0f);
  const Tensor acts = prev_relu.forward(pre_act, true);
  (void)conv.forward(acts, true);
  Tensor grad_out(conv.output_shape(acts.shape()));
  grad_out.fill_sparse_normal(rng, 0.5);

  // Dense path: conv backward then ReLU backward.
  const Tensor dI_dense = conv.backward(grad_out);
  const Tensor d_pre_dense = prev_relu.backward(dI_dense);

  // Masked row path then the (now free) mask multiply.
  ConvGeometry geo;
  geo.in_channels = 2;
  geo.out_channels = 2;
  const Tensor mask = prev_relu.mask();
  const Tensor dI_masked =
      gta_by_rows(grad_out, conv.weight().value, acts.shape(), &mask, geo);
  const Tensor d_pre_masked = prev_relu.backward(dI_masked);
  EXPECT_LT(max_abs_diff(d_pre_dense, d_pre_masked), 1e-4f);
}

TEST(StageWorkCounts, SparserInputMeansLessWork) {
  Rng rng(96);
  ConvGeometry geo;
  geo.in_channels = 2;
  geo.out_channels = 2;

  Tensor dense_in(Shape{1, 2, 8, 8});
  dense_in.fill_normal(rng, 0.0f, 1.0f);
  Tensor sparse_in(Shape{1, 2, 8, 8});
  sparse_in.fill_sparse_normal(rng, 0.3);

  const StageWork wd = forward_work(dense_in, geo);
  const StageWork ws = forward_work(sparse_in, geo);
  EXPECT_EQ(wd.row_ops, ws.row_ops);  // same schedule, less work
  EXPECT_GT(wd.work.macs, ws.work.macs);
  EXPECT_GT(wd.work.active_inputs, ws.work.active_inputs);
}

TEST(StageWorkCounts, GtwWorkScalesWithBothDensities) {
  Rng rng(97);
  ConvGeometry geo;
  geo.in_channels = 1;
  geo.out_channels = 1;
  Tensor in_dense(Shape{1, 1, 10, 10});
  in_dense.fill_normal(rng, 0.0f, 1.0f);
  Tensor in_sparse(Shape{1, 1, 10, 10});
  in_sparse.fill_sparse_normal(rng, 0.3);
  Tensor go_dense(Shape{1, 1, 10, 10});
  go_dense.fill_normal(rng, 0.0f, 1.0f);
  Tensor go_sparse(Shape{1, 1, 10, 10});
  go_sparse.fill_sparse_normal(rng, 0.3);

  const auto w_dd = gtw_work(go_dense, in_dense, geo).work.macs;
  const auto w_sd = gtw_work(go_sparse, in_dense, geo).work.macs;
  const auto w_ss = gtw_work(go_sparse, in_sparse, geo).work.macs;
  EXPECT_GT(w_dd, w_sd);
  EXPECT_GT(w_sd, w_ss);  // the sparse×sparse product effect
}

}  // namespace
}  // namespace sparsetrain::dataflow
