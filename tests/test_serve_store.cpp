// Persistent result store: byte-exact report serialisation, durability
// (reopen, torn-record recovery, concurrent writers), LRU eviction under
// a size cap, and the frozen v1 job fingerprint (golden value + per-field
// sensitivity — the tripwire that fires when a result-affecting field is
// added upstream without a canonicalisation version bump).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/report_io.hpp"
#include "serve/store.hpp"
#include "sim/accelerator.hpp"
#include "util/require.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using serve::ResultStore;
using serve::StoreOptions;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

/// A report exercising every serialised field, with doubles that do not
/// round-trip through decimal printing (1/3, pi-ish) and a layer name
/// holding the separators the framing must survive.
sim::SimReport sample_report(std::size_t stages = 3) {
  sim::SimReport r;
  r.program_name = "prog:with,separators\nand a newline";
  r.arch_name = "sparsetrain-168pe";
  r.backend = "sparsetrain";
  r.profile_name = "pruned-p0.9";
  r.engine = isa::EngineKind::Statistical;
  r.clock_ghz = 0.1 + 1.0 / 3.0;
  r.total_pes = 168;
  r.total_cycles = 123456789;
  r.activity = {11, 22, 33, 44, 55};
  r.energy = {1.0 / 3.0, 3.14159265358979, 2.0 / 7.0, 1e-17};
  for (std::size_t i = 0; i < stages; ++i) {
    sim::StageReport s;
    s.layer_index = i;
    s.layer_name = "conv" + std::to_string(i) + ":a,b\nc";
    s.stage = i % 2 ? isa::Stage::GTA : isa::Stage::Forward;
    s.cycles = 1000 + i;
    s.activity = {i, i + 1, i + 2, i + 3, i + 4};
    s.energy = {0.1 * static_cast<double>(i + 1), 1.0 / 7.0, 2.0 / 9.0,
                1e300};
    r.stages.push_back(std::move(s));
  }
  return r;
}

TEST(ReportIo, RoundTripIsByteExact) {
  const sim::SimReport r = sample_report();
  const std::string payload = serve::serialize_report(r);
  const sim::SimReport back = serve::parse_report(payload);
  // Byte-exact: re-serialising the parsed report reproduces the payload,
  // which implies every double's bit pattern survived.
  EXPECT_EQ(serve::serialize_report(back), payload);
  EXPECT_EQ(back.program_name, r.program_name);
  EXPECT_EQ(back.stages.size(), r.stages.size());
  EXPECT_EQ(back.stages[1].layer_name, r.stages[1].layer_name);
  EXPECT_EQ(back.total_cycles, r.total_cycles);
  EXPECT_EQ(back.energy.comb_pj, r.energy.comb_pj);  // exact, not near
  EXPECT_EQ(back.clock_ghz, r.clock_ghz);
}

TEST(ReportIo, RejectsCorruptPayloads) {
  const std::string payload = serve::serialize_report(sample_report());
  EXPECT_THROW(serve::parse_report(""), ContractError);
  EXPECT_THROW(serve::parse_report("sparsetrain.report/v2\n"),
               ContractError);
  EXPECT_THROW(
      serve::parse_report(payload.substr(0, payload.size() / 2)),
      ContractError);
  EXPECT_THROW(serve::parse_report(payload + "extra"), ContractError);
}

TEST(Store, PutGetCountersAndReopen) {
  const std::string dir = fresh_dir("put_get");
  const sim::SimReport r = sample_report();
  {
    ResultStore store(dir);
    sim::SimReport out;
    EXPECT_FALSE(store.get_result(1, out));
    store.put_result(1, r);
    EXPECT_TRUE(store.get_result(1, out));
    EXPECT_EQ(serve::serialize_report(out), serve::serialize_report(r));
    const auto s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_GT(s.bytes, 0u);

    serve::ProgramMeta meta{"tiny-b1", isa::EngineKind::Statistical, 1, 42};
    EXPECT_FALSE(store.contains_program(7));
    store.put_program(7, meta);
    EXPECT_TRUE(store.contains_program(7));
  }
  // A fresh instance on the same directory sees everything.
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(reopened.stats().program_entries, 1u);
  sim::SimReport out;
  ASSERT_TRUE(reopened.get_result(1, out));
  EXPECT_EQ(serve::serialize_report(out), serve::serialize_report(r));
  serve::ProgramMeta meta;
  ASSERT_TRUE(reopened.get_program(7, meta));
  EXPECT_EQ(meta.name, "tiny-b1");
  EXPECT_EQ(meta.instructions, 42u);
  fs::remove_all(dir);
}

TEST(Store, TornRecordIsSkippedAtOpen) {
  const std::string dir = fresh_dir("torn");
  {
    ResultStore store(dir);
    store.put_result(1, sample_report());
    store.put_result(2, sample_report(5));
  }
  // Tear the second record the way a crash mid-write would (the rename
  // discipline makes this impossible in normal operation, but a record
  // can still rot on disk).
  std::size_t torn = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/results")) {
    if (torn == 0) {
      const auto size = fs::file_size(entry.path());
      fs::resize_file(entry.path(), size / 2);
      ++torn;
    }
  }
  ASSERT_EQ(torn, 1u);

  ResultStore reopened(dir);
  const auto s = reopened.stats();
  EXPECT_EQ(s.torn_skipped, 1u);
  EXPECT_EQ(s.entries, 1u);
  // The intact record still reads; the torn one is a clean miss.
  sim::SimReport out;
  EXPECT_EQ(reopened.get_result(1, out) ? 1 : 0,
            reopened.get_result(2, out) ? 0 : 1);
  // And the torn file was removed, so the next open is quiet.
  ResultStore again(dir);
  EXPECT_EQ(again.stats().torn_skipped, 0u);
  EXPECT_EQ(again.stats().entries, 1u);
  fs::remove_all(dir);
}

TEST(Store, ConcurrentWritersAreSafe) {
  const std::string dir = fresh_dir("concurrent");
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 16;
  {
    ResultStore store(dir);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t]() {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          store.put_result(t * 1000 + i, sample_report(1 + i % 3));
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(store.stats().entries, kThreads * kPerThread);
  }
  // Every record survives a reopen intact.
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.stats().entries, kThreads * kPerThread);
  EXPECT_EQ(reopened.stats().torn_skipped, 0u);
  sim::SimReport out;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(reopened.get_result(t * 1000 + i, out));
    }
  }
  fs::remove_all(dir);
}

TEST(Store, EvictionRespectsCapAndRecency) {
  const std::string dir = fresh_dir("evict");
  const sim::SimReport r = sample_report();
  const std::uint64_t one =
      static_cast<std::uint64_t>(serve::serialize_report(r).size());
  StoreOptions opts;
  opts.max_bytes = 3 * one + one / 2;  // room for three records
  ResultStore store(dir, opts);
  store.put_result(1, r);
  store.put_result(2, r);
  store.put_result(3, r);
  EXPECT_EQ(store.stats().evictions, 0u);

  // Touch 1 so it is more recent than 2; the next put evicts 2 (LRU).
  sim::SimReport out;
  ASSERT_TRUE(store.get_result(1, out));
  store.put_result(4, r);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().entries, 3u);
  EXPECT_LE(store.stats().bytes, opts.max_bytes);
  EXPECT_TRUE(store.contains_result(1));
  EXPECT_FALSE(store.contains_result(2));
  EXPECT_TRUE(store.contains_result(3));
  EXPECT_TRUE(store.contains_result(4));

  // A cap smaller than one record still keeps the just-published record.
  const std::string dir2 = fresh_dir("evict_small");
  StoreOptions tiny;
  tiny.max_bytes = 1;
  ResultStore small(dir2, tiny);
  small.put_result(1, r);
  EXPECT_TRUE(small.contains_result(1));
  small.put_result(2, r);
  EXPECT_FALSE(small.contains_result(1));
  EXPECT_TRUE(small.contains_result(2));
  fs::remove_all(dir);
  fs::remove_all(dir2);
}

TEST(Store, RecencySurvivesReopen) {
  const std::string dir = fresh_dir("recency");
  const sim::SimReport r = sample_report();
  const std::uint64_t one =
      static_cast<std::uint64_t>(serve::serialize_report(r).size());
  {
    ResultStore store(dir);
    store.put_result(1, r);
    store.put_result(2, r);
  }
  StoreOptions opts;
  opts.max_bytes = 2 * one + one / 2;
  ResultStore reopened(dir, opts);
  // Oldest-by-mtime is 1; publishing a third record evicts it.
  reopened.put_result(3, r);
  EXPECT_EQ(reopened.stats().evictions, 1u);
  EXPECT_FALSE(reopened.contains_result(1));
  EXPECT_TRUE(reopened.contains_result(2));
  EXPECT_TRUE(reopened.contains_result(3));
  fs::remove_all(dir);
}

// ---------------------------------------------------------- fingerprints

serve::EvalJob golden_job() {
  serve::EvalJob job;
  job.net = workload::tiny_workload();
  job.profile = workload::SparsityProfile::pruned(job.net, 0.9);
  job.copts = compiler::CompileOptions{};
  job.backend = "sparsetrain";
  job.backend_kind = "accelerator";
  job.arch = sim::ArchConfig{};
  job.run_seed = 42;
  return job;
}

TEST(Fingerprint, GoldenValueIsFrozen) {
  // The v1 fingerprint of this fixed job is part of the on-disk format:
  // if this value changes, every existing store goes silently cold. Do
  // NOT update the constant to make the test pass — add a result-
  // affecting field to canonical_job_key_v1 only together with a v2
  // canonicalisation (see serve/job.hpp).
  const std::uint64_t fp = serve::fingerprint_v1(golden_job());
  const std::uint64_t kGolden = 0x2405b78dd893c8c7u;
  EXPECT_EQ(fp, kGolden) << "actual fingerprint: 0x" << std::hex << fp;
}

TEST(Fingerprint, SensitiveToEveryResultAffectingField) {
  const serve::EvalJob base = golden_job();
  const std::uint64_t fp = serve::fingerprint_v1(base);

  auto differs = [&](auto mutate) {
    serve::EvalJob j = golden_job();
    mutate(j);
    return serve::fingerprint_v1(j) != fp;
  };
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.run_seed = 43; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.backend = "other"; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.backend_kind = "exact"; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.arch.pe_groups += 1; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.arch.clock_ghz *= 2.0; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.arch.seed += 1; }));
  EXPECT_TRUE(
      differs([](serve::EvalJob& j) { j.arch.max_sched_samples += 1; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) { j.copts.batch = 2; }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) {
    j.copts.engine = isa::EngineKind::Exact;
  }));
  EXPECT_TRUE(differs([](serve::EvalJob& j) {
    j.profile = workload::SparsityProfile::pruned(j.net, 0.8);
  }));
  // The component form and the EvalJob form agree.
  EXPECT_EQ(serve::fingerprint_v1(base.net, base.profile, base.copts,
                                  base.backend, base.backend_kind, base.arch,
                                  base.run_seed),
            fp);
}

}  // namespace
}  // namespace sparsetrain
