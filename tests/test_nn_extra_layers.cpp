// Tests for the classic-AlexNet extras: LRN, Dropout, windowed AvgPool,
// and the classic model builder.
#include <gtest/gtest.h>

#include "nn/avgpool.hpp"
#include "nn/dropout.hpp"
#include "nn/lrn.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::nn {
namespace {

float weighted_sum(const Tensor& out, const Tensor& coeffs) {
  float s = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) s += out[i] * coeffs[i];
  return s;
}

TEST(LrnLayer, UnitWindowMatchesFormula) {
  LrnConfig cfg;
  cfg.size = 1;
  cfg.alpha = 1.0f;
  cfg.beta = 1.0f;
  cfg.k = 1.0f;
  Lrn lrn(cfg);
  Tensor in(Shape{1, 1, 1, 1}, {2.0f});
  const Tensor out = lrn.forward(in, false);
  // b = a / (k + α·a²) = 2 / (1 + 4) = 0.4
  EXPECT_NEAR(out[0], 0.4f, 1e-6f);
}

TEST(LrnLayer, NormalisesAcrossChannelsOnly) {
  Lrn lrn;
  Rng rng(61);
  Tensor in(Shape{1, 4, 2, 2});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = lrn.forward(in, false);
  EXPECT_EQ(out.shape(), in.shape());
  // Output magnitude never exceeds input magnitude (denominator ≥ k = 2 > 1
  // raised to β > 0 keeps |b| < |a|).
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_LE(std::abs(out[i]), std::abs(in[i]) + 1e-6f);
}

TEST(LrnLayer, GradientsMatchFiniteDifference) {
  Lrn lrn;
  Rng rng(62);
  Tensor in(Shape{1, 3, 3, 3});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = lrn.forward(in, true);
  Tensor coeffs(out.shape());
  coeffs.fill_normal(rng, 0.0f, 1.0f);
  const Tensor grad = lrn.backward(coeffs);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < in.size(); i += 3) {
    Tensor plus = in, minus = in;
    plus[i] += eps;
    minus[i] -= eps;
    const float fp = weighted_sum(lrn.forward(plus, true), coeffs);
    const float fm = weighted_sum(lrn.forward(minus, true), coeffs);
    EXPECT_NEAR(grad[i], (fp - fm) / (2 * eps), 2e-2f) << "index " << i;
  }
}

TEST(DropoutLayer, EvalModeIsIdentity) {
  Dropout drop(0.5f, Rng(63));
  Rng rng(64);
  Tensor in(Shape::vec(100));
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = drop.forward(in, false);
  EXPECT_TRUE(allclose(out, in));
}

TEST(DropoutLayer, TrainingDropsAtConfiguredRate) {
  Dropout drop(0.3f, Rng(65));
  Tensor in(Shape::vec(20000));
  in.fill(1.0f);
  const Tensor out = drop.forward(in, true);
  const double kept =
      static_cast<double>(out.nnz()) / static_cast<double>(out.size());
  EXPECT_NEAR(kept, 0.7, 0.02);
  // Survivors are scaled to preserve the expectation.
  double sum = 0.0;
  for (float x : out.flat()) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(out.size()), 1.0, 0.05);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout drop(0.5f, Rng(66));
  Tensor in(Shape::vec(1000));
  in.fill(1.0f);
  const Tensor out = drop.forward(in, true);
  Tensor g(Shape::vec(1000));
  g.fill(1.0f);
  const Tensor gi = drop.backward(g);
  // Gradient flows exactly where activations survived.
  for (std::size_t i = 0; i < 1000; ++i)
    EXPECT_FLOAT_EQ(gi[i], out[i]);
}

TEST(DropoutLayer, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0f, Rng(1)), ContractError);
  EXPECT_THROW(Dropout(-0.1f, Rng(1)), ContractError);
}

TEST(AvgPoolLayer, AveragesWindows) {
  AvgPool2D pool(2, 2);
  Tensor in(Shape{1, 1, 2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor out = pool.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), (1 + 2 + 5 + 6) / 4.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), (3 + 4 + 7 + 8) / 4.0f);
}

TEST(AvgPoolLayer, BackwardSpreadsUniformly) {
  AvgPool2D pool(2, 2);
  Tensor in(Shape{1, 1, 2, 2});
  (void)pool.forward(in, true);
  Tensor g(Shape{1, 1, 1, 1}, {8.0f});
  const Tensor gi = pool.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gi[i], 2.0f);
}

TEST(AvgPoolLayer, OverlappingWindowsSupported) {
  // AlexNet's 3x3/2 overlapping pooling geometry.
  AvgPool2D pool(3, 2);
  Tensor in(Shape{1, 1, 7, 7});
  EXPECT_EQ(pool.output_shape(in.shape()), (Shape{1, 1, 3, 3}));
}

TEST(ClassicAlexNet, BuildsAndTrains) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 3;
  dcfg.samples = 72;
  dcfg.height = 16;
  dcfg.width = 16;
  dcfg.seed = 67;
  const data::SyntheticDataset train(dcfg);

  models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};
  auto net = models::alexnet_s_classic(mi, 6);
  Rng rng(68);
  kaiming_init(*net, rng);

  TrainConfig tcfg;
  tcfg.batch_size = 12;
  tcfg.epochs = 4;
  tcfg.sgd.learning_rate = 0.03f;
  Trainer trainer(*net, tcfg);
  const TrainResult r = trainer.fit(train, train);
  EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
}

TEST(ClassicAlexNet, StructureWalkerStillFindsConvReLU) {
  // LRN sits between conv and pool, but conv is still not followed by BN →
  // the dI pruning position applies.
  auto net = models::alexnet_s_classic(models::ModelInput{}, 6);
  std::size_t convs = 0, with_bn = 0;
  net->for_each_conv_structure([&](Conv2D&, bool bn) {
    ++convs;
    if (bn) ++with_bn;
  });
  EXPECT_EQ(convs, 3u);
  EXPECT_EQ(with_bn, 0u);
}

}  // namespace
}  // namespace sparsetrain::nn
