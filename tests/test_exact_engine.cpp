// Exact-engine tests, including the cross-validation of the statistical
// accelerator model against exact tensor-driven cycle counts — the test
// that grounds every Fig. 8/9 number this repository produces.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "sim/exact_engine.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {
namespace {

dataflow::ConvGeometry geo_3x3(std::size_t c, std::size_t f) {
  dataflow::ConvGeometry geo;
  geo.in_channels = c;
  geo.out_channels = f;
  return geo;
}

void expect_identical(const ExactStageResult& a, const ExactStageResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.row_ops, b.row_ops);
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.activity.busy_cycles, b.activity.busy_cycles);
  EXPECT_EQ(a.activity.macs, b.activity.macs);
  EXPECT_EQ(a.activity.reg_accesses, b.activity.reg_accesses);
}

TEST(ExactEngine, RequiresSparseMode) {
  ArchConfig cfg;
  cfg.sparse = false;
  EXPECT_THROW(ExactEngine{cfg}, ContractError);
}

TEST(ExactEngine, ForwardCountsMatchHandComputation) {
  // 1 group, 1 PE per group → makespan = sum of all op cycles.
  ArchConfig cfg;
  cfg.pe_groups = 1;
  cfg.pes_per_group = 1;
  ExactEngine engine(cfg);

  Tensor input(Shape{1, 1, 3, 4});
  // Row nnz: 2, 0, 1.
  input.at(0, 0, 0, 0) = 1.0f;
  input.at(0, 0, 0, 2) = 2.0f;
  input.at(0, 0, 2, 3) = 3.0f;

  const auto r = engine.run_forward(input, geo_3x3(1, 1));
  // Tasks: 3 output rows; row ops with valid iy: oy0→ky1,2; oy1→ky0,1,2;
  // oy2→ky0,1 ⇒ 7 ops. Cycles per op: wload(2) + nnz + drain(2).
  EXPECT_EQ(r.tasks, 3u);
  EXPECT_EQ(r.row_ops, 7u);
  // nnz per input row: row0=2 (used by ops with iy=0: oy0/ky1? iy=oy+ky-1)
  // ops touching iy0: (oy0,ky1),(oy1,ky0) → 2 ops × 2 nnz
  // iy1 (nnz 0): (oy0,ky2),(oy1,ky1),(oy2,ky0) → 3 ops × 0
  // iy2 (nnz 1): (oy1,ky2),(oy2,ky1) → 2 ops × 1 nnz
  const std::size_t expected_busy = 7 * 4 + 2 * 2 + 2 * 1;
  EXPECT_EQ(r.activity.busy_cycles, expected_busy);
  EXPECT_EQ(r.cycles, expected_busy);  // single PE: serial
}

TEST(ExactEngine, ZeroGradRowsScheduleNoGtwOps) {
  ArchConfig cfg;
  cfg.pe_groups = 2;
  ExactEngine engine(cfg);
  Rng rng(7);
  Tensor input(Shape{1, 2, 6, 6});
  input.fill_sparse_normal(rng, 0.5);
  Tensor grad(Shape{1, 2, 6, 6});  // all zero
  const auto r = engine.run_gtw(grad, input, geo_3x3(2, 2));
  EXPECT_EQ(r.row_ops, 0u);
  EXPECT_EQ(r.activity.macs, 0u);
}

TEST(ExactEngine, MaskReducesGtaWork) {
  ArchConfig cfg;
  ExactEngine engine(cfg);
  Rng rng(8);
  const Shape in_shape{1, 2, 8, 8};
  Tensor grad(Shape{1, 2, 8, 8});
  grad.fill_sparse_normal(rng, 0.5);
  Tensor mask(in_shape);
  mask.fill_sparse_normal(rng, 0.3);
  for (float& v : mask.flat())
    if (v != 0.0f) v = 1.0f;

  const auto full = engine.run_gta(grad, in_shape, nullptr, geo_3x3(2, 2));
  const auto masked = engine.run_gta(grad, in_shape, &mask, geo_3x3(2, 2));
  EXPECT_LT(masked.activity.macs, full.activity.macs);
  EXPECT_LE(masked.activity.busy_cycles, full.activity.busy_cycles);
}

TEST(ExactEngine, MoreGroupsShortenMakespan) {
  Rng rng(9);
  Tensor input(Shape{1, 4, 12, 12});
  input.fill_sparse_normal(rng, 0.5);
  ArchConfig small;
  small.pe_groups = 2;
  ArchConfig large;
  large.pe_groups = 16;
  const auto rs = ExactEngine(small).run_forward(input, geo_3x3(4, 8));
  const auto rl = ExactEngine(large).run_forward(input, geo_3x3(4, 8));
  EXPECT_GT(rs.cycles, rl.cycles);
  // Same total work either way.
  EXPECT_EQ(rs.activity.busy_cycles, rl.activity.busy_cycles);
  EXPECT_EQ(rs.activity.macs, rl.activity.macs);
}

// Regression for the empty-stage edge cases: a stage with zero scheduled
// row ops must report utilization 0, never NaN or a division by zero.
TEST(ExactEngine, EmptyStageUtilizationIsZeroNotNaN) {
  const ExactStageResult empty;
  EXPECT_EQ(empty.utilization(168), 0.0);
  EXPECT_EQ(empty.utilization(0), 0.0);

  ArchConfig cfg;
  ExactEngine engine(cfg);
  Rng rng(12);
  Tensor input(Shape{1, 2, 6, 6});
  input.fill_sparse_normal(rng, 0.5);
  Tensor zero_grad(Shape{1, 2, 6, 6});  // all zero → no GTW row ops
  const auto r = engine.run_gtw(zero_grad, input, geo_3x3(2, 2));
  EXPECT_EQ(r.row_ops, 0u);
  EXPECT_EQ(r.cycles, 0u);
  const double u = r.utilization(cfg.pe_groups * cfg.pes_per_group);
  EXPECT_FALSE(std::isnan(u));
  EXPECT_EQ(u, 0.0);

  // Busy stages still report sane utilization against any PE count.
  const auto f = engine.run_forward(input, geo_3x3(2, 2));
  EXPECT_GT(f.cycles, 0u);
  EXPECT_EQ(f.utilization(0), 0.0);
  EXPECT_GT(f.utilization(1), 0.0);
}

// The parallel tiling contract: results are byte-identical to the serial
// path for any worker count and any tile size, on all three stages.
TEST(ExactEngineParallel, IdenticalForAnyWorkersAndTileSize) {
  Rng rng(21);
  const auto geo = [] {
    auto g = geo_3x3(6, 12);
    g.kernel = 3;
    g.stride = 2;
    g.padding = 1;
    return g;
  }();
  Tensor input(Shape{2, 6, 24, 24});
  input.fill_sparse_normal(rng, 0.4);
  const Shape out_shape = dataflow::conv_output_shape(geo, input.shape());
  Tensor grad(out_shape);
  grad.fill_sparse_normal(rng, 0.3);
  Tensor mask(input.shape());
  mask.fill_sparse_normal(rng, 0.5);
  for (float& v : mask.flat())
    if (v != 0.0f) v = 1.0f;

  ArchConfig cfg;
  const ExactEngine serial(cfg);  // workers = 1: no pool at all
  const auto fwd = serial.run_forward(input, geo);
  const auto gta = serial.run_gta(grad, input.shape(), &mask, geo);
  const auto gtw = serial.run_gtw(grad, input, geo);
  EXPECT_GT(fwd.cycles, 0u);
  EXPECT_GT(gta.cycles, 0u);
  EXPECT_GT(gtw.cycles, 0u);

  for (const std::size_t workers :
       {std::size_t{2}, std::size_t{7}, std::size_t{8}}) {
    // tile 0 = adaptive sizing; 1000000 = one tile for the whole stage.
    for (const std::size_t tile :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{1000000}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " tile=" + std::to_string(tile));
      ExactOptions opts;
      opts.workers = workers;
      opts.tile_tasks = tile;
      const ExactEngine parallel(cfg, opts);
      expect_identical(parallel.run_forward(input, geo), fwd);
      expect_identical(parallel.run_gta(grad, input.shape(), &mask, geo),
                       gta);
      expect_identical(parallel.run_gtw(grad, input, geo), gtw);
    }
  }
}

// Acceptance: a full-size AlexNet CONV layer (conv2 at ImageNet scale,
// 96→256 channels over 27×27, 5×5 kernel — the workload zoo geometry)
// simulates exactly with 4 workers, byte-identical to the serial path.
TEST(ExactEngineParallel, FullSizeAlexNetConvLayerMatchesSerial) {
  const workload::LayerConfig& l =
      workload::find_layer("AlexNet/ImageNet", "conv2");
  const dataflow::ConvGeometry geo = dataflow::layer_geometry(l);

  Rng rng(31);
  Tensor input(Shape{1, l.in_channels, l.in_h, l.in_w});
  input.fill_sparse_normal(rng, 0.35);
  Tensor grad(Shape{1, l.out_channels, l.out_h(), l.out_w()});
  grad.fill_sparse_normal(rng, 0.1);

  ArchConfig cfg;
  ExactOptions quad;
  quad.workers = 4;
  const ExactEngine serial(cfg);
  const ExactEngine parallel(cfg, quad);

  const auto fwd_s = serial.run_forward(input, geo);
  const auto fwd_p = parallel.run_forward(input, geo);
  EXPECT_GT(fwd_s.cycles, 0u);
  EXPECT_EQ(fwd_s.tasks,
            static_cast<std::size_t>(l.out_channels) * l.out_h());
  expect_identical(fwd_p, fwd_s);

  expect_identical(parallel.run_gtw(grad, input, geo),
                   serial.run_gtw(grad, input, geo));
}

// The cross-validation: statistical engine vs exact engine on matched
// workloads. The statistical model samples binomial nonzero counts from
// the measured densities, so stage cycles must agree within a few percent.
class StatVsExact : public ::testing::TestWithParam<double> {};

TEST_P(StatVsExact, ForwardCyclesAgree) {
  const double density = GetParam();
  Rng rng(42);
  const std::size_t C = 8, F = 16, H = 20, W = 20;
  Tensor input(Shape{1, C, H, W});
  input.fill_sparse_normal(rng, density);

  // Exact.
  ArchConfig cfg;
  const auto exact = ExactEngine(cfg).run_forward(input, [&] {
    dataflow::ConvGeometry g;
    g.in_channels = C;
    g.out_channels = F;
    return g;
  }());

  // Statistical: a one-layer workload with the measured density.
  workload::NetworkConfig net;
  net.name = "probe";
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = C;
  l.in_h = H;
  l.in_w = W;
  l.out_channels = F;
  l.first_layer = true;
  net.layers = {l};
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = input.density();
  const workload::SparsityProfile profile("measured", densities);
  compiler::CompileOptions opts;
  opts.gta = false;
  opts.gtw = false;
  const auto prog = compiler::compile(net, profile, opts);
  const auto stat = Accelerator(cfg).run(prog, net, profile);

  EXPECT_NEAR(static_cast<double>(stat.total_cycles),
              static_cast<double>(exact.cycles),
              0.08 * static_cast<double>(exact.cycles))
      << "density " << density;
  EXPECT_NEAR(static_cast<double>(stat.activity.macs),
              static_cast<double>(exact.activity.macs),
              0.10 * static_cast<double>(exact.activity.macs) + 100.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, StatVsExact,
                         ::testing::Values(0.15, 0.35, 0.6, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(StatVsExactGtw, CyclesAgreeOnSparseSparse) {
  Rng rng(43);
  const std::size_t C = 6, F = 8, H = 16, W = 16;
  Tensor input(Shape{1, C, H, W});
  input.fill_sparse_normal(rng, 0.5);
  Tensor grad(Shape{1, F, H, W});
  grad.fill_sparse_normal(rng, 0.3);

  ArchConfig cfg;
  dataflow::ConvGeometry g;
  g.in_channels = C;
  g.out_channels = F;
  const auto exact = ExactEngine(cfg).run_gtw(grad, input, g);

  workload::NetworkConfig net;
  net.name = "probe";
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = C;
  l.in_h = H;
  l.in_w = W;
  l.out_channels = F;
  l.first_layer = true;
  net.layers = {l};
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = input.density();
  densities[0].output_grads = grad.density();
  const workload::SparsityProfile profile("measured", densities);
  compiler::CompileOptions opts;
  opts.forward = false;
  opts.gta = false;
  const auto prog = compiler::compile(net, profile, opts);
  const auto stat = Accelerator(cfg).run(prog, net, profile);

  // GTW's chunked cost is harder to approximate; 20% band.
  EXPECT_NEAR(static_cast<double>(stat.total_cycles),
              static_cast<double>(exact.cycles),
              0.20 * static_cast<double>(exact.cycles));
}

}  // namespace
}  // namespace sparsetrain::sim
