// Exact-engine tests, including the cross-validation of the statistical
// accelerator model against exact tensor-driven cycle counts — the test
// that grounds every Fig. 8/9 number this repository produces.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "sim/exact_engine.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {
namespace {

dataflow::ConvGeometry geo_3x3(std::size_t c, std::size_t f) {
  dataflow::ConvGeometry geo;
  geo.in_channels = c;
  geo.out_channels = f;
  return geo;
}

TEST(ExactEngine, RequiresSparseMode) {
  ArchConfig cfg;
  cfg.sparse = false;
  EXPECT_THROW(ExactEngine{cfg}, ContractError);
}

TEST(ExactEngine, ForwardCountsMatchHandComputation) {
  // 1 group, 1 PE per group → makespan = sum of all op cycles.
  ArchConfig cfg;
  cfg.pe_groups = 1;
  cfg.pes_per_group = 1;
  ExactEngine engine(cfg);

  Tensor input(Shape{1, 1, 3, 4});
  // Row nnz: 2, 0, 1.
  input.at(0, 0, 0, 0) = 1.0f;
  input.at(0, 0, 0, 2) = 2.0f;
  input.at(0, 0, 2, 3) = 3.0f;

  const auto r = engine.run_forward(input, geo_3x3(1, 1));
  // Tasks: 3 output rows; row ops with valid iy: oy0→ky1,2; oy1→ky0,1,2;
  // oy2→ky0,1 ⇒ 7 ops. Cycles per op: wload(2) + nnz + drain(2).
  EXPECT_EQ(r.tasks, 3u);
  EXPECT_EQ(r.row_ops, 7u);
  // nnz per input row: row0=2 (used by ops with iy=0: oy0/ky1? iy=oy+ky-1)
  // ops touching iy0: (oy0,ky1),(oy1,ky0) → 2 ops × 2 nnz
  // iy1 (nnz 0): (oy0,ky2),(oy1,ky1),(oy2,ky0) → 3 ops × 0
  // iy2 (nnz 1): (oy1,ky2),(oy2,ky1) → 2 ops × 1 nnz
  const std::size_t expected_busy = 7 * 4 + 2 * 2 + 2 * 1;
  EXPECT_EQ(r.activity.busy_cycles, expected_busy);
  EXPECT_EQ(r.cycles, expected_busy);  // single PE: serial
}

TEST(ExactEngine, ZeroGradRowsScheduleNoGtwOps) {
  ArchConfig cfg;
  cfg.pe_groups = 2;
  ExactEngine engine(cfg);
  Rng rng(7);
  Tensor input(Shape{1, 2, 6, 6});
  input.fill_sparse_normal(rng, 0.5);
  Tensor grad(Shape{1, 2, 6, 6});  // all zero
  const auto r = engine.run_gtw(grad, input, geo_3x3(2, 2));
  EXPECT_EQ(r.row_ops, 0u);
  EXPECT_EQ(r.activity.macs, 0u);
}

TEST(ExactEngine, MaskReducesGtaWork) {
  ArchConfig cfg;
  ExactEngine engine(cfg);
  Rng rng(8);
  const Shape in_shape{1, 2, 8, 8};
  Tensor grad(Shape{1, 2, 8, 8});
  grad.fill_sparse_normal(rng, 0.5);
  Tensor mask(in_shape);
  mask.fill_sparse_normal(rng, 0.3);
  for (float& v : mask.flat())
    if (v != 0.0f) v = 1.0f;

  const auto full = engine.run_gta(grad, in_shape, nullptr, geo_3x3(2, 2));
  const auto masked = engine.run_gta(grad, in_shape, &mask, geo_3x3(2, 2));
  EXPECT_LT(masked.activity.macs, full.activity.macs);
  EXPECT_LE(masked.activity.busy_cycles, full.activity.busy_cycles);
}

TEST(ExactEngine, MoreGroupsShortenMakespan) {
  Rng rng(9);
  Tensor input(Shape{1, 4, 12, 12});
  input.fill_sparse_normal(rng, 0.5);
  ArchConfig small;
  small.pe_groups = 2;
  ArchConfig large;
  large.pe_groups = 16;
  const auto rs = ExactEngine(small).run_forward(input, geo_3x3(4, 8));
  const auto rl = ExactEngine(large).run_forward(input, geo_3x3(4, 8));
  EXPECT_GT(rs.cycles, rl.cycles);
  // Same total work either way.
  EXPECT_EQ(rs.activity.busy_cycles, rl.activity.busy_cycles);
  EXPECT_EQ(rs.activity.macs, rl.activity.macs);
}

// The cross-validation: statistical engine vs exact engine on matched
// workloads. The statistical model samples binomial nonzero counts from
// the measured densities, so stage cycles must agree within a few percent.
class StatVsExact : public ::testing::TestWithParam<double> {};

TEST_P(StatVsExact, ForwardCyclesAgree) {
  const double density = GetParam();
  Rng rng(42);
  const std::size_t C = 8, F = 16, H = 20, W = 20;
  Tensor input(Shape{1, C, H, W});
  input.fill_sparse_normal(rng, density);

  // Exact.
  ArchConfig cfg;
  const auto exact = ExactEngine(cfg).run_forward(input, [&] {
    dataflow::ConvGeometry g;
    g.in_channels = C;
    g.out_channels = F;
    return g;
  }());

  // Statistical: a one-layer workload with the measured density.
  workload::NetworkConfig net;
  net.name = "probe";
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = C;
  l.in_h = H;
  l.in_w = W;
  l.out_channels = F;
  l.first_layer = true;
  net.layers = {l};
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = input.density();
  const workload::SparsityProfile profile("measured", densities);
  compiler::CompileOptions opts;
  opts.gta = false;
  opts.gtw = false;
  const auto prog = compiler::compile(net, profile, opts);
  const auto stat = Accelerator(cfg).run(prog, net, profile);

  EXPECT_NEAR(static_cast<double>(stat.total_cycles),
              static_cast<double>(exact.cycles),
              0.08 * static_cast<double>(exact.cycles))
      << "density " << density;
  EXPECT_NEAR(static_cast<double>(stat.activity.macs),
              static_cast<double>(exact.activity.macs),
              0.10 * static_cast<double>(exact.activity.macs) + 100.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, StatVsExact,
                         ::testing::Values(0.15, 0.35, 0.6, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(StatVsExactGtw, CyclesAgreeOnSparseSparse) {
  Rng rng(43);
  const std::size_t C = 6, F = 8, H = 16, W = 16;
  Tensor input(Shape{1, C, H, W});
  input.fill_sparse_normal(rng, 0.5);
  Tensor grad(Shape{1, F, H, W});
  grad.fill_sparse_normal(rng, 0.3);

  ArchConfig cfg;
  dataflow::ConvGeometry g;
  g.in_channels = C;
  g.out_channels = F;
  const auto exact = ExactEngine(cfg).run_gtw(grad, input, g);

  workload::NetworkConfig net;
  net.name = "probe";
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = C;
  l.in_h = H;
  l.in_w = W;
  l.out_channels = F;
  l.first_layer = true;
  net.layers = {l};
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = input.density();
  densities[0].output_grads = grad.density();
  const workload::SparsityProfile profile("measured", densities);
  compiler::CompileOptions opts;
  opts.forward = false;
  opts.gta = false;
  const auto prog = compiler::compile(net, profile, opts);
  const auto stat = Accelerator(cfg).run(prog, net, profile);

  // GTW's chunked cost is harder to approximate; 20% band.
  EXPECT_NEAR(static_cast<double>(stat.total_cycles),
              static_cast<double>(exact.cycles),
              0.20 * static_cast<double>(exact.cycles));
}

}  // namespace
}  // namespace sparsetrain::sim
