// Randomised equivalence fuzzing: the 1-D row decomposition must match the
// dense Conv2D layer for random geometries, shapes and sparsity patterns.
// This is the strongest correctness guarantee behind the simulator's work
// counting, so it gets dedicated property-style coverage beyond the fixed
// parameterised geometries in test_dataflow.cpp.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.hpp"
#include "dataflow/conv_decompose.hpp"
#include "nn/conv2d.hpp"
#include "sim/accelerator.hpp"
#include "sim/exact_engine.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::dataflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class DataflowFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DataflowFuzz, AllThreeStagesMatchDense) {
  Rng rng(GetParam().seed);

  // Random geometry within simulator-realistic ranges.
  const std::size_t kernel = 1 + 2 * rng.uniform_index(3);     // 1, 3, 5
  const std::size_t stride = 1 + rng.uniform_index(2);         // 1, 2
  const std::size_t padding = rng.uniform_index(kernel);       // < K
  const std::size_t in_c = 1 + rng.uniform_index(3);
  const std::size_t out_c = 1 + rng.uniform_index(4);
  const std::size_t h = kernel + rng.uniform_index(8);
  const std::size_t w = kernel + rng.uniform_index(10);
  const std::size_t n = 1 + rng.uniform_index(2);
  const double in_density = 0.1 + 0.9 * rng.uniform();
  const double grad_density = 0.1 + 0.9 * rng.uniform();

  if (h + 2 * padding < kernel || w + 2 * padding < kernel) GTEST_SKIP();

  nn::Conv2DConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = kernel;
  cfg.stride = stride;
  cfg.padding = padding;
  cfg.bias = rng.bernoulli(0.5);
  nn::Conv2D conv(cfg);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.4f);

  ConvGeometry geo;
  geo.in_channels = in_c;
  geo.out_channels = out_c;
  geo.kernel = kernel;
  geo.stride = stride;
  geo.padding = padding;

  Tensor input(Shape{n, in_c, h, w});
  input.fill_sparse_normal(rng, in_density);

  // Forward.
  const Tensor dense_out = conv.forward(input, true);
  const Tensor row_out =
      forward_by_rows(input, conv.weight().value,
                      cfg.bias ? &conv.bias_param().value : nullptr, geo);
  ASSERT_EQ(dense_out.shape(), row_out.shape());
  EXPECT_LT(max_abs_diff(dense_out, row_out), 1e-3f)
      << "k=" << kernel << " s=" << stride << " p=" << padding;

  // Backward operand.
  Tensor grad_out(dense_out.shape());
  grad_out.fill_sparse_normal(rng, grad_density);

  const Tensor dense_dI = conv.backward(grad_out);
  const Tensor row_dI = gta_by_rows(grad_out, conv.weight().value,
                                    input.shape(), nullptr, geo);
  EXPECT_LT(max_abs_diff(dense_dI, row_dI), 1e-3f);

  Tensor dbias(Shape::vec(out_c));
  const Tensor row_dW = gtw_by_rows(grad_out, input, &dbias, geo);
  EXPECT_LT(max_abs_diff(conv.weight().grad, row_dW), 1e-3f);
  if (cfg.bias)
    EXPECT_LT(max_abs_diff(conv.bias_param().grad, dbias), 1e-3f);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 24; ++s) cases.push_back({s * 7919});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowFuzz,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Odd-geometry fuzz: randomized degenerate geometries — stride > kernel,
// padding == kernel, 1×N and N×1 spatial inputs, 1×1 kernels — run
// through BOTH engines. The functional row decomposition must still match
// the dense conv; the exact engine must be byte-identical serial vs
// parallel and agree with the dataflow work counters; the statistical
// engine must stay finite/sane on geometries its closed forms were never
// tuned for. Each case logs its seed for reproduction.
class OddGeometryFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(OddGeometryFuzz, BothEnginesSurviveDegenerateGeometries) {
  const std::uint64_t seed = GetParam().seed;
  Rng rng(seed);

  const std::size_t kernel = 1 + rng.uniform_index(3);       // 1..3
  const std::size_t stride = 1 + rng.uniform_index(4);       // 1..4 (> K!)
  const std::size_t padding = rng.uniform_index(kernel + 1); // 0..K (== K!)
  const std::size_t in_c = 1 + rng.uniform_index(3);
  const std::size_t out_c = 1 + rng.uniform_index(4);
  std::size_t h = 6 + rng.uniform_index(10);
  std::size_t w = 6 + rng.uniform_index(10);
  switch (rng.uniform_index(3)) {
    case 0: h = 1; break;  // 1×N input rows
    case 1: w = 1; break;  // N×1 input rows
    default: break;
  }
  const double in_density = 0.1 + 0.8 * rng.uniform();
  const double grad_density = 0.1 + 0.8 * rng.uniform();

  if (h + 2 * padding < kernel || w + 2 * padding < kernel) GTEST_SKIP();

  SCOPED_TRACE("seed=" + std::to_string(seed) + " k=" +
               std::to_string(kernel) + " s=" + std::to_string(stride) +
               " p=" + std::to_string(padding) + " c=" +
               std::to_string(in_c) + " f=" + std::to_string(out_c) +
               " h=" + std::to_string(h) + " w=" + std::to_string(w));

  workload::LayerConfig layer;
  layer.name = "conv";
  layer.in_channels = in_c;
  layer.in_h = h;
  layer.in_w = w;
  layer.out_channels = out_c;
  layer.kernel = kernel;
  layer.stride = stride;
  layer.padding = padding;
  const ConvGeometry geo = layer_geometry(layer);

  Tensor input(Shape{1, in_c, h, w});
  input.fill_sparse_normal(rng, in_density);

  // 1) Functional: the row decomposition still matches the dense conv.
  nn::Conv2DConfig ccfg;
  ccfg.in_channels = in_c;
  ccfg.out_channels = out_c;
  ccfg.kernel = kernel;
  ccfg.stride = stride;
  ccfg.padding = padding;
  ccfg.bias = false;
  nn::Conv2D conv(ccfg);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.4f);

  const Tensor dense_out = conv.forward(input, true);
  const Tensor row_out =
      forward_by_rows(input, conv.weight().value, nullptr, geo);
  ASSERT_EQ(dense_out.shape(), row_out.shape());
  EXPECT_LT(max_abs_diff(dense_out, row_out), 1e-3f);

  Tensor grad(dense_out.shape());
  grad.fill_sparse_normal(rng, grad_density);
  const Tensor dense_dI = conv.backward(grad);
  const Tensor row_dI =
      gta_by_rows(grad, conv.weight().value, input.shape(), nullptr, geo);
  EXPECT_LT(max_abs_diff(dense_dI, row_dI), 1e-3f);
  const Tensor row_dW = gtw_by_rows(grad, input, nullptr, geo);
  EXPECT_LT(max_abs_diff(conv.weight().grad, row_dW), 1e-3f);

  // 2) Exact engine: parallel tiles byte-identical to serial, and the
  // stepped MAC counts equal the dataflow ground-truth work.
  sim::ArchConfig acfg;
  acfg.pe_groups = 4;
  const sim::ExactEngine serial(acfg);
  sim::ExactOptions popts;
  popts.workers = 3;
  popts.tile_tasks = 2;
  const sim::ExactEngine parallel(acfg, popts);

  const auto fwd = serial.run_forward(input, geo);
  const auto gta = serial.run_gta(grad, input.shape(), nullptr, geo);
  const auto gtw = serial.run_gtw(grad, input, geo);
  const auto fwd_p = parallel.run_forward(input, geo);
  const auto gta_p = parallel.run_gta(grad, input.shape(), nullptr, geo);
  const auto gtw_p = parallel.run_gtw(grad, input, geo);
  EXPECT_EQ(fwd.cycles, fwd_p.cycles);
  EXPECT_EQ(fwd.activity.busy_cycles, fwd_p.activity.busy_cycles);
  EXPECT_EQ(gta.cycles, gta_p.cycles);
  EXPECT_EQ(gta.activity.busy_cycles, gta_p.activity.busy_cycles);
  EXPECT_EQ(gtw.cycles, gtw_p.cycles);
  EXPECT_EQ(gtw.activity.busy_cycles, gtw_p.activity.busy_cycles);

  EXPECT_EQ(fwd.activity.macs, forward_work(input, geo).work.macs);
  EXPECT_EQ(gta.activity.macs,
            gta_work(grad, input.shape(), nullptr, geo).work.macs);
  EXPECT_EQ(gtw.activity.macs, gtw_work(grad, input, geo).work.macs);

  // 3) Statistical engine: compiles and runs sanely on the same geometry
  // with the measured densities (no NaN, bounded utilization, and within
  // a coarse band of the exact ground truth — degenerate padding can
  // legitimately skew its homogeneous-block approximation).
  workload::NetworkConfig net;
  net.name = "fuzz-probe";
  net.layers = {layer};
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = input.density();
  densities[0].output_grads = grad.density();
  const workload::SparsityProfile profile("measured", densities);
  const auto prog = compiler::compile(net, profile, {});
  const auto stat = sim::Accelerator(acfg).run(prog, net, profile, seed);

  const double stat_cycles = static_cast<double>(stat.total_cycles);
  const double exact_cycles =
      static_cast<double>(fwd.cycles + gta.cycles + gtw.cycles);
  EXPECT_TRUE(std::isfinite(stat_cycles));
  EXPECT_GT(stat.total_cycles, 0u);
  EXPECT_GE(stat.utilization(), 0.0);
  EXPECT_LE(stat.utilization(), 1.0);
  EXPECT_LE(stat_cycles, 4.0 * exact_cycles + 500.0);
  EXPECT_GE(stat_cycles, exact_cycles / 4.0 - 500.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OddGeometryFuzz,
                         ::testing::ValuesIn([] {
                           std::vector<FuzzCase> cases;
                           for (std::uint64_t s = 1; s <= 20; ++s)
                             cases.push_back({s * 15485863});
                           return cases;
                         }()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Sparse-row representation round-trip fuzz.
class SparseRowFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SparseRowFuzz, RoundTripAndInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t len = rng.uniform_index(200);
  std::vector<float> dense(len, 0.0f);
  const double density = rng.uniform();
  for (auto& x : dense)
    if (rng.bernoulli(density)) x = static_cast<float>(rng.normal());

  const SparseRow row = compress_row(dense);
  EXPECT_TRUE(row.valid());
  EXPECT_EQ(decompress_row(row), dense);
  EXPECT_EQ(row.length, len);
  // Bytes are monotone in nnz and bounded below by the descriptor+bitmap.
  EXPECT_GE(row.encoded_bytes(), 2 + (len + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRowFuzz, ::testing::Range(1, 21));

}  // namespace
}  // namespace sparsetrain::dataflow
