// Randomised equivalence fuzzing: the 1-D row decomposition must match the
// dense Conv2D layer for random geometries, shapes and sparsity patterns.
// This is the strongest correctness guarantee behind the simulator's work
// counting, so it gets dedicated property-style coverage beyond the fixed
// parameterised geometries in test_dataflow.cpp.
#include <gtest/gtest.h>

#include "dataflow/conv_decompose.hpp"
#include "nn/conv2d.hpp"
#include "util/rng.hpp"

namespace sparsetrain::dataflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class DataflowFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DataflowFuzz, AllThreeStagesMatchDense) {
  Rng rng(GetParam().seed);

  // Random geometry within simulator-realistic ranges.
  const std::size_t kernel = 1 + 2 * rng.uniform_index(3);     // 1, 3, 5
  const std::size_t stride = 1 + rng.uniform_index(2);         // 1, 2
  const std::size_t padding = rng.uniform_index(kernel);       // < K
  const std::size_t in_c = 1 + rng.uniform_index(3);
  const std::size_t out_c = 1 + rng.uniform_index(4);
  const std::size_t h = kernel + rng.uniform_index(8);
  const std::size_t w = kernel + rng.uniform_index(10);
  const std::size_t n = 1 + rng.uniform_index(2);
  const double in_density = 0.1 + 0.9 * rng.uniform();
  const double grad_density = 0.1 + 0.9 * rng.uniform();

  if (h + 2 * padding < kernel || w + 2 * padding < kernel) GTEST_SKIP();

  nn::Conv2DConfig cfg;
  cfg.in_channels = in_c;
  cfg.out_channels = out_c;
  cfg.kernel = kernel;
  cfg.stride = stride;
  cfg.padding = padding;
  cfg.bias = rng.bernoulli(0.5);
  nn::Conv2D conv(cfg);
  for (auto* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.4f);

  ConvGeometry geo;
  geo.in_channels = in_c;
  geo.out_channels = out_c;
  geo.kernel = kernel;
  geo.stride = stride;
  geo.padding = padding;

  Tensor input(Shape{n, in_c, h, w});
  input.fill_sparse_normal(rng, in_density);

  // Forward.
  const Tensor dense_out = conv.forward(input, true);
  const Tensor row_out =
      forward_by_rows(input, conv.weight().value,
                      cfg.bias ? &conv.bias_param().value : nullptr, geo);
  ASSERT_EQ(dense_out.shape(), row_out.shape());
  EXPECT_LT(max_abs_diff(dense_out, row_out), 1e-3f)
      << "k=" << kernel << " s=" << stride << " p=" << padding;

  // Backward operand.
  Tensor grad_out(dense_out.shape());
  grad_out.fill_sparse_normal(rng, grad_density);

  const Tensor dense_dI = conv.backward(grad_out);
  const Tensor row_dI = gta_by_rows(grad_out, conv.weight().value,
                                    input.shape(), nullptr, geo);
  EXPECT_LT(max_abs_diff(dense_dI, row_dI), 1e-3f);

  Tensor dbias(Shape::vec(out_c));
  const Tensor row_dW = gtw_by_rows(grad_out, input, &dbias, geo);
  EXPECT_LT(max_abs_diff(conv.weight().grad, row_dW), 1e-3f);
  if (cfg.bias)
    EXPECT_LT(max_abs_diff(conv.bias_param().grad, dbias), 1e-3f);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t s = 1; s <= 24; ++s) cases.push_back({s * 7919});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataflowFuzz,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Sparse-row representation round-trip fuzz.
class SparseRowFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SparseRowFuzz, RoundTripAndInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t len = rng.uniform_index(200);
  std::vector<float> dense(len, 0.0f);
  const double density = rng.uniform();
  for (auto& x : dense)
    if (rng.bernoulli(density)) x = static_cast<float>(rng.normal());

  const SparseRow row = compress_row(dense);
  EXPECT_TRUE(row.valid());
  EXPECT_EQ(decompress_row(row), dense);
  EXPECT_EQ(row.length, len);
  // Bytes are monotone in nnz and bounded below by the descriptor+bitmap.
  EXPECT_GE(row.encoded_bytes(), 2 + (len + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseRowFuzz, ::testing::Range(1, 21));

}  // namespace
}  // namespace sparsetrain::dataflow
