// SIMD/scalar equivalence and edge-case coverage for the row-op work
// counters and the BitMask window primitives.
//
// Three layers of defense, all within one binary (the scalar references
// are always compiled, whatever kernel path the build selected):
//   1. Exhaustive naive-reference sweeps over every small geometry —
//      the per-tap loop nobody optimized is the ground truth for the
//      O(1) congruence / popcount-window formulas.
//   2. Boundary cases called out by inspection: windows ending exactly
//      on 64-bit word boundaries, lo == hi, clamped-to-empty windows,
//      out_len smaller than the kernel overhang.
//   3. Randomized fuzz comparing the dispatching entry points against
//      the scalar references on realistic row shapes, asserting equal
//      counts and bit-equal float outputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "dataflow/row_ops.hpp"
#include "tensor/bit_mask.hpp"
#include "util/rng.hpp"

namespace sparsetrain::dataflow {
namespace {

/// Naive per-tap SRC work: literally walk every (nonzero, tap) pair and
/// test whether it maps to a valid output. The formula under test
/// replaces this with O(1) congruence arithmetic per nonzero.
RowOpWork src_work_naive(SparseRowView input, const RowGeometry& geo,
                         std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      // ox·S + k − P = pos  →  ox = (pos + P − k) / S
      const std::int64_t num = static_cast<std::int64_t>(input.offsets[i]) +
                               static_cast<std::int64_t>(geo.padding) -
                               static_cast<std::int64_t>(k);
      if (num < 0 || num % geo.stride != 0) continue;
      if (num / geo.stride >= static_cast<std::int64_t>(out_len)) continue;
      ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

/// Naive MSRC work: per (nonzero, tap), map to the output index and ask
/// the mask bit by bit.
RowOpWork msrc_work_naive(SparseRowView input, const BitMask& mask,
                          const RowGeometry& geo, std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      const std::int64_t ix = static_cast<std::int64_t>(input.offsets[i]) *
                                  static_cast<std::int64_t>(geo.stride) +
                              static_cast<std::int64_t>(k) -
                              static_cast<std::int64_t>(geo.padding);
      if (ix < 0 || ix >= static_cast<std::int64_t>(out_len)) continue;
      if (!mask.allows(static_cast<std::uint32_t>(ix))) continue;
      ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

/// Bit-loop reference for BitMask::count_in.
std::size_t count_in_naive(const BitMask& m, std::uint32_t lo,
                           std::uint32_t hi) {
  std::size_t n = 0;
  for (std::uint32_t p = lo; p < hi && p < m.length(); ++p) {
    n += m.allows(p) ? 1 : 0;
  }
  return n;
}

SparseRow random_row(Rng& rng, std::uint32_t length, double density) {
  SparseRow row;
  row.length = length;
  for (std::uint32_t p = 0; p < length; ++p) {
    if (!rng.bernoulli(density)) continue;
    row.offsets.push_back(p);
    // Nonzero float with full mantissa entropy so bit-equality is a real
    // assertion (value 0 would be an invalid stored zero).
    float v = static_cast<float>(rng.uniform(-2.0, 2.0));
    if (v == 0.0f) v = 1.0f;
    row.values.push_back(v);
  }
  return row;
}

bool works_equal(const RowOpWork& a, const RowOpWork& b) {
  return a.macs == b.macs && a.active_inputs == b.active_inputs &&
         a.skipped_inputs == b.skipped_inputs;
}

// ------------------------------------------------------------------
// 1. Exhaustive sweeps against the naive references.

TEST(SrcWork, ExhaustiveSmallGeometries) {
  // Every (K ≤ 8, S ≤ 4, P ≤ 8, out_len ≤ 16) geometry with every
  // single-nonzero offset ≤ 64: the strided congruence path, the
  // stride-1 clamp path, and out_len small enough that the left clamp
  // (base > base_min) engages while the right clamp still matters.
  std::size_t cases = 0;
  for (std::uint32_t K = 1; K <= 8; ++K) {
    for (std::uint32_t S = 1; S <= 4; ++S) {
      for (std::uint32_t P = 0; P <= 8; ++P) {
        for (std::size_t out_len = 0; out_len <= 16; ++out_len) {
          for (std::uint32_t off = 0; off <= 64; ++off) {
            const RowGeometry geo{K, S, P};
            SparseRow row;
            row.length = off + 1;
            row.offsets = {off};
            row.values = {1.0f};
            const RowOpWork got = src_work(row, geo, out_len);
            const RowOpWork ref = src_work_naive(row, geo, out_len);
            ASSERT_TRUE(works_equal(got, ref))
                << "K=" << K << " S=" << S << " P=" << P
                << " out_len=" << out_len << " off=" << off << " macs "
                << got.macs << " vs " << ref.macs;
            ASSERT_TRUE(works_equal(src_work_scalar(row, geo, out_len), ref));
            ++cases;
          }
        }
      }
    }
  }
  EXPECT_GT(cases, 100000u);
}

TEST(SrcWork, MultiNonzeroRowsMatchNaive) {
  Rng rng(0x5eedU);
  for (int iter = 0; iter < 500; ++iter) {
    const auto K = static_cast<std::uint32_t>(1 + rng.uniform_index(8));
    const auto S = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
    const auto P = static_cast<std::uint32_t>(rng.uniform_index(9));
    const auto len = static_cast<std::uint32_t>(1 + rng.uniform_index(80));
    const std::size_t out_len = rng.uniform_index(20);
    const SparseRow row = random_row(rng, len, rng.uniform());
    const RowGeometry geo{K, S, P};
    const RowOpWork ref = src_work_naive(row, geo, out_len);
    EXPECT_TRUE(works_equal(src_work(row, geo, out_len), ref));
    EXPECT_TRUE(works_equal(src_work_scalar(row, geo, out_len), ref));
  }
}

TEST(BitMaskCountIn, WordBoundaryWindows) {
  Rng rng(0xb175U);
  // Lengths straddling one, two and three words, including exact
  // multiples of 64 (where a clamped window can start at length()).
  for (const std::uint32_t length :
       {1u, 63u, 64u, 65u, 127u, 128u, 129u, 200u}) {
    std::vector<float> dense(length);
    for (auto& v : dense) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const BitMask m = bitmask_from_dense(dense);
    for (std::uint32_t lo = 0; lo <= length; ++lo) {
      for (std::uint32_t hi = lo; hi <= length + 3; ++hi) {
        ASSERT_EQ(m.count_in(lo, hi), count_in_naive(m, lo, hi))
            << "length=" << length << " lo=" << lo << " hi=" << hi;
      }
    }
    // lo == hi and lo == length are empty by contract.
    EXPECT_EQ(m.count_in(length, length), 0u);
    EXPECT_EQ(m.count_in(0, 0), 0u);
  }
}

TEST(BitMaskCountIn, WindowsEndingOnWordBoundaries) {
  const BitMask m = bitmask_all(256);
  for (const std::uint32_t hi : {64u, 128u, 192u, 256u}) {
    for (const std::uint32_t back : {1u, 63u, 64u, 65u}) {
      if (back > hi) continue;
      EXPECT_EQ(m.count_in(hi - back, hi), back)
          << "hi=" << hi << " back=" << back;
    }
  }
  EXPECT_EQ(m.count_in(0, 300), 256u);  // hi beyond length clamps
}

TEST(MsrcWork, ClampAgreesWithRowConvMacCount) {
  // The claim the counter makes — macs == multiplies msrc_row_conv would
  // perform — checked by counting actual writes of the reference conv,
  // across windows hanging off both ends (win_lo < 0, win_hi > out_len).
  Rng rng(0x300dU);
  for (int iter = 0; iter < 300; ++iter) {
    const auto K = static_cast<std::uint32_t>(1 + rng.uniform_index(8));
    const auto S = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
    const auto P = static_cast<std::uint32_t>(rng.uniform_index(12));
    const auto len = static_cast<std::uint32_t>(1 + rng.uniform_index(40));
    const std::size_t out_len = rng.uniform_index(30);
    const RowGeometry geo{K, S, P};
    const SparseRow row = random_row(rng, len, 0.6);

    std::vector<float> mask_dense(out_len);
    for (auto& v : mask_dense) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const BitMask mask = bitmask_from_dense(mask_dense);

    const RowOpWork got = msrc_work(row, mask, geo, out_len);
    const RowOpWork ref = msrc_work_naive(row, mask, geo, out_len);
    ASSERT_TRUE(works_equal(got, ref))
        << "K=" << K << " S=" << S << " P=" << P << " out_len=" << out_len;
    ASSERT_TRUE(works_equal(msrc_work_scalar(row, mask, geo, out_len), ref));
  }
}

TEST(MsrcWork, PrefixOverloadMatchesBitMask) {
  // The GTA stage's prefix-popcount fast path must count exactly what
  // the BitMask path counts, for any mask and any window clamping
  // (including strides that push whole windows past out_len).
  Rng rng(0x9e3fU);
  for (int iter = 0; iter < 400; ++iter) {
    const auto K = static_cast<std::uint32_t>(1 + rng.uniform_index(9));
    const auto S = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
    const auto P = static_cast<std::uint32_t>(rng.uniform_index(12));
    const auto len = static_cast<std::uint32_t>(1 + rng.uniform_index(64));
    const std::size_t out_len = rng.uniform_index(40);
    const RowGeometry geo{K, S, P};
    const SparseRow row = random_row(rng, len, 0.6);

    std::vector<float> mask_dense(out_len);
    for (auto& v : mask_dense) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const BitMask mask = bitmask_from_dense(mask_dense);
    std::vector<std::uint32_t> prefix(out_len + 1);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < out_len; ++i) {
      prefix[i] = acc;
      acc += mask_dense[i] != 0.0f ? 1u : 0u;
    }
    prefix[out_len] = acc;

    const RowOpWork ref = msrc_work(row, mask, geo, out_len);
    const RowOpWork got = msrc_work(row, prefix.data(), geo, out_len);
    ASSERT_TRUE(works_equal(got, ref))
        << "K=" << K << " S=" << S << " P=" << P << " out_len=" << out_len;
  }
}

// ------------------------------------------------------------------
// 2. Targeted boundary cases.

TEST(SrcWork, RightClampWithTinyOutput) {
  // out_len = 1, P = 4, K = 8: base_min = 0, so the left clamp
  // klo = base − base_min engages for every offset — the case where
  // base_min < padding and the window is clipped from both sides.
  const RowGeometry geo{8, 1, 4};
  for (std::uint32_t off = 0; off <= 16; ++off) {
    SparseRow row;
    row.length = off + 1;
    row.offsets = {off};
    row.values = {1.0f};
    const RowOpWork ref = src_work_naive(row, geo, 1);
    EXPECT_TRUE(works_equal(src_work(row, geo, 1), ref)) << "off=" << off;
  }
}

TEST(MsrcWork, FullyClampedWindowAtWordBoundaryLength) {
  // out_len = 128 (exactly two words): a nonzero whose window starts at
  // or beyond out_len exercises the guard-word reads of the fast path.
  const RowGeometry geo{3, 1, 0};
  const BitMask mask = bitmask_all(128);
  SparseRow row;
  row.length = 200;
  row.offsets = {125, 126, 127, 128, 130, 199};
  row.values = {1, 1, 1, 1, 1, 1};
  const RowOpWork got = msrc_work(row, mask, geo, 128);
  const RowOpWork ref = msrc_work_naive(row, mask, geo, 128);
  EXPECT_TRUE(works_equal(got, ref));
  EXPECT_EQ(got.macs, 3u + 2u + 1u);  // windows at 125/126/127 survive
  EXPECT_EQ(got.skipped_inputs, 3u);  // 128, 130, 199 fully clamped
}

TEST(RowOps, ZeroLengthAndEmptyOperands) {
  const RowGeometry geo{3, 1, 1};
  SparseRow empty;
  empty.length = 8;
  const BitMask none = bitmask_all(0);
  EXPECT_EQ(src_work(empty, geo, 8).macs, 0u);
  EXPECT_EQ(msrc_work(empty, none, geo, 0).macs, 0u);
  EXPECT_EQ(osrc_work(empty, empty, geo).macs, 0u);

  SparseRow one;
  one.length = 1;
  one.offsets = {0};
  one.values = {2.0f};
  // out_len = 0: every input is skipped, nothing is active.
  const RowOpWork w = src_work(one, geo, 0);
  EXPECT_EQ(w.macs, 0u);
  EXPECT_EQ(w.active_inputs, 0u);
  EXPECT_EQ(w.skipped_inputs, 1u);
  const BitMask zero_mask = bitmask_all(0);
  const RowOpWork mw = msrc_work(one, zero_mask, geo, 0);
  EXPECT_EQ(mw.macs, 0u);
  EXPECT_EQ(mw.skipped_inputs, 1u);
}

// ------------------------------------------------------------------
// 3. Dispatch-vs-scalar fuzz (SIMD builds exercise the AVX2 kernels
//    here; scalar builds degenerate to reference-vs-reference, which
//    keeps the suite meaningful on any host).

struct FuzzGeometry {
  std::uint32_t kernel, stride, padding;
};

TEST(SimdEquivalence, WorkCountersMatchScalarOnRandomRows) {
  Rng rng(0x51d5U);
  const double densities[] = {0.0, 0.1, 0.5, 0.9, 1.0};
  const FuzzGeometry geos[] = {
      {3, 1, 1},   // the common conv geometry
      {8, 1, 0},   // kernel wider than some rows
      {5, 2, 2},   // strided
      {3, 5, 1},   // stride > kernel
      {7, 1, 9},   // padding ≥ kernel
      {64, 1, 32}, // widest kernel the MSRC fast path accepts
      {1, 1, 0},   // pointwise
  };
  for (const FuzzGeometry& g : geos) {
    const RowGeometry geo{g.kernel, g.stride, g.padding};
    for (const double d : densities) {
      for (const std::uint32_t length : {1u, 7u, 64u, 65u, 200u, 1024u}) {
        const SparseRow input = random_row(rng, length, d);
        for (const std::size_t out_len :
             {std::size_t{0}, std::size_t{1}, std::size_t{63},
              std::size_t{64}, std::size_t{128},
              static_cast<std::size_t>(length)}) {
          // SRC
          EXPECT_TRUE(works_equal(src_work(input, geo, out_len),
                                  src_work_scalar(input, geo, out_len)))
              << "src K=" << g.kernel << " S=" << g.stride << " len="
              << length << " out=" << out_len << " d=" << d;
          // MSRC under a random mask
          std::vector<float> mask_dense(out_len);
          for (auto& v : mask_dense) v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
          const BitMask mask = bitmask_from_dense(mask_dense);
          EXPECT_TRUE(
              works_equal(msrc_work(input, mask, geo, out_len),
                          msrc_work_scalar(input, mask, geo, out_len)))
              << "msrc K=" << g.kernel << " S=" << g.stride << " len="
              << length << " out=" << out_len << " d=" << d;
          // OSRC against a second random row
          const SparseRow grad = random_row(
              rng, static_cast<std::uint32_t>(std::max<std::size_t>(
                       1, out_len)),
              densities[rng.uniform_index(5)]);
          EXPECT_TRUE(works_equal(osrc_work(input, grad, geo),
                                  osrc_work_scalar(input, grad, geo)))
              << "osrc K=" << g.kernel << " S=" << g.stride;
        }
      }
    }
  }
}

TEST(SimdEquivalence, OsrcSweepVisitSequencesAreIdentical) {
  // The dispatching sweep must produce the same (j, win_lo, lo, hi)
  // sequence as the scalar sweep — this is what makes osrc_row_conv's
  // float accumulation order (and bit pattern) build-invariant.
  Rng rng(0x0529U);
  for (int iter = 0; iter < 200; ++iter) {
    const RowGeometry geo{
        static_cast<std::uint32_t>(1 + rng.uniform_index(9)),
        static_cast<std::uint32_t>(1 + rng.uniform_index(4)),
        static_cast<std::uint32_t>(rng.uniform_index(6))};
    const auto in_len = static_cast<std::uint32_t>(1 + rng.uniform_index(300));
    const auto go_len = static_cast<std::uint32_t>(1 + rng.uniform_index(100));
    const SparseRow input = random_row(rng, in_len, rng.uniform());
    const SparseRow grad = random_row(rng, go_len, rng.uniform());

    struct VisitRec {
      std::size_t j;
      std::int64_t win_lo;
      std::size_t lo, hi;
      bool operator==(const VisitRec&) const = default;
    };
    std::vector<VisitRec> a, b;
    osrc_window_sweep(input, grad, geo,
                      [&](std::size_t j, std::int64_t wl, std::size_t lo,
                          std::size_t hi) { a.push_back({j, wl, lo, hi}); });
    osrc_window_sweep_scalar(
        input, grad, geo,
        [&](std::size_t j, std::int64_t wl, std::size_t lo,
            std::size_t hi) { b.push_back({j, wl, lo, hi}); });
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(a[i] == b[i]) << "visit " << i << " diverged";
    }
  }
}

TEST(SimdEquivalence, OsrcRowConvBitsMatchScalarSweep) {
  // Same accumulation through the scalar sweep, compared bitwise.
  Rng rng(0xf10a7U);
  for (int iter = 0; iter < 200; ++iter) {
    const RowGeometry geo{
        static_cast<std::uint32_t>(1 + rng.uniform_index(9)),
        static_cast<std::uint32_t>(1 + rng.uniform_index(3)),
        static_cast<std::uint32_t>(rng.uniform_index(5))};
    const auto in_len = static_cast<std::uint32_t>(1 + rng.uniform_index(200));
    const auto go_len = static_cast<std::uint32_t>(1 + rng.uniform_index(80));
    const SparseRow input = random_row(rng, in_len, rng.uniform());
    const SparseRow grad = random_row(rng, go_len, rng.uniform());

    std::vector<float> dw(geo.kernel, 0.0f);
    osrc_row_conv(input, grad, geo, dw);

    std::vector<float> ref(geo.kernel, 0.0f);
    osrc_window_sweep_scalar(
        input, grad, geo,
        [&](std::size_t j, std::int64_t win_lo, std::size_t lo,
            std::size_t hi) {
          const float g = grad.values[j];
          for (std::size_t idx = lo; idx < hi; ++idx) {
            const std::size_t k = static_cast<std::size_t>(
                input.offsets[idx] - win_lo);
            ref[k] += g * input.values[idx];
          }
        });
    ASSERT_EQ(std::memcmp(dw.data(), ref.data(),
                          dw.size() * sizeof(float)),
              0)
        << "osrc_row_conv bits diverged at iter " << iter;
  }
}

TEST(SimdEquivalence, BuildReportsItsKernelPath) {
  // Not an equivalence assertion — a visibility check: the mode string
  // must be one of the two documented values so bench JSON stays valid.
  const std::string mode = simd_mode();
  EXPECT_TRUE(mode == "avx2" || mode == "scalar") << mode;
  EXPECT_EQ(mode == "avx2", simd_enabled());
}

}  // namespace
}  // namespace sparsetrain::dataflow
