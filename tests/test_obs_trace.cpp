// Request tracing: deterministic sampling under a fixed seed, span
// emission/parentage, wire propagation of trace ids, and an end-to-end
// router → shard pool run whose three JSONL logs stitch into one
// connected span tree.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/require.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using obs::Span;
using obs::SpanContext;
using obs::Tracer;
using obs::TracerOptions;

std::string fresh_file(const std::string& name) {
  const std::string path = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove(path);
  return path;
}

TracerOptions tracer_opts(const std::string& path, double rate,
                          std::uint64_t seed, const std::string& process) {
  TracerOptions opts;
  opts.path = path;
  opts.sample_rate = rate;
  opts.seed = seed;
  opts.process = process;
  return opts;
}

struct SpanRecord {
  std::string trace, span, parent, name, process;
  std::int64_t start_us = 0;
  std::int64_t dur_us = -1;
  std::map<std::string, std::string> attrs;
};

std::vector<SpanRecord> read_spans(const std::string& path) {
  std::vector<SpanRecord> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const serve::JsonValue v = serve::parse_json(line);
    SpanRecord r;
    r.trace = v.get_string("trace", "");
    r.span = v.get_string("span", "");
    r.parent = v.get_string("parent", "");
    r.name = v.get_string("name", "");
    r.process = v.get_string("process", "");
    r.start_us = static_cast<std::int64_t>(v.get_number("start_us", 0));
    r.dur_us = static_cast<std::int64_t>(v.get_number("dur_us", -1));
    if (const serve::JsonValue* attrs = v.find("attrs")) {
      for (const std::string key :
           {"status", "source", "shard", "outcome", "hit", "backend"}) {
        const std::string val = attrs->get_string(key, "");
        if (!val.empty()) r.attrs[key] = val;
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sampling

TEST(Tracer, SamplingIsDeterministicUnderFixedSeed) {
  const std::string path = fresh_file("trace_det.jsonl");
  Tracer a(tracer_opts(path, 0.5, 42, "a"));
  Tracer b(tracer_opts(path, 0.5, 42, "b"));
  std::size_t sampled = 0;
  for (std::uint64_t id = 1; id <= 2000; ++id) {
    ASSERT_EQ(a.sample(id), b.sample(id)) << "id " << id;
    if (a.sample(id)) ++sampled;
  }
  // Rate 0.5 over 2000 hashed ids: comfortably within (0.4, 0.6).
  EXPECT_GT(sampled, 800u);
  EXPECT_LT(sampled, 1200u);

  Tracer all(tracer_opts(path, 1.0, 42, "c"));
  Tracer none(tracer_opts(path, 0.0, 42, "d"));
  for (std::uint64_t id = 1; id <= 100; ++id) {
    EXPECT_TRUE(all.sample(id));
    EXPECT_FALSE(none.sample(id));
  }
  fs::remove(path);
}

TEST(Tracer, TraceIdSequenceIsDeterministicPerSeed) {
  const std::string path = fresh_file("trace_ids.jsonl");
  Tracer a(tracer_opts(path, 1.0, 7, "a"));
  Tracer b(tracer_opts(path, 1.0, 7, "b"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.start_trace().trace_id, b.start_trace().trace_id);
  }
  Tracer c(tracer_opts(path, 1.0, 8, "c"));
  Tracer d(tracer_opts(path, 1.0, 7, "d"));
  EXPECT_NE(d.start_trace().trace_id, c.start_trace().trace_id);
  fs::remove(path);
}

TEST(Tracer, JoinAdoptsWireDecision) {
  const std::string path = fresh_file("trace_join.jsonl");
  // Even at sample rate 0, an id arriving on the wire records: the edge
  // already decided, downstream never re-rolls.
  Tracer t(tracer_opts(path, 0.0, 1, "serve"));
  EXPECT_TRUE(t.join(0xabcdef, 0x123).active());
  EXPECT_EQ(t.join(0xabcdef, 0x123).span_id, 0x123u);
  // A zero trace id means "not traced".
  EXPECT_FALSE(t.join(0, 0).active());
  fs::remove(path);
}

TEST(Tracer, DisabledTracerYieldsInactiveContexts) {
  Tracer t(tracer_opts("", 1.0, 1, "serve"));
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.start_trace().active());
  EXPECT_FALSE(t.join(0x99, 0).active());
}

// ---------------------------------------------------------------------------
// Spans

TEST(Span, InactiveContextIsANoOp) {
  Span s(SpanContext{}, "nothing");
  EXPECT_FALSE(s.active());
  s.attr("key", "value");  // must not crash
  EXPECT_FALSE(s.context().active());
  s.finish();  // idempotent no-op
}

TEST(Span, EmitsParentageAndNonNegativeDurations) {
  const std::string path = fresh_file("trace_spans.jsonl");
  {
    Tracer t(tracer_opts(path, 1.0, 3, "unit"));
    const SpanContext root_ctx = t.start_trace();
    ASSERT_TRUE(root_ctx.active());
    Span root(root_ctx, "request");
    root.attr("status", "ok");
    {
      Span child(root.context(), "phase");
      Span grandchild(child.context(), "subphase");
    }
    root.finish();
  }
  const std::vector<SpanRecord> spans = read_spans(path);
  ASSERT_EQ(spans.size(), 3u);  // emitted innermost-first
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& s : spans) {
    by_name[s.name] = s;
    EXPECT_GE(s.dur_us, 0);
    EXPECT_GT(s.start_us, 0);
    EXPECT_EQ(s.process, "unit");
    EXPECT_EQ(s.trace, spans[0].trace);
    EXPECT_EQ(s.span.size(), 16u);
  }
  EXPECT_EQ(by_name["request"].parent, "");  // root
  EXPECT_EQ(by_name["phase"].parent, by_name["request"].span);
  EXPECT_EQ(by_name["subphase"].parent, by_name["phase"].span);
  EXPECT_EQ(by_name["request"].attrs["status"], "ok");
  // Distinct span ids.
  std::set<std::string> ids;
  for (const SpanRecord& s : spans) ids.insert(s.span);
  EXPECT_EQ(ids.size(), 3u);
  fs::remove(path);
}

TEST(Span, RetroactiveStartPredatesChildren) {
  const std::string path = fresh_file("trace_retro.jsonl");
  {
    Tracer t(tracer_opts(path, 1.0, 3, "unit"));
    const auto admitted = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Span root(t.start_trace(), "request", admitted);
    Span child(root.context(), "phase");
    child.finish();
    root.finish();
  }
  const std::vector<SpanRecord> spans = read_spans(path);
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& s : spans) by_name[s.name] = s;
  // The retroactive root starts at admission — before the child — and
  // its measured duration covers the 5 ms sleep.
  EXPECT_LE(by_name["request"].start_us, by_name["phase"].start_us);
  EXPECT_GE(by_name["request"].dur_us, 4000);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Wire propagation

TEST(Protocol, TraceFieldsRideRequestsRoundTrip) {
  serve::Request r;
  r.type = "eval";
  r.id = "t1";
  r.workload = "tiny";
  r.trace = 0x0123456789abcdefULL;
  r.parent_span = 0xfedcba9876543210ULL;
  const std::string line = serve::format_request(r);
  EXPECT_NE(line.find("\"trace\": \"0123456789abcdef\""),
            std::string::npos);
  const serve::Request back = serve::parse_request(line);
  EXPECT_EQ(back.trace, r.trace);
  EXPECT_EQ(back.parent_span, r.parent_span);

  // Untraced requests carry no trace fields at all (the absence IS the
  // sampling decision downstream).
  serve::Request plain;
  plain.type = "eval";
  plain.workload = "tiny";
  const std::string plain_line = serve::format_request(plain);
  EXPECT_EQ(plain_line.find("trace"), std::string::npos);
  EXPECT_EQ(serve::parse_request(plain_line).trace, 0u);
}

// ---------------------------------------------------------------------------
// End to end: router + 2 shards, every process with its own trace log.

TEST(TraceEndToEnd, RouterAndShardLogsStitchIntoOneTree) {
  const std::string router_log = fresh_file("e2e_router.jsonl");
  const std::string shard_logs[2] = {fresh_file("e2e_shard0.jsonl"),
                                     fresh_file("e2e_shard1.jsonl")};
  std::string sockets[2];
  std::string stores[2];
  std::unique_ptr<serve::Server> servers[2];
  std::thread threads[2];
  for (int i = 0; i < 2; ++i) {
    sockets[i] = ::testing::TempDir() + "sparsetrain_e2e_trace" +
                 std::to_string(i) + ".sock";
    fs::remove(sockets[i]);
    stores[i] = ::testing::TempDir() + "sparsetrain_e2e_trace_store" +
                std::to_string(i);
    fs::remove_all(stores[i]);
    serve::ServerOptions so;
    so.store_dir = stores[i];
    so.trace_path = shard_logs[i];
    so.trace_sample_rate = 1.0;
    servers[i] = std::make_unique<serve::Server>(so);
    serve::Listener listener = serve::Listener::listen(sockets[i]);
    threads[i] = std::thread(
        [srv = servers[i].get(), l = std::move(listener)]() mutable {
          srv->serve_listener(l);
        });
  }

  {
    serve::RouterOptions ro;
    ro.replicas = 1;
    ro.trace_path = router_log;
    ro.trace_sample_rate = 1.0;
    serve::RouterClient rc(sockets[0] + "," + sockets[1], ro);
    serve::Request eval;
    eval.type = "eval";
    eval.id = "traced-1";
    eval.workload = "tiny";
    const serve::Response resp = rc.submit(eval);
    ASSERT_EQ(resp.status, "ok") << resp.error;
    EXPECT_EQ(resp.source, "computed");
    EXPECT_GE(resp.elapsed_ms, 0.0);
  }
  for (int i = 0; i < 2; ++i) {
    serve::Client killer(sockets[i], serve::ClientOptions{});
    killer.shutdown();
    threads[i].join();
  }

  // Stitch the three logs.
  std::vector<SpanRecord> all = read_spans(router_log);
  const std::size_t router_spans = all.size();
  for (const std::string& log : shard_logs) {
    for (SpanRecord& s : read_spans(log)) all.push_back(std::move(s));
  }
  ASSERT_GT(router_spans, 0u);
  ASSERT_GT(all.size(), router_spans);

  // One trace, one root, a fully connected parent chain.
  std::set<std::string> traces;
  std::set<std::string> span_ids;
  std::multiset<std::string> names;
  std::size_t roots = 0;
  for (const SpanRecord& s : all) {
    traces.insert(s.trace);
    EXPECT_TRUE(span_ids.insert(s.span).second)
        << "duplicate span id " << s.span;
    names.insert(s.name);
    if (s.parent.empty()) {
      ++roots;
      EXPECT_EQ(s.name, "router.request");
      EXPECT_EQ(s.process, "router");
    }
    EXPECT_GE(s.dur_us, 0);
  }
  EXPECT_EQ(traces.size(), 1u);
  EXPECT_EQ(roots, 1u);
  for (const SpanRecord& s : all) {
    if (!s.parent.empty()) {
      EXPECT_TRUE(span_ids.count(s.parent))
          << s.name << " has dangling parent " << s.parent;
    }
  }

  // Every phase of the request's life is represented: the router hop,
  // the daemon's queue wait and request, the store miss, compile,
  // simulate, the publish, and the replication put on the other shard.
  for (const std::string expected :
       {"router.request", "router.forward", "daemon.request",
        "daemon.queue", "store.lookup", "compile", "simulate",
        "store.publish", "router.replicate", "daemon.put"}) {
    EXPECT_GE(names.count(expected), 1u) << "missing span " << expected;
  }

  // Cross-process parentage: the shard's daemon.request hangs off the
  // router's forward hop.
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& s : all) by_name[s.name] = s;
  EXPECT_EQ(by_name["daemon.request"].parent,
            by_name["router.forward"].span);
  EXPECT_EQ(by_name["daemon.request"].process, "serve");
  EXPECT_EQ(by_name["store.lookup"].attrs["hit"], "false");
  EXPECT_EQ(by_name["daemon.request"].attrs["status"], "ok");

  for (int i = 0; i < 2; ++i) fs::remove_all(stores[i]);
  fs::remove(router_log);
  for (const std::string& log : shard_logs) fs::remove(log);
}

}  // namespace
}  // namespace sparsetrain
