// Statistical-vs-exact agreement matrix (AMOS-style op × config grid).
//
// Every cell compiles a single-layer probe, runs the program through the
// statistical Accelerator AND through sim::run_exact (the tensor-driven
// ground truth, tiled across 2 workers), and asserts the stage cycle
// counts agree within a few percent. The grid spans the three row-op
// stages × sparsity profiles (dense, 0.5, 0.9-sparse) × stride/pad
// variants; on any disagreement the whole matrix is printed as a summary
// table so a modelling regression is diagnosable from the log alone.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "sim/backend.hpp"
#include "sim/exact_network.hpp"
#include "util/table.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {
namespace {

struct GeoCase {
  std::size_t kernel;
  std::size_t stride;
  std::size_t padding;
};

struct Cell {
  std::string stage;
  double density;
  GeoCase geo;
  std::size_t stat_cycles = 0;
  std::size_t exact_cycles = 0;
  double rel_err = 0.0;
  double tolerance = 0.0;
  bool pass = false;
};

/// Probe: one mid-size conv layer (not first, so GTA compiles too).
workload::NetworkConfig probe_net(const GeoCase& g) {
  workload::NetworkConfig net;
  net.name = "probe-k" + std::to_string(g.kernel) + "s" +
             std::to_string(g.stride) + "p" + std::to_string(g.padding);
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = 8;
  l.in_h = 24;
  l.in_w = 24;
  l.out_channels = 16;
  l.kernel = g.kernel;
  l.stride = g.stride;
  l.padding = g.padding;
  net.layers = {l};
  return net;
}

/// A smaller array than the paper's 56 groups so the probe's task counts
/// give the makespan decent statistics per group.
ArchConfig probe_arch() {
  ArchConfig cfg;
  cfg.pe_groups = 8;
  return cfg;
}

Cell run_cell(isa::Stage stage, double density, const GeoCase& g) {
  const auto net = probe_net(g);
  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = density;
  densities[0].output_grads = density;
  densities[0].mask = density;
  const workload::SparsityProfile profile(
      "d" + std::to_string(density), densities);

  compiler::CompileOptions copts;
  copts.forward = stage == isa::Stage::Forward;
  copts.gta = stage == isa::Stage::GTA;
  copts.gtw = stage == isa::Stage::GTW;

  const ArchConfig cfg = probe_arch();
  const std::uint64_t seed = 99;

  const auto stat_prog = compiler::compile(net, profile, copts);
  const SimReport stat = Accelerator(cfg).run(stat_prog, net, profile, seed);

  copts.engine = isa::EngineKind::Exact;
  const auto exact_prog = compiler::compile(net, profile, copts);
  ExactOptions opts;
  opts.workers = 2;
  const SimReport exact =
      run_exact(cfg, exact_prog, net, profile, seed, opts);

  Cell cell;
  cell.stage = isa::stage_name(stage);
  cell.density = density;
  cell.geo = g;
  cell.stat_cycles = stat.total_cycles;
  cell.exact_cycles = exact.total_cycles;
  const auto e = static_cast<double>(exact.total_cycles);
  cell.rel_err =
      e > 0.0 ? std::abs(static_cast<double>(stat.total_cycles) - e) / e
              : 0.0;
  // The statistical model's weakest approximations are the mask
  // look-ahead (MSRC) and the chunked two-operand OSRC cost; SRC is
  // nearly closed-form. An absolute slack floor keeps near-empty stages
  // (density 0.1 probes are small) from failing on scheduling grain.
  cell.tolerance = stage == isa::Stage::Forward  ? 0.12
                   : stage == isa::Stage::GTA    ? 0.20
                                                 : 0.25;
  const double slack = 400.0;
  cell.pass = std::abs(static_cast<double>(cell.stat_cycles) - e) <=
              cell.tolerance * e + slack;
  return cell;
}

TEST(ExactAgreementMatrix, StatisticalMatchesExactAcrossStagesAndProfiles) {
  const std::vector<GeoCase> geos = {{3, 1, 1}, {3, 2, 1}, {5, 2, 2}};
  const std::vector<double> densities = {1.0, 0.5, 0.1};
  const std::vector<isa::Stage> stages = {
      isa::Stage::Forward, isa::Stage::GTA, isa::Stage::GTW};

  std::vector<Cell> cells;
  for (const auto stage : stages)
    for (const double density : densities)
      for (const auto& g : geos)
        cells.push_back(run_cell(stage, density, g));

  bool all_pass = true;
  for (const auto& c : cells) all_pass &= c.pass;

  if (!all_pass) {
    TextTable table({"stage", "density", "k/s/p", "statistical", "exact",
                     "rel err", "tol", "verdict"});
    for (const auto& c : cells) {
      table.add_row({c.stage, TextTable::num(c.density, 2),
                     std::to_string(c.geo.kernel) + "/" +
                         std::to_string(c.geo.stride) + "/" +
                         std::to_string(c.geo.padding),
                     std::to_string(c.stat_cycles),
                     std::to_string(c.exact_cycles),
                     TextTable::pct(c.rel_err, 1),
                     TextTable::pct(c.tolerance, 0),
                     c.pass ? "ok" : "FAIL"});
    }
    ADD_FAILURE() << "statistical vs exact disagreement:\n"
                  << table.to_string();
  }
  // Pin each cell individually too, so a single regression names itself.
  for (const auto& c : cells) {
    SCOPED_TRACE(c.stage + " density=" + std::to_string(c.density) +
                 " k/s/p=" + std::to_string(c.geo.kernel) + "/" +
                 std::to_string(c.geo.stride) + "/" +
                 std::to_string(c.geo.padding));
    EXPECT_TRUE(c.pass) << "stat=" << c.stat_cycles
                        << " exact=" << c.exact_cycles
                        << " rel_err=" << c.rel_err;
  }
}

// The same program content must produce byte-identical exact reports for
// any parallelism (the determinism contract, at whole-program level).
TEST(ExactAgreementMatrix, WholeProgramExactRunIsDeterministic) {
  const GeoCase g{3, 2, 1};
  const auto net = probe_net(g);
  const auto profile =
      workload::SparsityProfile::calibrated(net, 0.5, 0.3, "probe");
  compiler::CompileOptions copts;
  copts.engine = isa::EngineKind::Exact;
  const auto prog = compiler::compile(net, profile, copts);
  const ArchConfig cfg = probe_arch();

  ExactOptions serial;  // workers = 1
  ExactOptions wide;
  wide.workers = 8;
  wide.tile_tasks = 3;
  const SimReport a = run_exact(cfg, prog, net, profile, 7, serial);
  const SimReport b = run_exact(cfg, prog, net, profile, 7, wide);

  ASSERT_EQ(a.stages.size(), b.stages.size());
  EXPECT_GT(a.total_cycles, 0u);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.activity.busy_cycles, b.activity.busy_cycles);
  EXPECT_EQ(a.activity.macs, b.activity.macs);
  EXPECT_EQ(a.activity.reg_accesses, b.activity.reg_accesses);
  for (std::size_t i = 0; i < a.stages.size(); ++i)
    EXPECT_EQ(a.stages[i].cycles, b.stages[i].cycles);
  EXPECT_EQ(a.engine, isa::EngineKind::Exact);
  // Exact mode scopes to compute timing: no memory-system traffic.
  EXPECT_EQ(a.activity.dram_bytes, 0u);

  // A different seed synthesises different tensors → different cycles
  // (the seed is part of the result's identity, not noise).
  const SimReport c = run_exact(cfg, prog, net, profile, 8, serial);
  EXPECT_NE(a.total_cycles, c.total_cycles);
}

// FC layers run exactly too (dot-product mapping): agreement on a pure-FC
// probe keeps whole-network exact runs honest.
TEST(ExactAgreementMatrix, FcStageAgreesWithStatisticalModel) {
  workload::NetworkConfig net;
  net.name = "fc-probe";
  workload::LayerConfig l;
  l.name = "fc";
  l.in_channels = 512;
  l.in_h = 1;
  l.in_w = 1;
  l.out_channels = 256;
  l.kernel = 1;
  l.stride = 1;
  l.padding = 0;
  l.is_fc = true;
  net.layers = {l};

  std::vector<workload::LayerDensities> densities(1);
  densities[0].input_acts = 0.4;
  densities[0].output_grads = 0.3;
  densities[0].mask = 0.4;
  const workload::SparsityProfile profile("fc", densities);

  const ArchConfig cfg = probe_arch();
  compiler::CompileOptions copts;
  const auto stat_prog = compiler::compile(net, profile, copts);
  const SimReport stat = Accelerator(cfg).run(stat_prog, net, profile, 5);

  copts.engine = isa::EngineKind::Exact;
  const auto exact_prog = compiler::compile(net, profile, copts);
  const SimReport exact = run_exact(cfg, exact_prog, net, profile, 5);

  ASSERT_GT(exact.total_cycles, 0u);
  EXPECT_NEAR(static_cast<double>(stat.total_cycles),
              static_cast<double>(exact.total_cycles),
              0.15 * static_cast<double>(exact.total_cycles) + 200.0);
}

}  // namespace
}  // namespace sparsetrain::sim
