// Simulator tests: PE cost models (exact vs closed form), energy pricing,
// workload/profile construction, compiler lowering, accelerator runs.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/eyeriss_like.hpp"
#include "compiler/compiler.hpp"
#include "core/session.hpp"
#include "sim/accelerator.hpp"
#include "sim/pe_model.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {
namespace {

using isa::RowBlock;
using isa::RowOpKind;
using workload::SparsityProfile;

SparseRow random_row(std::size_t len, double density, Rng& rng) {
  std::vector<float> dense(len, 0.0f);
  for (auto& x : dense)
    if (rng.bernoulli(density)) x = static_cast<float>(rng.normal());
  return compress_row(dense);
}

RowBlock src_block(std::size_t len, double density) {
  RowBlock b;
  b.kind = RowOpKind::SRC;
  b.in_len = len;
  b.out_len = len;
  b.kernel = 3;
  b.stride = 1;
  b.padding = 1;
  b.density_in = density;
  return b;
}

TEST(PeExact, SrcCyclesCountNonzeros) {
  PeExact pe;
  RowBlock b = src_block(16, 1.0);
  // 4 nonzeros → wload ceil(3/2)=2 + 4 + drain 2 = 8 cycles.
  SparseRow row = compress_row(
      std::vector<float>{0, 1, 0, 2, 0, 0, 3, 0, 0, 0, 0, 4, 0, 0, 0, 0});
  const PeCost cost = pe.run_src(row, b);
  EXPECT_EQ(cost.ingested, 4u);
  EXPECT_EQ(cost.cycles, 2u + 4u + 2u);
  EXPECT_EQ(cost.macs, 12u);  // interior nonzeros hit all 3 taps
}

TEST(PeExact, EmptyRowCostsOnlyOverhead) {
  PeExact pe;
  RowBlock b = src_block(16, 0.0);
  const PeCost cost = pe.run_src(compress_row(std::vector<float>(16, 0.0f)), b);
  EXPECT_EQ(cost.ingested, 0u);
  EXPECT_EQ(cost.cycles, 4u);  // wload + drain only
  EXPECT_EQ(cost.macs, 0u);
}

TEST(PeExact, MsrcSkipsFullyMaskedInputs) {
  PeExact pe;
  RowBlock b = src_block(8, 1.0);
  b.kind = RowOpKind::MSRC;
  SparseRow row =
      compress_row(std::vector<float>{5, 0, 0, 0, 0, 0, 0, 7});
  MaskRow mask;
  mask.length = 8;
  mask.offsets = {6, 7};  // only tail positions allowed
  const PeCost cost = pe.run_msrc(row, mask, b);
  // input at 0 scatters to {0,1,2}∩mask = ∅ → skipped by look-ahead.
  EXPECT_EQ(cost.ingested, 1u);
  EXPECT_EQ(cost.cycles, 2u + 1u + 2u);
}

TEST(PeExact, OsrcChunksOverGradNonzeros) {
  PeExact pe;
  RowBlock b;
  b.kind = RowOpKind::OSRC;
  b.kernel = 3;
  b.stride = 1;
  b.padding = 1;
  b.in_len = 16;
  b.second_len = 16;
  Rng rng(5);
  const SparseRow I = random_row(16, 0.5, rng);
  // 7 dO nonzeros → ceil(7/3) = 3 chunks.
  std::vector<float> dov(16, 0.0f);
  for (std::size_t i = 0; i < 7; ++i) dov[2 * i] = 1.0f;
  const SparseRow dO = compress_row(dov);
  const PeCost cost = pe.run_osrc(I, dO, b);
  const std::size_t chunks = 3;
  EXPECT_EQ(cost.cycles, chunks * (2 + I.nnz()) + 2);
  EXPECT_EQ(cost.ingested, chunks * I.nnz());
}

TEST(PeModel, ClosedFormMatchesExactInExpectation) {
  // Monte-Carlo: average PeExact cost over random rows ≈ row_op_cost mean.
  PeExact pe;
  Rng rng(7);
  for (double density : {0.2, 0.5, 0.9}) {
    RowBlock b = src_block(64, density);
    double sum_cycles = 0.0, sum_macs = 0.0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
      const SparseRow row = random_row(64, density, rng);
      const PeCost c = pe.run_src(row, b);
      sum_cycles += static_cast<double>(c.cycles);
      sum_macs += static_cast<double>(c.macs);
    }
    const PeCostStats stats = row_op_cost(b, PeTiming{}, /*sparse=*/true);
    EXPECT_NEAR(sum_cycles / trials, stats.mean_cycles,
                0.05 * stats.mean_cycles + 1.0)
        << "density " << density;
    // Closed form ignores edge taps → allow a few percent.
    EXPECT_NEAR(sum_macs / trials, stats.mean_macs, 0.08 * stats.mean_macs)
        << "density " << density;
  }
}

TEST(PeModel, MsrcClosedFormMatchesExact) {
  PeExact pe;
  Rng rng(8);
  RowBlock b = src_block(64, 0.5);
  b.kind = RowOpKind::MSRC;
  b.density_mask = 0.4;
  double sum_cycles = 0.0;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    const SparseRow row = random_row(64, 0.5, rng);
    std::vector<float> mask_dense(64, 0.0f);
    for (auto& x : mask_dense)
      if (rng.bernoulli(0.4)) x = 1.0f;
    const MaskRow mask = mask_from_dense(mask_dense);
    sum_cycles += static_cast<double>(pe.run_msrc(row, mask, b).cycles);
  }
  const PeCostStats stats = row_op_cost(b, PeTiming{}, true);
  EXPECT_NEAR(sum_cycles / trials, stats.mean_cycles,
              0.05 * stats.mean_cycles + 1.0);
}

TEST(PeModel, DenseModeIgnoresDensities) {
  RowBlock b = src_block(64, 0.1);
  const PeCostStats sparse = row_op_cost(b, PeTiming{}, true);
  const PeCostStats dense = row_op_cost(b, PeTiming{}, false);
  EXPECT_LT(sparse.mean_cycles, dense.mean_cycles);
  EXPECT_EQ(dense.var_cycles, 0.0);
  EXPECT_NEAR(dense.mean_cycles, 2.0 + 64.0 + 2.0, 1e-9);
}

TEST(EnergyModel, PricesComponents) {
  ActivityCounts counts;
  counts.macs = 1000;
  counts.reg_accesses = 2000;
  counts.sram_bytes = 4000;
  counts.dram_bytes = 200;
  EnergyParams params;
  const EnergyBreakdown e = price(counts, params);
  EXPECT_NEAR(e.comb_pj, 1000 * params.mac_pj, 1e-9);
  EXPECT_NEAR(e.reg_pj, 2000 * params.reg_pj, 1e-9);
  EXPECT_NEAR(e.sram_pj, 2000 * params.sram_pj, 1e-9);
  EXPECT_NEAR(e.dram_pj, 100 * params.dram_pj, 1e-9);
  EXPECT_NEAR(e.total_pj(),
              e.comb_pj + e.reg_pj + e.sram_pj + e.dram_pj, 1e-9);
}

TEST(Workloads, PaperModelsHaveSaneShapes) {
  for (const auto& net : workload::paper_workloads()) {
    EXPECT_FALSE(net.layers.empty()) << net.name;
    EXPECT_GT(net.total_forward_macs(), 0u) << net.name;
    for (const auto& l : net.layers) {
      EXPECT_GT(l.out_h(), 0u) << net.name << " " << l.name;
      EXPECT_GT(l.out_w(), 0u) << net.name << " " << l.name;
    }
  }
}

TEST(Workloads, ImagenetBiggerThanCifar) {
  EXPECT_GT(workload::alexnet_imagenet().total_forward_macs(),
            workload::alexnet_cifar().total_forward_macs());
  EXPECT_GT(workload::resnet18_imagenet().total_forward_macs(),
            workload::resnet18_cifar().total_forward_macs());
}

TEST(Workloads, Resnet34DeeperThan18) {
  EXPECT_GT(workload::resnet34_cifar().layers.size(),
            workload::resnet18_cifar().layers.size());
}

TEST(Profiles, DenseProfileIsAllOnes) {
  const auto net = workload::tiny_workload();
  const auto p = SparsityProfile::dense(net);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(p.layer(i).input_acts, 1.0);
    EXPECT_EQ(p.layer(i).output_grads, 1.0);
  }
}

TEST(Profiles, NaturalProfileSparsifiesNonFirstLayers) {
  const auto net = workload::alexnet_cifar();
  const auto p = SparsityProfile::natural(net, 0.45);
  EXPECT_EQ(p.layer(0).input_acts, 1.0);  // raw image
  EXPECT_NEAR(p.layer(1).input_acts, 0.45, 1e-12);
  // AlexNet = CONV-ReLU → dO inherits the mask.
  EXPECT_NEAR(p.layer(1).output_grads, 0.45, 1e-12);
}

TEST(Profiles, BnLayersHaveDenseGradsUntilPruned) {
  const auto net = workload::resnet18_cifar();
  const auto natural = SparsityProfile::natural(net, 0.45);
  // ResNet convs are CONV-BN-ReLU → dense dO without pruning.
  EXPECT_EQ(natural.layer(1).output_grads, 1.0);
  const auto pruned = SparsityProfile::pruned(net, 0.9, 0.45);
  EXPECT_LT(pruned.layer(1).output_grads, 0.5);
}

TEST(Profiles, AnalyticPrunedDensityValues) {
  EXPECT_NEAR(workload::analytic_pruned_density(0.9), 0.46, 0.01);
  EXPECT_NEAR(workload::analytic_pruned_density(0.7), 0.62, 0.01);
  EXPECT_EQ(workload::analytic_pruned_density(0.0), 1.0);
  EXPECT_LT(workload::analytic_pruned_density(0.99),
            workload::analytic_pruned_density(0.9));
}

TEST(Compiler, EmitsAllStages) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::natural(net);
  const isa::Program prog = compiler::compile(net, profile);
  // layer0: Forward+GTW (first layer skips GTA); layer1: all three.
  EXPECT_EQ(prog.count(isa::Opcode::Run), 5u);
  EXPECT_EQ(prog.count(isa::Opcode::Barrier), 5u);
  EXPECT_GT(prog.count(isa::Opcode::LoadWeights), 0u);
}

TEST(Compiler, FirstLayerHasNoGta) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::natural(net);
  const isa::Program prog = compiler::compile(net, profile);
  for (const auto& inst : prog.instructions) {
    if (inst.stage == isa::Stage::GTA)
      EXPECT_NE(inst.layer_index, 0u);
  }
}

TEST(Compiler, BatchScalesTaskCounts) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::natural(net);
  compiler::CompileOptions opt1, opt4;
  opt4.batch = 4;
  const auto p1 = compiler::compile(net, profile, opt1);
  const auto p4 = compiler::compile(net, profile, opt4);
  std::size_t t1 = 0, t4 = 0;
  for (const auto& i : p1.instructions)
    if (i.op == isa::Opcode::Run && i.stage != isa::Stage::GTW)
      t1 += i.block.tasks;
  for (const auto& i : p4.instructions)
    if (i.op == isa::Opcode::Run && i.stage != isa::Stage::GTW)
      t4 += i.block.tasks;
  EXPECT_EQ(t4, 4 * t1);
}

TEST(Compiler, RejectsMismatchedProfile) {
  const auto net = workload::tiny_workload();
  const auto wrong = SparsityProfile::dense(workload::alexnet_cifar());
  EXPECT_THROW(compiler::compile(net, wrong), ContractError);
}

TEST(Accelerator, RunsTinyWorkload) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::natural(net);
  const auto prog = compiler::compile(net, profile);
  Accelerator accel(ArchConfig{});
  const SimReport report = accel.run(prog, net, profile);
  EXPECT_GT(report.total_cycles, 0u);
  EXPECT_GT(report.activity.macs, 0u);
  EXPECT_GT(report.energy.total_pj(), 0.0);
  EXPECT_EQ(report.stages.size(), 5u);  // 2×Forward + 1×GTA + 2×GTW
}

TEST(Accelerator, DeterministicForSameSeed) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::natural(net);
  const auto prog = compiler::compile(net, profile);
  Accelerator a(ArchConfig{}), b(ArchConfig{});
  const auto ra = a.run(prog, net, profile);
  const auto rb = b.run(prog, net, profile);
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(ra.activity.macs, rb.activity.macs);
}

TEST(Accelerator, MorePesReduceLatency) {
  const auto net = workload::alexnet_cifar();
  const auto profile = SparsityProfile::natural(net);
  const auto prog = compiler::compile(net, profile);
  ArchConfig small;
  small.pe_groups = 14;
  ArchConfig large;
  large.pe_groups = 56;
  const auto rs = Accelerator(small).run(prog, net, profile);
  const auto rl = Accelerator(large).run(prog, net, profile);
  EXPECT_GT(rs.total_cycles, rl.total_cycles);
}

TEST(Accelerator, SparsityReducesCyclesAndEnergy) {
  const auto net = workload::alexnet_cifar();
  const auto dense_p = SparsityProfile::dense(net);
  const auto sparse_p = SparsityProfile::pruned(net, 0.9, 0.45);
  Accelerator accel(ArchConfig{});
  const auto dense_prog = compiler::compile(net, dense_p);
  const auto sparse_prog = compiler::compile(net, sparse_p);
  const auto rd = accel.run(dense_prog, net, dense_p);
  const auto rs = accel.run(sparse_prog, net, sparse_p);
  EXPECT_LT(rs.total_cycles, rd.total_cycles);
  EXPECT_LT(rs.energy.total_pj(), rd.energy.total_pj());
}

TEST(Baseline, DenseModeRequired) {
  sim::ArchConfig cfg = baseline::eyeriss_like_config();
  cfg.sparse = true;
  EXPECT_THROW(baseline::EyerissLikeBaseline{cfg}, ContractError);
}

TEST(Baseline, MatchesPaperPeBudget) {
  const auto cfg = baseline::eyeriss_like_config();
  EXPECT_EQ(cfg.pe_groups * cfg.pes_per_group, 168u);
  EXPECT_EQ(cfg.buffer_bytes, 386u * 1024u);
  EXPECT_FALSE(cfg.sparse);
}

TEST(Session, SpeedupAboveOneWithSparsity) {
  core::Session session;
  const auto net = workload::alexnet_cifar();
  const auto profile = SparsityProfile::pruned(net, 0.9, 0.45);
  const auto result = session.compare(net, profile);
  EXPECT_GT(result.speedup(), 1.0);
  EXPECT_GT(result.energy_efficiency(), 1.0);
  // Sanity ceiling: cannot be faster than the density reduction allows.
  EXPECT_LT(result.speedup(), 25.0);
}

TEST(Session, DenseProfileGivesNoSpeedup) {
  core::Session session;
  const auto net = workload::alexnet_cifar();
  const auto dense_p = SparsityProfile::dense(net);
  const auto result = session.compare(net, dense_p);
  // Same dense work on both architectures → ratio near 1.
  EXPECT_NEAR(result.speedup(), 1.0, 0.15);
}

TEST(Session, BaselineSramShareMatchesPaperBand) {
  // The paper reports 62–71% of baseline (on-chip) energy from SRAM
  // accesses; allow a slightly wider band for our calibration.
  core::Session session;
  for (const auto& net :
       {workload::alexnet_cifar(), workload::resnet18_cifar()}) {
    const auto report = session.run_dense(net);
    const double share = report.energy.sram_pj / report.energy.on_chip_pj();
    EXPECT_GT(share, 0.55) << net.name;
    EXPECT_LT(share, 0.78) << net.name;
  }
}

}  // namespace
}  // namespace sparsetrain::sim
