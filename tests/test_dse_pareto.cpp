// Pareto-layer tests: dominance semantics (duplicates, single-objective
// ties, equal vectors), frontier extraction on known 3-objective sets, a
// brute-force cross-check on random objective clouds, peeling ranks, and
// the area proxy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dse/pareto.hpp"
#include "util/rng.hpp"

namespace sparsetrain {
namespace {

using dse::Objectives;
using dse::dominates;
using dse::pareto_front;
using dse::pareto_ranks;

Objectives obj(double l, double e, double a) { return {l, e, a}; }

// ------------------------------------------------------------- dominates

TEST(Dominates, StrictlyBetterEverywhere) {
  EXPECT_TRUE(dominates(obj(1, 1, 1), obj(2, 2, 2)));
  EXPECT_FALSE(dominates(obj(2, 2, 2), obj(1, 1, 1)));
}

TEST(Dominates, EqualVectorsDominateNeitherWay) {
  EXPECT_FALSE(dominates(obj(1, 2, 3), obj(1, 2, 3)));
}

TEST(Dominates, SingleObjectiveImprovementSuffices) {
  EXPECT_TRUE(dominates(obj(1, 2, 3), obj(1, 2, 4)));
  EXPECT_TRUE(dominates(obj(1, 1, 3), obj(1, 2, 3)));
  EXPECT_TRUE(dominates(obj(0, 2, 3), obj(1, 2, 3)));
}

TEST(Dominates, TradeOffsDoNotDominate) {
  // Better latency, worse energy: incomparable.
  EXPECT_FALSE(dominates(obj(1, 3, 2), obj(2, 2, 2)));
  EXPECT_FALSE(dominates(obj(2, 2, 2), obj(1, 3, 2)));
}

// ----------------------------------------------------------- pareto_front

TEST(ParetoFront, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_EQ(pareto_front({obj(1, 2, 3)}), std::vector<std::size_t>{0});
}

TEST(ParetoFront, ThreeObjectiveKnownFront) {
  // 0 and 2 trade latency against energy; 1 is dominated by 0; 3 trades
  // area against both.
  const std::vector<Objectives> pts = {
      obj(1, 5, 3), obj(2, 6, 3), obj(3, 1, 3), obj(5, 5, 1)};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(ParetoFront, DuplicatesAllStayOnFront) {
  // Equal vectors do not dominate each other, so both copies of the
  // optimum survive — stable index order breaks the tie.
  const std::vector<Objectives> pts = {obj(1, 1, 1), obj(2, 2, 2),
                                       obj(1, 1, 1)};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 2}));
}

TEST(ParetoFront, SingleObjectiveTies) {
  // Same latency, energy resolves: 1 dominates 0; area breaks the rest.
  const std::vector<Objectives> pts = {obj(1, 5, 2), obj(1, 4, 2),
                                       obj(1, 4, 1)};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{2}));
}

TEST(ParetoFront, OutputSortedByObjectivesThenIndex) {
  const std::vector<Objectives> pts = {obj(3, 1, 1), obj(1, 3, 1),
                                       obj(2, 2, 1)};
  const auto front = pareto_front(pts);
  EXPECT_EQ(front, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ParetoFront, BruteForceCrossCheck) {
  // Random clouds (including deliberate duplicates and axis ties from
  // value quantisation): every frontier point must be non-dominated,
  // every non-frontier point must be dominated by a frontier point.
  Rng rng(20260726);
  for (int round = 0; round < 10; ++round) {
    std::vector<Objectives> pts;
    for (int i = 0; i < 300; ++i) {
      // Quantised coordinates force ties; a coarse grid forces duplicates.
      pts.push_back(obj(static_cast<double>(rng.uniform_index(20)),
                        static_cast<double>(rng.uniform_index(20)),
                        static_cast<double>(rng.uniform_index(5))));
    }
    const auto front = pareto_front(pts);
    ASSERT_FALSE(front.empty());
    std::vector<bool> on_front(pts.size(), false);
    for (const std::size_t i : front) on_front[i] = true;

    for (std::size_t i = 0; i < pts.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (dominates(pts[j], pts[i])) {
          dominated = true;
          break;
        }
      }
      if (on_front[i]) {
        EXPECT_FALSE(dominated) << "frontier point " << i << " is dominated";
      } else {
        EXPECT_TRUE(dominated) << "point " << i << " missing from frontier";
        bool by_front = false;
        for (const std::size_t j : front) {
          if (dominates(pts[j], pts[i])) {
            by_front = true;
            break;
          }
        }
        EXPECT_TRUE(by_front)
            << "dominated point " << i << " not covered by any frontier point";
      }
    }
  }
}

// ----------------------------------------------------------- pareto_ranks

TEST(ParetoRanks, PeelsLayerByLayer) {
  // Two nested fronts plus a deep point.
  const std::vector<Objectives> pts = {
      obj(1, 4, 1), obj(4, 1, 1),   // rank 0
      obj(2, 5, 2), obj(5, 2, 2),   // rank 1
      obj(6, 6, 6)};                // rank 2
  const auto ranks = pareto_ranks(pts);
  EXPECT_EQ(ranks, (std::vector<std::size_t>{0, 0, 1, 1, 2}));
}

TEST(ParetoRanks, FrontIsExactlyRankZero) {
  Rng rng(7);
  std::vector<Objectives> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back(obj(rng.uniform(0, 10), rng.uniform(0, 10),
                      static_cast<double>(rng.uniform_index(4))));
  }
  const auto front = pareto_front(pts);
  const auto ranks = pareto_ranks(pts);
  std::vector<std::size_t> rank0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (ranks[i] == 0) rank0.push_back(i);
  }
  auto sorted_front = front;
  std::sort(sorted_front.begin(), sorted_front.end());
  EXPECT_EQ(sorted_front, rank0);
}

// ------------------------------------------------------------- area proxy

TEST(AreaProxy, MonotoneInPesAndBuffer) {
  sim::ArchConfig a;
  const double base = dse::area_proxy(a);
  sim::ArchConfig more_pes = a;
  more_pes.pe_groups *= 2;
  EXPECT_GT(dse::area_proxy(more_pes), base);
  sim::ArchConfig more_buffer = a;
  more_buffer.buffer_bytes *= 2;
  EXPECT_GT(dse::area_proxy(more_buffer), base);
}

}  // namespace
}  // namespace sparsetrain
