// Evaluation daemon: JSON/protocol parsing, the request loop's admission
// control, single-flight coalescing, per-request timeouts, store-backed
// repeat requests, and graceful stream drain.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/require.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using serve::JsonValue;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

constexpr const char* kTinyEval =
    "{\"type\":\"eval\",\"id\":\"r1\",\"workload\":\"tiny\"}";

TEST(Json, ParsesDocuments) {
  const JsonValue v = serve::parse_json(
      " {\"a\": 1.5, \"b\": [true, null, \"x\\n\\u0041\"], \"c\": {}} ");
  EXPECT_EQ(v.get_number("a", 0), 1.5);
  const auto& arr = v.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x\nA");
  EXPECT_TRUE(v.find("c")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.get_string("missing", "d"), "d");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(serve::parse_json(""), ContractError);
  EXPECT_THROW(serve::parse_json("{"), ContractError);
  EXPECT_THROW(serve::parse_json("{\"a\":}"), ContractError);
  EXPECT_THROW(serve::parse_json("{} trailing"), ContractError);
  EXPECT_THROW(serve::parse_json("\"unterminated"), ContractError);
  EXPECT_THROW(serve::parse_json("01x"), ContractError);
}

TEST(Json, NumbersFollowTheStrictGrammar) {
  EXPECT_EQ(serve::parse_json("0").as_number(), 0.0);
  EXPECT_EQ(serve::parse_json("-0.5").as_number(), -0.5);
  EXPECT_EQ(serve::parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(serve::parse_json("1E+3").as_number(), 1000.0);
  EXPECT_EQ(serve::parse_json("1.25e-2").as_number(), 0.0125);
  EXPECT_EQ(serve::parse_json("123456789").as_number(), 123456789.0);

  // strtod would happily convert every one of these; RFC 8259 does not.
  for (const char* bad :
       {"+1", "01", "1.", ".5", "-", "-.", "1e", "1e+", "1e-", "0x10",
        "NaN", "nan", "inf", "Infinity", "--1", "1..2", "1.e3"}) {
    EXPECT_THROW(serve::parse_json(bad), ContractError) << bad;
  }
  // Grammar-valid but unrepresentable: overflows to infinity, which the
  // emitter could never round-trip. Rejected, not silently clamped.
  EXPECT_THROW(serve::parse_json("1e999"), ContractError);
  EXPECT_THROW(serve::parse_json("-1e999"), ContractError);
  // Underflow to (sub)normal zero is representable and fine.
  EXPECT_EQ(serve::parse_json("1e-999").as_number(), 0.0);
}

TEST(Json, RejectsIncompleteEscapes) {
  EXPECT_THROW(serve::parse_json("\"\\"), ContractError);
  EXPECT_THROW(serve::parse_json("\"\\q\""), ContractError);
  EXPECT_THROW(serve::parse_json("\"\\u12\""), ContractError);
  EXPECT_THROW(serve::parse_json("\"\\u12g4\""), ContractError);
  EXPECT_EQ(serve::parse_json("\"\\u0041\"").as_string(), "A");
}

TEST(Json, BoundsDepthAndInputSize) {
  // Deep nesting fails as a parse error — never a stack overflow.
  const std::string deep(100000, '[');
  EXPECT_THROW(serve::parse_json(deep), ContractError);
  std::string nested;
  for (int i = 0; i < 60; ++i) nested += '[';
  for (int i = 0; i < 60; ++i) nested += ']';
  EXPECT_NO_THROW(serve::parse_json(nested));  // 60 < the 64-level cap

  // Oversized documents are refused up front (1 MiB cap), including
  // syntactically valid ones.
  std::string big = "\"";
  big.append((1u << 20) + 16, 'x');
  big += '"';
  EXPECT_THROW(serve::parse_json(big), ContractError);
  EXPECT_NO_THROW(serve::parse_json('"' + std::string(1000, 'x') + '"'));
}

TEST(Protocol, RequestDefaultsAndValidation) {
  const Request r = serve::parse_request(kTinyEval);
  EXPECT_EQ(r.type, "eval");
  EXPECT_EQ(r.id, "r1");
  EXPECT_EQ(r.workload, "tiny");
  EXPECT_EQ(r.backend, "sparsetrain");
  EXPECT_EQ(r.scenario, "pruned");
  EXPECT_EQ(r.engine, "statistical");
  EXPECT_THROW(serve::parse_request("{\"type\":\"nope\"}"), ContractError);
  EXPECT_THROW(
      serve::parse_request(
          "{\"type\":\"eval\",\"scenario\":\"unknown\"}"),
      ContractError);
  EXPECT_THROW(
      serve::parse_request("{\"type\":\"eval\",\"batch\":-1}"),
      ContractError);
}

TEST(Protocol, ResponseRoundTrip) {
  Response r;
  r.id = "x";
  r.status = "ok";
  r.source = "computed";
  r.workload = "tiny";
  r.backend = "sparsetrain";
  r.engine = "statistical";
  r.fingerprint = 0xdeadbeefcafe1234u;
  r.cycles = 123;
  r.latency_ms = 0.5;
  r.utilization = 0.25;
  r.on_chip_uj = 1.5;
  r.dram_uj = 2.5;
  const Response back = serve::parse_response(serve::format_response(r));
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.status, "ok");
  EXPECT_EQ(back.source, "computed");
  EXPECT_EQ(back.fingerprint, r.fingerprint);
  EXPECT_EQ(back.cycles, 123u);
  EXPECT_EQ(back.latency_ms, 0.5);
}

ServerOptions tiny_server_options(const std::string& store_dir = {}) {
  ServerOptions opts;
  opts.store_dir = store_dir;
  opts.session.workers = 2;
  opts.request_workers = 2;
  return opts;
}

TEST(Server, EvalComputesThenServesFromStore) {
  const std::string dir = fresh_dir("server_store");
  Server server(tiny_server_options(dir));
  const Response first = server.handle(kTinyEval);
  ASSERT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(first.source, "computed");
  EXPECT_GT(first.cycles, 0u);
  EXPECT_NE(first.fingerprint, 0u);

  const Response second = server.handle(kTinyEval);
  ASSERT_EQ(second.status, "ok") << second.error;
  EXPECT_EQ(second.source, "store");
  EXPECT_EQ(second.cycles, first.cycles);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(second.latency_ms, first.latency_ms);

  const auto c = server.counters();
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.computed, 1u);
  EXPECT_EQ(c.store_hits, 1u);
  fs::remove_all(dir);
}

TEST(Server, MalformedAndUnknownRequestsAnswerErrors) {
  Server server(tiny_server_options());
  EXPECT_EQ(server.handle("{oops").status, "error");
  EXPECT_EQ(server.handle("{\"type\":\"frobnicate\"}").status, "error");
  const Response bad_workload = server.handle(
      "{\"type\":\"eval\",\"id\":\"w\",\"workload\":\"NoSuchNet\"}");
  EXPECT_EQ(bad_workload.status, "error");
  EXPECT_EQ(bad_workload.id, "w");
  EXPECT_FALSE(bad_workload.error.empty());
  EXPECT_EQ(server.counters().errors, 3u);
}

TEST(Server, MalformedLineCorpusAlwaysAnswersAnError) {
  // Every malformed NDJSON line — lax numbers, broken escapes, nesting
  // bombs, oversized documents — must come back as an error response
  // from the same process: the daemon survives arbitrary garbage.
  Server server(tiny_server_options());
  std::vector<std::string> corpus = {
      "{oops",
      "{\"a\":}",
      "{} trailing garbage",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"half escape \\",
      "\"short unicode \\u12\"",
      "{\"type\":\"eval\",\"batch\":+1}",
      "{\"type\":\"eval\",\"batch\":01}",
      "{\"type\":\"eval\",\"batch\":1.}",
      "{\"type\":\"eval\",\"batch\":.5}",
      "{\"type\":\"eval\",\"batch\":-}",
      "{\"type\":\"eval\",\"batch\":1e}",
      "{\"type\":\"eval\",\"batch\":1e999}",
      "[1,2,]",
      "{\"a\":1,}",
      "nul",
      "tru",
      std::string(100000, '['),                      // nesting bomb
      "{\"pad\":\"" + std::string(1u << 21, 'x') + "\"}",  // > 1 MiB line
  };
  std::string stream;
  for (const std::string& line : corpus) stream += line + "\n";
  std::istringstream in(stream);
  std::ostringstream out;
  server.serve(in, out);

  std::size_t errors = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Response r = serve::parse_response(line);
    if (r.type == "bye") continue;  // the drain's sign-off, not an answer
    EXPECT_EQ(r.status, "error") << line;
    EXPECT_FALSE(r.error.empty()) << line;
    ++errors;
  }
  EXPECT_EQ(errors, corpus.size());
  EXPECT_EQ(server.counters().errors, corpus.size());

  // And the server still works afterwards.
  EXPECT_EQ(server.handle(kTinyEval).status, "ok");
}

TEST(Server, AdmissionRejectsWhenQueueFull) {
  ServerOptions opts = tiny_server_options();
  opts.max_queue = 0;
  Server server(opts);
  const Response r = server.handle(kTinyEval);
  EXPECT_EQ(r.status, "rejected");
  EXPECT_NE(r.error.find("queue full"), std::string::npos);
  EXPECT_EQ(server.counters().rejected, 1u);
}

TEST(Server, TimeoutAnswersWithoutKillingTheEvaluation) {
  const std::string dir = fresh_dir("server_timeout");
  ServerOptions opts = tiny_server_options(dir);
  std::atomic<bool> release{false};
  opts.before_eval = [&release]() {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(opts);
  const Response timed_out = server.handle(
      "{\"type\":\"eval\",\"id\":\"t\",\"workload\":\"tiny\","
      "\"timeout_ms\":30}");
  EXPECT_EQ(timed_out.status, "timeout");
  EXPECT_EQ(server.counters().timeouts, 1u);

  // The abandoned evaluation finishes in the background and publishes;
  // the retry is answered (from the in-flight entry or the store).
  release.store(true);
  const Response retry = server.handle(kTinyEval);
  ASSERT_EQ(retry.status, "ok") << retry.error;
  EXPECT_TRUE(retry.source == "store" || retry.source == "coalesced");
  fs::remove_all(dir);
}

TEST(Server, IdenticalInflightRequestsCoalesce) {
  ServerOptions opts = tiny_server_options();  // no store needed
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  opts.before_eval = [&]() {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(opts);

  Response a, b;
  std::thread owner([&]() { a = server.handle(kTinyEval); });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread waiter([&]() { b = server.handle(kTinyEval); });
  // Give the waiter time to attach, then let the evaluation run.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);
  owner.join();
  waiter.join();

  ASSERT_EQ(a.status, "ok") << a.error;
  ASSERT_EQ(b.status, "ok") << b.error;
  EXPECT_EQ(a.source, "computed");
  EXPECT_EQ(b.source, "coalesced");
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  const auto c = server.counters();
  EXPECT_EQ(c.computed, 1u);
  EXPECT_EQ(c.coalesced, 1u);
}

TEST(Server, StatsAndStatusRequests) {
  const std::string dir = fresh_dir("server_stats");
  Server server(tiny_server_options(dir));
  ASSERT_EQ(server.handle(kTinyEval).status, "ok");

  const Response stats = server.handle("{\"type\":\"stats\",\"id\":\"s\"}");
  EXPECT_EQ(stats.type, "stats");
  EXPECT_EQ(stats.status, "ok");
  EXPECT_NE(stats.payload_json.find("sparsetrain.store_stats/v2"),
            std::string::npos);
  EXPECT_NE(stats.payload_json.find("\"store_attached\": true"),
            std::string::npos);
  // The payload is itself valid JSON (NDJSON-safe single line).
  EXPECT_EQ(stats.payload_json.find('\n'), std::string::npos);
  EXPECT_NO_THROW(serve::parse_json(stats.payload_json));

  const Response status = server.handle("{\"type\":\"status\"}");
  EXPECT_EQ(status.type, "status");
  const JsonValue payload = serve::parse_json(status.payload_json);
  EXPECT_EQ(payload.get_number("completed", -1), 1);
  EXPECT_EQ(payload.get_number("inflight", -1), 0);
  fs::remove_all(dir);
}

TEST(Server, StreamLoopDrainsAndAnswersBye) {
  const std::string dir = fresh_dir("server_stream");
  ServerOptions opts = tiny_server_options(dir);
  opts.request_workers = 1;  // sequential: the repeat is a store hit
  Server server(opts);

  std::istringstream in(
      std::string(kTinyEval) + "\n" +
      "{\"type\":\"eval\",\"id\":\"r2\",\"workload\":\"tiny\"}\n" +
      "this is not json\n" +
      "{\"type\":\"stats\",\"id\":\"s\"}\n" +
      "{\"type\":\"shutdown\",\"id\":\"z\"}\n" +
      "{\"type\":\"eval\",\"id\":\"after\",\"workload\":\"tiny\"}\n");
  std::ostringstream out;
  server.serve(in, out);

  std::vector<Response> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    responses.push_back(serve::parse_response(line));
  }
  ASSERT_EQ(responses.size(), 5u) << out.str();

  auto by_id = [&](const std::string& id) -> const Response& {
    for (const Response& r : responses) {
      if (r.id == id) return r;
    }
    ADD_FAILURE() << "no response with id " << id << "\n" << out.str();
    return responses.front();
  };
  EXPECT_EQ(by_id("r1").status, "ok");
  EXPECT_EQ(by_id("r1").source, "computed");
  EXPECT_EQ(by_id("r2").status, "ok");
  EXPECT_EQ(by_id("r2").source, "store");
  EXPECT_EQ(by_id("s").type, "stats");
  // The malformed line got an explicit error response (no id).
  EXPECT_EQ(by_id("").status, "error");
  // Shutdown drained and answered last; the request after it was never
  // read.
  EXPECT_EQ(responses.back().type, "bye");
  EXPECT_EQ(responses.back().id, "z");
  for (const Response& r : responses) EXPECT_NE(r.id, "after");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sparsetrain
