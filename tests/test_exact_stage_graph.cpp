// Byte-identity of the two-level exact execution model (tile kernels →
// streaming merge → whole-program stage graph) against the serial sweep.
//
// The determinism contract after the fused-kernel/stage-graph rewrite is
// unchanged from PR 3: every simulated number — per-stage cycles,
// activity counters, energy — is a pure function of (program, network,
// profile, seed), independent of worker count, tile size, and which
// thread ran which (layer, stage) unit. These tests pin that across the
// agreement-matrix geometry grid, the odd-geometry fuzz generator's
// degenerate shapes, and a mixed conv+FC network, for worker counts
// {1, 2, 7}.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "sim/exact_network.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {
namespace {

constexpr std::size_t kWorkerGrid[] = {2, 7};

void expect_identical_reports(const SimReport& a, const SimReport& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.activity.busy_cycles, b.activity.busy_cycles);
  EXPECT_EQ(a.activity.macs, b.activity.macs);
  EXPECT_EQ(a.activity.reg_accesses, b.activity.reg_accesses);
  // Energy is float arithmetic, but the assembly order is pinned to
  // program order for every worker count, so even the double sums must
  // be bit-equal.
  EXPECT_EQ(a.energy.on_chip_pj(), b.energy.on_chip_pj());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    SCOPED_TRACE("stage " + std::to_string(i));
    EXPECT_EQ(a.stages[i].layer_index, b.stages[i].layer_index);
    EXPECT_EQ(a.stages[i].stage, b.stages[i].stage);
    EXPECT_EQ(a.stages[i].cycles, b.stages[i].cycles);
    EXPECT_EQ(a.stages[i].activity.busy_cycles,
              b.stages[i].activity.busy_cycles);
    EXPECT_EQ(a.stages[i].activity.macs, b.stages[i].activity.macs);
    EXPECT_EQ(a.stages[i].activity.reg_accesses,
              b.stages[i].activity.reg_accesses);
  }
}

/// Serial reference vs stage-graph runs at every grid worker count (and
/// both adaptive and pinned tiles for the widest one).
void check_grid(const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                std::uint64_t seed, bool require_nonzero = true) {
  compiler::CompileOptions copts;
  copts.engine = isa::EngineKind::Exact;
  const auto prog = compiler::compile(net, profile, copts);

  ArchConfig cfg;
  cfg.pe_groups = 8;

  const SimReport serial =
      run_exact(cfg, prog, net, profile, seed, ExactOptions{});
  // Degenerate fuzz geometries (1×N inputs fully inside padding) may
  // legitimately schedule zero work; identity still must hold there.
  if (require_nonzero) EXPECT_GT(serial.total_cycles, 0u);

  for (const std::size_t workers : kWorkerGrid) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExactOptions wide;
    wide.workers = workers;
    expect_identical_reports(
        run_exact(cfg, prog, net, profile, seed, wide), serial);

    ExactOptions pinned = wide;
    pinned.tile_tasks = 3;
    expect_identical_reports(
        run_exact(cfg, prog, net, profile, seed, pinned), serial);
  }
}

/// The agreement-matrix probe: one mid-size conv layer (not first, so
/// GTA compiles too) at the matrix's stride/pad variants.
workload::NetworkConfig probe_net(std::size_t kernel, std::size_t stride,
                                  std::size_t padding) {
  workload::NetworkConfig net;
  net.name = "probe-k" + std::to_string(kernel) + "s" +
             std::to_string(stride) + "p" + std::to_string(padding);
  workload::LayerConfig l;
  l.name = "conv";
  l.in_channels = 8;
  l.in_h = 24;
  l.in_w = 24;
  l.out_channels = 16;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  net.layers = {l};
  return net;
}

TEST(ExactStageGraph, MatrixGeometriesAreByteIdenticalAcrossWorkers) {
  struct GeoCase {
    std::size_t kernel, stride, padding;
  };
  const std::vector<GeoCase> geos = {{3, 1, 1}, {3, 2, 1}, {5, 2, 2}};
  const std::vector<double> densities = {1.0, 0.5, 0.1};

  for (const auto& g : geos) {
    for (const double d : densities) {
      SCOPED_TRACE("k/s/p=" + std::to_string(g.kernel) + "/" +
                   std::to_string(g.stride) + "/" +
                   std::to_string(g.padding) + " d=" + std::to_string(d));
      const auto net = probe_net(g.kernel, g.stride, g.padding);
      std::vector<workload::LayerDensities> ld(1);
      ld[0].input_acts = d;
      ld[0].output_grads = d;
      ld[0].mask = d;
      check_grid(net, workload::SparsityProfile("d", ld), /*seed=*/99);
    }
  }
}

// The odd-geometry generator of tests/test_dataflow_fuzz.cpp: stride >
// kernel, padding == kernel, 1×N / N×1 inputs. The stage graph must stay
// byte-identical on shapes where most tasks schedule zero or one row op
// (the merge degenerates to near-empty tiles).
TEST(ExactStageGraph, OddGeometryFuzzSeedsAreByteIdenticalAcrossWorkers) {
  for (const std::uint64_t seed : {901u, 902u, 903u, 904u, 905u}) {
    Rng rng(seed);
    const std::size_t kernel = 1 + rng.uniform_index(3);
    const std::size_t stride = 1 + rng.uniform_index(4);
    const std::size_t padding = rng.uniform_index(kernel + 1);
    const std::size_t in_c = 1 + rng.uniform_index(3);
    const std::size_t out_c = 1 + rng.uniform_index(4);
    std::size_t h = 6 + rng.uniform_index(10);
    std::size_t w = 6 + rng.uniform_index(10);
    switch (rng.uniform_index(3)) {
      case 0: h = 1; break;
      case 1: w = 1; break;
      default: break;
    }
    if (h + 2 * padding < kernel || w + 2 * padding < kernel) continue;
    SCOPED_TRACE("seed=" + std::to_string(seed) + " k=" +
                 std::to_string(kernel) + " s=" + std::to_string(stride) +
                 " p=" + std::to_string(padding) + " h=" +
                 std::to_string(h) + " w=" + std::to_string(w));

    workload::NetworkConfig net;
    net.name = "odd-" + std::to_string(seed);
    workload::LayerConfig l;
    l.name = "conv";
    l.in_channels = in_c;
    l.in_h = h;
    l.in_w = w;
    l.out_channels = out_c;
    l.kernel = kernel;
    l.stride = stride;
    l.padding = padding;
    net.layers = {l};

    std::vector<workload::LayerDensities> ld(1);
    ld[0].input_acts = 0.1 + 0.8 * rng.uniform();
    ld[0].output_grads = 0.1 + 0.8 * rng.uniform();
    ld[0].mask = 0.5;
    check_grid(net, workload::SparsityProfile("odd", ld), seed,
               /*require_nonzero=*/false);
  }
}

// A deeper mixed program — several conv layers plus an FC head, all
// three stages each — exercises the stage graph's operand cache under
// real unit concurrency: Forward/GTA/GTW of one layer share tensors
// (synthesised exactly once via call_once) while other layers' units run
// concurrently, and FC units synthesise privately.
TEST(ExactStageGraph, MixedConvFcNetworkIsByteIdenticalAcrossWorkers) {
  workload::NetworkConfig net;
  net.name = "graph-probe";
  for (int i = 0; i < 3; ++i) {
    workload::LayerConfig l;
    l.name = "conv" + std::to_string(i);
    l.in_channels = 4 + 2 * i;
    l.in_h = 14;
    l.in_w = 14;
    l.out_channels = 6 + 2 * i;
    l.kernel = 3;
    l.stride = 1;
    l.padding = 1;
    l.first_layer = i == 0;
    net.layers.push_back(l);
  }
  workload::LayerConfig fc;
  fc.name = "fc";
  fc.in_channels = 64;
  fc.in_h = 1;
  fc.in_w = 1;
  fc.out_channels = 10;
  fc.kernel = 1;
  fc.stride = 1;
  fc.padding = 0;
  fc.is_fc = true;
  net.layers.push_back(fc);

  const auto profile =
      workload::SparsityProfile::calibrated(net, 0.5, 0.3, "probe");
  check_grid(net, profile, /*seed=*/7);
}

}  // namespace
}  // namespace sparsetrain::sim
