// Tests for im2col conv cross-validation, trace export, and Args parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/im2col.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain {
namespace {

TEST(Im2Col, UnfoldsKnownPattern) {
  // 1 channel 2x2 input, K=2, no padding → single column of the 4 values.
  Tensor in(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  nn::Im2ColGeometry geo;
  geo.in_channels = 1;
  geo.out_channels = 1;
  geo.kernel = 2;
  geo.stride = 1;
  geo.padding = 0;
  const Tensor cols = nn::im2col(in, geo);
  EXPECT_EQ(cols.shape(), (Shape{1, 1, 4, 1}));
  EXPECT_FLOAT_EQ(cols.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 0, 3, 0), 4.0f);
}

TEST(Im2Col, PaddingBecomesZeros) {
  Tensor in(Shape{1, 1, 1, 1}, {5.0f});
  nn::Im2ColGeometry geo;
  geo.in_channels = 1;
  geo.out_channels = 1;
  geo.kernel = 3;
  geo.stride = 1;
  geo.padding = 1;
  const Tensor cols = nn::im2col(in, geo);
  EXPECT_EQ(cols.shape(), (Shape{1, 1, 9, 1}));
  EXPECT_FLOAT_EQ(cols.at(0, 0, 4, 0), 5.0f);  // centre tap
  float sum = 0.0f;
  for (float v : cols.flat()) sum += v;
  EXPECT_FLOAT_EQ(sum, 5.0f);  // everything else is padding zeros
}

class Im2ColEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Im2ColEquivalence, MatchesDirectConv) {
  const auto [k, s, p] = GetParam();
  Rng rng(11);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 5;
  cfg.kernel = static_cast<std::size_t>(k);
  cfg.stride = static_cast<std::size_t>(s);
  cfg.padding = static_cast<std::size_t>(p);
  nn::Conv2D conv(cfg);
  for (auto* param : conv.params()) param->value.fill_normal(rng, 0.0f, 0.4f);

  Tensor in(Shape{2, 3, 9, 9});
  in.fill_sparse_normal(rng, 0.6);

  nn::Im2ColGeometry geo;
  geo.in_channels = cfg.in_channels;
  geo.out_channels = cfg.out_channels;
  geo.kernel = cfg.kernel;
  geo.stride = cfg.stride;
  geo.padding = cfg.padding;

  const Tensor direct = conv.forward(in, false);
  const Tensor gemm = nn::conv2d_im2col(in, conv.weight().value,
                                        &conv.bias_param().value, geo);
  EXPECT_LT(max_abs_diff(direct, gemm), 1e-4f);
}

std::string im2col_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  return "k" + std::to_string(std::get<0>(info.param)) + "s" +
         std::to_string(std::get<1>(info.param)) + "p" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2ColEquivalence,
                         ::testing::Values(std::make_tuple(3, 1, 1),
                                           std::make_tuple(3, 2, 1),
                                           std::make_tuple(1, 1, 0),
                                           std::make_tuple(5, 1, 2)),
                         im2col_case_name);

TEST(TraceExport, WritesValidChromeTrace) {
  sim::SimReport report;
  report.clock_ghz = 1.0;
  sim::StageReport s1;
  s1.layer_name = "conv1";
  s1.stage = isa::Stage::Forward;
  s1.cycles = 1000;
  sim::StageReport s2;
  s2.layer_name = "conv1";
  s2.stage = isa::Stage::GTW;
  s2.cycles = 500;
  report.stages = {s1, s2};
  report.total_cycles = 1500;

  const std::string path = "test_trace.json";
  ASSERT_TRUE(sim::write_chrome_trace(report, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"conv1\""), std::string::npos);
  EXPECT_NE(json.find("\"GTW\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArgsParse, KeyValueForms) {
  // A bare flag followed by a non-flag token consumes it as its value, so
  // positionals go before flags (or use --key=value).
  const char* argv[] = {"prog", "positional", "--p=0.9", "--groups", "56",
                        "--verbose"};
  Args args(6, argv);
  EXPECT_TRUE(args.has("p"));
  EXPECT_DOUBLE_EQ(args.get("p", 0.0), 0.9);
  EXPECT_EQ(args.get("groups", 0L), 56L);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("missing", std::string("dflt")), "dflt");
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "positional");
}

TEST(ArgsParse, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--p=abc"};
  Args args(2, argv);
  EXPECT_THROW(args.get("p", 0.0), ContractError);
}

TEST(ArgsParse, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_DOUBLE_EQ(args.get("p", 0.5), 0.5);
  EXPECT_EQ(args.get("n", 7L), 7L);
  EXPECT_FALSE(args.has("p"));
}

TEST(ArgsStrict, AcceptsDeclaredFlagsOnly) {
  const std::vector<Args::Flag> spec = {{"p", "pruning rate"},
                                        {"quick", "fast subset", false}};
  const char* ok[] = {"prog", "--p", "0.9", "--quick"};
  Args args(4, ok, spec);
  EXPECT_DOUBLE_EQ(args.get("p", 0.0), 0.9);
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.help_requested());

  // A typoed flag is a hard error whose message carries the usage dump.
  const char* typo[] = {"prog", "--worker", "4"};
  try {
    Args bad(3, typo, spec);
    FAIL() << "unknown flag accepted";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--worker"), std::string::npos);
    EXPECT_NE(what.find("usage:"), std::string::npos);
    EXPECT_NE(what.find("pruning rate"), std::string::npos);
  }
}

TEST(ArgsStrict, RejectsPositionalsAndMissingValues) {
  const std::vector<Args::Flag> spec = {{"out", "output path"}};
  const char* positional[] = {"prog", "stray"};
  EXPECT_THROW(Args(2, positional, spec), ContractError);
  const char* missing[] = {"prog", "--out"};
  EXPECT_THROW(Args(2, missing, spec), ContractError);
  // A following --flag is never swallowed as the value (use --out=--x
  // for values that genuinely start with dashes).
  const std::vector<Args::Flag> two = {{"out", "output path"},
                                       {"quick", "fast subset", false}};
  const char* swallow[] = {"prog", "--out", "--quick"};
  EXPECT_THROW(Args(3, swallow, two), ContractError);
  const char* eq_form[] = {"prog", "--out=--quick"};
  EXPECT_EQ(Args(2, eq_form, two).get("out", std::string()), "--quick");
}

TEST(ArgsStrict, BooleanFlagsNeverConsumeTheNextToken) {
  // The permissive parser's footgun: `--quick value` swallowed `value`.
  // With a spec, boolean flags stand alone and values after them are
  // (correctly) rejected as positionals.
  const std::vector<Args::Flag> spec = {{"quick", "fast subset", false},
                                        {"out", "output path"}};
  const char* argv[] = {"prog", "--quick", "--out", "x.json"};
  Args args(4, argv, spec);
  EXPECT_TRUE(args.has("quick"));
  EXPECT_EQ(args.get("out", std::string()), "x.json");
  const char* bad[] = {"prog", "--quick=1"};
  EXPECT_THROW(Args(2, bad, spec), ContractError);
}

TEST(ArgsStrict, HelpIsAlwaysAccepted) {
  const std::vector<Args::Flag> spec = {{"out", "output path"}};
  const char* argv[] = {"prog", "--help"};
  Args args(2, argv, spec);
  EXPECT_TRUE(args.help_requested());
  const std::string usage = args.usage("prog");
  EXPECT_NE(usage.find("--out"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace sparsetrain
