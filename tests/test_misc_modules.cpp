// Tests for im2col conv cross-validation, trace export, and Args parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "nn/conv2d.hpp"
#include "nn/im2col.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain {
namespace {

TEST(Im2Col, UnfoldsKnownPattern) {
  // 1 channel 2x2 input, K=2, no padding → single column of the 4 values.
  Tensor in(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  nn::Im2ColGeometry geo;
  geo.in_channels = 1;
  geo.out_channels = 1;
  geo.kernel = 2;
  geo.stride = 1;
  geo.padding = 0;
  const Tensor cols = nn::im2col(in, geo);
  EXPECT_EQ(cols.shape(), (Shape{1, 1, 4, 1}));
  EXPECT_FLOAT_EQ(cols.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 0, 3, 0), 4.0f);
}

TEST(Im2Col, PaddingBecomesZeros) {
  Tensor in(Shape{1, 1, 1, 1}, {5.0f});
  nn::Im2ColGeometry geo;
  geo.in_channels = 1;
  geo.out_channels = 1;
  geo.kernel = 3;
  geo.stride = 1;
  geo.padding = 1;
  const Tensor cols = nn::im2col(in, geo);
  EXPECT_EQ(cols.shape(), (Shape{1, 1, 9, 1}));
  EXPECT_FLOAT_EQ(cols.at(0, 0, 4, 0), 5.0f);  // centre tap
  float sum = 0.0f;
  for (float v : cols.flat()) sum += v;
  EXPECT_FLOAT_EQ(sum, 5.0f);  // everything else is padding zeros
}

class Im2ColEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Im2ColEquivalence, MatchesDirectConv) {
  const auto [k, s, p] = GetParam();
  Rng rng(11);
  nn::Conv2DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 5;
  cfg.kernel = static_cast<std::size_t>(k);
  cfg.stride = static_cast<std::size_t>(s);
  cfg.padding = static_cast<std::size_t>(p);
  nn::Conv2D conv(cfg);
  for (auto* param : conv.params()) param->value.fill_normal(rng, 0.0f, 0.4f);

  Tensor in(Shape{2, 3, 9, 9});
  in.fill_sparse_normal(rng, 0.6);

  nn::Im2ColGeometry geo;
  geo.in_channels = cfg.in_channels;
  geo.out_channels = cfg.out_channels;
  geo.kernel = cfg.kernel;
  geo.stride = cfg.stride;
  geo.padding = cfg.padding;

  const Tensor direct = conv.forward(in, false);
  const Tensor gemm = nn::conv2d_im2col(in, conv.weight().value,
                                        &conv.bias_param().value, geo);
  EXPECT_LT(max_abs_diff(direct, gemm), 1e-4f);
}

std::string im2col_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  return "k" + std::to_string(std::get<0>(info.param)) + "s" +
         std::to_string(std::get<1>(info.param)) + "p" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2ColEquivalence,
                         ::testing::Values(std::make_tuple(3, 1, 1),
                                           std::make_tuple(3, 2, 1),
                                           std::make_tuple(1, 1, 0),
                                           std::make_tuple(5, 1, 2)),
                         im2col_case_name);

TEST(TraceExport, WritesValidChromeTrace) {
  sim::SimReport report;
  report.clock_ghz = 1.0;
  sim::StageReport s1;
  s1.layer_name = "conv1";
  s1.stage = isa::Stage::Forward;
  s1.cycles = 1000;
  sim::StageReport s2;
  s2.layer_name = "conv1";
  s2.stage = isa::Stage::GTW;
  s2.cycles = 500;
  report.stages = {s1, s2};
  report.total_cycles = 1500;

  const std::string path = "test_trace.json";
  ASSERT_TRUE(sim::write_chrome_trace(report, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"conv1\""), std::string::npos);
  EXPECT_NE(json.find("\"GTW\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArgsParse, KeyValueForms) {
  // A bare flag followed by a non-flag token consumes it as its value, so
  // positionals go before flags (or use --key=value).
  const char* argv[] = {"prog", "positional", "--p=0.9", "--groups", "56",
                        "--verbose"};
  Args args(6, argv);
  EXPECT_TRUE(args.has("p"));
  EXPECT_DOUBLE_EQ(args.get("p", 0.0), 0.9);
  EXPECT_EQ(args.get("groups", 0L), 56L);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("missing", std::string("dflt")), "dflt");
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "positional");
}

TEST(ArgsParse, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--p=abc"};
  Args args(2, argv);
  EXPECT_THROW(args.get("p", 0.0), ContractError);
}

TEST(ArgsParse, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_DOUBLE_EQ(args.get("p", 0.5), 0.5);
  EXPECT_EQ(args.get("n", 7L), 7L);
  EXPECT_FALSE(args.has("p"));
}

}  // namespace
}  // namespace sparsetrain
