// PPU functional model + workload geometry tests.
#include <gtest/gtest.h>

#include "pruning/threshold.hpp"
#include "sim/ppu.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

TEST(Ppu, AccumulatesPartialSums) {
  sim::Ppu ppu;
  ppu.accumulate(std::vector<float>{1.0f, -2.0f, 3.0f});
  ppu.accumulate(std::vector<float>{0.5f, 1.0f, -4.0f});
  const SparseRow row = ppu.flush(/*apply_relu=*/false);
  const auto dense = decompress_row(row);
  EXPECT_FLOAT_EQ(dense[0], 1.5f);
  EXPECT_FLOAT_EQ(dense[1], -1.0f);
  EXPECT_FLOAT_EQ(dense[2], -1.0f);
}

TEST(Ppu, ReluBeforeCompression) {
  sim::Ppu ppu;
  ppu.accumulate(std::vector<float>{1.0f, -2.0f, 0.0f, 3.0f});
  const SparseRow row = ppu.flush(/*apply_relu=*/true);
  EXPECT_EQ(row.nnz(), 2u);  // −2 clamped, 0 dropped
  const auto dense = decompress_row(row);
  EXPECT_FLOAT_EQ(dense[0], 1.0f);
  EXPECT_FLOAT_EQ(dense[1], 0.0f);
  EXPECT_FLOAT_EQ(dense[3], 3.0f);
}

TEST(Ppu, StatisticsFeedBiasGradAndThreshold) {
  // Σg is the bias gradient; Σ|g| with estimate_sigma reproduces the
  // threshold-determination statistic — all gathered in the same pass.
  sim::Ppu ppu;
  Rng rng(91);
  const std::size_t n = 50000;
  double expect_sum = 0.0;
  for (std::size_t chunk = 0; chunk < n / 100; ++chunk) {
    std::vector<float> row(100);
    for (auto& x : row) {
      x = static_cast<float>(rng.normal(0.0, 0.7));
      expect_sum += x;
    }
    ppu.accumulate(row);
    (void)ppu.flush(false);
  }
  EXPECT_EQ(ppu.count(), n);
  EXPECT_NEAR(ppu.grad_sum(), expect_sum, 1e-2);
  const double sigma_hat = pruning::estimate_sigma(ppu.abs_sum(), ppu.count());
  EXPECT_NEAR(sigma_hat, 0.7, 0.02);
}

TEST(Ppu, ResetClearsStats) {
  sim::Ppu ppu;
  ppu.accumulate(std::vector<float>{5.0f});
  (void)ppu.flush(false);
  EXPECT_GT(ppu.abs_sum(), 0.0);
  ppu.reset_stats();
  EXPECT_EQ(ppu.abs_sum(), 0.0);
  EXPECT_EQ(ppu.count(), 0u);
}

TEST(Ppu, FlushWithoutAccumulateThrows) {
  sim::Ppu ppu;
  EXPECT_THROW(ppu.flush(false), ContractError);
}

TEST(Ppu, MismatchedPartialLengthThrows) {
  sim::Ppu ppu;
  ppu.accumulate(std::vector<float>{1.0f, 2.0f});
  EXPECT_THROW(ppu.accumulate(std::vector<float>{1.0f}), ContractError);
}

// ---------------------------------------------------------------------------
// Workload geometry details.

TEST(WorkloadGeometry, AlexNetImagenetClassicDims) {
  const auto net = workload::alexnet_imagenet();
  // conv1: 227x227 k11 s4 -> 55x55.
  EXPECT_EQ(net.layers[0].out_h(), 55u);
  EXPECT_EQ(net.layers[0].out_w(), 55u);
  // conv2 operates on the pooled 27x27 maps.
  EXPECT_EQ(net.layers[1].in_h, 27u);
  EXPECT_EQ(net.layers[1].out_h(), 27u);
  // fc8 classifies into 1000.
  EXPECT_EQ(net.layers.back().out_channels, 1000u);
  EXPECT_TRUE(net.layers.back().is_fc);
}

TEST(WorkloadGeometry, Resnet18ImagenetStages) {
  const auto net = workload::resnet18_imagenet();
  // Stem: 224 k7 s2 -> 112.
  EXPECT_EQ(net.layers[0].out_h(), 112u);
  // Last conv stage works on 7x7 maps with 512 channels.
  const auto& last_conv = net.layers[net.layers.size() - 2];
  EXPECT_EQ(last_conv.out_channels, 512u);
  EXPECT_EQ(last_conv.out_h(), 7u);
}

TEST(WorkloadGeometry, ProjectionConvsPresentOnDownsample) {
  const auto net = workload::resnet18_cifar();
  std::size_t projections = 0;
  for (const auto& l : net.layers)
    if (l.name.find("proj") != std::string::npos) ++projections;
  EXPECT_EQ(projections, 2u);  // stage 2 and stage 3 transitions
}

TEST(WorkloadGeometry, FirstLayerFlagSetOnce) {
  for (const auto& net : workload::paper_workloads()) {
    std::size_t firsts = 0;
    for (const auto& l : net.layers)
      if (l.first_layer) ++firsts;
    EXPECT_EQ(firsts, 1u) << net.name;
    EXPECT_TRUE(net.layers[0].first_layer) << net.name;
  }
}

TEST(WorkloadGeometry, ForwardMacsMatchKnownFormula) {
  workload::LayerConfig l;
  l.in_channels = 3;
  l.in_h = 8;
  l.in_w = 8;
  l.out_channels = 4;
  l.kernel = 3;
  l.stride = 1;
  l.padding = 1;
  EXPECT_EQ(l.forward_macs(), 4u * 8u * 8u * 3u * 3u * 3u);
}

// Table II lookup behaviour.
TEST(PaperDensities, BaselineAndInterpolation) {
  using workload::ModelFamily;
  using workload::paper_table2_do_density;
  // Baselines: ResNet dense (BN), AlexNet already sparse from ReLU.
  EXPECT_EQ(paper_table2_do_density(ModelFamily::ResNet, false, 0.0), 1.0);
  EXPECT_NEAR(paper_table2_do_density(ModelFamily::AlexNet, false, 0.0), 0.09,
              1e-12);
  // Published points.
  EXPECT_NEAR(paper_table2_do_density(ModelFamily::ResNet, false, 0.9), 0.34,
              1e-12);
  EXPECT_NEAR(paper_table2_do_density(ModelFamily::ResNet, true, 0.7), 0.41,
              1e-12);
  // Interpolation lands between neighbours.
  const double mid = paper_table2_do_density(ModelFamily::ResNet, false, 0.75);
  EXPECT_LT(mid, 0.36);
  EXPECT_GT(mid, 0.35);
  // Monotone non-increasing in p.
  double prev = 1.1;
  for (double p : {0.0, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    const double rho = paper_table2_do_density(ModelFamily::ResNet, true, p);
    EXPECT_LE(rho, prev);
    prev = rho;
  }
}

TEST(PaperDensities, ActDensityByFamily) {
  EXPECT_LT(workload::paper_act_density(workload::ModelFamily::AlexNet),
            workload::paper_act_density(workload::ModelFamily::ResNet));
}

TEST(CalibratedProfile, FirstLayerStaysDense) {
  const auto net = workload::resnet18_cifar();
  const auto p = workload::SparsityProfile::calibrated(net, 0.4, 0.3);
  EXPECT_EQ(p.layer(0).input_acts, 1.0);
  EXPECT_NEAR(p.layer(1).input_acts, 0.4, 1e-12);
  EXPECT_NEAR(p.layer(1).output_grads, 0.3, 1e-12);
}

TEST(CalibratedProfile, RejectsBadDensities) {
  const auto net = workload::tiny_workload();
  EXPECT_THROW(workload::SparsityProfile::calibrated(net, 0.0, 0.5),
               ContractError);
  EXPECT_THROW(workload::SparsityProfile::calibrated(net, 0.5, 1.5),
               ContractError);
}

}  // namespace
}  // namespace sparsetrain
