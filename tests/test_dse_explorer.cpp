// Explorer tests: space enumeration, byte-identical exploration output
// across session worker counts, strategy behaviour (random sampling,
// successive halving, prune callback, exact promotion), ProgramCache
// sharing, ArchConfig validation at every boundary, and the acceptance
// grid (≥200 architectures × 2 zoo workloads, ≥50% cache hit-rate,
// brute-force-verified frontier).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "dse/export.hpp"
#include "util/require.hpp"
#include "workload/layer_config.hpp"

namespace sparsetrain {
namespace {

using dse::ExploreOptions;
using dse::ExploreResult;
using dse::Explorer;
using dse::Scenario;
using dse::SpaceSpec;
using dse::Strategy;

/// Small multi-axis space over the tiny test workload.
SpaceSpec tiny_space() {
  SpaceSpec space;
  space.pe_groups = {4, 8};
  space.pes_per_group = {2, 3};
  space.buffer_bytes = {64 * 1024};
  space.sparse = {true, false};
  space.batch = {1, 2};
  space.scenarios = {Scenario::dense(), Scenario::pruned(0.9)};
  return space;
}

ExploreResult explore_tiny(std::size_t workers, const ExploreOptions& opts,
                           SpaceSpec space = tiny_space()) {
  core::SessionConfig cfg;
  cfg.workers = workers;
  core::Session session(cfg);
  Explorer explorer(session);
  return explorer.explore(space, {workload::tiny_workload()}, opts);
}

std::string to_json(const ExploreResult& result) {
  std::ostringstream os;
  dse::export_json(result, os);
  return os.str();
}

// -------------------------------------------------------------- SpaceSpec

TEST(SpaceSpec, EnumerationCoversTheCrossProductOnce) {
  const SpaceSpec space = tiny_space();
  EXPECT_EQ(space.size(), 2u * 2u * 2u * 2u * 2u);
  EXPECT_EQ(space.arch_points(), 2u * 2u * 2u);
  std::set<std::string> labels;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const dse::DesignPoint pt = space.point(i);
    EXPECT_EQ(pt.index, i);
    labels.insert(pt.label());
  }
  EXPECT_EQ(labels.size(), space.size());  // every point distinct
  EXPECT_THROW(space.point(space.size()), ContractError);
}

TEST(SpaceSpec, FingerprintTracksContent) {
  const SpaceSpec a = tiny_space();
  SpaceSpec b = a;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.pe_groups.push_back(16);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  SpaceSpec c = a;
  c.scenarios[1] = Scenario::pruned(0.7);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(SpaceSpec, ValidateRejectsMalformedSpaces) {
  SpaceSpec empty_axis = tiny_space();
  empty_axis.clock_ghz.clear();
  EXPECT_THROW(empty_axis.validate(), ContractError);

  SpaceSpec dup_axis = tiny_space();
  dup_axis.pe_groups = {8, 8};
  EXPECT_THROW(dup_axis.validate(), ContractError);

  SpaceSpec dup_scenario = tiny_space();
  dup_scenario.scenarios = {Scenario::dense(), Scenario::dense()};
  EXPECT_THROW(dup_scenario.validate(), ContractError);

  SpaceSpec bad_density = tiny_space();
  bad_density.scenarios = {Scenario::calibrated("zero", 0.0, 0.5)};
  EXPECT_THROW(bad_density.validate(), ContractError);

  SpaceSpec bad_batch = tiny_space();
  bad_batch.batch = {0};
  EXPECT_THROW(bad_batch.validate(), ContractError);

  SpaceSpec bad_arch = tiny_space();
  bad_arch.pe_groups = {0};
  EXPECT_THROW(bad_arch.validate(), ContractError);
}

TEST(SpaceSpec, BackendNamesDistinguishBaseConfigs) {
  const SpaceSpec space = tiny_space();
  SpaceSpec other = space;
  other.base.energy.mac_pj *= 2.0;  // not an axis — must still split names
  EXPECT_NE(space.point(0).backend_name(), other.point(0).backend_name());
}

// ------------------------------------------------------ ArchConfig checks

TEST(ArchConfigValidate, RejectsNonsenseWithFieldNames) {
  sim::ArchConfig ok;
  EXPECT_NO_THROW(ok.validate());

  sim::ArchConfig zero_groups;
  zero_groups.pe_groups = 0;
  EXPECT_THROW(zero_groups.validate(), ContractError);
  try {
    zero_groups.validate();
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("pe_groups"), std::string::npos);
  }

  sim::ArchConfig zero_clock;
  zero_clock.clock_ghz = 0.0;
  EXPECT_THROW(zero_clock.validate(), ContractError);

  sim::ArchConfig tiny_buffer;
  tiny_buffer.buffer_bytes = 16;
  EXPECT_THROW(tiny_buffer.validate(), ContractError);

  sim::ArchConfig huge_buffer;
  huge_buffer.buffer_bytes = std::size_t{3} << 30;
  EXPECT_THROW(huge_buffer.validate(), ContractError);
}

TEST(ArchConfigValidate, EnforcedAtBackendRegistration) {
  sim::BackendRegistry registry;
  sim::ArchConfig bad;
  bad.pe_groups = 0;
  EXPECT_THROW(registry.register_arch("bad", bad), ContractError);
  sim::ArchConfig good;
  EXPECT_NO_THROW(registry.register_arch("good", good));
}

// ------------------------------------------------------------ determinism

TEST(Explorer, ByteIdenticalAcrossWorkerCounts) {
  ExploreOptions opts;
  opts.exact_validate = 2;  // exercise the exact promotion path too
  const std::string w1 = to_json(explore_tiny(1, opts));
  EXPECT_EQ(w1, to_json(explore_tiny(2, opts)));
  EXPECT_EQ(w1, to_json(explore_tiny(7, opts)));
}

TEST(Explorer, RandomStrategyByteIdenticalAcrossWorkerCounts) {
  ExploreOptions opts;
  opts.strategy = Strategy::Random;
  opts.samples = 9;
  opts.seed = 42;
  const std::string w1 = to_json(explore_tiny(1, opts));
  EXPECT_EQ(w1, to_json(explore_tiny(2, opts)));
  EXPECT_EQ(w1, to_json(explore_tiny(7, opts)));
}

// --------------------------------------------------------------- sampling

TEST(Explorer, RandomSamplingIsASeededSubset) {
  ExploreOptions opts;
  opts.strategy = Strategy::Random;
  opts.samples = 9;
  opts.seed = 7;
  const ExploreResult a = explore_tiny(1, opts);
  ASSERT_EQ(a.points.size(), 9u);
  const SpaceSpec space = tiny_space();
  std::set<std::size_t> seen;
  for (const auto& p : a.points) {
    EXPECT_LT(p.point.index, space.size());
    EXPECT_TRUE(seen.insert(p.point.index).second) << "duplicate candidate";
    EXPECT_TRUE(p.complete);
  }
  // Enumeration order is preserved.
  for (std::size_t i = 1; i < a.points.size(); ++i) {
    EXPECT_LT(a.points[i - 1].point.index, a.points[i].point.index);
  }
  // A different seed picks a different subset (with overwhelming
  // probability for 9 of 32 — pinned by the fixed seeds here).
  opts.seed = 8;
  const ExploreResult b = explore_tiny(1, opts);
  std::vector<std::size_t> ia, ib;
  for (const auto& p : a.points) ia.push_back(p.point.index);
  for (const auto& p : b.points) ib.push_back(p.point.index);
  EXPECT_NE(ia, ib);
}

TEST(Explorer, SamplesLargerThanSpaceMeansEverything) {
  ExploreOptions opts;
  opts.strategy = Strategy::Random;
  opts.samples = 10000;
  const ExploreResult r = explore_tiny(1, opts);
  EXPECT_EQ(r.points.size(), tiny_space().size());
}

// ---------------------------------------------------- halving and pruning

TEST(Explorer, SuccessiveHalvingThinsBetweenRungs) {
  core::Session session;
  Explorer explorer(session);
  SpaceSpec space = tiny_space();
  space.batch = {1};
  space.scenarios = {Scenario::pruned(0.9)};
  ASSERT_EQ(space.size(), 8u);
  ExploreOptions opts;
  opts.strategy = Strategy::SuccessiveHalving;
  opts.eta = 2.0;
  const auto result =
      explorer.explore(space, {workload::tiny_workload(),
                               workload::alexnet_cifar()},
                       opts);
  std::size_t complete = 0, pruned = 0;
  for (const auto& p : result.points) {
    if (p.complete) {
      ++complete;
      EXPECT_EQ(p.evals.size(), 2u);
    }
    if (p.pruned) {
      ++pruned;
      EXPECT_EQ(p.evals.size(), 1u);  // paid for the first rung only
      EXPECT_FALSE(p.on_front);
    }
  }
  EXPECT_EQ(complete, 4u);  // ceil(8 / 2)
  EXPECT_EQ(pruned, 4u);
  EXPECT_FALSE(result.frontier.empty());
}

TEST(Explorer, PruneCallbackDropsCandidates) {
  ExploreOptions opts;
  opts.prune = [](const dse::PointResult& p) {
    return p.point.arch.pe_groups != 8;  // keep only the 8-group points
  };
  const ExploreResult r = explore_tiny(1, opts);
  for (const auto& p : r.points) {
    EXPECT_EQ(p.complete, p.point.arch.pe_groups == 8);
    if (p.point.arch.pe_groups != 8) EXPECT_TRUE(p.pruned);
  }
  for (const std::size_t i : r.frontier) {
    EXPECT_EQ(r.points[i].point.arch.pe_groups, 8u);
  }
}

// --------------------------------------------------------- exact promotion

TEST(Explorer, ExactValidatePromotesSparseFrontierPoints) {
  ExploreOptions opts;
  opts.exact_validate = 3;
  const ExploreResult r = explore_tiny(2, opts);
  std::size_t promoted = 0;
  for (const auto& p : r.points) {
    if (!p.exact_validated) continue;
    ++promoted;
    EXPECT_TRUE(p.on_front);
    EXPECT_TRUE(p.point.arch.sparse);  // dense points are never promoted
    ASSERT_EQ(p.exact_evals.size(), 1u);
    EXPECT_EQ(p.exact_evals[0].report.engine, isa::EngineKind::Exact);
    EXPECT_GT(p.exact_objectives.latency_ms, 0.0);
  }
  EXPECT_GT(promoted, 0u);
  EXPECT_LE(promoted, 3u);
}

// ----------------------------------------------------------- cache sharing

TEST(Explorer, ProgramCacheSharedAcrossArchitectures) {
  core::Session session;
  Explorer explorer(session);
  SpaceSpec space;
  space.pe_groups = {2, 4, 6, 8};
  space.pes_per_group = {1, 2};
  space.buffer_bytes = {64 * 1024};
  space.scenarios = {Scenario::pruned(0.9)};
  const auto result =
      explorer.explore(space, {workload::tiny_workload()});
  // Eight architectures share one (net, profile, options) program.
  EXPECT_EQ(result.cache.misses, 1u);
  EXPECT_EQ(result.cache.lookups(), 8u);
  EXPECT_GE(result.cache_hit_rate(), 0.5);
}

// ------------------------------------------------------------- find helper

TEST(Explorer, FindLocatesCompletePointsOnly) {
  const ExploreResult r = explore_tiny(1, {});
  EXPECT_NE(r.find([](const dse::DesignPoint& p) {
    return p.arch.pe_groups == 8 && p.arch.sparse;
  }),
            nullptr);
  EXPECT_EQ(r.find([](const dse::DesignPoint& p) {
    return p.arch.pe_groups == 999;
  }),
            nullptr);
}

// ------------------------------------------------------- acceptance grid

TEST(Explorer, AcceptanceGridTwoZooWorkloads) {
  // ≥ 200 architectures × 2 zoo workloads through one Session: the
  // ProgramCache keeps compiles at two per engine-profile, the frontier
  // is non-empty and brute-force verified.
  core::Session session;
  Explorer explorer(session);
  SpaceSpec space;
  space.pe_groups = {7, 14, 28, 42, 56, 84, 112, 168, 224};
  space.pes_per_group = {2, 3, 4};
  space.buffer_bytes = {96 * 1024, 192 * 1024, 386 * 1024, 772 * 1024};
  space.clock_ghz = {0.8, 1.0};
  space.scenarios = {Scenario::pruned(0.9)};
  ASSERT_GE(space.arch_points(), 200u);

  const auto result = explorer.explore(
      space, {workload::find_workload("AlexNet/CIFAR").net,
              workload::find_workload("ResNet-18/CIFAR").net});

  EXPECT_EQ(result.points.size(), space.size());
  EXPECT_EQ(result.evaluations, space.size() * 2);
  EXPECT_GE(result.cache_hit_rate(), 0.5);
  ASSERT_FALSE(result.frontier.empty());

  // Brute-force dominance check of the reported frontier.
  std::vector<dse::Objectives> objs;
  for (const auto& p : result.points) {
    ASSERT_TRUE(p.complete);
    objs.push_back(p.objectives);
  }
  std::vector<bool> on_front(objs.size(), false);
  for (const std::size_t i : result.frontier) on_front[i] = true;
  for (std::size_t i = 0; i < objs.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < objs.size(); ++j) {
      if (dse::dominates(objs[j], objs[i])) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(result.points[i].on_front, on_front[i]);
    EXPECT_EQ(on_front[i], !dominated)
        << "frontier flag disagrees with brute force at point " << i;
  }
}

}  // namespace
}  // namespace sparsetrain
