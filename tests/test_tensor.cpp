// Unit tests for the tensor substrate: shapes, dense tensors, sparse rows.
#include <gtest/gtest.h>

#include "tensor/sparse_row.hpp"
#include "tensor/tensor.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain {
namespace {

TEST(Shape, SizeAndIndex) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.size(), 120u);
  EXPECT_EQ(s.index(0, 0, 0, 0), 0u);
  EXPECT_EQ(s.index(1, 2, 3, 4), 119u);
  EXPECT_EQ(s.index(0, 1, 0, 0), 20u);
}

TEST(Shape, IndexBoundsChecked) {
  const Shape s{1, 1, 2, 2};
  EXPECT_THROW(s.index(0, 0, 2, 0), ContractError);
  EXPECT_THROW(s.index(1, 0, 0, 0), ContractError);
}

TEST(Shape, Helpers) {
  EXPECT_EQ(Shape::vec(7), (Shape{1, 1, 1, 7}));
  EXPECT_EQ(Shape::mat(2, 3), (Shape{1, 1, 2, 3}));
  EXPECT_EQ(Shape::chw(3, 4, 5), (Shape{1, 3, 4, 5}));
}

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{1, 2, 2, 2});
  EXPECT_EQ(t.size(), 8u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ConstructWithDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape::vec(3), {1.0f, 2.0f, 3.0f}));
  EXPECT_THROW(Tensor(Shape::vec(4), {1.0f}), ContractError);
}

TEST(Tensor, AtAndRowAccess) {
  Tensor t(Shape{1, 2, 3, 4});
  t.at(0, 1, 2, 3) = 5.0f;
  EXPECT_EQ(t.at(0, 1, 2, 3), 5.0f);
  auto row = t.row(0, 1, 2);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[3], 5.0f);
  row[0] = 7.0f;
  EXPECT_EQ(t.at(0, 1, 2, 0), 7.0f);
}

TEST(Tensor, FlatIndexChecked) {
  Tensor t(Shape::vec(2));
  EXPECT_THROW(t[2], ContractError);
}

TEST(Tensor, FillAndZero) {
  Tensor t(Shape::vec(5));
  t.fill(3.0f);
  EXPECT_EQ(t.nnz(), 5u);
  t.zero();
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(Tensor, AxpyAndScale) {
  Tensor a(Shape::vec(3), {1.0f, 2.0f, 3.0f});
  Tensor b(Shape::vec(3), {10.0f, 20.0f, 30.0f});
  a.axpy(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[0], 12.0f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a(Shape::vec(3));
  Tensor b(Shape::vec(4));
  EXPECT_THROW(a.add(b), ContractError);
}

TEST(Tensor, Reshape) {
  Tensor t(Shape{1, 1, 2, 6});
  t.reshape(Shape{1, 3, 2, 2});
  EXPECT_EQ(t.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_THROW(t.reshape(Shape::vec(5)), ContractError);
}

TEST(Tensor, DensityMatchesConstruction) {
  Rng rng(99);
  Tensor t(Shape{1, 4, 32, 32});
  t.fill_sparse_normal(rng, 0.3);
  EXPECT_NEAR(t.density(), 0.3, 0.03);
}

TEST(Tensor, FillNormalMoments) {
  Rng rng(13);
  Tensor t(Shape::vec(50000));
  t.fill_normal(rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (float x : t.flat()) sum += x;
  EXPECT_NEAR(sum / static_cast<double>(t.size()), 1.0, 0.05);
}

TEST(Tensor, AllcloseAndMaxAbsDiff) {
  Tensor a(Shape::vec(3), {1.0f, 2.0f, 3.0f});
  Tensor b(Shape::vec(3), {1.0f, 2.0f, 3.001f});
  EXPECT_NEAR(max_abs_diff(a, b), 0.001f, 1e-6f);
  EXPECT_TRUE(allclose(a, b, 0.01f));
  EXPECT_FALSE(allclose(a, b, 1e-5f));
}

TEST(SparseRow, CompressDecompressRoundTrip) {
  const std::vector<float> dense = {0.0f, 1.5f, 0.0f, 0.0f, -2.0f, 3.0f};
  const SparseRow row = compress_row(dense);
  EXPECT_EQ(row.length, 6u);
  EXPECT_EQ(row.nnz(), 3u);
  EXPECT_TRUE(row.valid());
  EXPECT_EQ(decompress_row(row), dense);
}

TEST(SparseRow, EmptyRow) {
  const SparseRow row = compress_row(std::vector<float>{});
  EXPECT_EQ(row.length, 0u);
  EXPECT_TRUE(row.empty());
  EXPECT_EQ(row.density(), 0.0);
  EXPECT_TRUE(decompress_row(row).empty());
}

TEST(SparseRow, AllZerosRow) {
  const SparseRow row = compress_row(std::vector<float>(8, 0.0f));
  EXPECT_EQ(row.nnz(), 0u);
  EXPECT_EQ(row.density(), 0.0);
}

TEST(SparseRow, DensityAndBytes) {
  const std::vector<float> dense = {1.0f, 0.0f, 2.0f, 0.0f};
  const SparseRow row = compress_row(dense);
  EXPECT_DOUBLE_EQ(row.density(), 0.5);
  // 2-byte descriptor + 1 bitmap byte (4 positions) + 2 values × 2 bytes.
  EXPECT_EQ(row.encoded_bytes(), 2u + 1u + 2u * 2u);
}

TEST(SparseRow, ValidRejectsMalformed) {
  SparseRow row;
  row.length = 4;
  row.offsets = {2, 1};  // not ascending
  row.values = {1.0f, 2.0f};
  EXPECT_FALSE(row.valid());
  row.offsets = {1, 5};  // out of range
  EXPECT_FALSE(row.valid());
  row.offsets = {1, 2};
  row.values = {1.0f, 0.0f};  // stored zero
  EXPECT_FALSE(row.valid());
  row.values = {1.0f, 2.0f};
  EXPECT_TRUE(row.valid());
}

TEST(MaskRow, FromDenseAndAllows) {
  const std::vector<float> dense = {0.0f, 3.0f, 0.0f, 1.0f};
  const MaskRow mask = mask_from_dense(dense);
  EXPECT_EQ(mask.length, 4u);
  EXPECT_EQ(mask.allowed(), 2u);
  EXPECT_TRUE(mask.allows(1));
  EXPECT_TRUE(mask.allows(3));
  EXPECT_FALSE(mask.allows(0));
  EXPECT_DOUBLE_EQ(mask.density(), 0.5);
}

TEST(MaskRow, ApplyMaskZeroesDisallowed) {
  const std::vector<float> pattern = {0.0f, 1.0f, 1.0f, 0.0f};
  const MaskRow mask = mask_from_dense(pattern);
  std::vector<float> data = {9.0f, 8.0f, 7.0f, 6.0f};
  apply_mask(data, mask);
  EXPECT_EQ(data, (std::vector<float>{0.0f, 8.0f, 7.0f, 0.0f}));
}

TEST(MaskRow, ApplyMaskLengthChecked) {
  MaskRow mask;
  mask.length = 3;
  std::vector<float> data(4, 1.0f);
  EXPECT_THROW(apply_mask(data, mask), ContractError);
}

}  // namespace
}  // namespace sparsetrain
