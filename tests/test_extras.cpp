// Tests for the auxiliary production features: LR schedules, checkpoints,
// fp16 quantisation, the oracle pruner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "data/synthetic.hpp"
#include "nn/checkpoint.hpp"
#include "nn/init.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/trainer.hpp"
#include "pruning/gradient_pruner.hpp"
#include "pruning/oracle_pruner.hpp"
#include "util/fp16.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain {
namespace {

TEST(LrSchedules, ConstantIsConstant) {
  nn::ConstantLr lr(0.1f);
  EXPECT_FLOAT_EQ(lr.rate(0), 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(100), 0.1f);
  EXPECT_THROW(nn::ConstantLr(0.0f), ContractError);
}

TEST(LrSchedules, StepDecayAtMilestones) {
  nn::StepDecayLr lr(1.0f, {3, 6}, 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(0), 1.0f);
  EXPECT_FLOAT_EQ(lr.rate(2), 1.0f);
  EXPECT_FLOAT_EQ(lr.rate(3), 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(5), 0.1f);
  EXPECT_NEAR(lr.rate(6), 0.01f, 1e-9f);
}

TEST(LrSchedules, StepDecayRejectsUnsortedMilestones) {
  EXPECT_THROW(nn::StepDecayLr(1.0f, {6, 3}), ContractError);
}

TEST(LrSchedules, CosineAnnealsToFloor) {
  nn::CosineLr lr(1.0f, 10, 0.1f);
  EXPECT_FLOAT_EQ(lr.rate(0), 1.0f);
  EXPECT_NEAR(lr.rate(10), 0.1f, 1e-6f);
  EXPECT_NEAR(lr.rate(5), 0.55f, 1e-6f);  // midpoint of [0.1, 1.0]
  // Monotone decreasing.
  for (std::size_t e = 1; e <= 10; ++e) EXPECT_LE(lr.rate(e), lr.rate(e - 1));
}

TEST(LrSchedules, TrainerAppliesSchedule) {
  data::SyntheticConfig dcfg;
  dcfg.samples = 32;
  const data::SyntheticDataset train(dcfg);
  nn::models::ModelInput mi{dcfg.channels, dcfg.height, dcfg.width,
                            dcfg.classes};
  auto net = nn::models::tiny_cnn(mi, 4);
  Rng rng(1);
  nn::kaiming_init(*net, rng);
  nn::TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.epochs = 2;
  nn::Trainer trainer(*net, tcfg);
  nn::StepDecayLr schedule(0.05f, {1}, 0.1f);
  trainer.set_lr_schedule(&schedule);
  // Just verifies the wiring executes end-to-end.
  EXPECT_NO_THROW(trainer.fit(train, train));
}

TEST(Checkpoint, RoundTripsParameters) {
  const std::string path = "test_ckpt.bin";
  nn::models::ModelInput mi{3, 16, 16, 4};
  auto a = nn::models::tiny_cnn(mi, 4);
  auto b = nn::models::tiny_cnn(mi, 4);
  Rng rng(2);
  nn::kaiming_init(*a, rng);

  ASSERT_TRUE(nn::save_checkpoint(*a, path));
  ASSERT_TRUE(nn::load_checkpoint(*b, path));

  const auto pa = a->params();
  const auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_TRUE(allclose(pa[i]->value, pb[i]->value, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedArchitecture) {
  const std::string path = "test_ckpt_bad.bin";
  nn::models::ModelInput mi{3, 16, 16, 4};
  auto a = nn::models::tiny_cnn(mi, 4);
  auto b = nn::models::tiny_cnn(mi, 8);  // different widths
  ASSERT_TRUE(nn::save_checkpoint(*a, path));
  EXPECT_THROW((void)nn::load_checkpoint(*b, path), ContractError);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReturnsFalse) {
  nn::models::ModelInput mi{3, 16, 16, 4};
  auto net = nn::models::tiny_cnn(mi, 4);
  EXPECT_FALSE(nn::load_checkpoint(*net, "does_not_exist.bin"));
}

TEST(Fp16, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f}) {
    EXPECT_EQ(quantize_half(v), v) << v;
  }
}

TEST(Fp16, RelativeErrorWithinHalfUlp) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.normal() * 10.0);
    const float q = quantize_half(v);
    // binary16 has 11 significand bits → rel. error ≤ 2⁻¹¹.
    EXPECT_LE(std::abs(q - v), std::abs(v) * (1.0f / 2048.0f) + 1e-7f) << v;
  }
}

TEST(Fp16, HandlesSpecials) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quantize_half(inf), inf);
  EXPECT_EQ(quantize_half(-inf), -inf);
  EXPECT_TRUE(std::isnan(quantize_half(std::numeric_limits<float>::quiet_NaN())));
  // Overflow saturates to infinity.
  EXPECT_EQ(quantize_half(1e6f), inf);
  // Tiny values flush toward zero or subnormals.
  EXPECT_NEAR(quantize_half(1e-8f), 0.0f, 1e-7f);
}

TEST(Fp16, SubnormalsPreserved) {
  // Smallest binary16 subnormal is 2⁻²⁴ ≈ 5.96e-8.
  const float sub = 6.0e-8f;
  const float q = quantize_half(sub);
  EXPECT_GT(q, 0.0f);
  EXPECT_NEAR(q, sub, 3e-8f);
}

TEST(Fp16, InplaceReportsWorstError) {
  std::vector<float> xs = {1.0f, 1.0001f, 3.14159f};
  const float worst = quantize_half_inplace(xs);
  EXPECT_GT(worst, 0.0f);
  EXPECT_LT(worst, 1e-2f);
  EXPECT_EQ(xs[0], 1.0f);
}

TEST(OraclePrunerTest, MatchesTargetOnFirstBatch) {
  // Unlike the FIFO pruner, the oracle needs no warm-up.
  pruning::OraclePruner pruner(0.9, Rng(4));
  Tensor g(Shape::vec(50000));
  Rng data_rng(5);
  g.fill_normal(data_rng, 0.0f, 1.0f);
  pruner.apply(g);
  EXPECT_GT(pruner.last_threshold(), 0.0);
  EXPECT_NEAR(pruner.last_density(), 0.46, 0.03);  // analytic value at p=0.9
}

TEST(OraclePrunerTest, FifoConvergesToOracle) {
  // On a stationary stream the FIFO prediction must reach the oracle's
  // realised density — the paper's justification for the cheap scheme.
  pruning::OraclePruner oracle(0.9, Rng(6));
  pruning::PruningConfig cfg;
  cfg.target_sparsity = 0.9;
  cfg.fifo_depth = 4;
  pruning::GradientPruner fifo(cfg, Rng(7));

  double oracle_density = 1.0, fifo_density = 1.0;
  for (int b = 0; b < 16; ++b) {
    Rng data_rng(100 + b);
    Tensor g1(Shape::vec(30000));
    g1.fill_normal(data_rng, 0.0f, 0.8f);
    Tensor g2 = g1;
    oracle.apply(g1);
    fifo.apply(g2);
    oracle_density = oracle.last_density();
    fifo_density = fifo.last_density();
  }
  EXPECT_NEAR(fifo_density, oracle_density, 0.02);
}

}  // namespace
}  // namespace sparsetrain
