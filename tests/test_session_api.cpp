// Evaluation-service tests: BackendRegistry, ProgramCache hit/miss
// semantics, Session submit/wait determinism across worker counts, the
// legacy wrappers, and the CSV/JSON exporters.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "compiler/program_cache.hpp"
#include "core/export.hpp"
#include "core/session.hpp"
#include "sim/backend.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

using core::EvalResult;
using core::Session;
using core::SessionConfig;
using workload::NetworkConfig;
using workload::SparsityProfile;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverythingAndWaitsIdle) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, FuturePropagatesExceptions) {
  util::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

// ----------------------------------------------------------- ProgramCache

TEST(ProgramCache, SameFingerprintReturnsSameProgramPointer) {
  compiler::ProgramCache cache;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);

  const auto a = cache.get(net, profile);
  const auto b = cache.get(net, profile);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(compiler::ProgramCache::fingerprint(net, profile),
            compiler::ProgramCache::fingerprint(net, profile));
}

TEST(ProgramCache, ChangedDensityRecompiles) {
  compiler::ProgramCache cache;
  const auto net = workload::tiny_workload();
  const auto p90 = SparsityProfile::pruned(net, 0.9);
  const auto p70 = SparsityProfile::pruned(net, 0.7);

  const auto a = cache.get(net, p90);
  const auto b = cache.get(net, p70);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_NE(compiler::ProgramCache::fingerprint(net, p90),
            compiler::ProgramCache::fingerprint(net, p70));
}

TEST(ProgramCache, ChangedOptionsRecompile) {
  compiler::ProgramCache cache;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::dense(net);

  compiler::CompileOptions batch1;
  compiler::CompileOptions batch4;
  batch4.batch = 4;
  const auto a = cache.get(net, profile, batch1);
  const auto b = cache.get(net, profile, batch4);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(compiler::ProgramCache::fingerprint(net, profile, batch1),
            compiler::ProgramCache::fingerprint(net, profile, batch4));

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

// -------------------------------------------------------- BackendRegistry

TEST(BackendRegistry, RegistersAndLooksUpByName) {
  sim::BackendRegistry registry;
  sim::ArchConfig sparse;
  sim::ArchConfig dense;
  dense.name = "dense";
  dense.sparse = false;
  registry.register_arch("a", sparse);
  registry.register_arch("b", dense);

  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("c"));
  EXPECT_EQ(registry.find("c"), nullptr);
  EXPECT_EQ(registry.at("b").arch().sparse, false);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_THROW(registry.at("c"), ContractError);
}

TEST(BackendRegistry, RejectsDuplicateNames) {
  sim::BackendRegistry registry;
  registry.register_arch("a", sim::ArchConfig{});
  EXPECT_THROW(registry.register_arch("a", sim::ArchConfig{}), ContractError);
  EXPECT_THROW(registry.register_arch("", sim::ArchConfig{}), ContractError);
}

// ---------------------------------------------------------------- Session

bool reports_identical(const sim::SimReport& a, const sim::SimReport& b) {
  if (a.program_name != b.program_name || a.arch_name != b.arch_name ||
      a.backend != b.backend || a.profile_name != b.profile_name ||
      a.clock_ghz != b.clock_ghz || a.total_pes != b.total_pes ||
      a.total_cycles != b.total_cycles) {
    return false;
  }
  if (a.activity.macs != b.activity.macs ||
      a.activity.reg_accesses != b.activity.reg_accesses ||
      a.activity.sram_bytes != b.activity.sram_bytes ||
      a.activity.dram_bytes != b.activity.dram_bytes ||
      a.activity.busy_cycles != b.activity.busy_cycles) {
    return false;
  }
  if (a.energy.comb_pj != b.energy.comb_pj ||
      a.energy.reg_pj != b.energy.reg_pj ||
      a.energy.sram_pj != b.energy.sram_pj ||
      a.energy.dram_pj != b.energy.dram_pj) {
    return false;
  }
  if (a.stages.size() != b.stages.size()) return false;
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    if (a.stages[i].cycles != b.stages[i].cycles ||
        a.stages[i].layer_index != b.stages[i].layer_index ||
        a.stages[i].stage != b.stages[i].stage) {
      return false;
    }
  }
  return true;
}

std::vector<EvalResult> run_sweep(std::size_t workers) {
  SessionConfig cfg;
  cfg.workers = workers;
  Session session(cfg);
  sim::ArchConfig half = cfg.sparse_arch;
  half.name = "SparseTrain-28g";
  half.pe_groups = 28;
  session.backends().register_arch("sparsetrain-28g", half);

  const std::vector<std::string> backends = {
      Session::kSparseBackend, Session::kDenseBackend, "sparsetrain-28g"};
  for (const auto& net :
       {workload::tiny_workload(), workload::alexnet_cifar()}) {
    for (const double p : {0.7, 0.9}) {
      session.submit(net, SparsityProfile::pruned(net, p), backends);
    }
  }
  return session.results();
}

TEST(Session, ReportsAreIdenticalForAnyWorkerCount) {
  const auto serial = run_sweep(1);
  const auto parallel = run_sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t j = 0; j < serial.size(); ++j) {
    ASSERT_EQ(serial[j].runs.size(), parallel[j].runs.size());
    for (std::size_t i = 0; i < serial[j].runs.size(); ++i) {
      EXPECT_EQ(serial[j].runs[i].backend, parallel[j].runs[i].backend);
      EXPECT_TRUE(reports_identical(serial[j].runs[i].report,
                                    parallel[j].runs[i].report))
          << "job " << j << " backend " << serial[j].runs[i].backend;
    }
  }
}

TEST(Session, SubmitAgainstRegisteredVariantBackends) {
  Session session;
  sim::ArchConfig big = session.config().sparse_arch;
  big.name = "SparseTrain-112g";
  big.pe_groups = 112;
  session.backends().register_arch("sparsetrain-112g", big);

  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);
  const auto job = session.submit(
      net, profile,
      {Session::kSparseBackend, Session::kDenseBackend, "sparsetrain-112g"});
  const EvalResult& r = session.wait(job);

  ASSERT_EQ(r.runs.size(), 3u);
  EXPECT_TRUE(r.has("sparsetrain-112g"));
  // The dense backend runs an all-dense profile.
  EXPECT_EQ(r.report(Session::kDenseBackend).profile_name, "dense");
  EXPECT_EQ(r.report(Session::kSparseBackend).profile_name, profile.name());
  // Twice the PE groups should not be slower.
  EXPECT_LE(r.report("sparsetrain-112g").total_cycles,
            r.report(Session::kSparseBackend).total_cycles);
  EXPECT_THROW(r.report("nonexistent"), ContractError);
}

TEST(Session, SubmitRejectsUnknownBackends) {
  Session session;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::dense(net);
  EXPECT_THROW(session.submit(net, profile, {"nope"}), ContractError);
  EXPECT_THROW(session.submit(net, profile, {}), ContractError);
  // The same backend twice in one job would produce ambiguous
  // report() lookups — rejected up front.
  EXPECT_THROW(session.submit(net, profile,
                              {Session::kSparseBackend,
                               Session::kSparseBackend}),
               ContractError);
}

/// Backend whose run always fails, for error-propagation tests.
class ExplodingBackend : public sim::Backend {
 public:
  const std::string& name() const override { return name_; }
  const char* kind() const override { return "exploding"; }
  const sim::ArchConfig& arch() const override { return cfg_; }
  using sim::Backend::run;
  sim::SimReport run(const isa::Program&, const workload::NetworkConfig&,
                     const workload::SparsityProfile&, std::uint64_t,
                     const sim::ExactOptions&) const override {
    throw std::runtime_error("backend exploded");
  }

 private:
  std::string name_ = "exploding";
  sim::ArchConfig cfg_;
};

// ------------------------------------------------------------- exact mode

TEST(Session, ExactJobsDeterministicAcrossWorkersAndTiles) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);

  auto run = [&](std::size_t pool_workers, std::size_t exact_workers,
                 std::size_t tile) {
    SessionConfig cfg;
    cfg.workers = pool_workers;
    Session session(cfg);
    Session::JobOptions options;
    options.sim.engine = isa::EngineKind::Exact;
    options.sim.exact.workers = exact_workers;
    options.sim.exact.tile_tasks = tile;
    const auto job = session.submit(
        net, profile, {Session::kSparseBackend, Session::kDenseBackend},
        options);
    return session.wait(job);
  };

  const EvalResult a = run(1, 1, 0);
  const EvalResult b = run(4, 8, 3);
  const auto& ra = a.report(Session::kSparseBackend);
  const auto& rb = b.report(Session::kSparseBackend);
  EXPECT_GT(ra.total_cycles, 0u);
  EXPECT_EQ(ra.total_cycles, rb.total_cycles);
  EXPECT_EQ(ra.activity.busy_cycles, rb.activity.busy_cycles);
  EXPECT_EQ(ra.activity.macs, rb.activity.macs);
  // Sparse side ran exactly; the dense baseline has no exact semantics
  // and keeps the statistical model.
  EXPECT_EQ(ra.engine, isa::EngineKind::Exact);
  EXPECT_EQ(a.report(Session::kDenseBackend).engine,
            isa::EngineKind::Statistical);
  EXPECT_EQ(a.report(Session::kDenseBackend).total_cycles,
            b.report(Session::kDenseBackend).total_cycles);
}

TEST(Session, ExactAndStatisticalJobsCacheSeparatePrograms) {
  Session session;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);

  Session::JobOptions exact;
  exact.sim.engine = isa::EngineKind::Exact;
  session.wait(session.submit(net, profile, {Session::kSparseBackend}));
  session.wait(
      session.submit(net, profile, {Session::kSparseBackend}, exact));
  // Engine choice is program metadata, so the cache key differs.
  EXPECT_EQ(session.program_cache().stats().misses, 2u);
  // Re-submitting either engine hits.
  session.wait(
      session.submit(net, profile, {Session::kSparseBackend}, exact));
  EXPECT_EQ(session.program_cache().stats().misses, 2u);
  EXPECT_GT(session.program_cache().stats().hits, 0u);
}

TEST(Session, RegisteredExactBackendRunsExactlyOnAnyJob) {
  Session session;
  sim::ExactOptions opts;
  opts.workers = 2;
  session.backends().register_exact("sparsetrain-exact",
                                    session.config().sparse_arch, opts);
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);
  // Plain statistical job: the exact backend still runs exactly.
  const auto job = session.submit(
      net, profile, {Session::kSparseBackend, "sparsetrain-exact"});
  const EvalResult& r = session.wait(job);
  EXPECT_EQ(r.report("sparsetrain-exact").engine, isa::EngineKind::Exact);
  EXPECT_EQ(r.report(Session::kSparseBackend).engine,
            isa::EngineKind::Statistical);
  EXPECT_GT(r.report("sparsetrain-exact").total_cycles, 0u);
  // Both engines simulate the same machine on the same workload: the
  // reports should be in the same ballpark (loose integration band).
  const double stat =
      static_cast<double>(r.report(Session::kSparseBackend).total_cycles);
  const double exact =
      static_cast<double>(r.report("sparsetrain-exact").total_cycles);
  EXPECT_LT(stat, 3.0 * exact + 500.0);
  EXPECT_GT(stat, exact / 3.0 - 500.0);
}

TEST(Session, TaskErrorsRethrownOnEveryWaitAndSiblingsStillRun) {
  Session session;
  session.backends().add(std::make_shared<ExplodingBackend>());
  const auto net = workload::tiny_workload();
  const auto job = session.submit(net, SparsityProfile::pruned(net, 0.9),
                                  {"exploding", Session::kSparseBackend});
  EXPECT_THROW(session.wait(job), std::runtime_error);
  // The error is sticky, not swallowed after the first wait.
  EXPECT_THROW(session.wait(job), std::runtime_error);
  EXPECT_THROW(session.results(), std::runtime_error);
  // The healthy sibling task was still drained, not abandoned mid-write.
  const auto j2 = session.submit(net, SparsityProfile::pruned(net, 0.9),
                                 {Session::kSparseBackend});
  EXPECT_GT(session.wait(j2).report(Session::kSparseBackend).total_cycles,
            0u);
}

TEST(Session, ProgramCacheSharedAcrossJobsAndBackends) {
  Session session;
  const auto net = workload::tiny_workload();
  const std::vector<std::string> backends = {Session::kSparseBackend,
                                             Session::kDenseBackend};
  // 4 jobs × 2 backends = 8 program requests; distinct programs are the
  // two sparse profiles + the shared dense one.
  for (const double p : {0.7, 0.9}) {
    session.submit(net, SparsityProfile::pruned(net, p), backends);
    session.submit(net, SparsityProfile::pruned(net, p), backends);
  }
  session.wait();
  const auto stats = session.program_cache().stats();
  EXPECT_EQ(stats.lookups(), 8u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 5u);
}

TEST(Session, CompareWrapperMatchesSubmitPath) {
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);

  // Seeds derive from content, not submission order, so the wrapper in
  // the SAME session reproduces the submit path bit-exactly.
  Session a;
  const auto job =
      a.submit(net, profile, {Session::kSparseBackend, Session::kDenseBackend});
  const EvalResult& via_submit = a.wait(job);
  const auto via_compare = a.compare(net, profile);
  // And the same evaluation repeated is bit-identical too.
  const auto again = a.compare(net, profile);
  EXPECT_TRUE(reports_identical(via_compare.sparse, again.sparse));
  EXPECT_TRUE(reports_identical(via_compare.dense, again.dense));

  EXPECT_TRUE(reports_identical(via_submit.report(Session::kSparseBackend),
                                via_compare.sparse));
  EXPECT_TRUE(reports_identical(via_submit.report(Session::kDenseBackend),
                                via_compare.dense));
  EXPECT_DOUBLE_EQ(via_submit.cycle_ratio(Session::kDenseBackend,
                                          Session::kSparseBackend),
                   via_compare.speedup());
  EXPECT_DOUBLE_EQ(via_submit.energy_ratio(Session::kDenseBackend,
                                           Session::kSparseBackend),
                   via_compare.energy_efficiency());
}

TEST(Session, BatchOverridePerJob) {
  Session session;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::dense(net);
  Session::JobOptions batch4;
  batch4.batch = 4;
  const auto j1 = session.submit(net, profile, {Session::kSparseBackend});
  const auto j4 =
      session.submit(net, profile, {Session::kSparseBackend}, batch4);
  const auto& r1 = session.wait(j1).report(Session::kSparseBackend);
  const auto& r4 = session.wait(j4).report(Session::kSparseBackend);
  EXPECT_GT(r4.total_cycles, r1.total_cycles);
  // Distinct compile options → two programs, no false cache hit.
  EXPECT_EQ(session.program_cache().stats().misses, 2u);
}

TEST(Session, WrapperJobsDoNotAccumulateInResults) {
  Session session;
  const auto net = workload::tiny_workload();
  const auto profile = SparsityProfile::pruned(net, 0.9);
  // Wrapper calls release their job storage — a compare() loop stays
  // flat in memory and does not pollute results()/exports.
  for (int i = 0; i < 3; ++i) session.compare(net, profile);
  session.run_sparse(net, profile);
  session.run_dense(net);
  EXPECT_TRUE(session.results().empty());
  session.submit(net, profile, {Session::kSparseBackend});
  EXPECT_EQ(session.results().size(), 1u);
}

TEST(Session, EmptyNetworkGivesErrorsNotNaNs) {
  Session session;
  NetworkConfig empty;
  empty.name = "empty";
  const auto result = session.compare(empty, SparsityProfile::dense(empty));
  EXPECT_EQ(result.sparse.total_cycles, 0u);
  EXPECT_THROW(result.speedup(), ContractError);
  EXPECT_THROW(result.energy_efficiency(), ContractError);
}

// ----------------------------------------------------------------- export

TEST(Export, CsvHasOneRowPerBackendRun) {
  Session session;
  const auto net = workload::tiny_workload();
  session.submit(net, SparsityProfile::pruned(net, 0.9),
                 {Session::kSparseBackend, Session::kDenseBackend});
  const auto results = session.results();

  std::ostringstream csv;
  core::export_csv(results, csv);
  const std::string text = csv.str();
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 runs
  EXPECT_NE(text.find("sparsetrain"), std::string::npos);
  EXPECT_NE(text.find("eyeriss-dense"), std::string::npos);
  EXPECT_NE(text.find(net.name), std::string::npos);

  std::ostringstream json;
  core::export_json(results, json);
  EXPECT_NE(json.str().find("\"backend\": \"sparsetrain\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"stages\": ["), std::string::npos);
  EXPECT_NE(json.str().find("\"total_cycles\": "), std::string::npos);
}

}  // namespace
}  // namespace sparsetrain
