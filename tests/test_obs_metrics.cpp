// Metrics registry: histogram bin boundaries, underflow/overflow
// buckets, quantile error bounds, concurrent recording totals, registry
// identity/kind rules, and both export formats (sparsetrain.metrics/v1
// JSON, Prometheus text).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/json.hpp"
#include "util/require.hpp"

namespace sparsetrain {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Labels;
using obs::Registry;

// ---------------------------------------------------------------------------
// Histogram bounds

TEST(Histogram, BoundsAreHalfOctaveFromOneMicrosecond) {
  const auto& b = Histogram::bounds();
  ASSERT_EQ(b.size(), Histogram::kBounds);
  EXPECT_DOUBLE_EQ(b[0], 1e-6);
  // Every second bound doubles: 2^(i/2) steps.
  for (std::size_t i = 2; i < b.size(); ++i) {
    EXPECT_NEAR(b[i] / b[i - 2], 2.0, 1e-9) << "at bound " << i;
  }
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);
  }
  // Top of the range covers any sane request latency (~47 s).
  EXPECT_GT(b.back(), 40.0);
  EXPECT_LT(b.back(), 60.0);
}

TEST(Histogram, BinPlacementAtAndAroundBoundaries) {
  const auto& b = Histogram::bounds();
  Histogram h;
  h.record(b[0]);          // exactly the first bound: underflow bin
  h.record(b[0] * 1.001);  // just above: bin 1
  h.record(b[5]);          // exactly a bound: its own bin (inclusive top)
  h.record(b[5] * 1.001);  // just above: next bin
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.bins[0], 1u);
  EXPECT_EQ(snap.bins[1], 1u);
  EXPECT_EQ(snap.bins[5], 1u);
  EXPECT_EQ(snap.bins[6], 1u);
  EXPECT_EQ(snap.count, 4u);
}

TEST(Histogram, UnderflowAndOverflowBuckets) {
  Histogram h;
  h.record(0.0);
  h.record(-1.0);  // clamped to 0
  h.record(std::numeric_limits<double>::quiet_NaN());  // clamped to 0
  h.record(1e-9);
  h.record(1e6);  // way past the last bound
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.bins[0], 4u);
  EXPECT_EQ(snap.bins[Histogram::kBins - 1], 1u);
  EXPECT_EQ(snap.count, 5u);
  // The overflow bin answers quantiles with the largest bound, never an
  // extrapolated fantasy.
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), Histogram::bounds().back());
}

TEST(Histogram, QuantileWithinSqrt2OfTruth) {
  // 1000 samples spread log-uniformly across the mid range; with
  // half-octave bins every interpolated quantile must be within a factor
  // of sqrt(2) of the true order statistic.
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    const double v = 1e-4 * std::pow(10.0, 3.0 * i / 999.0);  // 0.1ms..100ms
    values.push_back(v);
    h.record(v);
  }
  const auto snap = h.snapshot();
  for (const double q : {0.5, 0.9, 0.99}) {
    const double truth =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double est = snap.quantile(q);
    EXPECT_LE(est / truth, std::sqrt(2.0) * 1.01) << "q=" << q;
    EXPECT_GE(est / truth, 1.0 / (std::sqrt(2.0) * 1.01)) << "q=" << q;
  }
  // Monotone in q.
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  Histogram h;
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(1e-5 * ((t + i) % 100 + 1));
        c.inc();
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bin_total = 0;
  for (const std::uint64_t b : snap.bins) bin_total += b;
  EXPECT_EQ(bin_total, snap.count);  // no record fell between bins
  EXPECT_GT(snap.sum_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Registry identity and kinds

TEST(Registry, SameNameAndLabelsResolveToSameInstrument) {
  Registry r;
  Counter& a = r.counter("requests_total", {{"type", "eval"}});
  Counter& b = r.counter("requests_total", {{"type", "eval"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Different labels = different instrument.
  Counter& other = r.counter("requests_total", {{"type", "put"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, LabelOrderIsCanonicalised) {
  Registry r;
  Counter& a = r.counter("x_total", {{"b", "2"}, {"a", "1"}});
  Counter& b = r.counter("x_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindConflictThrows) {
  Registry r;
  r.counter("thing");
  EXPECT_THROW(r.gauge("thing"), ContractError);
  EXPECT_THROW(r.histogram("thing"), ContractError);
}

TEST(Registry, GaugeHoldsLastWrite) {
  Registry r;
  Gauge& g = r.gauge("resident_bytes");
  g.set(42.5);
  g.set(17.0);
  EXPECT_DOUBLE_EQ(g.value(), 17.0);
}

// ---------------------------------------------------------------------------
// Export formats

TEST(Registry, JsonSnapshotParsesAndCarriesEverything) {
  Registry r;
  r.counter("evals_total", {{"source", "computed"}}).inc(7);
  r.gauge("inflight").set(2.0);
  r.histogram("request_seconds").record(0.005);
  r.histogram("request_seconds").record(0.010);

  const std::string doc = r.json();
  EXPECT_EQ(doc.find('\n'), std::string::npos);  // one NDJSON-safe line
  const serve::JsonValue v = serve::parse_json(doc);
  EXPECT_EQ(v.get_string("schema", ""), "sparsetrain.metrics/v1");
  const serve::JsonValue* bounds = v.find("histogram_bounds");
  ASSERT_NE(bounds, nullptr);
  EXPECT_EQ(bounds->as_array().size(), Histogram::kBounds);
  const serve::JsonValue* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const serve::JsonValue& m : metrics->as_array()) {
    const std::string name = m.get_string("name", "");
    if (name == "evals_total") {
      saw_counter = true;
      EXPECT_EQ(m.get_string("kind", ""), "counter");
      EXPECT_DOUBLE_EQ(m.get_number("value", -1), 7.0);
      const serve::JsonValue* labels = m.find("labels");
      ASSERT_NE(labels, nullptr);
      EXPECT_EQ(labels->get_string("source", ""), "computed");
    } else if (name == "inflight") {
      saw_gauge = true;
      EXPECT_EQ(m.get_string("kind", ""), "gauge");
      EXPECT_DOUBLE_EQ(m.get_number("value", -1), 2.0);
    } else if (name == "request_seconds") {
      saw_hist = true;
      EXPECT_EQ(m.get_string("kind", ""), "histogram");
      EXPECT_DOUBLE_EQ(m.get_number("count", -1), 2.0);
      const serve::JsonValue* bins = m.find("bins");
      ASSERT_NE(bins, nullptr);
      EXPECT_EQ(bins->as_array().size(), Histogram::kBins);
      EXPECT_GT(m.get_number("p50", 0.0), 0.0);
      EXPECT_GE(m.get_number("p99", 0.0), m.get_number("p50", 0.0));
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(Registry, PrometheusExposition) {
  Registry r;
  r.counter("evals_total", {{"source", "store"}}).inc(3);
  r.histogram("request_seconds").record(0.002);

  const std::string text = r.prometheus();
  EXPECT_NE(text.find("# TYPE evals_total counter"), std::string::npos);
  EXPECT_NE(text.find("evals_total{source=\"store\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("request_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("request_seconds_count 1"), std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the count, and bucket
  // counts never decrease as le grows.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  while ((pos = text.find("request_seconds_bucket", pos)) !=
         std::string::npos) {
    const std::size_t brace = text.find("} ", pos);
    ASSERT_NE(brace, std::string::npos);
    const std::uint64_t n = std::stoull(text.substr(brace + 2));
    EXPECT_GE(n, prev);
    prev = n;
    pos = brace;
  }
  EXPECT_EQ(prev, 1u);
}

TEST(Registry, SnapshotsAreDeterministic) {
  Registry r;
  r.counter("b_total").inc();
  r.counter("a_total").inc(2);
  r.gauge("z_gauge").set(1.0);
  EXPECT_EQ(r.json(), r.json());
  EXPECT_EQ(r.prometheus(), r.prometheus());
  // Sorted by name: a before b before z.
  const std::string doc = r.json();
  EXPECT_LT(doc.find("a_total"), doc.find("b_total"));
  EXPECT_LT(doc.find("b_total"), doc.find("z_gauge"));
}

TEST(Registry, CounterResetSupportsViews) {
  Registry r;
  Counter& c = r.counter("hits_total");
  c.inc(9);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace sparsetrain
