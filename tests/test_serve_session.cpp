// Session ↔ store integration: store-first execution (hit skips both the
// compile and the simulation), fingerprint agreement between
// run_fingerprint() and the recorded BackendRun, byte-identical
// warm-store Explorer re-runs with zero backend evaluations, ProgramCache
// snapshot/reset, and the store-stats JSON export.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "core/export.hpp"
#include "core/session.hpp"
#include "dse/explorer.hpp"
#include "dse/export.hpp"
#include "serve/report_io.hpp"
#include "serve/store.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

core::SessionConfig stored_config(const std::string& dir) {
  core::SessionConfig cfg;
  cfg.workers = 2;
  cfg.store = std::make_shared<serve::ResultStore>(dir);
  return cfg;
}

TEST(SessionStore, MissSimulatesHitReplaysByteExact) {
  const std::string dir = fresh_dir("session_store");
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  const std::vector<std::string> backends = {
      core::Session::kSparseBackend, core::Session::kDenseBackend};

  std::string cold_sparse, cold_dense;
  std::uint64_t sparse_fp = 0;
  {
    core::Session session(stored_config(dir));
    const core::EvalResult r =
        session.wait(session.submit(net, profile, backends));
    for (const core::BackendRun& run : r.runs) {
      EXPECT_FALSE(run.from_store);
      EXPECT_NE(run.fingerprint, 0u);
    }
    sparse_fp = r.runs[0].fingerprint;
    cold_sparse = serve::serialize_report(
        r.report(core::Session::kSparseBackend));
    cold_dense = serve::serialize_report(
        r.report(core::Session::kDenseBackend));
    const serve::StoreStats s = session.result_store()->stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.puts, 2u);
    EXPECT_GT(s.program_entries, 0u);

    // run_fingerprint agrees with what the job actually recorded — the
    // tripwire against the two derivations drifting apart.
    EXPECT_EQ(session.run_fingerprint(net, profile,
                                      core::Session::kSparseBackend),
              sparse_fp);
    EXPECT_NE(session.run_fingerprint(net, profile,
                                      core::Session::kDenseBackend),
              sparse_fp);
  }

  // A fresh session on the same store replays without simulating or
  // compiling anything, byte for byte.
  core::Session warm(stored_config(dir));
  const core::EvalResult r = warm.wait(warm.submit(net, profile, backends));
  for (const core::BackendRun& run : r.runs) {
    EXPECT_TRUE(run.from_store);
  }
  EXPECT_EQ(r.runs[0].fingerprint, sparse_fp);
  EXPECT_EQ(
      serve::serialize_report(r.report(core::Session::kSparseBackend)),
      cold_sparse);
  EXPECT_EQ(serve::serialize_report(r.report(core::Session::kDenseBackend)),
            cold_dense);
  const serve::StoreStats s = warm.result_store()->stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hit_rate(), 1.0);
  // Zero compiles: the ProgramCache was never even consulted.
  EXPECT_EQ(warm.program_cache().stats().lookups(), 0u);
  fs::remove_all(dir);
}

TEST(SessionStore, DetachedSessionNeverTouchesTheStore) {
  core::Session session;  // no store
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  const core::EvalResult r = session.wait(
      session.submit(net, profile, {core::Session::kSparseBackend}));
  EXPECT_FALSE(r.runs[0].from_store);
  EXPECT_EQ(r.runs[0].fingerprint, 0u);
  EXPECT_EQ(session.result_store(), nullptr);
  // run_fingerprint still works (services coalesce without a store).
  EXPECT_NE(session.run_fingerprint(net, profile,
                                    core::Session::kSparseBackend),
            0u);
}

TEST(ProgramCache, SnapshotAndResetStats) {
  core::Session session;
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  session.wait(session.submit(net, profile,
                              {core::Session::kSparseBackend}));
  const compiler::ProgramCache::Stats before =
      session.program_cache().snapshot();
  EXPECT_GT(before.lookups(), 0u);
  EXPECT_GT(before.misses, 0u);

  session.program_cache().reset_stats();
  const compiler::ProgramCache::Stats zero =
      session.program_cache().snapshot();
  EXPECT_EQ(zero.lookups(), 0u);
  EXPECT_EQ(zero.misses, 0u);

  // The compiled programs themselves survive the counter reset: the same
  // job again is all hits, no new compiles.
  session.wait(session.submit(net, profile,
                              {core::Session::kSparseBackend}));
  const compiler::ProgramCache::Stats after =
      session.program_cache().snapshot();
  EXPECT_EQ(after.misses, 0u);
  EXPECT_GT(after.hits, 0u);
}

TEST(Export, StoreStatsJson) {
  const std::string dir = fresh_dir("stats_json");
  core::Session session(stored_config(dir));
  const auto net = workload::tiny_workload();
  const auto profile = workload::SparsityProfile::pruned(net, 0.9);
  session.wait(session.submit(net, profile,
                              {core::Session::kSparseBackend}));

  std::ostringstream os;
  core::export_stats_json(core::service_stats(session), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"sparsetrain.store_stats/v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"store_attached\": true"), std::string::npos);
  EXPECT_NE(json.find("\"puts\": 1"), std::string::npos);

  // Combined jobs + stats document embeds the results-only export
  // verbatim.
  std::ostringstream combined, jobs_only;
  core::export_json(session.results(), session, combined);
  core::export_json(session.results(), jobs_only);
  EXPECT_NE(combined.str().find(jobs_only.str()), std::string::npos);
  EXPECT_NE(combined.str().find("\"stats\": "), std::string::npos);

  // Without a store the stats export says so instead of inventing zeros.
  core::Session bare;
  std::ostringstream bare_os;
  core::export_stats_json(core::service_stats(bare), bare_os);
  EXPECT_NE(bare_os.str().find("\"store_attached\": false"),
            std::string::npos);
  EXPECT_EQ(bare_os.str().find("\"store\":"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ExplorerStore, WarmRerunIsByteIdenticalWithZeroSimulations) {
  const std::string dir = fresh_dir("explorer_store");
  // A small grid in the shape of bench_dse_pareto --quick, over the tiny
  // workload so the test stays fast.
  dse::SpaceSpec space;
  space.pe_groups = {14, 28};
  space.pes_per_group = {2, 3};
  space.buffer_bytes = {192 * 1024};
  space.clock_ghz = {0.8};
  space.scenarios = {dse::Scenario::pruned(0.9)};
  const std::vector<workload::NetworkConfig> workloads = {
      workload::tiny_workload()};

  auto run = [&]() {
    core::Session session(stored_config(dir));
    dse::Explorer explorer(session);
    return explorer.explore(space, workloads, {});
  };

  const dse::ExploreResult cold = run();
  EXPECT_GT(cold.evaluations, 0u);
  EXPECT_EQ(cold.simulations, cold.evaluations);
  EXPECT_TRUE(cold.store_attached);
  EXPECT_EQ(cold.store.hits, 0u);
  EXPECT_GT(cold.store.puts, 0u);

  const dse::ExploreResult warm = run();
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(warm.simulations, 0u);  // every run replayed from the store
  EXPECT_EQ(warm.store_hit_rate(), 1.0);
  EXPECT_EQ(warm.store.misses, 0u);
  EXPECT_EQ(warm.cache.misses, 0u);  // zero compiles on the warm run

  // The exploration artifacts are byte-identical. The cache counters in
  // the JSON export legitimately differ (a warm run does no cache
  // lookups), so compare the export with both results' service counters
  // zeroed — everything simulated must match exactly.
  auto points_csv = [](const dse::ExploreResult& r) {
    std::ostringstream os;
    dse::export_points_csv(r, os);
    return os.str();
  };
  auto frontier_csv = [](const dse::ExploreResult& r) {
    std::ostringstream os;
    dse::export_frontier_csv(r, os);
    return os.str();
  };
  auto json_no_counters = [](dse::ExploreResult r) {
    r.cache = {};
    r.store = {};
    std::ostringstream os;
    dse::export_json(r, os);
    return os.str();
  };
  EXPECT_EQ(points_csv(warm), points_csv(cold));
  EXPECT_EQ(frontier_csv(warm), frontier_csv(cold));
  EXPECT_EQ(json_no_counters(warm), json_no_counters(cold));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sparsetrain
