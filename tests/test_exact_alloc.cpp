// Asserts the exact engine's zero-allocation contract: once a stage has
// warmed the per-thread scratch, evaluating tasks performs no heap
// allocation at all. This binary replaces the global operator new/delete
// pair with a counting shim; each stage is run twice on pre-compressed
// operands and the second (steady-state) run must cost a small constant
// number of allocations that does NOT grow with the task count — i.e.
// per-task allocations are exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dataflow/conv_decompose.hpp"
#include "sim/exact_engine.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sparsetrain::sim {
namespace {

struct StageSetup {
  Tensor input;
  Tensor grad;
  Tensor mask;
  dataflow::ConvGeometry geo;
};

StageSetup make_setup(std::size_t h) {
  StageSetup s;
  s.geo.in_channels = 6;
  s.geo.out_channels = 12;
  s.geo.kernel = 3;
  s.geo.stride = 1;
  s.geo.padding = 1;
  Rng rng(41);
  s.input = Tensor(Shape{1, s.geo.in_channels, h, 32});
  s.input.fill_sparse_normal(rng, 0.4);
  const Shape out = dataflow::conv_output_shape(s.geo, s.input.shape());
  s.grad = Tensor(out);
  s.grad.fill_sparse_normal(rng, 0.3);
  s.mask = Tensor(s.input.shape());
  s.mask.fill_sparse_normal(rng, 0.5);
  for (float& v : s.mask.flat())
    if (v != 0.0f) v = 1.0f;
  return s;
}

/// Allocations of one steady-state stage run (stage already ran once to
/// warm the scratch; results of both runs must match exactly).
template <typename Fn>
std::size_t steady_state_allocs(const Fn& run) {
  const ExactStageResult warm = run();
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const ExactStageResult again = run();
  const std::size_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(warm.cycles, again.cycles);
  EXPECT_EQ(warm.activity.busy_cycles, again.activity.busy_cycles);
  EXPECT_EQ(warm.activity.macs, again.activity.macs);
  return allocs;
}

// Since the streaming-merge rewrite there is no per-stage task-cost
// vector at all: the serial path folds every task straight into the
// group scheduler, and the scheduler arrays live in a pooled arena that
// a warmed engine reuses without touching the heap. The only remaining
// per-stage allocation is GTA's shared all-pass BitMask (one small words
// vector per run_gta call); Forward and GTW steady-state runs must not
// allocate at all.
constexpr std::size_t kPerStageBudget = 4;
constexpr std::size_t kZero = 0;

TEST(ExactAlloc, SteadyStateTaskEvaluationIsAllocationFree) {
  const StageSetup small = make_setup(/*h=*/24);
  const StageSetup big = make_setup(/*h=*/96);  // 4× the tasks

  ArchConfig cfg;
  const ExactEngine engine(cfg);  // serial: everything on this thread

  auto measure = [&](const StageSetup& s) {
    const auto in_rows = engine.compress(s.input);
    const auto go_rows = engine.compress(s.grad);
    const Shape in_shape = s.input.shape();
    const Shape out_shape = s.grad.shape();

    struct {
      std::size_t fwd, gta_masked, gta_all, gtw;
    } allocs{};
    allocs.fwd = steady_state_allocs(
        [&] { return engine.run_forward(in_rows, in_shape, s.geo); });
    allocs.gta_masked = steady_state_allocs([&] {
      return engine.run_gta(go_rows, out_shape, in_shape, &s.mask, s.geo);
    });
    allocs.gta_all = steady_state_allocs([&] {
      return engine.run_gta(go_rows, out_shape, in_shape, nullptr, s.geo);
    });
    allocs.gtw = steady_state_allocs([&] {
      return engine.run_gtw(go_rows, out_shape, in_rows, in_shape, s.geo);
    });
    return allocs;
  };

  const auto small_allocs = measure(small);
  const auto big_allocs = measure(big);

  // Forward/GTW steady state is *exactly* allocation-free — in
  // particular the old per-stage `std::vector<TaskCost> costs(tasks)`
  // is gone, not merely flat.
  EXPECT_EQ(small_allocs.fwd, kZero);
  EXPECT_EQ(small_allocs.gtw, kZero);
  EXPECT_LE(small_allocs.gta_masked, kPerStageBudget);
  EXPECT_LE(small_allocs.gta_all, kPerStageBudget);

  // The proof that per-task allocations are zero: quadrupling the task
  // count must not change the per-stage allocation count at all.
  EXPECT_EQ(big_allocs.fwd, small_allocs.fwd);
  EXPECT_EQ(big_allocs.gta_masked, small_allocs.gta_masked);
  EXPECT_EQ(big_allocs.gta_all, small_allocs.gta_all);
  EXPECT_EQ(big_allocs.gtw, small_allocs.gtw);
}

}  // namespace
}  // namespace sparsetrain::sim
