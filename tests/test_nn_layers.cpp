// Layer-level tests: shapes, forward semantics, and — most importantly —
// numerical gradient checks that validate the GTA/GTW implementations
// against finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/maxpool.hpp"
#include "nn/pooling_misc.hpp"
#include "nn/relu.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::nn {
namespace {

/// Scalar objective: sum of elementwise weights times layer output.
float weighted_sum(const Tensor& out, const Tensor& coeffs) {
  float s = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) s += out[i] * coeffs[i];
  return s;
}

/// Checks analytic input gradients of `layer` against central differences.
void check_input_gradients(Layer& layer, Tensor input, float tol = 2e-2f) {
  Rng rng(77);
  const Tensor out = layer.forward(input, /*training=*/true);
  Tensor coeffs(out.shape());
  coeffs.fill_normal(rng, 0.0f, 1.0f);

  // Analytic: backward of the weighted-sum objective is just `coeffs`.
  const Tensor grad_in = layer.backward(coeffs);

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < input.size(); i += 1 + input.size() / 50) {
    Tensor plus = input;
    Tensor minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const float f_plus = weighted_sum(layer.forward(plus, true), coeffs);
    const float f_minus = weighted_sum(layer.forward(minus, true), coeffs);
    const float numeric = (f_plus - f_minus) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol) << "at flat index " << i;
  }
  // Restore cached state for any further use.
  (void)layer.forward(input, true);
}

/// Checks analytic parameter gradients against central differences.
void check_param_gradients(Layer& layer, const Tensor& input,
                           float tol = 2e-2f) {
  Rng rng(78);
  const Tensor out = layer.forward(input, true);
  Tensor coeffs(out.shape());
  coeffs.fill_normal(rng, 0.0f, 1.0f);

  for (Param* p : layer.params()) p->zero_grad();
  (void)layer.backward(coeffs);

  const float eps = 1e-2f;
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < p->value.size();
         i += 1 + p->value.size() / 25) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float f_plus = weighted_sum(layer.forward(input, true), coeffs);
      p->value[i] = saved - eps;
      const float f_minus = weighted_sum(layer.forward(input, true), coeffs);
      p->value[i] = saved;
      const float numeric = (f_plus - f_minus) / (2 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol)
          << p->name << " flat index " << i;
    }
  }
  (void)layer.forward(input, true);
}

Conv2DConfig small_conv_cfg() {
  Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.kernel = 3;
  cfg.stride = 1;
  cfg.padding = 1;
  return cfg;
}

TEST(Conv2D, OutputShape) {
  Conv2D conv(small_conv_cfg());
  EXPECT_EQ(conv.output_shape(Shape{4, 2, 8, 8}), (Shape{4, 3, 8, 8}));

  Conv2DConfig strided = small_conv_cfg();
  strided.stride = 2;
  strided.padding = 1;
  Conv2D conv2(strided);
  EXPECT_EQ(conv2.output_shape(Shape{1, 2, 8, 8}), (Shape{1, 3, 4, 4}));
}

TEST(Conv2D, RejectsChannelMismatch) {
  Conv2D conv(small_conv_cfg());
  EXPECT_THROW(conv.output_shape(Shape{1, 5, 8, 8}), ContractError);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = 1;
  cfg.stride = 1;
  cfg.padding = 0;
  Conv2D conv(cfg);
  conv.weight().value[0] = 1.0f;
  Rng rng(5);
  Tensor in(Shape{1, 1, 4, 4});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = conv.forward(in, false);
  EXPECT_TRUE(allclose(out, in, 1e-6f));
}

TEST(Conv2D, KnownSmallConvolution) {
  // 3x3 input, 2x2 kernel of ones, no padding: each output is the window sum.
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = 2;
  cfg.stride = 1;
  cfg.padding = 0;
  cfg.bias = false;
  Conv2D conv(cfg);
  conv.weight().value.fill(1.0f);
  Tensor in(Shape{1, 1, 3, 3},
            {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor out = conv.forward(in, false);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Conv2D, BiasApplied) {
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel = 1;
  cfg.padding = 0;
  Conv2D conv(cfg);
  conv.bias_param().value[0] = 0.5f;
  conv.bias_param().value[1] = -1.0f;
  Tensor in(Shape{1, 1, 1, 1}, {0.0f});
  const Tensor out = conv.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), -1.0f);
}

TEST(Conv2D, InputGradientsMatchFiniteDifference) {
  Rng rng(11);
  Conv2D conv(small_conv_cfg());
  for (Param* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.3f);
  Tensor in(Shape{2, 2, 5, 5});
  in.fill_normal(rng, 0.0f, 1.0f);
  check_input_gradients(conv, in);
}

TEST(Conv2D, ParamGradientsMatchFiniteDifference) {
  Rng rng(12);
  Conv2D conv(small_conv_cfg());
  for (Param* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.3f);
  Tensor in(Shape{2, 2, 5, 5});
  in.fill_normal(rng, 0.0f, 1.0f);
  check_param_gradients(conv, in);
}

TEST(Conv2D, StridedGradientsMatchFiniteDifference) {
  Rng rng(13);
  Conv2DConfig cfg = small_conv_cfg();
  cfg.stride = 2;
  Conv2D conv(cfg);
  for (Param* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.3f);
  Tensor in(Shape{1, 2, 6, 6});
  in.fill_normal(rng, 0.0f, 1.0f);
  check_input_gradients(conv, in);
  check_param_gradients(conv, in);
}

TEST(Conv2D, BackwardWithoutForwardThrows) {
  Conv2D conv(small_conv_cfg());
  Tensor g(Shape{1, 3, 5, 5});
  EXPECT_THROW(conv.backward(g), ContractError);
}

TEST(Conv2D, SparseGradOutputSkipsWork) {
  // A zero dO must produce zero dI and zero dW contribution.
  Rng rng(14);
  Conv2D conv(small_conv_cfg());
  for (Param* p : conv.params()) p->value.fill_normal(rng, 0.0f, 0.3f);
  Tensor in(Shape{1, 2, 5, 5});
  in.fill_normal(rng, 0.0f, 1.0f);
  (void)conv.forward(in, true);
  Tensor zero_grad(conv.output_shape(in.shape()));
  const Tensor dI = conv.backward(zero_grad);
  EXPECT_EQ(dI.nnz(), 0u);
  EXPECT_EQ(conv.weight().grad.nnz(), 0u);
}

TEST(ReLU, ForwardClampsAndMasks) {
  ReLU relu;
  Tensor in(Shape::vec(4), {-1.0f, 2.0f, 0.0f, 3.0f});
  const Tensor out = relu.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 3.0f);
  EXPECT_FLOAT_EQ(relu.mask()[1], 1.0f);
  EXPECT_FLOAT_EQ(relu.mask()[0], 0.0f);
  EXPECT_FLOAT_EQ(relu.mask()[2], 0.0f);  // exact zero does not pass
}

TEST(ReLU, BackwardAppliesMask) {
  ReLU relu;
  Tensor in(Shape::vec(3), {-1.0f, 2.0f, 3.0f});
  (void)relu.forward(in, true);
  Tensor g(Shape::vec(3), {10.0f, 20.0f, 30.0f});
  const Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 20.0f);
  EXPECT_FLOAT_EQ(gi[2], 30.0f);
}

TEST(ReLU, EvalModeDoesNotCacheMask) {
  ReLU relu;
  Tensor in(Shape::vec(2), {1.0f, -1.0f});
  (void)relu.forward(in, false);
  EXPECT_THROW(relu.mask(), ContractError);
}

TEST(MaxPool2D, ForwardSelectsMaxima) {
  MaxPool2D pool(2, 2);
  Tensor in(Shape{1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 7});
  const Tensor out = pool.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 8.0f);
}

TEST(MaxPool2D, BackwardRoutesToArgmax) {
  MaxPool2D pool(2, 2);
  Tensor in(Shape{1, 1, 2, 2}, {1, 5, 3, 4});
  (void)pool.forward(in, true);
  Tensor g(Shape{1, 1, 1, 1}, {7.0f});
  const Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 0, 0), 0.0f);
  EXPECT_EQ(gi.nnz(), 1u);
}

TEST(MaxPool2D, GradientsMatchFiniteDifference) {
  // Use distinct values so argmax is stable under the ±eps probes.
  MaxPool2D pool(2, 2);
  Tensor in(Shape{1, 2, 4, 4});
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>((i * 7919) % 97) / 10.0f;
  check_input_gradients(pool, in);
}

TEST(GlobalAvgPool, ForwardAndBackward) {
  GlobalAvgPool gap;
  Tensor in(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor out = gap.forward(in, true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 25.0f);
  Tensor g(out.shape());
  g.fill(4.0f);
  const Tensor gi = gap.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 1, 1), 1.0f);
}

TEST(Flatten, RoundTripsShape) {
  Flatten flat;
  Tensor in(Shape{2, 3, 4, 4});
  const Tensor out = flat.forward(in, true);
  EXPECT_EQ(out.shape(), (Shape{2, 1, 1, 48}));
  Tensor g(out.shape());
  const Tensor gi = flat.backward(g);
  EXPECT_EQ(gi.shape(), in.shape());
}

TEST(Linear, ForwardMatchesManual) {
  Linear lin(2, 2);
  lin.weight().value = Tensor(Shape::mat(2, 2), {1, 2, 3, 4});
  Tensor in(Shape{1, 1, 1, 2}, {5, 6});
  const Tensor out = lin.forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 * 5 + 2 * 6);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 3 * 5 + 4 * 6);
}

TEST(Linear, GradientsMatchFiniteDifference) {
  Rng rng(15);
  Linear lin(6, 4);
  for (Param* p : lin.params()) p->value.fill_normal(rng, 0.0f, 0.4f);
  Tensor in(Shape{3, 1, 1, 6});
  in.fill_normal(rng, 0.0f, 1.0f);
  check_input_gradients(lin, in);
  check_param_gradients(lin, in);
}

TEST(BatchNorm2D, NormalisesBatch) {
  BatchNorm2D bn(2);
  Rng rng(16);
  Tensor in(Shape{4, 2, 3, 3});
  in.fill_normal(rng, 5.0f, 3.0f);
  const Tensor out = bn.forward(in, true);
  // Per-channel mean ≈ 0, var ≈ 1 after normalisation with γ=1, β=0.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n)
      for (std::size_t y = 0; y < 3; ++y)
        for (std::size_t x = 0; x < 3; ++x) {
          sum += out.at(n, c, y, x);
          sq += out.at(n, c, y, x) * out.at(n, c, y, x);
          ++count;
        }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm2D, GradientsMatchFiniteDifference) {
  Rng rng(17);
  BatchNorm2D bn(2);
  Tensor in(Shape{3, 2, 3, 3});
  in.fill_normal(rng, 1.0f, 2.0f);
  check_input_gradients(bn, in, 5e-2f);
  check_param_gradients(bn, in, 5e-2f);
}

TEST(BatchNorm2D, EvalUsesRunningStats) {
  BatchNorm2D bn(1);
  Rng rng(18);
  Tensor in(Shape{8, 1, 4, 4});
  // Several training passes to populate running stats.
  for (int i = 0; i < 60; ++i) {
    in.fill_normal(rng, 2.0f, 1.0f);
    (void)bn.forward(in, true);
  }
  Tensor probe(Shape{1, 1, 1, 1}, {2.0f});
  const Tensor out = bn.forward(probe, false);
  // Input at the running mean normalises to ≈ 0.
  EXPECT_NEAR(out[0], 0.0f, 0.2f);
}

TEST(SoftmaxCrossEntropy, LossOfUniformLogits) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{2, 1, 1, 4});
  const float l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerSample) {
  SoftmaxCrossEntropy loss;
  Rng rng(19);
  Tensor logits(Shape{3, 1, 1, 5});
  logits.fill_normal(rng, 0.0f, 2.0f);
  (void)loss.forward(logits, {1, 2, 4});
  const Tensor g = loss.backward();
  for (std::size_t n = 0; n < 3; ++n) {
    float s = 0.0f;
    for (std::size_t k = 0; k < 5; ++k) s += g.at(n, 0, 0, k);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(20);
  Tensor logits(Shape{2, 1, 1, 3});
  logits.fill_normal(rng, 0.0f, 1.0f);
  const std::vector<std::uint32_t> labels = {2, 0};
  (void)loss.forward(logits, labels);
  const Tensor g = loss.backward();
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += eps;
    minus[i] -= eps;
    SoftmaxCrossEntropy probe;
    const float fp = probe.forward(plus, labels);
    const float fm = probe.forward(minus, labels);
    EXPECT_NEAR(g[i], (fp - fm) / (2 * eps), 1e-3f);
  }
}

TEST(SoftmaxCrossEntropy, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  Tensor logits(Shape{1, 1, 1, 3});
  EXPECT_THROW(loss.forward(logits, {3}), ContractError);
  EXPECT_THROW(loss.forward(logits, {0, 1}), ContractError);
}

}  // namespace
}  // namespace sparsetrain::nn
