// Replicated shard router: deterministic consistent-hash placement
// (order-insensitive, minimal movement on pool resize), zero-loss
// failover with a shard down, replication into ring successors, the
// per-shard circuit breaker's open → half-open → closed cycle, the
// background health prober, and the explicit all-shards-down rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/ring.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/require.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using serve::Client;
using serve::ClientOptions;
using serve::Listener;
using serve::Request;
using serve::Response;
using serve::Ring;
using serve::RingOptions;
using serve::Router;
using serve::RouterClient;
using serve::RouterOptions;
using serve::Server;
using serve::ServerOptions;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string fresh_socket(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "sparsetrain_" + name + ".sock";
  fs::remove(path);
  return path;
}

Request tiny_eval(const std::string& id) {
  Request r;
  r.type = "eval";
  r.id = id;
  r.workload = "tiny";
  return r;
}

// ---------------------------------------------------------------------------
// Ring placement

TEST(Ring, PlacementIgnoresEndpointOrder) {
  const Ring a({"alpha:1", "beta:2", "gamma:3"});
  const Ring b({"gamma:3", "alpha:1", "beta:2"});
  for (std::uint64_t key = 0; key < 5000; ++key) {
    const std::uint64_t k = key * 0x9e3779b97f4a7c15ULL;
    EXPECT_EQ(a.endpoint(a.owner(k)), b.endpoint(b.owner(k)));
  }
}

TEST(Ring, SamePoolTwoInstancesAgreeEverywhere) {
  // Placement is a pure function of the endpoint strings: a second
  // router (or a restarted one) computes identical ownership.
  const std::vector<std::string> pool = {"s0", "s1", "s2", "s3"};
  const Ring a(pool);
  const Ring b(pool);
  for (std::uint64_t key = 1; key < 5000; ++key) {
    EXPECT_EQ(a.owner(key * 0xc2b2ae3d27d4eb4fULL),
              b.owner(key * 0xc2b2ae3d27d4eb4fULL));
  }
}

TEST(Ring, AddingShardMovesOnlyKeysItNowOwns) {
  const Ring three({"s0", "s1", "s2"});
  const Ring four({"s0", "s1", "s2", "s3"});
  int moved = 0;
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    const std::uint64_t k =
        static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 17;
    const std::string& before = three.endpoint(three.owner(k));
    const std::string& after = four.endpoint(four.owner(k));
    if (before != after) {
      // The only legal destination for a moved key is the new shard.
      EXPECT_EQ(after, "s3");
      ++moved;
    }
  }
  // ~1/4 of the space belongs to the new shard; allow generous slack for
  // virtual-node variance but pin that the vast majority stayed put.
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(Ring, RemovingShardStrandsOnlyItsOwnKeys) {
  const Ring three({"s0", "s1", "s2"});
  const Ring two({"s0", "s1"});
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k =
        static_cast<std::uint64_t>(i) * 0x2545f4914f6cdd1dULL + 3;
    const std::string& before = three.endpoint(three.owner(k));
    const std::string& after = two.endpoint(two.owner(k));
    if (before != "s2") {
      EXPECT_EQ(before, after);  // survivors keep everything they had
    }
  }
}

TEST(Ring, SuccessorsAreDistinctAndStartAtOwner) {
  const Ring ring({"s0", "s1", "s2"});
  for (std::uint64_t key = 1; key < 2000; ++key) {
    const std::uint64_t k = key * 0x9e3779b97f4a7c15ULL;
    const std::vector<std::size_t> order = ring.successors(k, 2);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.owner(k));
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
  }
}

TEST(Ring, RejectsEmptyAndDuplicateEndpoints) {
  EXPECT_THROW(Ring({}), ContractError);
  EXPECT_THROW(Ring({"a", ""}), ContractError);
  EXPECT_THROW(Ring({"a", "b", "a"}), ContractError);
}

TEST(Router, SplitEndpointsTrimsAndRejectsEmpties) {
  EXPECT_EQ(serve::split_endpoints("a:1, b:2 ,unix.sock"),
            (std::vector<std::string>{"a:1", "b:2", "unix.sock"}));
  EXPECT_THROW(serve::split_endpoints("a:1,,b:2"), ContractError);
  EXPECT_THROW(serve::split_endpoints(""), ContractError);
}

// ---------------------------------------------------------------------------
// A pool of real daemons behind the router.

struct ShardDaemon {
  std::string socket;
  std::string store_dir;
  std::unique_ptr<Server> server;
  std::thread thread;

  void start() {
    ServerOptions opts;
    opts.store_dir = store_dir;
    server = std::make_unique<Server>(opts);
    Listener listener = Listener::listen(socket);
    thread = std::thread(
        [this, l = std::move(listener)]() mutable {
          server->serve_listener(l);
        });
  }

  void stop() {
    if (!server) return;
    Client killer(socket, ClientOptions{});
    EXPECT_EQ(killer.shutdown().type, "bye");
    thread.join();
    server.reset();
  }
};

struct Pool {
  std::vector<ShardDaemon> shards;

  explicit Pool(const std::string& name, std::size_t n) {
    shards.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      shards[i].socket =
          fresh_socket(name + "_shard" + std::to_string(i));
      shards[i].store_dir =
          fresh_dir(name + "_store" + std::to_string(i));
      shards[i].start();
    }
  }

  ~Pool() {
    for (ShardDaemon& s : shards) s.stop();
    for (ShardDaemon& s : shards) fs::remove_all(s.store_dir);
  }

  std::vector<std::string> endpoints() const {
    std::vector<std::string> out;
    for (const ShardDaemon& s : shards) out.push_back(s.socket);
    return out;
  }

  std::size_t index_of(const std::string& endpoint) const {
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].socket == endpoint) return i;
    }
    ADD_FAILURE() << "unknown endpoint " << endpoint;
    return 0;
  }
};

RouterOptions pool_router_options(const Pool& pool) {
  RouterOptions opts;
  opts.endpoints = pool.endpoints();
  opts.client.deadline_ms = 30000;  // evals on a loaded CI box take time
  opts.client.connect_timeout_ms = 500;
  return opts;
}

/// A tiny-workload eval whose placement key lands on shard `target`
/// (found by scanning pruning rates — each p is a distinct fingerprint).
Request eval_owned_by(const Router& router, std::size_t target,
                      const std::string& id) {
  for (int i = 0; i < 500; ++i) {
    Request r = tiny_eval(id);
    r.p = 0.30 + 0.001 * i;
    if (router.ring().owner(router.placement_key(r)) == target) return r;
  }
  ADD_FAILURE() << "no tiny eval maps to shard " << target;
  return tiny_eval(id);
}

TEST(Router, RoutesEvalsAndAnnotatesTheServingShard) {
  Pool pool("route_basic", 3);
  RouterClient client(pool.shards[0].socket + "," + pool.shards[1].socket +
                          "," + pool.shards[2].socket,
                      pool_router_options(pool));

  const Request req = tiny_eval("r1");
  const Response resp = client.submit(req);
  ASSERT_EQ(resp.status, "ok") << resp.error;
  const std::string owner = client.router().ring().endpoint(
      client.router().ring().owner(client.router().placement_key(req)));
  EXPECT_EQ(resp.shard, owner);
  EXPECT_EQ(resp.source, "computed");
  EXPECT_TRUE(resp.report_hex.empty());  // not asked for → not leaked

  // Identical request again: same shard, now a warm hit (store or the
  // session-level store path).
  const Response again = client.submit(tiny_eval("r2"));
  ASSERT_EQ(again.status, "ok") << again.error;
  EXPECT_EQ(again.shard, owner);
  EXPECT_EQ(again.fingerprint, resp.fingerprint);

  const Response stats = client.stats();
  EXPECT_EQ(stats.type, "stats");
  EXPECT_NE(stats.payload_json.find("router_stats/v1"), std::string::npos);
  EXPECT_NE(stats.payload_json.find("\"health\": \"up\""),
            std::string::npos);

  const Router::Stats s = client.router().stats();
  EXPECT_EQ(s.routed, 2u);
  EXPECT_EQ(s.failovers, 0u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST(Router, MalformedLinesAnswerErrorWithoutTouchingShards) {
  Pool pool("route_bad", 1);
  RouterOptions opts = pool_router_options(pool);
  Router router(opts);
  const Response resp = router.handle("this is not json");
  EXPECT_EQ(resp.status, "error");
  const Router::Stats s = router.stats();
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.shards[0].forwards, 0u);
}

TEST(Router, ReplicationMakesTheKeyReadableFromTheSuccessor) {
  Pool pool("route_repl", 3);
  RouterOptions opts = pool_router_options(pool);
  opts.replicas = 1;
  Router router(opts);

  const Request req = eval_owned_by(router, 0, "repl");
  const std::uint64_t key = router.placement_key(req);
  const std::size_t successor = router.ring().successors(key, 1)[1];

  const Response first = router.handle(serve::format_request(req));
  ASSERT_EQ(first.status, "ok") << first.error;
  EXPECT_EQ(first.shard, pool.shards[0].socket);
  EXPECT_EQ(first.source, "computed");

  // Replication is synchronous with the response: the successor's
  // counters already show the accepted put...
  const Router::Stats s = router.stats();
  EXPECT_EQ(s.shards[successor].replications, 1u);
  EXPECT_EQ(s.shards[successor].replication_failures, 0u);

  // ...and the successor can serve the fingerprint from its own store:
  // ask it directly, bypassing the router.
  Client direct(pool.shards[successor].socket, ClientOptions{});
  Request same = req;
  same.id = "direct";
  const Response from_replica = direct.submit(same);
  ASSERT_EQ(from_replica.status, "ok") << from_replica.error;
  EXPECT_EQ(from_replica.fingerprint, first.fingerprint);
  EXPECT_EQ(from_replica.source, "store");
}

TEST(Router, FailoverWithOneShardDownLosesZeroRequests) {
  Pool pool("route_failover", 3);
  RouterOptions opts = pool_router_options(pool);
  opts.replicas = 1;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_ms = 60000;  // stays down for the whole test
  Router router(opts);

  // Warm every shard with a key it owns (and replicate to successors).
  std::vector<Request> owned;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    owned.push_back(
        eval_owned_by(router, shard, "warm" + std::to_string(shard)));
    const Response resp =
        router.handle(serve::format_request(owned.back()));
    ASSERT_EQ(resp.status, "ok") << resp.error;
  }

  // Kill shard 0. Its keys must fail over to the ring successor — which
  // replication already warmed — and every request still succeeds.
  pool.shards[0].stop();
  const std::uint64_t dead_key = router.placement_key(owned[0]);
  const std::string successor_ep =
      router.ring().endpoint(router.ring().successors(dead_key, 1)[1]);

  for (int i = 0; i < 4; ++i) {
    Request again = owned[i % 3];
    again.id = "after" + std::to_string(i);
    const Response resp = router.handle(serve::format_request(again));
    ASSERT_EQ(resp.status, "ok")
        << "request " << i << " lost: " << resp.error;
  }
  // The dead shard's key specifically: served by its successor, from the
  // replicated store record (no recompute).
  Request dead_again = owned[0];
  dead_again.id = "dead_key";
  const Response failed_over =
      router.handle(serve::format_request(dead_again));
  ASSERT_EQ(failed_over.status, "ok") << failed_over.error;
  EXPECT_EQ(failed_over.shard, successor_ep);
  EXPECT_EQ(failed_over.source, "store");

  const Router::Stats s = router.stats();
  EXPECT_GE(s.failovers, 1u);
  EXPECT_EQ(s.rejected, 0u);
  const std::size_t dead = pool.index_of(pool.shards[0].socket);
  EXPECT_GE(s.shards[dead].failures, 1u);
}

TEST(Router, BreakerOpensHalfOpensAndClosesAgain) {
  // One endpoint, nothing listening: connects fail instantly (ENOENT).
  const std::string socket = fresh_socket("route_breaker");
  RouterOptions opts;
  opts.endpoints = {socket};
  opts.replicas = 0;
  opts.breaker_threshold = 2;
  opts.breaker_cooldown_ms = 150;
  opts.client.deadline_ms = 2000;
  opts.client.connect_timeout_ms = 200;
  Router router(opts);

  // Two transport failures open the breaker...
  for (int i = 0; i < 2; ++i) {
    const Response resp =
        router.handle(serve::format_request(tiny_eval("f")));
    EXPECT_EQ(resp.status, "rejected");
    EXPECT_NE(resp.error.find("all shards down"), std::string::npos);
  }
  Router::Stats s = router.stats();
  EXPECT_EQ(s.shards[0].health, Router::Health::Open);
  EXPECT_EQ(s.shards[0].failures, 2u);

  // ...and while open the shard is skipped without paying a connect.
  const Response skipped =
      router.handle(serve::format_request(tiny_eval("s")));
  EXPECT_EQ(skipped.status, "rejected");
  s = router.stats();
  EXPECT_GE(s.shards[0].skipped, 1u);
  EXPECT_EQ(s.shards[0].failures, 2u);  // no new connect attempt

  // Recovery: bring a real daemon up on the endpoint, wait out the
  // cooldown, and the next request is the half-open probe that closes
  // the breaker.
  ShardDaemon daemon;
  daemon.socket = socket;
  daemon.store_dir = fresh_dir("route_breaker_store");
  daemon.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const Response recovered =
      router.handle(serve::format_request(tiny_eval("r")));
  EXPECT_EQ(recovered.status, "ok") << recovered.error;
  s = router.stats();
  EXPECT_EQ(s.shards[0].health, Router::Health::Up);
  EXPECT_EQ(s.shards[0].recoveries, 1u);

  daemon.stop();
  fs::remove_all(daemon.store_dir);
}

TEST(Router, AllShardsDownRejectsExplicitlyWithinTheDeadline) {
  RouterOptions opts;
  opts.endpoints = {fresh_socket("down_a"), fresh_socket("down_b"),
                    fresh_socket("down_c")};
  opts.breaker_threshold = 1;
  opts.client.deadline_ms = 500;
  opts.client.connect_timeout_ms = 100;
  Router router(opts);

  const auto start = std::chrono::steady_clock::now();
  const Response resp =
      router.handle(serve::format_request(tiny_eval("doomed")));
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);

  EXPECT_EQ(resp.status, "rejected");
  EXPECT_NE(resp.error.find("all shards down"), std::string::npos)
      << resp.error;
  // Three failed unix connects are near-instant; the bound just pins
  // "explicit answer, not a hang".
  EXPECT_LT(elapsed.count(), 3000);

  const Router::Stats s = router.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.routed, 0u);
}

TEST(Router, ProberRecoversADownShardWithoutTraffic) {
  const std::string socket = fresh_socket("route_probe");
  RouterOptions opts;
  opts.endpoints = {socket};
  opts.replicas = 0;
  opts.breaker_threshold = 1;
  opts.breaker_cooldown_ms = 60000;  // traffic alone would never retry
  opts.probe_interval_ms = 50;
  opts.probe_deadline_ms = 500;
  opts.client.deadline_ms = 2000;
  opts.client.connect_timeout_ms = 200;
  Router router(opts);

  // One failure marks the shard down.
  EXPECT_EQ(router.handle(serve::format_request(tiny_eval("x"))).status,
            "rejected");
  ASSERT_EQ(router.stats().shards[0].health, Router::Health::Open);

  // The daemon comes back; the prober must rejoin it with NO request
  // traffic, despite the one-minute breaker cooldown.
  ShardDaemon daemon;
  daemon.socket = socket;
  daemon.store_dir = fresh_dir("route_probe_store");
  daemon.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.stats().shards[0].health != Router::Health::Up &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const Router::Stats s = router.stats();
  EXPECT_EQ(s.shards[0].health, Router::Health::Up);
  EXPECT_GE(s.shards[0].probes, 1u);
  EXPECT_GE(s.shards[0].recoveries, 1u);

  // And real traffic flows again immediately.
  EXPECT_EQ(router.handle(serve::format_request(tiny_eval("y"))).status,
            "ok");

  daemon.stop();
  fs::remove_all(daemon.store_dir);
}

TEST(Router, ServesTheWireProtocolOverAListener) {
  Pool pool("route_wire", 2);
  RouterOptions opts = pool_router_options(pool);
  Router router(opts);

  Listener listener = Listener::listen(fresh_socket("route_front"));
  const std::string front = listener.endpoint().path;
  std::thread serving([&]() { router.serve_listener(listener); });

  Client client(front, ClientOptions{});
  const Response resp = client.submit(tiny_eval("wire"));
  EXPECT_EQ(resp.status, "ok") << resp.error;
  EXPECT_FALSE(resp.shard.empty());

  // parse_response drops the payload object: check the raw stats line.
  const std::string stats_line =
      client.request_raw("{\"type\":\"stats\"}");
  EXPECT_NE(stats_line.find("router_stats/v1"), std::string::npos);

  EXPECT_EQ(client.shutdown().type, "bye");
  serving.join();
}

// ---------------------------------------------------------------------------
// Protocol additions the router rides on.

TEST(RouterProtocol, HexCodecRoundTripsAndRejectsGarbage) {
  const std::string bytes = std::string("\x00\x7f\xff\x10az", 6);
  EXPECT_EQ(serve::hex_decode(serve::hex_encode(bytes)), bytes);
  EXPECT_EQ(serve::hex_encode(""), "");
  EXPECT_THROW(serve::hex_decode("abc"), ContractError);   // odd length
  EXPECT_THROW(serve::hex_decode("zz"), ContractError);    // non-hex
}

TEST(RouterProtocol, PutRoundTripsThroughServerStore) {
  // include_report hands back the byte-exact payload; a put of that
  // payload into a second daemon's store serves the fingerprint as a
  // store hit — the replication mechanism, exercised daemon-to-daemon.
  ServerOptions aopts;
  aopts.store_dir = fresh_dir("put_src");
  Server a(aopts);
  Request eval = tiny_eval("src");
  eval.include_report = true;
  const Response got = a.handle(serve::format_request(eval));
  ASSERT_EQ(got.status, "ok") << got.error;
  ASSERT_FALSE(got.report_hex.empty());

  ServerOptions bopts;
  bopts.store_dir = fresh_dir("put_dst");
  Server b(bopts);
  Request put;
  put.type = "put";
  put.id = "copy";
  put.fingerprint = got.fingerprint;
  put.report_hex = got.report_hex;
  const Response accepted = b.handle(serve::format_request(put));
  ASSERT_EQ(accepted.status, "ok") << accepted.error;
  EXPECT_EQ(accepted.type, "put");
  EXPECT_EQ(accepted.source, "replicated");

  Request replay = tiny_eval("replay");
  const Response hit = b.handle(serve::format_request(replay));
  ASSERT_EQ(hit.status, "ok") << hit.error;
  EXPECT_EQ(hit.source, "store");
  EXPECT_EQ(hit.fingerprint, got.fingerprint);
  EXPECT_EQ(hit.cycles, got.cycles);

  EXPECT_EQ(b.counters().puts, 1u);
  fs::remove_all(aopts.store_dir);
  fs::remove_all(bopts.store_dir);
}

TEST(RouterProtocol, PutWithoutAStoreIsAnExplicitError) {
  Server storeless;  // no store_dir
  Request put;
  put.type = "put";
  put.fingerprint = 0x1234;
  put.report_hex = "00";
  const Response resp = storeless.handle(serve::format_request(put));
  EXPECT_EQ(resp.status, "error");
  EXPECT_NE(resp.error.find("store"), std::string::npos);
}

}  // namespace
}  // namespace sparsetrain
