// Network-level tests: containers, residual blocks, model builders,
// end-to-end training on synthetic data.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/models/model_builder.hpp"
#include "nn/relu.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "nn/sgd.hpp"
#include "nn/trainer.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::nn {
namespace {

using models::ModelInput;

TEST(Sequential, ChainsShapes) {
  Sequential net;
  Conv2DConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 8;
  net.emplace<Conv2D>(cfg);
  net.emplace<ReLU>();
  EXPECT_EQ(net.output_shape(Shape{2, 3, 16, 16}), (Shape{2, 8, 16, 16}));
  EXPECT_EQ(net.size(), 2u);
}

TEST(Sequential, CollectsParams) {
  Sequential net;
  Conv2DConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  net.emplace<Conv2D>(cfg);
  net.emplace<Linear>(4, 2);
  // conv weight+bias, linear weight+bias.
  EXPECT_EQ(net.params().size(), 4u);
}

TEST(Sequential, ForEachConvVisitsNested) {
  auto net = models::resnet_s(ModelInput{}, 1, 4);
  std::size_t convs = 0;
  net->for_each_conv([&](Conv2D&) { ++convs; });
  // stem + 3 stages × (2 convs) + 2 projection convs (stages 2, 3).
  EXPECT_EQ(convs, 1u + 6u + 2u);
}

TEST(ResidualBlock, IdentityShortcutGradients) {
  Rng rng(31);
  Sequential main;
  Conv2DConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.bias = false;
  main.emplace<Conv2D>(cfg);
  ResidualBlock block(std::move(main), Sequential{}, "test-block");
  kaiming_init(block, rng);

  Tensor in(Shape{1, 2, 4, 4});
  in.fill_normal(rng, 0.0f, 1.0f);
  const Tensor out = block.forward(in, true);
  EXPECT_EQ(out.shape(), in.shape());

  // Finite-difference check through the whole block.
  Tensor coeffs(out.shape());
  coeffs.fill_normal(rng, 0.0f, 1.0f);
  const Tensor grad_in = block.backward(coeffs);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < in.size(); i += 5) {
    Tensor plus = in, minus = in;
    plus[i] += eps;
    minus[i] -= eps;
    float fp = 0.0f, fm = 0.0f;
    const Tensor op = block.forward(plus, true);
    for (std::size_t j = 0; j < op.size(); ++j) fp += op[j] * coeffs[j];
    const Tensor om = block.forward(minus, true);
    for (std::size_t j = 0; j < om.size(); ++j) fm += om[j] * coeffs[j];
    EXPECT_NEAR(grad_in[i], (fp - fm) / (2 * eps), 5e-2f) << "index " << i;
  }
}

TEST(ResidualBlock, ProjectionShortcutChangesShape) {
  auto net = models::resnet_s(ModelInput{3, 16, 16, 10}, 1, 8);
  const Shape out = net->output_shape(Shape{2, 3, 16, 16});
  EXPECT_EQ(out, (Shape{2, 1, 1, 10}));
}

TEST(Models, TinyCnnShape) {
  auto net = models::tiny_cnn(ModelInput{3, 16, 16, 10}, 8);
  EXPECT_EQ(net->output_shape(Shape{4, 3, 16, 16}), (Shape{4, 1, 1, 10}));
}

TEST(Models, AlexNetSShape) {
  auto net = models::alexnet_s(ModelInput{3, 32, 32, 100}, 16);
  EXPECT_EQ(net->output_shape(Shape{2, 3, 32, 32}), (Shape{2, 1, 1, 100}));
}

TEST(Models, AlexNetHasNoBatchNorm) {
  // The CONV-ReLU pruning position applies; builder must not insert BN.
  auto net = models::alexnet_s(ModelInput{}, 8);
  for (std::size_t i = 0; i < net->size(); ++i)
    EXPECT_EQ(net->layer(i).name().find("batchnorm"), std::string::npos);
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Param p("weight", Shape::vec(2));
  p.value[0] = 1.0f;
  p.grad[0] = 0.5f;
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.momentum = 0.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);  // cleared after the step
}

TEST(Sgd, MomentumAccumulates) {
  Param p("weight", Shape::vec(1));
  SgdConfig cfg;
  cfg.learning_rate = 1.0f;
  cfg.momentum = 0.5f;
  Sgd opt({&p}, cfg);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, x=-1
  p.grad[0] = 1.0f;
  opt.step();  // v=1.5, x=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(Sgd, WeightDecayShrinks) {
  Param p("weight", Shape::vec(1));
  p.value[0] = 10.0f;
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.1f;
  Sgd opt({&p}, cfg);
  opt.step();  // g = 0 + 0.1*10 = 1; x = 10 - 0.1
  EXPECT_FLOAT_EQ(p.value[0], 9.9f);
}

TEST(Training, TinyCnnLearnsSyntheticTask) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 4;
  dcfg.samples = 192;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise = 0.25f;
  dcfg.seed = 7;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(96, 8);

  ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};
  auto net = models::tiny_cnn(mi, 6);
  Rng rng(1);
  kaiming_init(*net, rng);

  TrainConfig tcfg;
  tcfg.batch_size = 16;
  tcfg.epochs = 6;
  tcfg.sgd.learning_rate = 0.05f;
  Trainer trainer(*net, tcfg);
  const TrainResult result = trainer.fit(train, test);

  EXPECT_GT(result.final_train_accuracy, 0.8);
  EXPECT_GT(result.test_accuracy, 0.7);
  // Loss must decrease overall.
  EXPECT_LT(result.epochs.back().train_loss,
            result.epochs.front().train_loss);
}

TEST(Training, ResNetSLearnsSyntheticTask) {
  data::SyntheticConfig dcfg;
  dcfg.classes = 3;
  dcfg.samples = 120;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise = 0.25f;
  dcfg.seed = 9;
  const data::SyntheticDataset train(dcfg);
  const data::SyntheticDataset test = train.held_out(60, 10);

  ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};
  auto net = models::resnet_s(mi, 1, 4);
  Rng rng(2);
  kaiming_init(*net, rng);

  TrainConfig tcfg;
  tcfg.batch_size = 12;
  tcfg.epochs = 8;
  tcfg.sgd.learning_rate = 0.05f;
  Trainer trainer(*net, tcfg);
  const TrainResult result = trainer.fit(train, test);
  EXPECT_GT(result.final_train_accuracy, 0.7);
}

TEST(Training, StepHookRunsOncePerStep) {
  data::SyntheticConfig dcfg;
  dcfg.samples = 32;
  const data::SyntheticDataset train(dcfg);
  ModelInput mi{dcfg.channels, dcfg.height, dcfg.width, dcfg.classes};
  auto net = models::tiny_cnn(mi, 4);
  Rng rng(3);
  kaiming_init(*net, rng);

  TrainConfig tcfg;
  tcfg.batch_size = 8;
  tcfg.epochs = 2;
  Trainer trainer(*net, tcfg);
  int hooks = 0;
  trainer.set_step_hook([&] { ++hooks; });
  (void)trainer.fit(train, train);
  EXPECT_EQ(hooks, 2 * 4);
}

TEST(Data, SyntheticBatchShapesAndLabels) {
  data::SyntheticConfig cfg;
  cfg.classes = 5;
  cfg.samples = 40;
  const data::SyntheticDataset ds(cfg);
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_EQ(ds.num_classes(), 5u);
  const data::Batch b = ds.batch(0, 8);
  EXPECT_EQ(b.images.shape(), (Shape{8, 3, 16, 16}));
  for (auto label : b.labels) EXPECT_LT(label, 5u);
}

TEST(Data, BatchWrapsAround) {
  data::SyntheticConfig cfg;
  cfg.samples = 10;
  const data::SyntheticDataset ds(cfg);
  const data::Batch b = ds.batch(8, 4);  // wraps to samples 8,9,0,1
  EXPECT_EQ(b.size(), 4u);
}

TEST(Data, HeldOutSharesTemplates) {
  data::SyntheticConfig cfg;
  cfg.samples = 64;
  cfg.seed = 21;
  const data::SyntheticDataset train(cfg);
  const data::SyntheticDataset test = train.held_out(32, 22);
  EXPECT_EQ(test.size(), 32u);
  EXPECT_EQ(test.num_classes(), train.num_classes());
}

}  // namespace
}  // namespace sparsetrain::nn
