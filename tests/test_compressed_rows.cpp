// Tests for the arena-backed CSR storage (CompressedRows/SparseRowView)
// and the word-packed BitMask — plus equivalence proofs that the O(1)
// window arithmetic of the optimised row-op work counters matches the
// original per-tap reference semantics exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dataflow/row_ops.hpp"
#include "tensor/bit_mask.hpp"
#include "tensor/compressed_rows.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain {
namespace {

Tensor random_tensor(Shape s, double density, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(s);
  t.fill_sparse_normal(rng, density);
  return t;
}

// ------------------------------------------------------- CompressedRows

TEST(CompressedRows, RoundTripMatchesCompressRow) {
  const Tensor t = random_tensor(Shape{2, 3, 5, 17}, 0.4, 11);
  const CompressedRows rows = compress_tensor(t);
  ASSERT_EQ(rows.rows(), 2u * 3u * 5u);
  EXPECT_EQ(rows.row_length(), 17u);
  EXPECT_TRUE(rows.valid());

  std::size_t flat = 0, nnz = 0;
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t c = 0; c < 3; ++c) {
      for (std::size_t y = 0; y < 5; ++y, ++flat) {
        const SparseRow expect = compress_row(t.row(n, c, y));
        const SparseRowView got = rows.row(flat);
        ASSERT_EQ(got.nnz(), expect.nnz()) << "row " << flat;
        EXPECT_TRUE(std::equal(got.offsets.begin(), got.offsets.end(),
                               expect.offsets.begin()));
        EXPECT_TRUE(std::equal(got.values.begin(), got.values.end(),
                               expect.values.begin()));
        // decompress_into reproduces the dense row.
        std::vector<float> dense(got.length);
        decompress_into(got, dense);
        const auto orig = t.row(n, c, y);
        EXPECT_TRUE(std::equal(dense.begin(), dense.end(), orig.begin()));
        // materialize() round-trips through the owning type.
        const SparseRow owned = materialize(got);
        EXPECT_TRUE(owned.valid());
        EXPECT_EQ(decompress_row(owned),
                  std::vector<float>(orig.begin(), orig.end()));
        nnz += got.nnz();
      }
    }
  }
  EXPECT_EQ(rows.total_nnz(), nnz);
  EXPECT_DOUBLE_EQ(rows.density(), t.density());
}

TEST(CompressedRows, ViewInvariantsHold) {
  const Tensor t = random_tensor(Shape{1, 2, 4, 33}, 0.3, 12);
  const CompressedRows rows = compress_tensor(t);
  for (std::size_t i = 0; i < rows.rows(); ++i)
    EXPECT_TRUE(rows.row(i).valid()) << "row " << i;
}

TEST(CompressedRows, EmptyAndDegenerateShapes) {
  // Default-constructed: no rows at all.
  const CompressedRows none;
  EXPECT_EQ(none.rows(), 0u);
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(none.valid());
  EXPECT_EQ(none.density(), 0.0);

  // All-zero tensor: rows exist, every one empty.
  const Tensor zeros(Shape{1, 2, 3, 8});
  const CompressedRows zrows = compress_tensor(zeros);
  ASSERT_EQ(zrows.rows(), 6u);
  EXPECT_EQ(zrows.total_nnz(), 0u);
  for (std::size_t i = 0; i < zrows.rows(); ++i) {
    EXPECT_TRUE(zrows.row(i).empty());
    EXPECT_EQ(zrows.row(i).length, 8u);
  }

  // 1×N: a single wide row.
  Tensor wide = random_tensor(Shape{1, 1, 1, 300}, 0.5, 13);
  const CompressedRows wrows = compress_tensor(wide);
  ASSERT_EQ(wrows.rows(), 1u);
  const SparseRow expect = compress_row(wide.row(0, 0, 0));
  EXPECT_EQ(wrows.row(0).nnz(), expect.nnz());
  EXPECT_TRUE(wrows.valid());

  // N×1: many single-element rows.
  Tensor tall = random_tensor(Shape{1, 1, 64, 1}, 0.5, 14);
  const CompressedRows trows = compress_tensor(tall);
  ASSERT_EQ(trows.rows(), 64u);
  EXPECT_EQ(trows.row_length(), 1u);
  for (std::size_t y = 0; y < 64; ++y) {
    const float v = tall.at(0, 0, y, 0);
    EXPECT_EQ(trows.row(y).nnz(), v != 0.0f ? 1u : 0u);
  }
  EXPECT_TRUE(trows.valid());

  // Out-of-range row access is contract-checked.
  EXPECT_THROW(trows.row(64), ContractError);
}

TEST(CompressedRows, ParallelBuildIsByteIdentical) {
  const Tensor t = random_tensor(Shape{3, 4, 9, 21}, 0.35, 15);
  const CompressedRows serial = compress_tensor(t, nullptr);
  util::ThreadPool pool(4);
  const CompressedRows parallel = compress_tensor(t, &pool);
  ASSERT_EQ(serial.rows(), parallel.rows());
  ASSERT_EQ(serial.total_nnz(), parallel.total_nnz());
  for (std::size_t i = 0; i < serial.rows(); ++i) {
    const SparseRowView a = serial.row(i);
    const SparseRowView b = parallel.row(i);
    ASSERT_EQ(a.nnz(), b.nnz()) << "row " << i;
    EXPECT_TRUE(
        std::equal(a.offsets.begin(), a.offsets.end(), b.offsets.begin()));
    EXPECT_TRUE(
        std::equal(a.values.begin(), a.values.end(), b.values.begin()));
  }
}

TEST(CompressedRows, BuilderRejectsCountMismatch) {
  CompressedRows rows;
  const std::vector<std::uint32_t> counts = {2};
  rows.start(4, counts);
  // Row actually has 3 nonzeros, counted as 2.
  const std::vector<float> dense = {1.0f, 2.0f, 3.0f, 0.0f};
  EXPECT_THROW(rows.fill_row(0, dense), ContractError);
}

// --------------------------------------------------------------- BitMask

MaskRow random_mask_row(std::uint32_t length, double density, Rng& rng) {
  MaskRow m;
  m.length = length;
  for (std::uint32_t p = 0; p < length; ++p)
    if (rng.bernoulli(density)) m.offsets.push_back(p);
  return m;
}

TEST(BitMask, MatchesMaskRowOnRandomMasks) {
  Rng rng(21);
  for (const std::uint32_t length : {1u, 7u, 63u, 64u, 65u, 200u}) {
    for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      const MaskRow ref = random_mask_row(length, density, rng);
      const BitMask mask = bitmask_from(ref);
      ASSERT_EQ(mask.length(), ref.length);
      EXPECT_EQ(mask.allowed(), ref.allowed());
      EXPECT_DOUBLE_EQ(mask.density(), ref.density());
      for (std::uint32_t p = 0; p < length; ++p)
        EXPECT_EQ(mask.allows(p), ref.allows(p))
            << "length " << length << " density " << density << " p " << p;
    }
  }
}

TEST(BitMask, FromDenseMatchesMaskFromDense) {
  Rng rng(22);
  std::vector<float> dense(130);
  for (auto& v : dense)
    v = rng.bernoulli(0.4) ? static_cast<float>(rng.normal()) : 0.0f;
  const MaskRow ref = mask_from_dense(dense);
  const BitMask mask = bitmask_from_dense(dense);
  ASSERT_EQ(mask.length(), ref.length);
  EXPECT_EQ(mask.allowed(), ref.allowed());
  for (std::uint32_t p = 0; p < mask.length(); ++p)
    EXPECT_EQ(mask.allows(p), ref.allows(p));
}

TEST(BitMask, AllPassAndNone) {
  for (const std::uint32_t length : {0u, 1u, 64u, 100u}) {
    BitMask all;
    all.assign_all(length);
    EXPECT_EQ(all.length(), length);
    EXPECT_EQ(all.allowed(), length);
    for (std::uint32_t p = 0; p < length; ++p) EXPECT_TRUE(all.allows(p));
    // Bits beyond length stay zero so popcounts are exact.
    for (const std::uint64_t w : all.words())
      EXPECT_EQ(std::popcount(w) <= 64, true);

    BitMask none;
    none.assign_none(length);
    EXPECT_EQ(none.allowed(), 0u);
    EXPECT_EQ(none.density(), 0.0);
  }
  EXPECT_EQ(bitmask_all(70).allowed(), 70u);
}

TEST(BitMask, CountInMatchesManualCount) {
  Rng rng(23);
  const std::uint32_t length = 200;
  const MaskRow ref = random_mask_row(length, 0.35, rng);
  const BitMask mask = bitmask_from(ref);
  for (std::uint32_t lo = 0; lo < length; lo += 7) {
    for (const std::uint32_t width : {0u, 1u, 3u, 5u, 11u, 64u, 130u, 500u}) {
      const std::uint32_t hi = lo + width;  // may exceed length: clamped
      std::size_t manual = 0;
      for (std::uint32_t p = lo; p < std::min(hi, length); ++p)
        manual += ref.allows(p) ? 1 : 0;
      EXPECT_EQ(mask.count_in(lo, hi), manual) << "lo " << lo << " hi " << hi;
    }
  }
  EXPECT_EQ(mask.count_in(50, 50), 0u);
  EXPECT_EQ(mask.count_in(120, 40), 0u);  // empty window
}

TEST(BitMask, AssignReusesStorage) {
  BitMask mask;
  mask.assign_all(128);
  const std::size_t full = mask.allowed();
  EXPECT_EQ(full, 128u);
  // Re-assigning a shorter mask must fully clear the previous contents.
  std::vector<float> dense(40, 0.0f);
  dense[3] = 1.0f;
  mask.assign_from_dense(dense);
  EXPECT_EQ(mask.length(), 40u);
  EXPECT_EQ(mask.allowed(), 1u);
  EXPECT_TRUE(mask.allows(3));
  EXPECT_FALSE(mask.allows(4));
}

// ------------------------------- work counters vs per-tap reference

// The original per-tap / binary-search implementations, kept verbatim as
// the semantic reference the optimised kernels must match exactly.
namespace reference {

using dataflow::RowGeometry;
using dataflow::RowOpWork;

bool src_output_index(std::uint32_t in_pos, std::uint32_t k,
                      const RowGeometry& geo, std::size_t out_len,
                      std::size_t& ox) {
  const std::int64_t num = static_cast<std::int64_t>(in_pos) +
                           static_cast<std::int64_t>(geo.padding) -
                           static_cast<std::int64_t>(k);
  if (num < 0) return false;
  if (num % geo.stride != 0) return false;
  const auto candidate = static_cast<std::size_t>(num / geo.stride);
  if (candidate >= out_len) return false;
  ox = candidate;
  return true;
}

RowOpWork src_work(const SparseRow& input, const RowGeometry& geo,
                   std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ox;
      if (src_output_index(input.offsets[i], k, geo, out_len, ox))
        ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

RowOpWork msrc_work(const SparseRow& input, const MaskRow& mask,
                    const RowGeometry& geo, std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      const std::int64_t idx = static_cast<std::int64_t>(input.offsets[i]) *
                                   static_cast<std::int64_t>(geo.stride) +
                               static_cast<std::int64_t>(k) -
                               static_cast<std::int64_t>(geo.padding);
      if (idx < 0 || idx >= static_cast<std::int64_t>(out_len)) continue;
      if (!mask.allows(static_cast<std::uint32_t>(idx))) continue;
      ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

RowOpWork osrc_work(const SparseRow& input_acts, const SparseRow& grad_out,
                    const RowGeometry& geo) {
  RowOpWork w;
  for (std::size_t j = 0; j < grad_out.nnz(); ++j) {
    const std::uint32_t ox = grad_out.offsets[j];
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      const std::int64_t ipos = static_cast<std::int64_t>(ox) *
                                    static_cast<std::int64_t>(geo.stride) +
                                static_cast<std::int64_t>(k) -
                                static_cast<std::int64_t>(geo.padding);
      if (ipos < 0 || ipos >= static_cast<std::int64_t>(input_acts.length))
        continue;
      if (std::binary_search(input_acts.offsets.begin(),
                             input_acts.offsets.end(),
                             static_cast<std::uint32_t>(ipos)))
        ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

}  // namespace reference

SparseRow random_row(std::uint32_t length, double density, Rng& rng) {
  std::vector<float> dense(length, 0.0f);
  for (auto& v : dense)
    if (rng.bernoulli(density)) v = static_cast<float>(rng.normal());
  return compress_row(dense);
}

void expect_same_work(const dataflow::RowOpWork& got,
                      const dataflow::RowOpWork& ref, const char* what,
                      const dataflow::RowGeometry& geo, std::size_t len) {
  EXPECT_EQ(got.macs, ref.macs)
      << what << " K=" << geo.kernel << " S=" << geo.stride
      << " P=" << geo.padding << " len=" << len;
  EXPECT_EQ(got.active_inputs, ref.active_inputs) << what;
  EXPECT_EQ(got.skipped_inputs, ref.skipped_inputs) << what;
}

TEST(RowOpWorkEquivalence, OptimisedCountersMatchPerTapReference) {
  Rng rng(31);
  for (const std::uint32_t K : {1u, 3u, 5u, 11u}) {
    for (const std::uint32_t S : {1u, 2u, 3u, 4u}) {
      for (const std::uint32_t P : {0u, 1u, 2u, K}) {
        for (const std::uint32_t len : {1u, 7u, 64u, 301u}) {
          for (const double density : {0.0, 0.1, 0.5, 1.0}) {
            const dataflow::RowGeometry geo{K, S, P};
            // Output length of a conv with this geometry (guard the
            // underflow case where the padded row is shorter than K).
            if (len + 2 * P < K) continue;
            const std::size_t out_len = (len + 2 * P - K) / S + 1;

            const SparseRow in = random_row(len, density, rng);
            expect_same_work(dataflow::src_work(in, geo, out_len),
                             reference::src_work(in, geo, out_len), "src",
                             geo, len);

            const MaskRow mask_ref = random_mask_row(
                static_cast<std::uint32_t>(out_len), 0.5, rng);
            const BitMask mask = bitmask_from(mask_ref);
            expect_same_work(
                dataflow::msrc_work(in, mask, geo, out_len),
                reference::msrc_work(in, mask_ref, geo, out_len), "msrc",
                geo, len);

            const SparseRow grad = random_row(
                static_cast<std::uint32_t>(out_len), density, rng);
            // OSRC pairs an I row of length `len` with a dO row of length
            // out_len (in_len known to the reference via input.length).
            expect_same_work(dataflow::osrc_work(in, grad, geo),
                             reference::osrc_work(in, grad, geo), "osrc",
                             geo, len);
          }
        }
      }
    }
  }
}

// The two-pointer osrc_row_conv must also be bit-identical (same add
// order) to the binary-search reference.
TEST(RowOpWorkEquivalence, OsrcRowConvMatchesBinarySearchReference) {
  Rng rng(32);
  for (const std::uint32_t K : {1u, 3u, 5u}) {
    for (const std::uint32_t S : {1u, 2u}) {
      for (const std::uint32_t P : {0u, 1u, 2u}) {
        const std::uint32_t len = 64;
        if (len + 2 * P < K) continue;
        const std::size_t out_len = (len + 2 * P - K) / S + 1;
        const dataflow::RowGeometry geo{K, S, P};
        const SparseRow in = random_row(len, 0.5, rng);
        const SparseRow grad =
            random_row(static_cast<std::uint32_t>(out_len), 0.3, rng);

        std::vector<float> got(K, 0.0f);
        osrc_row_conv(in, grad, geo, got);

        std::vector<float> want(K, 0.0f);
        for (std::size_t j = 0; j < grad.nnz(); ++j) {
          const std::uint32_t ox = grad.offsets[j];
          const float g = grad.values[j];
          for (std::uint32_t k = 0; k < K; ++k) {
            const std::int64_t ipos =
                static_cast<std::int64_t>(ox) * S + k - P;
            if (ipos < 0 || ipos >= static_cast<std::int64_t>(in.length))
              continue;
            const auto it =
                std::lower_bound(in.offsets.begin(), in.offsets.end(),
                                 static_cast<std::uint32_t>(ipos));
            if (it != in.offsets.end() &&
                *it == static_cast<std::uint32_t>(ipos))
              want[k] +=
                  g * in.values[static_cast<std::size_t>(
                          it - in.offsets.begin())];
          }
        }
        for (std::uint32_t k = 0; k < K; ++k)
          EXPECT_EQ(got[k], want[k]) << "K=" << K << " S=" << S << " P=" << P
                                     << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace sparsetrain
