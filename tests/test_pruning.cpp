// Tests for the gradient pruning algorithm: threshold determination,
// stochastic rule, FIFO prediction, and the per-layer pruner.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pruning/fifo_predictor.hpp"
#include "pruning/gradient_pruner.hpp"
#include "pruning/stochastic_pruner.hpp"
#include "pruning/threshold.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sparsetrain::pruning {
namespace {

std::vector<float> normal_data(std::size_t n, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> g(n);
  for (auto& x : g) x = static_cast<float>(rng.normal(0.0, sigma));
  return g;
}

TEST(Threshold, SigmaEstimateIsUnbiased) {
  const double sigma = 0.7;
  const auto g = normal_data(200000, sigma, 41);
  EXPECT_NEAR(estimate_sigma(g), sigma, 0.01);
}

TEST(Threshold, SigmaOfZeroDataIsZero) {
  const std::vector<float> g(100, 0.0f);
  EXPECT_EQ(estimate_sigma(g), 0.0);
  EXPECT_EQ(estimate_sigma(0.0, 0), 0.0);
}

TEST(Threshold, ZeroSparsityGivesZeroThreshold) {
  EXPECT_EQ(determine_threshold(1.0, 0.0), 0.0);
}

TEST(Threshold, RejectsInvalidSparsity) {
  EXPECT_THROW(determine_threshold(1.0, 1.0), ContractError);
  EXPECT_THROW(determine_threshold(1.0, -0.1), ContractError);
}

TEST(Threshold, MonotoneInTargetSparsity) {
  double prev = 0.0;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double tau = determine_threshold(1.0, p);
    EXPECT_GT(tau, prev);
    prev = tau;
  }
}

TEST(Threshold, KnownQuantiles) {
  // P(|g| < τ) = p for unit normal: p=0.6827 → τ≈1; p=0.9545 → τ≈2.
  EXPECT_NEAR(determine_threshold(1.0, 0.682689492), 1.0, 1e-6);
  EXPECT_NEAR(determine_threshold(1.0, 0.954499736), 2.0, 1e-6);
}

// Property sweep: the fraction of |g| below the determined threshold must
// match the target sparsity for normal data, across p values.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, RealisedCandidateRateMatchesTarget) {
  const double p = GetParam();
  const auto g = normal_data(100000, 0.31, 43);
  const double tau = determine_threshold(g, p);
  std::size_t below = 0;
  for (float x : g)
    if (std::abs(x) < tau) ++below;
  EXPECT_NEAR(static_cast<double>(below) / static_cast<double>(g.size()), p,
              0.01)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(TargetRates, ThresholdSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.99));

TEST(StochasticPrune, ValuesAboveThresholdUntouched) {
  Rng rng(51);
  std::vector<float> g = {0.5f, -0.9f, 2.0f, -3.0f};
  const auto before = g;
  (void)stochastic_prune(g, 0.4, rng);
  EXPECT_EQ(g, before);
}

TEST(StochasticPrune, OutputsAreZeroOrSaturated) {
  Rng rng(52);
  auto g = normal_data(10000, 1.0, 53);
  const double tau = 0.8;
  (void)stochastic_prune(g, tau, rng);
  for (float x : g) {
    const float mag = std::abs(x);
    const bool untouched = mag >= static_cast<float>(tau) || x == 0.0f;
    const bool saturated = mag == static_cast<float>(tau);
    EXPECT_TRUE(untouched || saturated) << "value " << x;
  }
}

TEST(StochasticPrune, ZeroThresholdIsNoOp) {
  Rng rng(54);
  auto g = normal_data(1000, 1.0, 55);
  const auto before = g;
  const PruneStats stats = stochastic_prune(g, 0.0, rng);
  EXPECT_EQ(g, before);
  EXPECT_EQ(stats.zeroed, 0u);
  EXPECT_EQ(stats.total, 1000u);
}

TEST(StochasticPrune, PreservesExpectation) {
  // The rule's defining property: E[ĝ] = g componentwise, so the sum over
  // a large vector is preserved.
  Rng rng(56);
  auto g = normal_data(400000, 1.0, 57);
  double sum_before = 0.0;
  for (float x : g) sum_before += x;
  (void)stochastic_prune(g, 1.5, rng);
  double sum_after = 0.0;
  for (float x : g) sum_after += x;
  // Stderr of the difference is ≈ τ·√n ≈ 1.5·632; allow 4σ.
  EXPECT_NEAR(sum_after, sum_before, 4.0 * 1.5 * std::sqrt(400000.0));
}

TEST(StochasticPrune, SaturationProbabilityMatchesMagnitude) {
  // For fixed |g| = a < τ, P(saturate) = a/τ.
  Rng rng(58);
  const double tau = 1.0, a = 0.3;
  std::size_t saturated = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    std::vector<float> g = {static_cast<float>(a)};
    const PruneStats s = stochastic_prune(g, tau, rng);
    saturated += s.saturated;
  }
  EXPECT_NEAR(static_cast<double>(saturated) / n, a / tau, 0.01);
}

TEST(StochasticPrune, StatsAccounting) {
  Rng rng(59);
  auto g = normal_data(50000, 1.0, 60);
  const PruneStats s = stochastic_prune(g, 0.6, rng);
  EXPECT_EQ(s.total, 50000u);
  EXPECT_EQ(s.below, s.zeroed + s.saturated);
  EXPECT_GT(s.zeroed, 0u);
  EXPECT_GT(s.saturated, 0u);
}

TEST(Fifo, NotReadyUntilDepthPushes) {
  ThresholdFifo fifo(3);
  EXPECT_FALSE(fifo.ready());
  fifo.push(1.0);
  fifo.push(2.0);
  EXPECT_FALSE(fifo.ready());
  fifo.push(3.0);
  EXPECT_TRUE(fifo.ready());
}

TEST(Fifo, PredictedIsMeanOfStored) {
  ThresholdFifo fifo(3);
  EXPECT_EQ(fifo.predicted(), 0.0);
  fifo.push(1.0);
  EXPECT_DOUBLE_EQ(fifo.predicted(), 1.0);
  fifo.push(2.0);
  EXPECT_DOUBLE_EQ(fifo.predicted(), 1.5);
  fifo.push(3.0);
  EXPECT_DOUBLE_EQ(fifo.predicted(), 2.0);
}

TEST(Fifo, EvictsOldest) {
  ThresholdFifo fifo(2);
  fifo.push(10.0);
  fifo.push(20.0);
  fifo.push(30.0);  // evicts 10
  EXPECT_DOUBLE_EQ(fifo.predicted(), 25.0);
  EXPECT_EQ(fifo.stored(), 2u);
}

TEST(Fifo, RejectsZeroDepthAndNegativeTau) {
  EXPECT_THROW(ThresholdFifo(0), ContractError);
  ThresholdFifo fifo(1);
  EXPECT_THROW(fifo.push(-1.0), ContractError);
}

TEST(GradientPruner, NoPruningDuringWarmup) {
  PruningConfig cfg;
  cfg.target_sparsity = 0.9;
  cfg.fifo_depth = 3;
  GradientPruner pruner(cfg, Rng(61));

  for (int batch = 0; batch < 3; ++batch) {
    Tensor g(Shape::vec(5000));
    Rng data_rng(100 + batch);
    g.fill_normal(data_rng, 0.0f, 1.0f);
    pruner.apply(g);
    if (batch < 3) {
      // FIFO not full before the push of batch index 2 → thresholds 0 for
      // the first fifo_depth batches.
      EXPECT_EQ(pruner.last_predicted_threshold(), 0.0) << "batch " << batch;
      EXPECT_NEAR(pruner.last_density(), 1.0, 1e-9);
    }
  }
  // Next batch prunes.
  Tensor g(Shape::vec(5000));
  Rng data_rng(200);
  g.fill_normal(data_rng, 0.0f, 1.0f);
  pruner.apply(g);
  EXPECT_GT(pruner.last_predicted_threshold(), 0.0);
  EXPECT_LT(pruner.last_density(), 0.5);
}

TEST(GradientPruner, RealisedDensityTracksTarget) {
  // After warm-up on stationary data, density ≈ 1 − p + saturated share.
  // For normal data and p = 0.9 the zeroed fraction is well below 1−p only
  // through the stochastic ±τ survivors; empirically density lands near
  // 0.2 for p=0.9 (paper's Table II shows ~0.3 for real nets). We check a
  // generous band and monotonicity in p instead of one magic value.
  auto run = [](double p) {
    PruningConfig cfg;
    cfg.target_sparsity = p;
    cfg.fifo_depth = 2;
    GradientPruner pruner(cfg, Rng(63));
    double density = 1.0;
    for (int batch = 0; batch < 10; ++batch) {
      Tensor g(Shape::vec(20000));
      Rng data_rng(300 + batch);
      g.fill_normal(data_rng, 0.0f, 0.5f);
      pruner.apply(g);
      density = pruner.last_density();
    }
    return density;
  };
  const double d70 = run(0.70);
  const double d90 = run(0.90);
  const double d99 = run(0.99);
  EXPECT_LT(d70, 1.0);
  EXPECT_LT(d90, d70);
  EXPECT_LT(d99, d90);
  // Analytic values for pure N(0,σ) input: the zeroed fraction is
  // p − E[|g|; |g|<τ]/τ, giving densities ≈ 0.62 / 0.46 / 0.31 for
  // p = 0.7 / 0.9 / 0.99. (Real networks get lower — Table II — because
  // ReLU-mask natural sparsity stacks on top.)
  EXPECT_NEAR(d70, 0.62, 0.04);
  EXPECT_NEAR(d90, 0.46, 0.04);
  EXPECT_NEAR(d99, 0.31, 0.04);
}

TEST(GradientPruner, PredictedThresholdConvergesToDetermined) {
  // On stationary data the FIFO mean must approach the per-batch
  // determined threshold (the prediction is consistent).
  PruningConfig cfg;
  cfg.target_sparsity = 0.8;
  cfg.fifo_depth = 4;
  GradientPruner pruner(cfg, Rng(64));
  for (int batch = 0; batch < 12; ++batch) {
    Tensor g(Shape::vec(30000));
    Rng data_rng(400 + batch);
    g.fill_normal(data_rng, 0.0f, 1.0f);
    pruner.apply(g);
  }
  EXPECT_NEAR(pruner.last_predicted_threshold(),
              pruner.last_determined_threshold(), 0.05);
}

TEST(GradientPruner, CountsBatches) {
  GradientPruner pruner(PruningConfig{}, Rng(65));
  Tensor g(Shape::vec(10));
  g.fill(1.0f);
  pruner.apply(g);
  pruner.apply(g);
  EXPECT_EQ(pruner.batches(), 2u);
}

TEST(GradientPruner, EmptyTensorRejected) {
  GradientPruner pruner(PruningConfig{}, Rng(66));
  Tensor g;
  EXPECT_THROW(pruner.apply(g), ContractError);
}

TEST(GradientPruner, AllZeroGradientStaysZero) {
  PruningConfig cfg;
  cfg.fifo_depth = 1;
  GradientPruner pruner(cfg, Rng(67));
  Tensor g(Shape::vec(100));
  pruner.apply(g);  // determined τ = 0 on zero data
  pruner.apply(g);
  EXPECT_EQ(g.nnz(), 0u);
  EXPECT_EQ(pruner.last_density(), 0.0);
}

}  // namespace
}  // namespace sparsetrain::pruning
