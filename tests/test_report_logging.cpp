// Coverage for SimReport utilities and the logging facility.
#include <gtest/gtest.h>

#include "sim/report.hpp"
#include "util/logging.hpp"

namespace sparsetrain {
namespace {

sim::SimReport make_report() {
  sim::SimReport r;
  r.clock_ghz = 1.0;
  sim::StageReport fwd;
  fwd.stage = isa::Stage::Forward;
  fwd.cycles = 600;
  fwd.activity.busy_cycles = 1200;
  sim::StageReport gta;
  gta.stage = isa::Stage::GTA;
  gta.cycles = 300;
  gta.activity.busy_cycles = 450;
  sim::StageReport gtw;
  gtw.stage = isa::Stage::GTW;
  gtw.cycles = 100;
  gtw.activity.busy_cycles = 150;
  r.stages = {fwd, gta, gtw};
  r.total_cycles = 1000;
  r.activity.busy_cycles = 1800;
  return r;
}

TEST(SimReportUtil, LatencyFromClock) {
  const auto r = make_report();
  // 1000 cycles at 1 GHz = 1 µs = 0.001 ms.
  EXPECT_NEAR(r.latency_ms(), 0.001, 1e-9);
}

TEST(SimReportUtil, StageCyclesSumPerStage) {
  const auto r = make_report();
  EXPECT_EQ(r.stage_cycles(isa::Stage::Forward), 600u);
  EXPECT_EQ(r.stage_cycles(isa::Stage::GTA), 300u);
  EXPECT_EQ(r.stage_cycles(isa::Stage::GTW), 100u);
}

TEST(SimReportUtil, UtilizationIsBusyOverCapacity) {
  const auto r = make_report();
  // 1800 busy PE-cycles over 1000 cycles × 3 PEs.
  EXPECT_NEAR(r.utilization(3), 0.6, 1e-12);
  EXPECT_EQ(r.utilization(0), 0.0);
}

TEST(SimReportUtil, EnergyTotals) {
  sim::EnergyBreakdown a;
  a.comb_pj = 1;
  a.reg_pj = 2;
  a.sram_pj = 3;
  a.dram_pj = 4;
  sim::EnergyBreakdown b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.total_pj(), 20.0);
  EXPECT_DOUBLE_EQ(b.on_chip_pj(), 12.0);
}

TEST(Logging, LevelFiltering) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  // Below-threshold messages must not be emitted (no observable side
  // effect beyond not crashing; this exercises the filter branch).
  log_debug("dropped ", 42);
  log_info("dropped too");
  log_warn("emitted ", 1);
  log_error("emitted ", 2);
  set_log_level(saved);
}

TEST(Logging, ComposesArguments) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Debug);
  log_debug("a=", 1, " b=", 2.5, " c=", "str");
  set_log_level(saved);
}

}  // namespace
}  // namespace sparsetrain
