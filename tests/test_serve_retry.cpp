// Resilient client: exponential backoff with decorrelated jitter (bounds
// and growth), deadline enforcement, and the headline robustness claim —
// a daemon restart mid-burst loses zero requests, over AF_UNIX and TCP,
// because retries reconnect and evaluations are idempotent.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/require.hpp"

namespace sparsetrain {
namespace {

namespace fs = std::filesystem;

using serve::Client;
using serve::ClientOptions;
using serve::Endpoint;
using serve::Listener;
using serve::Request;
using serve::Response;
using serve::Server;
using serve::ServerOptions;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "sparsetrain_" + name;
  fs::remove_all(dir);
  return dir;
}

std::string fresh_socket(const std::string& name) {
  return ::testing::TempDir() + "sparsetrain_" + name + ".sock";
}

Request tiny_eval(const std::string& id) {
  Request r;
  r.type = "eval";
  r.id = id;
  r.workload = "tiny";
  return r;
}

TEST(ClientRetry, BackoffSleepsStayWithinBoundsAndGrow) {
  // Nobody listens here: every attempt fails, every retry sleeps.
  const std::string nowhere = fresh_socket("nobody");
  ClientOptions opts;
  opts.retries = 6;
  opts.backoff_base_ms = 20;
  opts.backoff_cap_ms = 300;
  std::vector<long> sleeps;
  opts.sleeper = [&sleeps](long ms) { sleeps.push_back(ms); };

  Client client(nowhere, opts);  // retries > 0: lazy, does not throw yet
  EXPECT_THROW(client.request_raw("{\"type\":\"status\"}"), ContractError);
  ASSERT_EQ(sleeps.size(), 6u);  // one sleep per retry
  long prev = opts.backoff_base_ms;
  for (const long s : sleeps) {
    EXPECT_GE(s, opts.backoff_base_ms);
    EXPECT_LE(s, opts.backoff_cap_ms);
    // Decorrelated jitter: each draw is from [base, 3 * previous].
    EXPECT_LE(s, std::max(opts.backoff_base_ms + 1, 3 * prev));
    prev = s;
  }
  EXPECT_EQ(client.retry_stats().retries, 6u);
  EXPECT_EQ(client.retry_stats().connects, 0u);
}

TEST(ClientRetry, BackoffIsDeterministicPerSeed) {
  const std::string nowhere = fresh_socket("nobody2");
  auto capture = [&](std::uint64_t seed) {
    ClientOptions opts;
    opts.retries = 5;
    opts.backoff_seed = seed;
    std::vector<long> sleeps;
    opts.sleeper = [&sleeps](long ms) { sleeps.push_back(ms); };
    Client client(nowhere, opts);
    EXPECT_THROW(client.request_raw("{\"type\":\"status\"}"),
                 ContractError);
    return sleeps;
  };
  EXPECT_EQ(capture(7), capture(7));
  EXPECT_NE(capture(7), capture(8));
}

TEST(ClientRetry, DeadlineBoundsTheWholeExchange) {
  const std::string nowhere = fresh_socket("nobody3");
  ClientOptions opts;
  opts.retries = 1000;  // the deadline must cut this short
  opts.backoff_base_ms = 30;
  opts.backoff_cap_ms = 60;
  opts.deadline_ms = 250;
  Client client(nowhere, opts);
  const auto start = std::chrono::steady_clock::now();
  try {
    client.request_raw("{\"type\":\"status\"}");
    FAIL() << "an unreachable endpoint must throw";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 5000);  // gave up, did not grind 1000 retries
}

/// The headline scenario: a burst of requests with the daemon restarted
/// in the middle. With retries on, every request eventually succeeds —
/// the client reconnects, and evaluation idempotency (store + coalescing
/// keyed by fingerprint) makes the repeat safe.
void restart_mid_burst(const std::string& spec) {
  const std::string store_dir = fresh_dir("retry_store");

  ServerOptions sopts;
  sopts.store_dir = store_dir;

  Server daemon_a(sopts);
  Listener listener_a = Listener::listen(spec);
  const Endpoint bound = listener_a.endpoint();
  const std::string connect_spec =
      bound.kind == Endpoint::Kind::Tcp
          ? bound.host + ":" + std::to_string(bound.port)
          : bound.path;
  std::thread thread_a([&]() { daemon_a.serve_listener(listener_a); });

  ClientOptions copts;
  copts.retries = 30;
  copts.backoff_base_ms = 10;
  copts.backoff_cap_ms = 100;
  Client client(connect_spec, copts);

  std::vector<Response> responses;
  for (int i = 0; i < 3; ++i) {
    responses.push_back(client.submit(tiny_eval("a" + std::to_string(i))));
  }

  // Restart: daemon A drains and exits; daemon B comes up on the SAME
  // endpoint a beat later (SO_REUSEADDR makes the TCP rebind immediate).
  EXPECT_EQ(client.shutdown().type, "bye");
  thread_a.join();

  Server daemon_b(sopts);
  std::thread thread_b;
  std::thread delayed_start([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    Listener listener_b = Listener::listen(connect_spec);
    std::thread t([&daemon_b, lb = std::move(listener_b)]() mutable {
      daemon_b.serve_listener(lb);
    });
    thread_b.swap(t);
  });

  // The burst continues against a dead endpoint: these requests must ride
  // the backoff until B is up, then succeed. Zero requests lost.
  for (int i = 0; i < 3; ++i) {
    responses.push_back(client.submit(tiny_eval("b" + std::to_string(i))));
  }
  delayed_start.join();

  ASSERT_EQ(responses.size(), 6u);
  for (const Response& r : responses) {
    EXPECT_EQ(r.status, "ok") << r.error;
    EXPECT_EQ(r.fingerprint, responses.front().fingerprint);
  }
  // The client really did reconnect (daemon A's shutdown kicked it), and
  // daemon B served the repeat fingerprint from the shared store.
  EXPECT_GE(client.retry_stats().reconnects, 1u);
  bool any_from_store = false;
  for (std::size_t i = 3; i < responses.size(); ++i) {
    any_from_store = any_from_store || responses[i].source == "store";
  }
  EXPECT_TRUE(any_from_store);

  EXPECT_EQ(client.shutdown().type, "bye");
  thread_b.join();
  fs::remove_all(store_dir);
}

TEST(ClientRetry, DaemonRestartMidBurstLosesNothingUnix) {
  restart_mid_burst(fresh_socket("restart_unix"));
}

TEST(ClientRetry, DaemonRestartMidBurstLosesNothingTcp) {
  restart_mid_burst("127.0.0.1:0");
}

}  // namespace
}  // namespace sparsetrain
