// Build-host AVX2 probe for the SPARSETRAIN_SIMD=auto detection: exits 0
// when the machine configuring the build can execute AVX2 code. Compiled
// WITHOUT -mavx2 so the probe itself runs anywhere.
int main() { return __builtin_cpu_supports("avx2") ? 0 : 1; }
