// The evaluation daemon + its CLI client.
//
// Daemon (NDJSON over stdin/stdout, a unix socket, or TCP):
//   sparsetrain_serve --stdio --store serve_store
//   sparsetrain_serve --socket /tmp/sparsetrain.sock --store serve_store
//   sparsetrain_serve --listen 127.0.0.1:7117 --store serve_store
//
// Client (one request per invocation, response line on stdout):
//   sparsetrain_serve --connect /tmp/sparsetrain.sock \
//       --submit '{"type":"eval","id":"r1","workload":"AlexNet/CIFAR"}'
//   sparsetrain_serve --connect 127.0.0.1:7117 --stats --retries 5
//   sparsetrain_serve --connect /tmp/sparsetrain.sock --shutdown
//
// --connect takes the same endpoint spec as --listen: "host:port" is TCP,
// anything else a unix-socket path. --retries/--deadline-ms make the
// client ride out a daemon restart: failed exchanges are retried with
// exponential backoff and jitter, which is safe because evaluations are
// idempotent (the daemon coalesces by store fingerprint).
//
// The store directory is shared: every daemon (and every bench driver
// run with --store) pointing at the same directory reuses each other's
// evaluations.
#include <cstddef>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <csignal>
#endif

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"

namespace {

using sparsetrain::Args;

// SIGTERM/SIGINT ride the graceful drain path: the handler only flips
// the server's shutdown flag and kicks its listener (both async-signal-
// safe), then the serving loop drains in-flight evaluations and exits —
// the same path a "shutdown" request takes, so the store is never left
// mid-publication.
sparsetrain::serve::Server* g_server = nullptr;

#ifndef _WIN32
extern "C" void handle_terminate_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_terminate_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads fail with EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}
#else
void install_signal_handlers() {}
#endif

const std::vector<Args::Flag> kFlags = {
    // daemon mode
    {"stdio", "serve NDJSON over stdin/stdout (default mode)", false},
    {"socket", "serve on this unix-socket path", true},
    {"listen",
     "serve on this endpoint (host:port for TCP, else a unix-socket path)",
     true},
    {"store", "persistent result-store directory", true},
    {"max-store-bytes", "store size cap (0 = unbounded)", true},
    {"workers", "simulation threads (0 = hardware concurrency)", true},
    {"request-workers", "concurrent request handlers", true},
    {"max-queue", "max in-flight evaluations before rejecting", true},
    {"max-connections",
     "socket serving: connections beyond this are refused (0 = unlimited)",
     true},
    {"idle-timeout-ms",
     "socket serving: close connections idle this long (0 = never)", true},
    {"timeout-ms", "default per-request timeout (0 = none)", true},
    {"seed", "session base seed", true},
    {"batch", "session default batch size", true},
    // observability
    {"trace", "append sampled request spans to this JSONL file", true},
    {"trace-sample-rate",
     "fraction of daemon-edge traces sampled (propagated traces always "
     "record)",
     true},
    {"trace-seed", "trace-id / sampling seed (determinism)", true},
    {"profile-engine",
     "record per-stage exact-engine profiles into the metrics registry",
     false},
    // client mode
    {"connect",
     "act as a client of the daemon at this endpoint (host:port or path)",
     true},
    {"submit",
     "client: send this request (a JSON line, or a bare workload name)",
     true},
    {"stats", "client: request the store/cache stats report", false},
    {"status", "client: request the liveness counters", false},
    {"metrics", "client: request the metrics registry snapshot", false},
    {"metrics-format",
     "client: metrics snapshot format, json (default) or prometheus", true},
    {"shutdown", "client: ask the daemon to drain and exit", false},
    {"retries", "client: retry failed exchanges this many times", true},
    {"deadline-ms",
     "client: overall per-request budget incl. retries (0 = none)", true},
    {"connect-timeout-ms",
     "client: per-attempt TCP/unix connect budget (0 = blocking)", true},
};

int run_client(const Args& args) {
  sparsetrain::serve::ClientOptions copts;
  copts.retries = static_cast<int>(args.get("retries", 0L));
  copts.deadline_ms = args.get("deadline-ms", 0L);
  copts.connect_timeout_ms = args.get("connect-timeout-ms", 0L);
  sparsetrain::serve::Client client(args.get("connect", std::string{}),
                                    copts);
  bool did = false;
  if (args.has("submit")) {
    std::string line = args.get("submit", std::string{});
    if (line.empty() || line[0] != '{') {
      // Bare workload name → a default eval request for it.
      sparsetrain::serve::Request req;
      req.type = "eval";
      req.workload = line;
      line = sparsetrain::serve::format_request(req);
    }
    std::cout << client.request_raw(line) << '\n';
    did = true;
  }
  if (args.has("stats")) {
    std::cout << client.request_raw("{\"type\":\"stats\"}") << '\n';
    did = true;
  }
  if (args.has("status")) {
    std::cout << client.request_raw("{\"type\":\"status\"}") << '\n';
    did = true;
  }
  if (args.has("metrics")) {
    sparsetrain::serve::Request req;
    req.type = "metrics";
    req.format = args.get("metrics-format", std::string{"json"});
    std::cout << client.request_raw(sparsetrain::serve::format_request(req))
              << '\n';
    did = true;
  }
  if (args.has("shutdown")) {
    std::cout << client.request_raw("{\"type\":\"shutdown\"}") << '\n';
    did = true;
  }
  if (!did) {
    std::cerr << "sparsetrain_serve: --connect needs one of --submit/"
                 "--stats/--status/--metrics/--shutdown\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv, kFlags);
    if (args.help_requested()) {
      std::cout << args.usage("sparsetrain_serve");
      return 0;
    }
    if (args.has("connect")) return run_client(args);

    sparsetrain::serve::ServerOptions opts;
    opts.store_dir = args.get("store", std::string{});
    opts.store_max_bytes = static_cast<std::uint64_t>(
        args.get("max-store-bytes", 0L));
    opts.session.workers =
        static_cast<std::size_t>(args.get("workers", 0L));
    opts.session.seed = static_cast<std::uint64_t>(args.get("seed", 1L));
    opts.session.batch =
        static_cast<std::size_t>(args.get("batch", 1L));
    opts.request_workers =
        static_cast<std::size_t>(args.get("request-workers", 2L));
    opts.max_queue = static_cast<std::size_t>(args.get("max-queue", 64L));
    opts.max_connections =
        static_cast<std::size_t>(args.get("max-connections", 64L));
    opts.idle_timeout_ms = args.get("idle-timeout-ms", 0L);
    opts.default_timeout_ms = args.get("timeout-ms", 0L);
    opts.trace_path = args.get("trace", std::string{});
    opts.trace_sample_rate = args.get("trace-sample-rate", 1.0);
    opts.trace_seed =
        static_cast<std::uint64_t>(args.get("trace-seed", 1L));
    opts.profile_engine = args.has("profile-engine");

    sparsetrain::serve::Server server(opts);
    g_server = &server;
    install_signal_handlers();
    int rc = 0;
    if (args.has("listen")) {
      rc = server.serve_endpoint(args.get("listen", std::string{}));
    } else if (args.has("socket")) {
      rc = server.serve_unix_socket(args.get("socket", std::string{}));
    } else {
      server.serve(std::cin, std::cout);
    }
    g_server = nullptr;
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "sparsetrain_serve: " << e.what() << '\n';
    return 1;
  }
}
