// The shard-router daemon: fronts a pool of sparsetrain_serve daemons
// with consistent-hash placement, circuit-breaker failover, and
// best-effort replication (see src/serve/router.hpp).
//
//   sparsetrain_route --listen 127.0.0.1:7100 \
//       --shards 127.0.0.1:7117,127.0.0.1:7118,127.0.0.1:7119 \
//       --replicas 1 --probe-interval-ms 500
//
// Clients speak the exact sparsetrain_serve NDJSON protocol to the
// router's endpoint; "stats" answers the router_stats/v1 payload
// (per-shard health and forward/failover/replication counters) and
// "shutdown" stops the router only — the shards keep running.
// SIGTERM/SIGINT drain the same way and print the final status line to
// stderr.
#include <cstddef>
#include <iostream>
#include <string>

#ifndef _WIN32
#include <csignal>
#endif

#include "serve/router.hpp"
#include "util/args.hpp"

namespace {

using sparsetrain::Args;

const std::vector<Args::Flag> kFlags = {
    {"listen",
     "serve on this endpoint (host:port for TCP, else a unix-socket path)",
     true},
    {"shards",
     "comma-separated backend endpoints (the pool; order-insensitive)",
     true},
    {"replicas",
     "successor shards each ok evaluation is replicated to", true},
    {"vnodes", "ring points per shard (placement smoothness)", true},
    {"breaker-threshold",
     "consecutive transport failures that mark a shard down", true},
    {"breaker-cooldown-ms",
     "how long a down shard is skipped before a half-open probe", true},
    {"forward-deadline-ms",
     "per-shard forward budget incl. the response wait", true},
    {"connect-timeout-ms", "per-attempt connect budget to a shard", true},
    {"probe-interval-ms",
     "background health-probe period for down shards (0 = off)", true},
    {"probe-deadline-ms", "per-probe budget", true},
    {"max-connections",
     "connections beyond this are refused (0 = unlimited)", true},
    {"idle-timeout-ms",
     "close client connections idle this long (0 = never)", true},
    {"trace", "append sampled request spans to this JSONL file", true},
    {"trace-sample-rate",
     "fraction of router-edge traces sampled (propagated traces always "
     "record)",
     true},
    {"trace-seed", "trace-id / sampling seed (determinism)", true},
};

sparsetrain::serve::Router* g_router = nullptr;

#ifndef _WIN32
extern "C" void handle_terminate_signal(int) {
  if (g_router != nullptr) g_router->request_shutdown();
}

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_terminate_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked accepts fail with EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}
#else
void install_signal_handlers() {}
#endif

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv, kFlags);
    if (args.help_requested()) {
      std::cout << args.usage("sparsetrain_route");
      return 0;
    }
    const std::string listen = args.get("listen", std::string{});
    const std::string shards = args.get("shards", std::string{});
    if (listen.empty() || shards.empty()) {
      std::cerr << "sparsetrain_route: --listen and --shards are required\n";
      return 1;
    }

    sparsetrain::serve::RouterOptions opts;
    opts.endpoints = sparsetrain::serve::split_endpoints(shards);
    opts.replicas = static_cast<std::size_t>(args.get("replicas", 1L));
    opts.ring.vnodes =
        static_cast<std::size_t>(args.get("vnodes", 64L));
    opts.breaker_threshold =
        static_cast<int>(args.get("breaker-threshold", 3L));
    opts.breaker_cooldown_ms = args.get("breaker-cooldown-ms", 1000L);
    opts.client.deadline_ms = args.get("forward-deadline-ms", 5000L);
    opts.client.connect_timeout_ms = args.get("connect-timeout-ms", 500L);
    opts.probe_interval_ms = args.get("probe-interval-ms", 500L);
    opts.probe_deadline_ms = args.get("probe-deadline-ms", 250L);
    opts.max_connections =
        static_cast<std::size_t>(args.get("max-connections", 64L));
    opts.idle_timeout_ms = args.get("idle-timeout-ms", 0L);
    opts.trace_path = args.get("trace", std::string{});
    opts.trace_sample_rate = args.get("trace-sample-rate", 1.0);
    opts.trace_seed =
        static_cast<std::uint64_t>(args.get("trace-seed", 1L));

    sparsetrain::serve::Router router(opts);
    g_router = &router;
    install_signal_handlers();
    const int rc = router.serve_endpoint(listen);
    g_router = nullptr;
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "sparsetrain_route: " << e.what() << '\n';
    return 1;
  }
}
