// Whole-stage reference computations built purely from the 1-D row ops.
//
// These functions compute the Forward / GTA / GTW results of a conv layer
// by disassembling the 2-D convolutions into SRC / MSRC / OSRC row ops —
// the paper's Fig. 6 decomposition — and are tested for bit-level
// equivalence against the dense nn::Conv2D implementation. The cycle
// simulator schedules exactly these row ops, so this module is the bridge
// between functional correctness and performance modelling.
#pragma once

#include <optional>

#include "dataflow/row_ops.hpp"
#include "tensor/tensor.hpp"
#include "workload/layer_config.hpp"

namespace sparsetrain::dataflow {

/// Conv geometry needed by the decomposition (a subset of Conv2DConfig,
/// kept separate so this module does not depend on the nn layer classes).
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 1;
};

/// Geometry of a workload layer — the one place the field-by-field
/// conversion lives (exact engine, drivers and tests all use it).
ConvGeometry layer_geometry(const workload::LayerConfig& l);

/// Output spatial shape of the conv.
Shape conv_output_shape(const ConvGeometry& geo, const Shape& input);

/// Forward stage via SRC ops. `weights` is {F,C,K,K}; `bias` optional
/// length-F tensor.
Tensor forward_by_rows(const Tensor& input, const Tensor& weights,
                       const Tensor* bias, const ConvGeometry& geo);

/// GTA stage via MSRC ops: dI = Σ_f dO_f ∗ rot180(W_f,c). When
/// `prev_mask` (same shape as the conv input) is given, positions it
/// disallows are skipped — they would be zeroed by the preceding layer's
/// ReLU anyway. Pass nullptr to compute all positions.
Tensor gta_by_rows(const Tensor& grad_output, const Tensor& weights,
                   const Shape& input_shape, const Tensor* prev_mask,
                   const ConvGeometry& geo);

/// GTW stage via OSRC ops: dW[f,c] = dO_f ★ I_c (+ db accumulation).
/// Returns dW shaped {F,C,K,K}; if `dbias` is non-null it receives the
/// per-filter gradient sums.
Tensor gtw_by_rows(const Tensor& grad_output, const Tensor& input,
                   Tensor* dbias, const ConvGeometry& geo);

/// Aggregate row-op work of a full layer stage (used by tests to validate
/// the simulator's closed-form counts).
struct StageWork {
  std::size_t row_ops = 0;
  RowOpWork work;
};

StageWork forward_work(const Tensor& input, const ConvGeometry& geo);
StageWork gta_work(const Tensor& grad_output, const Shape& input_shape,
                   const Tensor* prev_mask, const ConvGeometry& geo);
StageWork gtw_work(const Tensor& grad_output, const Tensor& input,
                   const ConvGeometry& geo);

}  // namespace sparsetrain::dataflow
