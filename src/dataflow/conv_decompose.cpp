#include "dataflow/conv_decompose.hpp"

#include "util/require.hpp"

namespace sparsetrain::dataflow {

namespace {

RowGeometry row_geo(const ConvGeometry& geo) {
  RowGeometry rg;
  rg.kernel = static_cast<std::uint32_t>(geo.kernel);
  rg.stride = static_cast<std::uint32_t>(geo.stride);
  rg.padding = static_cast<std::uint32_t>(geo.padding);
  return rg;
}

/// Input row index iy = oy·S + ky − P, or false when it lies in padding.
bool input_row_index(std::size_t oy, std::size_t ky, const ConvGeometry& geo,
                     std::size_t in_h, std::size_t& iy) {
  const std::int64_t v = static_cast<std::int64_t>(oy * geo.stride + ky) -
                         static_cast<std::int64_t>(geo.padding);
  if (v < 0 || v >= static_cast<std::int64_t>(in_h)) return false;
  iy = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

ConvGeometry layer_geometry(const workload::LayerConfig& l) {
  ConvGeometry geo;
  geo.in_channels = l.in_channels;
  geo.out_channels = l.out_channels;
  geo.kernel = l.kernel;
  geo.stride = l.stride;
  geo.padding = l.padding;
  return geo;
}

Shape conv_output_shape(const ConvGeometry& geo, const Shape& input) {
  ST_REQUIRE(input.c == geo.in_channels, "decompose: channel mismatch");
  ST_REQUIRE(input.h + 2 * geo.padding >= geo.kernel &&
                 input.w + 2 * geo.padding >= geo.kernel,
             "decompose: input smaller than kernel");
  return Shape{input.n, geo.out_channels,
               (input.h + 2 * geo.padding - geo.kernel) / geo.stride + 1,
               (input.w + 2 * geo.padding - geo.kernel) / geo.stride + 1};
}

Tensor forward_by_rows(const Tensor& input, const Tensor& weights,
                       const Tensor* bias, const ConvGeometry& geo) {
  const Shape out_shape = conv_output_shape(geo, input.shape());
  ST_REQUIRE(weights.shape() ==
                 (Shape{geo.out_channels, geo.in_channels, geo.kernel,
                        geo.kernel}),
             "decompose: weight shape mismatch");
  Tensor output(out_shape);
  const RowGeometry rg = row_geo(geo);

  for (std::size_t n = 0; n < input.shape().n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        auto out_row = output.row(n, f, oy);
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input.shape().h, iy)) continue;
            const SparseRow in_row = compress_row(input.row(n, c, iy));
            src_row_conv(in_row, weights.row(f, c, ky), rg, out_row);
          }
        }
        if (bias != nullptr) {
          const float b = (*bias)[f];
          for (float& x : out_row) x += b;
        }
      }
    }
  }
  return output;
}

Tensor gta_by_rows(const Tensor& grad_output, const Tensor& weights,
                   const Shape& input_shape, const Tensor* prev_mask,
                   const ConvGeometry& geo) {
  ST_REQUIRE(grad_output.shape().c == geo.out_channels,
             "decompose: dO channel mismatch");
  if (prev_mask != nullptr)
    ST_REQUIRE(prev_mask->shape() == input_shape,
               "decompose: mask shape must match input shape");
  Tensor grad_in(input_shape);
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();

  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      for (std::size_t f = 0; f < geo.out_channels; ++f) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          const SparseRow go_row = compress_row(grad_output.row(n, f, oy));
          if (go_row.empty()) continue;
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input_shape.h, iy)) continue;
            auto gi_row = grad_in.row(n, c, iy);
            MaskRow mask;
            if (prev_mask != nullptr) {
              mask = mask_from_dense(prev_mask->row(n, c, iy));
            } else {
              mask.length = static_cast<std::uint32_t>(gi_row.size());
              mask.offsets.resize(gi_row.size());
              for (std::uint32_t i = 0; i < gi_row.size(); ++i)
                mask.offsets[i] = i;
            }
            msrc_row_conv(go_row, weights.row(f, c, ky), mask, rg, gi_row);
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor gtw_by_rows(const Tensor& grad_output, const Tensor& input,
                   Tensor* dbias, const ConvGeometry& geo) {
  const Shape& out = grad_output.shape();
  const Shape& in = input.shape();
  Tensor dW(Shape{geo.out_channels, geo.in_channels, geo.kernel, geo.kernel});
  const RowGeometry rg = row_geo(geo);

  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        const SparseRow go_row = compress_row(grad_output.row(n, f, oy));
        if (dbias != nullptr)
          for (float v : go_row.values) (*dbias)[f] += v;
        if (go_row.empty()) continue;
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            const SparseRow in_row = compress_row(input.row(n, c, iy));
            osrc_row_conv(in_row, go_row, rg, dW.row(f, c, ky));
          }
        }
      }
    }
  }
  return dW;
}

StageWork forward_work(const Tensor& input, const ConvGeometry& geo) {
  const Shape out_shape = conv_output_shape(geo, input.shape());
  const RowGeometry rg = row_geo(geo);
  StageWork sw;
  for (std::size_t n = 0; n < input.shape().n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input.shape().h, iy)) continue;
            const SparseRow in_row = compress_row(input.row(n, c, iy));
            const RowOpWork w = src_work(in_row, rg, out_shape.w);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

StageWork gta_work(const Tensor& grad_output, const Shape& input_shape,
                   const Tensor* prev_mask, const ConvGeometry& geo) {
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();
  StageWork sw;
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      for (std::size_t f = 0; f < geo.out_channels; ++f) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          const SparseRow go_row = compress_row(grad_output.row(n, f, oy));
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input_shape.h, iy)) continue;
            MaskRow mask;
            if (prev_mask != nullptr) {
              mask = mask_from_dense(prev_mask->row(n, c, iy));
            } else {
              mask.length = static_cast<std::uint32_t>(input_shape.w);
              mask.offsets.resize(input_shape.w);
              for (std::uint32_t i = 0; i < input_shape.w; ++i)
                mask.offsets[i] = i;
            }
            const RowOpWork w = msrc_work(go_row, mask, rg, input_shape.w);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

StageWork gtw_work(const Tensor& grad_output, const Tensor& input,
                   const ConvGeometry& geo) {
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();
  StageWork sw;
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        const SparseRow go_row = compress_row(grad_output.row(n, f, oy));
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input.shape().h, iy)) continue;
            const SparseRow in_row = compress_row(input.row(n, c, iy));
            const RowOpWork w = osrc_work(in_row, go_row, rg);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

}  // namespace sparsetrain::dataflow
