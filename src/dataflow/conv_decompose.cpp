#include "dataflow/conv_decompose.hpp"

#include "tensor/compressed_rows.hpp"
#include "util/require.hpp"

namespace sparsetrain::dataflow {

namespace {

RowGeometry row_geo(const ConvGeometry& geo) {
  RowGeometry rg;
  rg.kernel = static_cast<std::uint32_t>(geo.kernel);
  rg.stride = static_cast<std::uint32_t>(geo.stride);
  rg.padding = static_cast<std::uint32_t>(geo.padding);
  return rg;
}

/// Input row index iy = oy·S + ky − P, or false when it lies in padding.
bool input_row_index(std::size_t oy, std::size_t ky, const ConvGeometry& geo,
                     std::size_t in_h, std::size_t& iy) {
  const std::int64_t v = static_cast<std::int64_t>(oy * geo.stride + ky) -
                         static_cast<std::int64_t>(geo.padding);
  if (v < 0 || v >= static_cast<std::int64_t>(in_h)) return false;
  iy = static_cast<std::size_t>(v);
  return true;
}

/// Flat CompressedRows index of tensor row (n, c, y).
std::size_t flat_row(const Shape& s, std::size_t n, std::size_t c,
                     std::size_t y) {
  return (n * s.c + c) * s.h + y;
}

/// Mask rows of one (n, c) image plane, built once and reused by every
/// (f, oy, ky) combination that scatters into the plane. All-pass when
/// `prev_mask` is null.
class PlaneMasks {
 public:
  PlaneMasks(const Tensor* prev_mask, const Shape& input_shape)
      : prev_mask_(prev_mask), h_(input_shape.h) {
    if (prev_mask_ == nullptr) {
      all_pass_.assign_all(static_cast<std::uint32_t>(input_shape.w));
    } else {
      rows_.resize(h_);
    }
  }

  /// Rebuilds for plane (n, c); no-op in the all-pass case.
  void load_plane(std::size_t n, std::size_t c) {
    if (prev_mask_ == nullptr) return;
    for (std::size_t iy = 0; iy < h_; ++iy)
      rows_[iy].assign_from_dense(prev_mask_->row(n, c, iy));
  }

  const BitMask& row(std::size_t iy) const {
    return prev_mask_ == nullptr ? all_pass_ : rows_[iy];
  }

 private:
  const Tensor* prev_mask_;
  std::size_t h_;
  BitMask all_pass_;
  std::vector<BitMask> rows_;
};

}  // namespace

ConvGeometry layer_geometry(const workload::LayerConfig& l) {
  ConvGeometry geo;
  geo.in_channels = l.in_channels;
  geo.out_channels = l.out_channels;
  geo.kernel = l.kernel;
  geo.stride = l.stride;
  geo.padding = l.padding;
  return geo;
}

Shape conv_output_shape(const ConvGeometry& geo, const Shape& input) {
  ST_REQUIRE(input.c == geo.in_channels, "decompose: channel mismatch");
  ST_REQUIRE(input.h + 2 * geo.padding >= geo.kernel &&
                 input.w + 2 * geo.padding >= geo.kernel,
             "decompose: input smaller than kernel");
  return Shape{input.n, geo.out_channels,
               (input.h + 2 * geo.padding - geo.kernel) / geo.stride + 1,
               (input.w + 2 * geo.padding - geo.kernel) / geo.stride + 1};
}

Tensor forward_by_rows(const Tensor& input, const Tensor& weights,
                       const Tensor* bias, const ConvGeometry& geo) {
  const Shape out_shape = conv_output_shape(geo, input.shape());
  ST_REQUIRE(weights.shape() ==
                 (Shape{geo.out_channels, geo.in_channels, geo.kernel,
                        geo.kernel}),
             "decompose: weight shape mismatch");
  Tensor output(out_shape);
  const RowGeometry rg = row_geo(geo);
  const CompressedRows in_rows = compress_tensor(input);
  const Shape& in = input.shape();

  for (std::size_t n = 0; n < in.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        auto out_row = output.row(n, f, oy);
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            src_row_conv(in_rows.row(flat_row(in, n, c, iy)),
                         weights.row(f, c, ky), rg, out_row);
          }
        }
        if (bias != nullptr) {
          const float b = (*bias)[f];
          for (float& x : out_row) x += b;
        }
      }
    }
  }
  return output;
}

Tensor gta_by_rows(const Tensor& grad_output, const Tensor& weights,
                   const Shape& input_shape, const Tensor* prev_mask,
                   const ConvGeometry& geo) {
  ST_REQUIRE(grad_output.shape().c == geo.out_channels,
             "decompose: dO channel mismatch");
  if (prev_mask != nullptr)
    ST_REQUIRE(prev_mask->shape() == input_shape,
               "decompose: mask shape must match input shape");
  Tensor grad_in(input_shape);
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();
  const CompressedRows go_rows = compress_tensor(grad_output);
  PlaneMasks masks(prev_mask, input_shape);

  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      masks.load_plane(n, c);
      for (std::size_t f = 0; f < geo.out_channels; ++f) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          const SparseRowView go_row = go_rows.row(flat_row(out, n, f, oy));
          if (go_row.empty()) continue;
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input_shape.h, iy)) continue;
            msrc_row_conv(go_row, weights.row(f, c, ky), masks.row(iy), rg,
                          grad_in.row(n, c, iy));
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor gtw_by_rows(const Tensor& grad_output, const Tensor& input,
                   Tensor* dbias, const ConvGeometry& geo) {
  const Shape& out = grad_output.shape();
  const Shape& in = input.shape();
  Tensor dW(Shape{geo.out_channels, geo.in_channels, geo.kernel, geo.kernel});
  const RowGeometry rg = row_geo(geo);
  const CompressedRows go_rows = compress_tensor(grad_output);
  const CompressedRows in_rows = compress_tensor(input);

  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        const SparseRowView go_row = go_rows.row(flat_row(out, n, f, oy));
        if (dbias != nullptr)
          for (const float v : go_row.values) (*dbias)[f] += v;
        if (go_row.empty()) continue;
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            osrc_row_conv(in_rows.row(flat_row(in, n, c, iy)), go_row, rg,
                          dW.row(f, c, ky));
          }
        }
      }
    }
  }
  return dW;
}

StageWork forward_work(const Tensor& input, const ConvGeometry& geo) {
  const Shape out_shape = conv_output_shape(geo, input.shape());
  const RowGeometry rg = row_geo(geo);
  const CompressedRows in_rows = compress_tensor(input);
  const Shape& in = input.shape();
  StageWork sw;
  for (std::size_t n = 0; n < in.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            const RowOpWork w = src_work(in_rows.row(flat_row(in, n, c, iy)),
                                         rg, out_shape.w);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

StageWork gta_work(const Tensor& grad_output, const Shape& input_shape,
                   const Tensor* prev_mask, const ConvGeometry& geo) {
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();
  const CompressedRows go_rows = compress_tensor(grad_output);
  PlaneMasks masks(prev_mask, input_shape);
  StageWork sw;
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      masks.load_plane(n, c);
      for (std::size_t f = 0; f < geo.out_channels; ++f) {
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          const SparseRowView go_row = go_rows.row(flat_row(out, n, f, oy));
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input_shape.h, iy)) continue;
            const RowOpWork w =
                msrc_work(go_row, masks.row(iy), rg, input_shape.w);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

StageWork gtw_work(const Tensor& grad_output, const Tensor& input,
                   const ConvGeometry& geo) {
  const RowGeometry rg = row_geo(geo);
  const Shape& out = grad_output.shape();
  const Shape& in = input.shape();
  const CompressedRows go_rows = compress_tensor(grad_output);
  const CompressedRows in_rows = compress_tensor(input);
  StageWork sw;
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out.h; ++oy) {
        const SparseRowView go_row = go_rows.row(flat_row(out, n, f, oy));
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            const RowOpWork w =
                osrc_work(in_rows.row(flat_row(in, n, c, iy)), go_row, rg);
            ++sw.row_ops;
            sw.work.macs += w.macs;
            sw.work.active_inputs += w.active_inputs;
            sw.work.skipped_inputs += w.skipped_inputs;
          }
        }
      }
    }
  }
  return sw;
}

}  // namespace sparsetrain::dataflow
