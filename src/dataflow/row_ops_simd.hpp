// AVX2 register-blocked implementations of the row-op work counters.
//
// Only included by row_ops.hpp when the build enables the SIMD path
// (SPARSETRAIN_SIMD_ENABLED from CMake AND __AVX2__ from the compiler);
// the flags are a whole-build PUBLIC property of the library target, so
// every TU sees the same definitions and there is no ODR split between
// SIMD and scalar translation units.
//
// Contract: every kernel here returns bit-for-bit the same counts as its
// scalar sibling in row_ops.hpp. The counters are pure integer
// arithmetic, so "equivalent" is exact equality, asserted per build by
// tests/test_row_ops_simd.cpp and across builds by the CI diff of
// bench_exact_throughput's simulated fields.
//
// Blocking layout (the gemm register-blocking idiom applied to CSR
// sweeps): each kernel streams the contiguous offsets arena in vector
// registers — 8 lanes of window-clamp arithmetic for stride-1 SRC,
// 4 × 64-bit gathered mask words + in-register popcount for MSRC
// windows, 8-lane compare/popcount pointer advances for the OSRC
// sweep — and keeps the MAC/active accumulators in ymm registers until
// the row is done, touching the scalar RowOpWork exactly once per row.
#pragma once

#include <cstdint>
#include <immintrin.h>

namespace sparsetrain::dataflow::detail {

/// Horizontal sum of 4 × 64-bit lanes.
inline std::uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// Per-lane popcount of 4 × 64-bit words (nibble-LUT + SAD — AVX2 has
/// no vpopcntq; this is the standard Mula construction).
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Stride-1 SRC work: 8 offsets per step. Lane math is the scalar
/// clamp body (khi = min(kmax, base), klo = max(0, base − base_min),
/// taps = max(0, khi − klo + 1)) verbatim; taps widen into two 4 × 64
/// accumulators so no row length can overflow a lane.
/// Caller guarantees base = offset + padding fits in int32.
inline void src_work_s1_avx2(const std::uint32_t* offsets, std::size_t nnz,
                             std::int32_t padding, std::int32_t kmax,
                             std::int32_t base_min, std::size_t& macs,
                             std::size_t& active) {
  const __m256i vp = _mm256_set1_epi32(padding);
  const __m256i vkmax = _mm256_set1_epi32(kmax);
  const __m256i vbmin = _mm256_set1_epi32(base_min);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  __m256i macs_acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    const __m256i off = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + i));
    const __m256i base = _mm256_add_epi32(off, vp);
    const __m256i khi = _mm256_min_epi32(vkmax, base);
    const __m256i klo = _mm256_max_epi32(vzero, _mm256_sub_epi32(base, vbmin));
    const __m256i taps = _mm256_max_epi32(
        vzero, _mm256_add_epi32(_mm256_sub_epi32(khi, klo), vone));
    macs_acc = _mm256_add_epi64(
        macs_acc,
        _mm256_add_epi64(
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(taps)),
            _mm256_cvtepu32_epi64(_mm256_extracti128_si256(taps, 1))));
    const int live = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(taps, vzero)));
    active += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(live)));
  }
  macs += hsum_epi64(macs_acc);
  for (; i < nnz; ++i) {
    const std::int32_t base = static_cast<std::int32_t>(offsets[i]) + padding;
    const std::int32_t khi = kmax < base ? kmax : base;
    const std::int32_t klo = base - base_min > 0 ? base - base_min : 0;
    const std::int32_t taps = khi - klo + 1 > 0 ? khi - klo + 1 : 0;
    macs += static_cast<std::size_t>(taps);
    active += taps > 0 ? 1 : 0;
  }
}

/// MSRC window work: 4 windows per step. Per lane: win = [off·S − P,
/// off·S − P + K) clamped to [0, out_len); the surviving-position count
/// is a popcount of the ≤ 2 mask words straddled by the window, funnel-
/// shifted into one register word. `words` must carry the BitMask guard
/// words (word_data()), so the w + 1 gather is in-bounds even when a
/// fully clamped window starts at out_len. Caller guarantees
/// kernel ≤ 64 and off·S + K fits in int32.
inline void msrc_work_avx2(const std::uint32_t* offsets, std::size_t nnz,
                           std::int32_t stride, std::int32_t padding,
                           std::int32_t kernel, std::int32_t out_len,
                           const std::uint64_t* words, std::size_t& macs,
                           std::size_t& skipped) {
  const __m128i vs = _mm_set1_epi32(stride);
  const __m128i vp = _mm_set1_epi32(padding);
  const __m128i vk = _mm_set1_epi32(kernel);
  const __m128i vout = _mm_set1_epi32(out_len);
  const __m128i vz32 = _mm_setzero_si128();
  const __m128i v63 = _mm_set1_epi32(63);
  const __m128i vone32 = _mm_set1_epi32(1);
  const __m256i vz64 = _mm256_setzero_si256();
  const __m256i vall = _mm256_set1_epi64x(-1);
  const __m256i v64_64 = _mm256_set1_epi64x(64);
  const __m256i v63_64 = _mm256_set1_epi64x(63);
  const long long* base =
      reinterpret_cast<const long long*>(words);
  __m256i macs_acc = _mm256_setzero_si256();
  __m256i skip_acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nnz; i += 4) {
    const __m128i off = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(offsets + i));
    const __m128i wl = _mm_sub_epi32(_mm_mullo_epi32(off, vs), vp);
    const __m128i lo = _mm_min_epi32(_mm_max_epi32(wl, vz32), vout);
    const __m128i hi = _mm_min_epi32(
        _mm_max_epi32(_mm_add_epi32(wl, vk), vz32), vout);
    const __m128i len32 = _mm_sub_epi32(hi, lo);  // 0 ≤ len ≤ kernel ≤ 64
    const __m128i w0idx = _mm_srli_epi32(lo, 6);
    const __m256i w0 = _mm256_i32gather_epi64(base, w0idx, 8);
    const __m256i w1 =
        _mm256_i32gather_epi64(base, _mm_add_epi32(w0idx, vone32), 8);
    const __m256i s = _mm256_cvtepi32_epi64(_mm_and_si128(lo, v63));
    // span = window bits of [w0, w1] aligned to bit 0; the double shift
    // on w1 keeps the s == 0 lane defined (both counts ≤ 63).
    const __m256i span = _mm256_or_si256(
        _mm256_srlv_epi64(w0, s),
        _mm256_sllv_epi64(_mm256_slli_epi64(w1, 1),
                          _mm256_sub_epi64(v63_64, s)));
    // keep = len low bits; AVX2 variable shifts ≥ 64 yield 0, which is
    // exactly the len == 0 (fully clamped window) case.
    const __m256i keep = _mm256_srlv_epi64(
        vall, _mm256_sub_epi64(v64_64, _mm256_cvtepi32_epi64(len32)));
    const __m256i cnt = popcount_epi64(_mm256_and_si256(span, keep));
    macs_acc = _mm256_add_epi64(macs_acc, cnt);
    // cmpeq lanes are −1 where the window died: subtracting counts them.
    skip_acc = _mm256_sub_epi64(skip_acc, _mm256_cmpeq_epi64(cnt, vz64));
  }
  macs += hsum_epi64(macs_acc);
  skipped += hsum_epi64(skip_acc);
  for (; i < nnz; ++i) {
    const std::int32_t wl =
        static_cast<std::int32_t>(offsets[i]) * stride - padding;
    std::int32_t lo = wl < 0 ? 0 : wl;
    if (lo > out_len) lo = out_len;
    std::int32_t hi = wl + kernel;
    if (hi < 0) hi = 0;
    if (hi > out_len) hi = out_len;
    const std::int32_t len = hi - lo;
    std::size_t cnt = 0;
    if (len > 0) {
      const std::size_t w = static_cast<std::uint32_t>(lo) >> 6;
      const std::uint32_t sh = static_cast<std::uint32_t>(lo) & 63;
      const std::uint64_t span =
          (words[w] >> sh) | ((words[w + 1] << 1) << (63 - sh));
      const std::uint64_t keep =
          ~std::uint64_t{0} >> (64 - static_cast<std::uint32_t>(len));
      cnt = static_cast<std::size_t>(std::popcount(span & keep));
    }
    macs += cnt;
    skipped += cnt == 0 ? 1 : 0;
  }
}

/// First index ≥ i whose offset is not below `bound` (offsets ascending,
/// all < 2^31 — guaranteed by the caller). The compare mask of a sorted
/// block is a prefix, so its popcount IS the advance distance: the OSRC
/// sweep's two while-loops become one compare + popcount per 8 offsets.
inline std::size_t advance_lt_avx2(const std::uint32_t* offsets,
                                   std::size_t n, std::size_t i,
                                   std::int32_t bound) {
  const __m256i vb = _mm256_set1_epi32(bound);
  while (i + 8 <= n) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(offsets + i));
    const int below = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vb, v)));
    i += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(below)));
    if (below != 0xff) return i;
  }
  while (i < n && static_cast<std::int32_t>(offsets[i]) < bound) ++i;
  return i;
}

}  // namespace sparsetrain::dataflow::detail
