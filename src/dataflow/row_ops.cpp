#include "dataflow/row_ops.hpp"

#include <algorithm>
#include <cstdint>

#include "util/require.hpp"

namespace sparsetrain::dataflow {

namespace {

/// True when the (input position, kernel tap) pair maps to a valid output
/// index for the gather-style SRC mapping; writes it to `ox`.
bool src_output_index(std::uint32_t in_pos, std::uint32_t k,
                      const RowGeometry& geo, std::size_t out_len,
                      std::size_t& ox) {
  // ox·S + k − P = in_pos  →  ox = (in_pos + P − k) / S
  const std::int64_t num = static_cast<std::int64_t>(in_pos) +
                           static_cast<std::int64_t>(geo.padding) -
                           static_cast<std::int64_t>(k);
  if (num < 0) return false;
  if (num % geo.stride != 0) return false;
  const auto candidate = static_cast<std::size_t>(num / geo.stride);
  if (candidate >= out_len) return false;
  ox = candidate;
  return true;
}

/// Output index of the scatter-style MSRC mapping (GTA direction).
bool msrc_output_index(std::uint32_t in_pos, std::uint32_t k,
                       const RowGeometry& geo, std::size_t out_len,
                       std::size_t& ix) {
  // ix = in_pos·S + k − P
  const std::int64_t idx = static_cast<std::int64_t>(in_pos) *
                               static_cast<std::int64_t>(geo.stride) +
                           static_cast<std::int64_t>(k) -
                           static_cast<std::int64_t>(geo.padding);
  if (idx < 0 || idx >= static_cast<std::int64_t>(out_len)) return false;
  ix = static_cast<std::size_t>(idx);
  return true;
}

}  // namespace

void src_row_conv(SparseRowView input, std::span<const float> kernel,
                  const RowGeometry& geo, std::span<float> out) {
  ST_REQUIRE(kernel.size() == geo.kernel, "SRC kernel length != K");
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::uint32_t pos = input.offsets[i];
    const float v = input.values[i];
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ox;
      if (src_output_index(pos, k, geo, out.size(), ox))
        out[ox] += v * kernel[k];
    }
  }
}

void msrc_row_conv(SparseRowView input, std::span<const float> kernel,
                   const BitMask& mask, const RowGeometry& geo,
                   std::span<float> out) {
  ST_REQUIRE(kernel.size() == geo.kernel, "MSRC kernel length != K");
  ST_REQUIRE(mask.length() == out.size(), "MSRC mask length != output length");
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::uint32_t pos = input.offsets[i];
    const float v = input.values[i];
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ix;
      if (!msrc_output_index(pos, k, geo, out.size(), ix)) continue;
      if (!mask.allows(static_cast<std::uint32_t>(ix))) continue;
      out[ix] += v * kernel[k];
    }
  }
}

void msrc_row_conv(SparseRowView input, std::span<const float> kernel,
                   const MaskRow& mask, const RowGeometry& geo,
                   std::span<float> out) {
  ST_REQUIRE(mask.length == out.size(), "MSRC mask length != output length");
  msrc_row_conv(input, kernel, bitmask_from(mask), geo, out);
}

void osrc_row_conv(SparseRowView input_acts, SparseRowView grad_out,
                   const RowGeometry& geo, std::span<float> dw) {
  ST_REQUIRE(dw.size() == geo.kernel, "OSRC scratchpad length != K");
  // dw[k] += Σ dO[ox] · I[ox·S + k − P]: window member at I offset o
  // contributes to tap k = o − win_lo.
  osrc_window_sweep(
      input_acts, grad_out, geo,
      [&](std::size_t j, std::int64_t win_lo, std::size_t lo,
          std::size_t hi) {
        const float g = grad_out.values[j];
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::size_t k =
              static_cast<std::size_t>(input_acts.offsets[idx] - win_lo);
          dw[k] += g * input_acts.values[idx];
        }
      });
}

RowOpWork msrc_work(SparseRowView input, const MaskRow& mask,
                    const RowGeometry& geo, std::size_t out_len) {
  ST_REQUIRE(mask.length == out_len, "MSRC mask length != output length");
  return msrc_work(input, bitmask_from(mask), geo, out_len);
}

}  // namespace sparsetrain::dataflow
