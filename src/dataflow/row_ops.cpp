#include "dataflow/row_ops.hpp"

#include <algorithm>
#include <cstdint>

#include "util/require.hpp"

namespace sparsetrain::dataflow {

namespace {

/// True when the (input position, kernel tap) pair maps to a valid output
/// index for the gather-style SRC mapping; writes it to `ox`.
bool src_output_index(std::uint32_t in_pos, std::uint32_t k,
                      const RowGeometry& geo, std::size_t out_len,
                      std::size_t& ox) {
  // ox·S + k − P = in_pos  →  ox = (in_pos + P − k) / S
  const std::int64_t num = static_cast<std::int64_t>(in_pos) +
                           static_cast<std::int64_t>(geo.padding) -
                           static_cast<std::int64_t>(k);
  if (num < 0) return false;
  if (num % geo.stride != 0) return false;
  const auto candidate = static_cast<std::size_t>(num / geo.stride);
  if (candidate >= out_len) return false;
  ox = candidate;
  return true;
}

/// Output index of the scatter-style MSRC mapping (GTA direction).
bool msrc_output_index(std::uint32_t in_pos, std::uint32_t k,
                       const RowGeometry& geo, std::size_t out_len,
                       std::size_t& ix) {
  // ix = in_pos·S + k − P
  const std::int64_t idx = static_cast<std::int64_t>(in_pos) *
                               static_cast<std::int64_t>(geo.stride) +
                           static_cast<std::int64_t>(k) -
                           static_cast<std::int64_t>(geo.padding);
  if (idx < 0 || idx >= static_cast<std::int64_t>(out_len)) return false;
  ix = static_cast<std::size_t>(idx);
  return true;
}

}  // namespace

void src_row_conv(const SparseRow& input, std::span<const float> kernel,
                  const RowGeometry& geo, std::span<float> out) {
  ST_REQUIRE(kernel.size() == geo.kernel, "SRC kernel length != K");
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::uint32_t pos = input.offsets[i];
    const float v = input.values[i];
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ox;
      if (src_output_index(pos, k, geo, out.size(), ox))
        out[ox] += v * kernel[k];
    }
  }
}

void msrc_row_conv(const SparseRow& input, std::span<const float> kernel,
                   const MaskRow& mask, const RowGeometry& geo,
                   std::span<float> out) {
  ST_REQUIRE(kernel.size() == geo.kernel, "MSRC kernel length != K");
  ST_REQUIRE(mask.length == out.size(), "MSRC mask length != output length");
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::uint32_t pos = input.offsets[i];
    const float v = input.values[i];
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ix;
      if (!msrc_output_index(pos, k, geo, out.size(), ix)) continue;
      if (!mask.allows(static_cast<std::uint32_t>(ix))) continue;
      out[ix] += v * kernel[k];
    }
  }
}

void osrc_row_conv(const SparseRow& input_acts, const SparseRow& grad_out,
                   const RowGeometry& geo, std::span<float> dw) {
  ST_REQUIRE(dw.size() == geo.kernel, "OSRC scratchpad length != K");
  // dw[k] += Σ dO[ox] · I[ox·S + k − P]: iterate dO nonzeros, look up the
  // matching I positions among its nonzeros.
  for (std::size_t j = 0; j < grad_out.nnz(); ++j) {
    const std::uint32_t ox = grad_out.offsets[j];
    const float g = grad_out.values[j];
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      const std::int64_t ipos = static_cast<std::int64_t>(ox) *
                                    static_cast<std::int64_t>(geo.stride) +
                                static_cast<std::int64_t>(k) -
                                static_cast<std::int64_t>(geo.padding);
      if (ipos < 0 || ipos >= static_cast<std::int64_t>(input_acts.length))
        continue;
      // Binary search I's offsets for ipos.
      const auto it = std::lower_bound(input_acts.offsets.begin(),
                                       input_acts.offsets.end(),
                                       static_cast<std::uint32_t>(ipos));
      if (it != input_acts.offsets.end() &&
          *it == static_cast<std::uint32_t>(ipos)) {
        const auto idx =
            static_cast<std::size_t>(it - input_acts.offsets.begin());
        dw[k] += g * input_acts.values[idx];
      }
    }
  }
}

RowOpWork src_work(const SparseRow& input, const RowGeometry& geo,
                   std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ox;
      if (src_output_index(input.offsets[i], k, geo, out_len, ox))
        ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

RowOpWork msrc_work(const SparseRow& input, const MaskRow& mask,
                    const RowGeometry& geo, std::size_t out_len) {
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      std::size_t ix;
      if (!msrc_output_index(input.offsets[i], k, geo, out_len, ix)) continue;
      if (!mask.allows(static_cast<std::uint32_t>(ix))) continue;
      ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      // Whole window masked/out-of-range: the PE's look-ahead skips this
      // input without spending a cycle on it.
      ++w.skipped_inputs;
    }
  }
  return w;
}

RowOpWork osrc_work(const SparseRow& input_acts, const SparseRow& grad_out,
                    const RowGeometry& geo) {
  RowOpWork w;
  for (std::size_t j = 0; j < grad_out.nnz(); ++j) {
    const std::uint32_t ox = grad_out.offsets[j];
    std::size_t macs_here = 0;
    for (std::uint32_t k = 0; k < geo.kernel; ++k) {
      const std::int64_t ipos = static_cast<std::int64_t>(ox) *
                                    static_cast<std::int64_t>(geo.stride) +
                                static_cast<std::int64_t>(k) -
                                static_cast<std::int64_t>(geo.padding);
      if (ipos < 0 || ipos >= static_cast<std::int64_t>(input_acts.length))
        continue;
      if (std::binary_search(input_acts.offsets.begin(),
                             input_acts.offsets.end(),
                             static_cast<std::uint32_t>(ipos)))
        ++macs_here;
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

}  // namespace sparsetrain::dataflow
