// The three 1-D row convolution primitives of the SparseTrain dataflow
// (paper §IV-B, Fig. 6). All 2-D convolutions in the three training stages
// decompose into these:
//
//   SRC  (Forward): one sparse activation row × one dense K-length kernel
//        row, accumulated into one dense output row.
//   MSRC (GTA): one sparse dO row scattered through a rotated kernel row
//        into a dI row, skipping positions the forward ReLU mask zeroes.
//   OSRC (GTW): two sparse rows (I and dO) correlated into a K-length dW
//        row that lives in a scratchpad for the whole row pair.
//
// These are the *functional references*: bit-exact semantics used both to
// validate the dense layer implementations and as the ground truth for the
// cycle simulator's work counting.
#pragma once

#include <span>

#include "tensor/sparse_row.hpp"

namespace sparsetrain::dataflow {

/// Geometry shared by the row ops: kernel size K, stride S, left padding P.
struct RowGeometry {
  std::uint32_t kernel = 3;
  std::uint32_t stride = 1;
  std::uint32_t padding = 1;
};

/// SRC — Forward-step row convolution.
/// out[ox] += Σ_k kernel[k] · in[ox·S + k − P], for ox in [0, out.size()).
/// `input` is the compressed activation row; `kernel` must have length K.
/// Implementation iterates input nonzeros only (the PE's zero skipping).
void src_row_conv(const SparseRow& input, std::span<const float> kernel,
                  const RowGeometry& geo, std::span<float> out);

/// MSRC — GTA-step row convolution with output masking.
/// out[p·S + k − P] += Σ in[p] · kernel[k], but positions not allowed by
/// `mask` are skipped entirely (their value is forced to zero by the
/// following ReLU, so computing them is wasted work). `mask.length` must
/// equal out.size(). Pass a full mask to disable skipping.
void msrc_row_conv(const SparseRow& input, std::span<const float> kernel,
                   const MaskRow& mask, const RowGeometry& geo,
                   std::span<float> out);

/// OSRC — GTW-step row correlation.
/// dw[k] += Σ_ox dO[ox] · I[ox·S + k − P] for k in [0, K).
/// Both operands are sparse; `dw` must have length K.
void osrc_row_conv(const SparseRow& input_acts, const SparseRow& grad_out,
                   const RowGeometry& geo, std::span<float> dw);

/// Work counters used by the cycle model: how many multiply-accumulates a
/// row op actually performs given the operand sparsity, and how many input
/// elements contribute at least one MAC (the PE ingests one such element
/// per cycle).
struct RowOpWork {
  std::size_t macs = 0;            ///< useful multiplies
  std::size_t active_inputs = 0;   ///< nonzeros that produced >= 1 MAC
  std::size_t skipped_inputs = 0;  ///< nonzeros skipped via mask look-ahead
};

/// Work of an SRC op (mask-free).
RowOpWork src_work(const SparseRow& input, const RowGeometry& geo,
                   std::size_t out_len);

/// Work of an MSRC op: per-input-window mask intersection.
RowOpWork msrc_work(const SparseRow& input, const MaskRow& mask,
                    const RowGeometry& geo, std::size_t out_len);

/// Work of an OSRC op: pairs of nonzeros whose offset difference lands in
/// the K-length scratchpad.
RowOpWork osrc_work(const SparseRow& input_acts, const SparseRow& grad_out,
                    const RowGeometry& geo);

}  // namespace sparsetrain::dataflow
