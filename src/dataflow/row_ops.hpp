// The three 1-D row convolution primitives of the SparseTrain dataflow
// (paper §IV-B, Fig. 6). All 2-D convolutions in the three training stages
// decompose into these:
//
//   SRC  (Forward): one sparse activation row × one dense K-length kernel
//        row, accumulated into one dense output row.
//   MSRC (GTA): one sparse dO row scattered through a rotated kernel row
//        into a dI row, skipping positions the forward ReLU mask zeroes.
//   OSRC (GTW): two sparse rows (I and dO) correlated into a K-length dW
//        row that lives in a scratchpad for the whole row pair.
//
// These are the *functional references*: bit-exact semantics used both to
// validate the dense layer implementations and as the ground truth for the
// cycle simulator's work counting. Operands are SparseRowView spans (an
// owning SparseRow converts implicitly), masks are word-packed BitMasks;
// the work counters below are the exact engine's inner loop and use O(1)
// window arithmetic per nonzero instead of per-tap searches.
//
// Each work counter exists twice: a portable `*_scalar` reference (always
// compiled — it is the equivalence baseline and the fallback) and the
// dispatching entry point the engine calls, which routes to the AVX2
// register-blocked kernels of row_ops_simd.hpp when the build enables
// them (CMake SPARSETRAIN_SIMD; see the README's Performance section).
// Both paths return identical counts bit for bit — the counters feed the
// exact engine whose every simulated field must reproduce exactly across
// builds (tests/test_row_ops_simd.cpp fuzzes the pair in one binary).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "tensor/bit_mask.hpp"
#include "tensor/sparse_row.hpp"
#include "util/require.hpp"

#if defined(SPARSETRAIN_SIMD_ENABLED) && defined(__AVX2__)
#define SPARSETRAIN_SIMD_AVX2 1
#include "dataflow/row_ops_simd.hpp"
#else
#define SPARSETRAIN_SIMD_AVX2 0
#endif

namespace sparsetrain::dataflow {

/// True when this build dispatches the row-op counters to SIMD kernels.
constexpr bool simd_enabled() { return SPARSETRAIN_SIMD_AVX2 != 0; }

/// The kernel path compiled into this build ("avx2" or "scalar") —
/// recorded by bench_exact_throughput's JSON so trajectories are
/// attributable.
constexpr const char* simd_mode() {
  return SPARSETRAIN_SIMD_AVX2 ? "avx2" : "scalar";
}

/// Geometry shared by the row ops: kernel size K, stride S, left padding P.
struct RowGeometry {
  std::uint32_t kernel = 3;
  std::uint32_t stride = 1;
  std::uint32_t padding = 1;
};

/// SRC — Forward-step row convolution.
/// out[ox] += Σ_k kernel[k] · in[ox·S + k − P], for ox in [0, out.size()).
/// `input` is the compressed activation row; `kernel` must have length K.
/// Implementation iterates input nonzeros only (the PE's zero skipping).
void src_row_conv(SparseRowView input, std::span<const float> kernel,
                  const RowGeometry& geo, std::span<float> out);

/// MSRC — GTA-step row convolution with output masking.
/// out[p·S + k − P] += Σ in[p] · kernel[k], but positions not allowed by
/// `mask` are skipped entirely (their value is forced to zero by the
/// following ReLU, so computing them is wasted work). `mask.length()` must
/// equal out.size(). Pass an all-pass mask to disable skipping.
void msrc_row_conv(SparseRowView input, std::span<const float> kernel,
                   const BitMask& mask, const RowGeometry& geo,
                   std::span<float> out);

/// Compatibility overload for the sorted-offset mask representation
/// (converts per call — reference/test paths only, never the hot loop).
void msrc_row_conv(SparseRowView input, std::span<const float> kernel,
                   const MaskRow& mask, const RowGeometry& geo,
                   std::span<float> out);

/// OSRC — GTW-step row correlation.
/// dw[k] += Σ_ox dO[ox] · I[ox·S + k − P] for k in [0, K).
/// Both operands are sparse; `dw` must have length K.
void osrc_row_conv(SparseRowView input_acts, SparseRowView grad_out,
                   const RowGeometry& geo, std::span<float> dw);

/// Work counters used by the cycle model: how many multiply-accumulates a
/// row op actually performs given the operand sparsity, and how many input
/// elements contribute at least one MAC (the PE ingests one such element
/// per cycle).
struct RowOpWork {
  std::size_t macs = 0;            ///< useful multiplies
  std::size_t active_inputs = 0;   ///< nonzeros that produced >= 1 MAC
  std::size_t skipped_inputs = 0;  ///< nonzeros skipped via mask look-ahead
};

// The three work counters below are the exact engine's innermost loop —
// they run once per row op, tens of millions of times per stage — so they
// are defined inline here: the per-op bodies are a handful of arithmetic
// instructions, and a cross-TU call per op would cost more than the work.

namespace detail {

/// Gate for the int32 lane arithmetic of the SIMD kernels: every value a
/// lane computes must fit a signed 32-bit register. Row lengths beyond
/// this are theoretical (rows are image widths), but the scalar path is
/// the safety net, not UB.
constexpr std::uint64_t kLaneMax =
    static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max());

/// Profitability floors for the SIMD dispatchers: below these nonzero
/// counts the vector kernels' fixed setup (broadcasts, lane widening,
/// horizontal sums) costs more than the row's whole work and the scalar
/// loop wins — measured on the committed bench workloads, whose image
/// rows carry only a handful of nonzeros. Dispatch choice never changes
/// counts, only speed (the equivalence fuzz suite pins both paths).
constexpr std::size_t kSrcSimdMinNnz = 16;
constexpr std::size_t kOsrcSimdMinNnz = 32;

}  // namespace detail

/// Work of an SRC op (mask-free) — portable scalar reference. O(1) per
/// input nonzero: the valid taps of position p form the arithmetic
/// progression k ≡ (p+P) mod S inside a window, so their count needs no
/// tap loop — and no division when S = 1.
inline RowOpWork src_work_scalar(SparseRowView input, const RowGeometry& geo,
                                 std::size_t out_len) {
  RowOpWork w;
  if (out_len == 0) {
    w.skipped_inputs = input.nnz();
    return w;
  }
  const std::int64_t S = geo.stride;
  const std::int64_t kmax = static_cast<std::int64_t>(geo.kernel) - 1;
  const std::int64_t base_min =
      S * (static_cast<std::int64_t>(out_len) - 1);  // klo > 0 above this
  if (S == 1) {
    // Unit stride: every k in [klo, khi] is a tap — the loop body is pure
    // branch-free clamp arithmetic (the SIMD kernel is this same body,
    // eight lanes at a time).
    for (std::size_t i = 0; i < input.nnz(); ++i) {
      const std::int64_t base = static_cast<std::int64_t>(input.offsets[i]) +
                                static_cast<std::int64_t>(geo.padding);
      const std::int64_t khi = std::min(kmax, base);
      const std::int64_t klo = std::max<std::int64_t>(0, base - base_min);
      const std::int64_t taps = std::max<std::int64_t>(0, khi - klo + 1);
      w.macs += static_cast<std::size_t>(taps);
      w.active_inputs += taps > 0 ? 1 : 0;
    }
    w.skipped_inputs = input.nnz() - w.active_inputs;
    return w;
  }
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::int64_t base = static_cast<std::int64_t>(input.offsets[i]) +
                              static_cast<std::int64_t>(geo.padding);
    const std::int64_t khi = std::min(kmax, base);
    const std::int64_t klo = std::max<std::int64_t>(0, base - base_min);
    std::size_t macs_here = 0;
    if (khi >= klo) {
      // First k ≥ klo congruent to base mod S (base ≥ klo ≥ 0, so the
      // remainder needs the usual non-negative adjustment).
      const std::int64_t r = base % S;
      const std::int64_t k0 = klo + (((r - klo) % S) + S) % S;
      if (k0 <= khi) macs_here = static_cast<std::size_t>((khi - k0) / S + 1);
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

/// Work of an SRC op — the engine's entry point. Stride-1 rows with
/// enough nonzeros take the AVX2 8-lane clamp kernel when compiled in;
/// everything else (strided congruence, near-empty rows, degenerate
/// geometries, int32-unsafe lengths) falls back to the scalar reference.
/// Identical counts either way.
inline RowOpWork src_work(SparseRowView input, const RowGeometry& geo,
                          std::size_t out_len) {
#if SPARSETRAIN_SIMD_AVX2
  if (input.nnz() >= detail::kSrcSimdMinNnz && geo.stride == 1 &&
      out_len > 0 &&
      static_cast<std::uint64_t>(input.length) + geo.padding <
          detail::kLaneMax &&
      out_len <= detail::kLaneMax && geo.kernel <= (1u << 30)) {
    RowOpWork w;
    detail::src_work_s1_avx2(
        input.offsets.data(), input.nnz(),
        static_cast<std::int32_t>(geo.padding),
        static_cast<std::int32_t>(geo.kernel) - 1,
        static_cast<std::int32_t>(out_len - 1), w.macs, w.active_inputs);
    w.skipped_inputs = input.nnz() - w.active_inputs;
    return w;
  }
#endif
  return src_work_scalar(input, geo, out_len);
}

/// Work of an MSRC op — portable scalar reference: per-input-window mask
/// intersection. The window of a nonzero is K consecutive output
/// positions, so its allowed count is one BitMask::count_in.
inline RowOpWork msrc_work_scalar(SparseRowView input, const BitMask& mask,
                                  const RowGeometry& geo,
                                  std::size_t out_len) {
  ST_REQUIRE(mask.length() == out_len, "MSRC mask length != output length");
  RowOpWork w;
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    // The K output positions of nonzero p are the consecutive window
    // [p·S − P, p·S − P + K); its surviving count is one popcount query.
    const std::int64_t win_lo = static_cast<std::int64_t>(input.offsets[i]) *
                                    static_cast<std::int64_t>(geo.stride) -
                                static_cast<std::int64_t>(geo.padding);
    const std::int64_t win_hi = win_lo + static_cast<std::int64_t>(geo.kernel);
    std::size_t macs_here = 0;
    if (win_hi > 0) {
      const auto lo =
          static_cast<std::uint32_t>(std::max<std::int64_t>(0, win_lo));
      const auto hi = static_cast<std::uint32_t>(
          std::min<std::int64_t>(static_cast<std::int64_t>(out_len), win_hi));
      macs_here = mask.count_in(lo, hi);
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      // Whole window masked/out-of-range: the PE's look-ahead skips this
      // input without spending a cycle on it.
      ++w.skipped_inputs;
    }
  }
  return w;
}

/// Work of an MSRC op — the engine's entry point. Kernels ≤ 64 wide (a
/// window straddles at most two mask words) take the AVX2 4-lane
/// gather + in-register-popcount kernel when compiled in; wider kernels
/// and int32-unsafe geometries fall back to the scalar reference.
inline RowOpWork msrc_work(SparseRowView input, const BitMask& mask,
                           const RowGeometry& geo, std::size_t out_len) {
#if SPARSETRAIN_SIMD_AVX2
  if (geo.kernel > 0 && geo.kernel <= 64 && out_len > 0 &&
      out_len <= detail::kLaneMax && geo.padding <= detail::kLaneMax &&
      geo.stride > 0 &&
      static_cast<std::uint64_t>(input.length) <=
          (detail::kLaneMax - geo.kernel) / geo.stride) {
    ST_REQUIRE(mask.length() == out_len, "MSRC mask length != output length");
    RowOpWork w;
    detail::msrc_work_avx2(input.offsets.data(), input.nnz(),
                           static_cast<std::int32_t>(geo.stride),
                           static_cast<std::int32_t>(geo.padding),
                           static_cast<std::int32_t>(geo.kernel),
                           static_cast<std::int32_t>(out_len),
                           mask.word_data(), w.macs, w.skipped_inputs);
    w.active_inputs = input.nnz() - w.skipped_inputs;
    return w;
  }
#endif
  return msrc_work_scalar(input, mask, geo, out_len);
}

/// Compatibility overload (converts the mask per call).
RowOpWork msrc_work(SparseRowView input, const MaskRow& mask,
                    const RowGeometry& geo, std::size_t out_len);

/// Work of an MSRC op against a prefix-popcount mask: `mask_prefix` has
/// out_len + 1 entries with mask_prefix[i] = number of allowed outputs
/// before position i, so every window query is two loads and a subtract
/// instead of a word-funnel popcount. The GTA stage amortises one O(W)
/// prefix build per task over its F·K row ops. Counts are identical to
/// the BitMask overloads for the mask the prefix was built from (the
/// equivalence suite pins this).
inline RowOpWork msrc_work(SparseRowView input,
                           const std::uint32_t* mask_prefix,
                           const RowGeometry& geo, std::size_t out_len) {
  RowOpWork w;
  const std::int64_t S = geo.stride;
  const std::int64_t P = geo.padding;
  const std::int64_t K = geo.kernel;
  const auto len = static_cast<std::int64_t>(out_len);
  for (std::size_t i = 0; i < input.nnz(); ++i) {
    const std::int64_t win_lo =
        static_cast<std::int64_t>(input.offsets[i]) * S - P;
    const std::int64_t win_hi = win_lo + K;
    std::size_t macs_here = 0;
    if (win_hi > 0 && win_lo < len) {
      const std::int64_t lo = win_lo < 0 ? 0 : win_lo;
      const std::int64_t hi = win_hi < len ? win_hi : len;
      macs_here = mask_prefix[hi] - mask_prefix[lo];
    }
    if (macs_here > 0) {
      ++w.active_inputs;
      w.macs += macs_here;
    } else {
      ++w.skipped_inputs;
    }
  }
  return w;
}

/// The OSRC window sweep shared by osrc_work and osrc_row_conv: the
/// matching I positions of dO nonzero j are the K-wide window
/// [ox·S − P, ox·S − P + K) over I's sorted offsets. Window bounds grow
/// monotonically with ox, so two pointers sweep I once across all dO
/// nonzeros — O(nnz_dO + nnz_I) instead of nnz_dO · K · log(nnz_I).
/// Calls visit(j, win_lo, lo, hi) per dO nonzero with I's members of the
/// window at offsets[lo, hi). This is the portable scalar reference.
template <typename Visit>
inline void osrc_window_sweep_scalar(SparseRowView input_acts,
                                     SparseRowView grad_out,
                                     const RowGeometry& geo, Visit&& visit) {
  std::size_t lo = 0, hi = 0;
  const std::size_t nnz_i = input_acts.nnz();
  for (std::size_t j = 0; j < grad_out.nnz(); ++j) {
    const std::int64_t win_lo = static_cast<std::int64_t>(grad_out.offsets[j]) *
                                    static_cast<std::int64_t>(geo.stride) -
                                static_cast<std::int64_t>(geo.padding);
    const std::int64_t win_hi = win_lo + static_cast<std::int64_t>(geo.kernel);
    while (lo < nnz_i &&
           static_cast<std::int64_t>(input_acts.offsets[lo]) < win_lo)
      ++lo;
    if (hi < lo) hi = lo;
    while (hi < nnz_i &&
           static_cast<std::int64_t>(input_acts.offsets[hi]) < win_hi)
      ++hi;
    visit(j, win_lo, lo, hi);
  }
}

/// The dispatching OSRC window sweep — identical visit sequence (same j,
/// win_lo, lo, hi for every call), but the two pointer-advance loops run
/// 8 offsets per compare+popcount step when the AVX2 path is compiled in
/// and the I row is long enough to amortise it. osrc_row_conv rides this
/// too: since lo/hi are equal either way, its float accumulation order —
/// and thus its bit pattern — is unchanged.
template <typename Visit>
inline void osrc_window_sweep(SparseRowView input_acts, SparseRowView grad_out,
                              const RowGeometry& geo, Visit&& visit) {
#if SPARSETRAIN_SIMD_AVX2
  if (input_acts.nnz() >= detail::kOsrcSimdMinNnz &&
      static_cast<std::uint64_t>(input_acts.length) <= detail::kLaneMax) {
    std::size_t lo = 0, hi = 0;
    const std::uint32_t* offs = input_acts.offsets.data();
    const std::size_t nnz_i = input_acts.nnz();
    const auto advance = [offs, nnz_i](std::size_t from, std::int64_t bound) {
      if (bound <= 0) return from;  // offsets are non-negative
      if (bound > static_cast<std::int64_t>(detail::kLaneMax))
        return nnz_i;  // every offset < length ≤ INT32_MAX < bound
      return detail::advance_lt_avx2(offs, nnz_i, from,
                                     static_cast<std::int32_t>(bound));
    };
    for (std::size_t j = 0; j < grad_out.nnz(); ++j) {
      const std::int64_t win_lo =
          static_cast<std::int64_t>(grad_out.offsets[j]) *
              static_cast<std::int64_t>(geo.stride) -
          static_cast<std::int64_t>(geo.padding);
      const std::int64_t win_hi =
          win_lo + static_cast<std::int64_t>(geo.kernel);
      lo = advance(lo, win_lo);
      if (hi < lo) hi = lo;
      hi = advance(hi, win_hi);
      visit(j, win_lo, lo, hi);
    }
    return;
  }
#endif
  osrc_window_sweep_scalar(input_acts, grad_out, geo,
                           std::forward<Visit>(visit));
}

/// Work of an OSRC op — portable scalar reference: pairs of nonzeros
/// whose offset difference lands in the K-length scratchpad (one window
/// sweep, counts only).
inline RowOpWork osrc_work_scalar(SparseRowView input_acts,
                                  SparseRowView grad_out,
                                  const RowGeometry& geo) {
  RowOpWork w;
  osrc_window_sweep_scalar(input_acts, grad_out, geo,
                           [&](std::size_t, std::int64_t, std::size_t lo,
                               std::size_t hi) {
                             if (hi > lo) {
                               ++w.active_inputs;
                               w.macs += hi - lo;
                             } else {
                               ++w.skipped_inputs;
                             }
                           });
  return w;
}

/// Work of an OSRC op — the engine's entry point (dispatching sweep).
inline RowOpWork osrc_work(SparseRowView input_acts, SparseRowView grad_out,
                           const RowGeometry& geo) {
  RowOpWork w;
  osrc_window_sweep(input_acts, grad_out, geo,
                    [&](std::size_t, std::int64_t, std::size_t lo,
                        std::size_t hi) {
                      if (hi > lo) {
                        ++w.active_inputs;
                        w.macs += hi - lo;
                      } else {
                        ++w.skipped_inputs;
                      }
                    });
  return w;
}

}  // namespace sparsetrain::dataflow
