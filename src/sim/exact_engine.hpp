// Exact (tensor-driven) simulation mode.
//
// The statistical engine in accelerator.cpp samples row-op costs from the
// operand *densities*; this engine instead takes the actual tensors of a
// layer, builds every individual row op, runs each through the
// cycle-stepped PeExact state machine, and schedules the resulting task
// times onto the PE groups. It is the ground truth the statistical engine
// is validated against (tests assert few-percent agreement), and it is
// what "cycle-accurate" means in this reproduction: per-element PE timing
// semantics, not density approximations.
//
// Execution model (three fused layers):
//
//  * Tile kernels — each stage is one statically-dispatched kernel struct
//    (ForwardKernel/GtaKernel/GtwKernel/FcKernel, see the .cpp) run by a
//    run_tasks<Kernel> template, so the task loop, the row-op work
//    counters and the group-round fold (PeGroupReducer) all inline into
//    one loop. No per-task cost record is materialised: a tile aggregates
//    busy/MAC/register counters locally and emits only a per-task cycle
//    count into a pooled per-stage arena.
//  * Streaming merge — per-task cycles feed the least-loaded-group
//    scheduler through a flat indexed d-ary heap sized pe_groups,
//    consumed strictly in task order (the identical deterministic stream
//    the serial path produces). The merge of tile i overlaps the
//    evaluation of tile i+1: the merging thread consumes tiles as their
//    ready flags rise and claims unevaluated tiles itself while waiting,
//    so a stage never barriers on its full task list.
//  * Tiles are deterministic contiguous task ranges whose boundaries are
//    adaptive (derived from the estimated row ops per task unless
//    ExactOptions::tile_tasks pins them) — but neither tiling nor worker
//    count ever changes any simulated number: results are byte-identical
//    to the serial path for any ExactOptions.
//
// The hot path is allocation-free in steady state: operand tensors live
// in CompressedRows arenas, tasks read them through SparseRowView spans,
// masks are word-packed BitMasks (the all-pass mask is one shared
// constant per stage), each worker thread reuses a scratch buffer, and
// the per-stage cycle spans + scheduler arrays live in a pooled arena
// reused across stages (tests/test_exact_alloc.cpp counts allocations).
// Whole networks run through sim::run_exact, which schedules independent
// (layer, stage) units concurrently on the same pool — see
// exact_network.hpp.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dataflow/conv_decompose.hpp"
#include "sim/accelerator.hpp"
#include "tensor/compressed_rows.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain::sim {

class ExactProfiler;

/// Parallelism knobs of the exact engine. No field changes any simulated
/// number — only wall-clock time.
struct ExactOptions {
  /// Worker threads stepping PE tiles. 1 = serial (no pool is created);
  /// 0 = hardware concurrency. Ignored when `shared_pool` is set.
  std::size_t workers = 1;
  /// Group tasks per tile; 0 = adaptive (sized from the estimated row
  /// ops per task so op-heavy forward tasks get small tiles and sparse
  /// GTW tasks get large ones).
  std::size_t tile_tasks = 0;
  /// Borrowed worker pool (not owned — must outlive the engine). When
  /// set the engine spawns no threads of its own: tile evaluation and
  /// the exact_network stage graph draw from this pool instead.
  /// core::Session shares its job pool this way, so program-level jobs
  /// and engine tiles form one two-level schedule on one set of threads.
  util::ThreadPool* shared_pool = nullptr;
  /// Per-stage profiling hook (not owned — must outlive the engine; see
  /// sim/profile_hook.hpp). Null = no timestamps are taken at all; set
  /// or not, simulated results are byte-identical.
  ExactProfiler* profiler = nullptr;
};

/// Outcome of one exactly-simulated layer stage.
struct ExactStageResult {
  std::size_t cycles = 0;       ///< makespan across PE groups
  ActivityCounts activity;
  std::size_t row_ops = 0;
  std::size_t tasks = 0;

  /// busy PE-cycles / (makespan × PE count); 0 (never NaN) for empty
  /// stages or a zero PE count.
  double utilization(std::size_t total_pes) const;
};

class ExactEngine {
 public:
  explicit ExactEngine(ArchConfig cfg, ExactOptions opts = {});
  ~ExactEngine();

  ExactEngine(const ExactEngine&) = delete;
  ExactEngine& operator=(const ExactEngine&) = delete;

  const ArchConfig& config() const { return cfg_; }
  const ExactOptions& options() const { return opts_; }

  /// The pool stage tiles (and the exact_network stage graph) run on:
  /// the shared pool when one was borrowed, the engine's own pool when
  /// workers != 1, else nullptr (serial).
  util::ThreadPool* worker_pool() const {
    return opts_.shared_pool != nullptr ? opts_.shared_pool : pool_.get();
  }

  /// A tensor's rows in the accelerator's compressed on-wire format: one
  /// arena-backed CSR structure whose flat row (n·C + c)·H + y is tensor
  /// row (n, c, y). The arena holds each distinct row once, so a caller
  /// running several stages over the same tensor (Forward + GTW share I,
  /// GTA + GTW share dO) should compress() once and pass the rows to the
  /// row-set overloads below.
  using RowSet = CompressedRows;

  /// Compresses every row of `t` into one arena (tiled across the pool;
  /// layout is identical for any worker count).
  RowSet compress(const Tensor& t) const;

  /// Forward stage: SRC ops over the real input activations.
  ExactStageResult run_forward(const Tensor& input,
                               const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_forward(const RowSet& input_rows,
                               const Shape& input_shape,
                               const dataflow::ConvGeometry& geo) const;

  /// GTA stage: MSRC ops over the real dO with the real upstream mask
  /// (pass nullptr for an all-pass mask).
  ExactStageResult run_gta(const Tensor& grad_output,
                           const Shape& input_shape, const Tensor* prev_mask,
                           const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_gta(const RowSet& go_rows, const Shape& out_shape,
                           const Shape& input_shape, const Tensor* prev_mask,
                           const dataflow::ConvGeometry& geo) const;

  /// GTW stage: OSRC ops pairing real dO rows with real I rows.
  ExactStageResult run_gtw(const Tensor& grad_output, const Tensor& input,
                           const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_gtw(const RowSet& go_rows, const Shape& out_shape,
                           const RowSet& in_rows, const Shape& in_shape,
                           const dataflow::ConvGeometry& geo) const;

  /// FC stage (dot-product mapping): every task streams one sample's
  /// compressed operand vector once into `lanes` output accumulators.
  /// `operands` is {N, 1, 1, L} (one vector per sample);
  /// `groups_per_sample` is the number of lane-groups scheduled per
  /// sample (ceil(outputs / lanes) after any mask/zero-lane packing).
  ExactStageResult run_fc(const Tensor& operands,
                          std::size_t groups_per_sample,
                          std::size_t lanes) const;

 private:
  /// One tile's locally-aggregated activity (summed into the stage
  /// result in tile order; integer sums, so order never changes values).
  struct TileTotals {
    std::size_t row_ops = 0;
    std::size_t busy = 0;
    std::size_t macs = 0;
    std::size_t reg = 0;
  };

  /// Per-stage working storage, pooled on the engine so repeated stages
  /// re-use grown buffers instead of allocating (concurrent stages each
  /// lease their own arena).
  struct StageArena {
    std::vector<std::size_t> cycles;       ///< per-task cycles (tiled path)
    std::vector<TileTotals> tile_totals;   ///< per-tile aggregates
    std::vector<std::size_t> loads;        ///< per-group schedule load
    std::vector<std::uint32_t> heap;       ///< d-ary heap of group ids
    std::vector<PeCost> src_costs;         ///< forward: per-input-row cost
  };

  /// RAII lease of one arena from the engine's pool.
  struct ArenaLease {
    const ExactEngine* engine = nullptr;
    std::unique_ptr<StageArena> arena;
    ArenaLease(const ExactEngine* e, std::unique_ptr<StageArena> a)
        : engine(e), arena(std::move(a)) {}
    ArenaLease(const ArenaLease&) = delete;
    ArenaLease& operator=(const ArenaLease&) = delete;
    ~ArenaLease();
  };

  ArenaLease acquire_arena() const;
  void release_arena(std::unique_ptr<StageArena> arena) const;

  /// Tile size for a stage: the explicit override, or the adaptive size
  /// derived from `est_ops_per_task` (affects wall-clock only).
  std::size_t tile_for(std::size_t task_count,
                       std::size_t est_ops_per_task) const;

  /// Evaluates kernel(i, reducer) for every task i and merges the
  /// per-task cycle stream into the least-loaded-group scheduler in task
  /// order. Kernel is a statically-dispatched stage struct exposing
  /// `lanes` and `operator()(std::size_t, PeGroupReducer&) -> cycles`.
  /// Byte-identical for any workers/tile_tasks. Defined in the .cpp
  /// (every instantiation lives there).
  template <typename Kernel>
  ExactStageResult run_tasks(std::size_t task_count,
                             std::size_t est_ops_per_task,
                             const Kernel& kernel) const;

  ArchConfig cfg_;
  ExactOptions opts_;
  PeExact pe_;
  /// Created only when opts_.workers != 1 and no pool was borrowed;
  /// shared by all run_* calls (which claim their own tiles, so
  /// concurrent stages on one engine are safe).
  std::unique_ptr<util::ThreadPool> pool_;
  mutable std::mutex arenas_mu_;
  mutable std::vector<std::unique_ptr<StageArena>> free_arenas_;
};

}  // namespace sparsetrain::sim
