// Exact (tensor-driven) simulation mode.
//
// The statistical engine in accelerator.cpp samples row-op costs from the
// operand *densities*; this engine instead takes the actual tensors of a
// layer, builds every individual row op, runs each through the
// cycle-stepped PeExact state machine, and schedules the resulting task
// times onto the PE groups. It is the ground truth the statistical engine
// is validated against (tests assert few-percent agreement), and it is
// what "cycle-accurate" means in this reproduction: per-element PE timing
// semantics, not density approximations.
//
// Scaling: a stage's tasks are split into deterministic, contiguous tiles
// that evaluate in parallel on a util::ThreadPool; per-task cycle counts
// are then merged into the group scheduler in task order. Tile boundaries
// and the merge order depend only on the task indices — never on the
// worker count or which worker ran a tile — so results are byte-identical
// to the serial path for any ExactOptions. The hot path is allocation-free
// in steady state: operand tensors live in CompressedRows arenas, tasks
// read them through SparseRowView spans, masks are word-packed BitMasks
// (the all-pass mask is one shared constant per stage), and each worker
// thread reuses a scratch buffer for its per-task PeCost list and mask
// (tests/test_exact_alloc.cpp counts allocations). That makes full-size
// layer
// geometries (AlexNet/VGG/ResNet conv layers from the workload zoo)
// practical to validate exactly; whole ImageNet *networks* in one exact
// job are still minutes-scale and remain the statistical mode's territory.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "dataflow/conv_decompose.hpp"
#include "sim/accelerator.hpp"
#include "tensor/compressed_rows.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain::sim {

/// Parallelism knobs of the exact engine. Neither field changes any
/// simulated number — only wall-clock time.
struct ExactOptions {
  /// Worker threads stepping PE tiles. 1 = serial (no pool is created);
  /// 0 = hardware concurrency.
  std::size_t workers = 1;
  /// Group tasks per tile; 0 = kDefaultTileTasks. Smaller tiles balance
  /// better, larger tiles amortise queueing.
  std::size_t tile_tasks = 0;

  static constexpr std::size_t kDefaultTileTasks = 32;
};

/// Outcome of one exactly-simulated layer stage.
struct ExactStageResult {
  std::size_t cycles = 0;       ///< makespan across PE groups
  ActivityCounts activity;
  std::size_t row_ops = 0;
  std::size_t tasks = 0;

  /// busy PE-cycles / (makespan × PE count); 0 (never NaN) for empty
  /// stages or a zero PE count.
  double utilization(std::size_t total_pes) const;
};

class ExactEngine {
 public:
  explicit ExactEngine(ArchConfig cfg, ExactOptions opts = {});
  ~ExactEngine();

  ExactEngine(const ExactEngine&) = delete;
  ExactEngine& operator=(const ExactEngine&) = delete;

  const ArchConfig& config() const { return cfg_; }
  const ExactOptions& options() const { return opts_; }

  /// A tensor's rows in the accelerator's compressed on-wire format: one
  /// arena-backed CSR structure whose flat row (n·C + c)·H + y is tensor
  /// row (n, c, y). The arena holds each distinct row once, so a caller
  /// running several stages over the same tensor (Forward + GTW share I,
  /// GTA + GTW share dO) should compress() once and pass the rows to the
  /// row-set overloads below.
  using RowSet = CompressedRows;

  /// Compresses every row of `t` into one arena (tiled across the pool;
  /// layout is identical for any worker count).
  RowSet compress(const Tensor& t) const;

  /// Forward stage: SRC ops over the real input activations.
  ExactStageResult run_forward(const Tensor& input,
                               const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_forward(const RowSet& input_rows,
                               const Shape& input_shape,
                               const dataflow::ConvGeometry& geo) const;

  /// GTA stage: MSRC ops over the real dO with the real upstream mask
  /// (pass nullptr for an all-pass mask).
  ExactStageResult run_gta(const Tensor& grad_output,
                           const Shape& input_shape, const Tensor* prev_mask,
                           const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_gta(const RowSet& go_rows, const Shape& out_shape,
                           const Shape& input_shape, const Tensor* prev_mask,
                           const dataflow::ConvGeometry& geo) const;

  /// GTW stage: OSRC ops pairing real dO rows with real I rows.
  ExactStageResult run_gtw(const Tensor& grad_output, const Tensor& input,
                           const dataflow::ConvGeometry& geo) const;
  ExactStageResult run_gtw(const RowSet& go_rows, const Shape& out_shape,
                           const RowSet& in_rows, const Shape& in_shape,
                           const dataflow::ConvGeometry& geo) const;

  /// FC stage (dot-product mapping): every task streams one sample's
  /// compressed operand vector once into `lanes` output accumulators.
  /// `operands` is {N, 1, 1, L} (one vector per sample);
  /// `groups_per_sample` is the number of lane-groups scheduled per
  /// sample (ceil(outputs / lanes) after any mask/zero-lane packing).
  ExactStageResult run_fc(const Tensor& operands,
                          std::size_t groups_per_sample,
                          std::size_t lanes) const;

 private:
  /// One group task's already-reduced outcome. Tiles fill these by task
  /// index; the merge consumes them in index order.
  struct TaskCost {
    std::size_t cycles = 0;   ///< parallel-round makespan within the group
    std::size_t row_ops = 0;
    std::size_t busy = 0;
    std::size_t macs = 0;
    std::size_t reg = 0;
  };

  /// Evaluates `eval(i)` for every task (tiled across the pool), then
  /// merges the per-task costs into the least-loaded-group scheduler in
  /// task order. Byte-identical for any workers/tile_tasks.
  ExactStageResult run_tasks(
      std::size_t task_count,
      const std::function<TaskCost(std::size_t)>& eval) const;

  /// Folds one task's row ops into rounds of pes_per_group (each round as
  /// slow as its slowest op) and the activity counters. Takes a span so
  /// tasks can hand it their reusable per-thread scratch.
  TaskCost reduce_task(std::span<const PeCost> ops, std::size_t lanes) const;

  std::size_t tile_tasks() const {
    return opts_.tile_tasks != 0 ? opts_.tile_tasks
                                 : ExactOptions::kDefaultTileTasks;
  }

  ArchConfig cfg_;
  ExactOptions opts_;
  PeExact pe_;
  /// Created only when opts_.workers != 1; shared by all run_* calls
  /// (which wait on their own tile futures, so concurrent stages on one
  /// engine are safe).
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace sparsetrain::sim
