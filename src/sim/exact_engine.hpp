// Exact (tensor-driven) simulation mode.
//
// The statistical engine in accelerator.cpp samples row-op costs from the
// operand *densities*; this engine instead takes the actual tensors of a
// layer, builds every individual row op, runs each through the
// cycle-stepped PeExact state machine, and schedules the resulting task
// times onto the PE groups. It is the ground truth the statistical engine
// is validated against (tests assert few-percent agreement), and it is
// what "cycle-accurate" means in this reproduction: per-element PE timing
// semantics, not density approximations.
//
// Use it for real (small/medium) layers; ImageNet-scale blocks would take
// minutes per stage, which is what the statistical mode is for.
#pragma once

#include "dataflow/conv_decompose.hpp"
#include "sim/accelerator.hpp"
#include "tensor/tensor.hpp"

namespace sparsetrain::sim {

/// Outcome of one exactly-simulated layer stage.
struct ExactStageResult {
  std::size_t cycles = 0;       ///< makespan across PE groups
  ActivityCounts activity;
  std::size_t row_ops = 0;
  std::size_t tasks = 0;

  double utilization(std::size_t total_pes) const;
};

class ExactEngine {
 public:
  explicit ExactEngine(ArchConfig cfg);

  const ArchConfig& config() const { return cfg_; }

  /// Forward stage: SRC ops over the real input activations.
  ExactStageResult run_forward(const Tensor& input,
                               const dataflow::ConvGeometry& geo) const;

  /// GTA stage: MSRC ops over the real dO with the real upstream mask
  /// (pass nullptr for an all-pass mask).
  ExactStageResult run_gta(const Tensor& grad_output,
                           const Shape& input_shape, const Tensor* prev_mask,
                           const dataflow::ConvGeometry& geo) const;

  /// GTW stage: OSRC ops pairing real dO rows with real I rows.
  ExactStageResult run_gtw(const Tensor& grad_output, const Tensor& input,
                           const dataflow::ConvGeometry& geo) const;

 private:
  /// Schedules per-task cycle lists onto groups; fills cycles/activity.
  ExactStageResult schedule(std::vector<std::vector<PeCost>> tasks,
                            std::size_t lanes) const;

  ArchConfig cfg_;
  PeExact pe_;
};

}  // namespace sparsetrain::sim
