// Whole-program exact simulation.
//
// run_exact() re-drives a compiled Program through the tensor-driven
// ExactEngine: for every Run instruction it synthesises the layer's
// operand tensors at the profile's densities (deterministically from the
// run seed, so results are a pure function of the inputs) and steps the
// real row ops through the cycle-exact PE model. The program's
// instruction stream supplies the stage structure — which layers/stages
// were compiled, batch, FC lane packing — so exact and statistical runs
// of the same program cover the identical work list and their cycle
// counts are directly comparable (tests/test_exact_agreement_matrix.cpp).
//
// Execution is a whole-program stage graph, not a stage-by-stage sweep:
// every Run instruction is an independent (layer, stage) unit, claimed
// concurrently onto the engine's worker pool and gated only by its
// layer's operand readiness (call_once-guarded lazy synthesis +
// refcounted release). Each unit's tiles then fan out over the same pool
// — two-level parallelism, so a program of many small stages (ResNet on
// CIFAR: 512-task stages) fills the pool even though no single stage
// could. Unit results are assembled in program order, so reports are
// byte-identical to the serial sweep for any worker count.
//
// Scope: exact mode is the *compute-timing* ground truth. It reports
// cycles, busy/MAC/register activity and the energy those events price
// to; it does not model SRAM/DRAM streaming (those counters stay zero),
// which is the statistical engine's footprint model's job.
#pragma once

#include <cstdint>

#include "sim/exact_engine.hpp"
#include "sim/report.hpp"

namespace sparsetrain::sim {

/// Runs `program` exactly on `engine` (a long-lived engine amortises its
/// worker pool across jobs — see ExactBackend). `seed` drives the tensor
/// synthesis; the engine's options only affect wall-clock time (results
/// are byte-identical for any workers/tile combination).
SimReport run_exact(const ExactEngine& engine, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed);

/// Convenience: one-shot engine for the architecture `cfg` (which must
/// be sparse), parallelised per `opts`.
SimReport run_exact(const ArchConfig& cfg, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed, const ExactOptions& opts = {});

}  // namespace sparsetrain::sim
