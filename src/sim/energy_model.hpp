// Activity-based energy model.
//
// Substitutes the paper's Synopsys DC/PrimeTime + PCACTI flow: every
// architectural event (MAC, register access, SRAM access, DRAM access) has
// a fixed per-event energy in the published 14 nm-class range. Absolute
// joules are not the claim — the *relative* breakdown (Fig. 9's SRAM/Reg/
// Comb shares and the SparseTrain-vs-baseline ratio) is what the constants
// are calibrated to reproduce: the defaults land the dense baseline's SRAM
// share inside the paper's reported 62–71 % band.
#pragma once

#include <cstddef>

namespace sparsetrain::sim {

/// Per-event energies in picojoules (16-bit datapath).
///
/// mac_pj covers the whole PE datapath slice per multiply (multiplier,
/// adder, operand muxing, pipeline latches), not a bare multiplier —
/// which is why it sits at the high end of published 14 nm figures.
struct EnergyParams {
  double mac_pj = 0.50;        ///< one 16-bit MAC incl. PE datapath logic
  double reg_pj = 0.035;       ///< one 16-bit register-file access
  double sram_pj = 1.60;       ///< one 16-bit global-buffer access
  double dram_pj = 160.0;      ///< one 16-bit off-chip access
  double ctrl_pj_cycle = 0.19; ///< PE control + scheduling per busy cycle
};

/// Accumulated energy by component (the Fig. 9 stack).
struct EnergyBreakdown {
  double comb_pj = 0.0;  ///< combinational logic: MACs + control
  double reg_pj = 0.0;   ///< register file
  double sram_pj = 0.0;  ///< global buffer
  double dram_pj = 0.0;  ///< off-chip DRAM

  double total_pj() const { return comb_pj + reg_pj + sram_pj + dram_pj; }
  double on_chip_pj() const { return comb_pj + reg_pj + sram_pj; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/// Event counters the simulator produces; the energy model prices them.
struct ActivityCounts {
  std::size_t macs = 0;
  std::size_t reg_accesses = 0;
  std::size_t sram_bytes = 0;
  std::size_t dram_bytes = 0;
  std::size_t busy_cycles = 0;  ///< summed over PEs

  ActivityCounts& operator+=(const ActivityCounts& other);
};

/// Prices a set of activity counters.
EnergyBreakdown price(const ActivityCounts& counts,
                      const EnergyParams& params);

}  // namespace sparsetrain::sim
