#include "sim/pe_model.hpp"

#include <algorithm>
#include <cmath>

#include "dataflow/row_ops.hpp"
#include "util/require.hpp"

namespace sparsetrain::sim {

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

PeCostStats row_op_cost(const isa::RowBlock& block, const PeTiming& timing,
                        bool sparse_mode) {
  ST_REQUIRE(block.in_len > 0, "row op needs a non-empty operand row");
  const auto L = static_cast<double>(block.in_len);
  const auto K = static_cast<double>(block.kernel);
  const double wload =
      static_cast<double>(ceil_div(block.kernel, timing.weight_port_width));
  const double drain = static_cast<double>(timing.pipeline_drain);

  PeCostStats stats;
  switch (block.kind) {
    case isa::RowOpKind::SRC: {
      // Gather mapping: of the K taps only ~K/S land on an integer output
      // index (stride phases), so MACs per ingested nonzero ≈ K/S.
      const double taps = std::max(1.0, K / static_cast<double>(block.stride));
      const double rho = sparse_mode ? block.density_in : 1.0;
      const double mean_active = L * rho;
      stats.mean_cycles = wload + mean_active + drain;
      stats.var_cycles = sparse_mode ? L * rho * (1.0 - rho) : 0.0;
      stats.mean_macs = mean_active * taps;
      break;
    }
    case isa::RowOpKind::MSRC: {
      const double rho = sparse_mode ? block.density_in : 1.0;
      const double m = sparse_mode ? block.density_mask : 1.0;
      // A nonzero is skipped by look-ahead only when all K of its output
      // positions are masked.
      const double active_prob = 1.0 - std::pow(1.0 - m, K);
      const double p_eff = rho * (sparse_mode ? active_prob : 1.0);
      stats.mean_cycles = wload + L * p_eff + drain;
      stats.var_cycles = sparse_mode ? L * p_eff * (1.0 - p_eff) : 0.0;
      stats.mean_macs = L * rho * K * m;
      break;
    }
    case isa::RowOpKind::FC: {
      // Dot-product mapping: stream the compressed operand vector once,
      // multiplying each element into fc_lanes output accumulators. No
      // kernel preload; weight columns arrive from the buffer per cycle.
      const double rho = sparse_mode ? block.density_in : 1.0;
      const auto lanes = static_cast<double>(block.fc_lanes);
      stats.mean_cycles = L * rho + drain;
      stats.var_cycles = sparse_mode ? L * rho * (1.0 - rho) : 0.0;
      stats.mean_macs = L * rho * lanes;
      break;
    }
    case isa::RowOpKind::OSRC: {
      ST_REQUIRE(block.second_len > 0, "OSRC needs the I row length");
      const auto Li = static_cast<double>(block.second_len);
      const double rho_do = sparse_mode ? block.density_in : 1.0;
      const double rho_i = sparse_mode ? block.density_second : 1.0;
      const double nnz_do = L * rho_do;
      const double nnz_i = Li * rho_i;
      // The dO nonzero count X is Binomial(L, ρ) and the PE pays
      // ceil(X/K) chunk reloads. Two effects matter at high sparsity that
      // the naive ceil(E[X]/K) misses (it overcharges strided/pruned GTW
      // by up to ~2× — see tests/test_exact_agreement_matrix.cpp):
      // E[ceil(X/K)] ≠ ceil(E[X]/K), and an empty dO row is never
      // scheduled at all (no chunks, no drain). Small rows get the exact
      // binomial sum; long rows span many chunks, where X/K + 1/2 is the
      // right mean and emptiness is negligible.
      double p0 = 0.0;
      double mean_chunks = std::ceil(std::max(0.0, nnz_do) / K);
      const std::size_t len = block.in_len;
      if (sparse_mode && rho_do < 1.0) {
        // The pmf recurrence needs a nonzero P[X=0] seed: for wide,
        // dense-ish rows (1-ρ)^L underflows to exactly 0 and the sum
        // would silently collapse to zero chunks — those rows span many
        // chunks anyway, which is the closed form's regime.
        const double pmf0 =
            std::pow(1.0 - rho_do, static_cast<double>(len));
        if (len <= 512 && pmf0 > 0.0) {
          double pmf = pmf0;
          p0 = pmf;
          double acc = 0.0;
          for (std::size_t x = 1; x <= len; ++x) {
            pmf *= (static_cast<double>(len - x + 1) /
                    static_cast<double>(x)) *
                   (rho_do / (1.0 - rho_do));
            acc += pmf * std::ceil(static_cast<double>(x) / K);
          }
          mean_chunks = acc;  // unconditional; conditioned below
        } else {
          p0 = std::exp(static_cast<double>(len) * std::log1p(-rho_do));
          mean_chunks = nnz_do / K + 0.5;
        }
      }
      stats.sched_fraction = std::max(1e-12, 1.0 - p0);
      const double chunks = mean_chunks / stats.sched_fraction;
      stats.mean_cycles = chunks * (wload + nnz_i) + drain;
      // Variance from both operands (delta-method on the product form).
      const double var_i = sparse_mode ? Li * rho_i * (1.0 - rho_i) : 0.0;
      const double var_do = sparse_mode ? L * rho_do * (1.0 - rho_do) : 0.0;
      const double dc_ddo = (wload + nnz_i) / K;
      stats.var_cycles = chunks * chunks * var_i + dc_ddo * dc_ddo * var_do;
      stats.mean_macs = nnz_do * K * rho_i / stats.sched_fraction;
      break;
    }
  }
  return stats;
}

}  // namespace sparsetrain::sim
