#include "sim/backend.hpp"

#include <utility>

#include "sim/exact_network.hpp"
#include "util/require.hpp"

namespace sparsetrain::sim {

AcceleratorBackend::AcceleratorBackend(std::string name, ArchConfig cfg)
    : name_(std::move(name)), accel_(std::move(cfg)) {
  ST_REQUIRE(!name_.empty(), "backend name must be non-empty");
}

SimReport AcceleratorBackend::run(const isa::Program& program,
                                  const workload::NetworkConfig& net,
                                  const workload::SparsityProfile& profile,
                                  std::uint64_t seed,
                                  const ExactOptions& exact) const {
  const bool exact_run = program.engine == isa::EngineKind::Exact &&
                         accel_.config().sparse;
  SimReport report =
      exact_run
          ? run_exact(accel_.config(), program, net, profile, seed, exact)
          : accel_.run(program, net, profile, seed);
  report.backend = name_;
  return report;
}

ExactBackend::ExactBackend(std::string name, ArchConfig cfg, ExactOptions opts)
    : name_(std::move(name)), engine_(std::move(cfg), opts) {
  ST_REQUIRE(!name_.empty(), "backend name must be non-empty");
}

SimReport ExactBackend::run(const isa::Program& program,
                            const workload::NetworkConfig& net,
                            const workload::SparsityProfile& profile,
                            std::uint64_t seed,
                            const ExactOptions& /*exact*/) const {
  SimReport report = run_exact(engine_, program, net, profile, seed);
  report.backend = name_;
  return report;
}

void BackendRegistry::add(std::shared_ptr<Backend> backend) {
  ST_REQUIRE(backend != nullptr, "cannot register a null backend");
  const std::string& name = backend->name();
  ST_REQUIRE(!name.empty(), "backend name must be non-empty");
  ST_REQUIRE(by_name_.find(name) == by_name_.end(),
             "backend '" + name + "' is already registered");
  // Reject nonsense architectures at the registration boundary: a zero
  // PE count or an absurd buffer would otherwise just simulate garbage.
  backend->arch().validate();
  by_name_.emplace(name, backend);
  order_.push_back(std::move(backend));
}

std::shared_ptr<Backend> BackendRegistry::register_arch(std::string name,
                                                        ArchConfig cfg) {
  auto backend =
      std::make_shared<AcceleratorBackend>(std::move(name), std::move(cfg));
  add(backend);
  return backend;
}

std::shared_ptr<Backend> BackendRegistry::register_exact(std::string name,
                                                         ArchConfig cfg,
                                                         ExactOptions opts) {
  auto backend =
      std::make_shared<ExactBackend>(std::move(name), std::move(cfg), opts);
  add(backend);
  return backend;
}

std::shared_ptr<const Backend> BackendRegistry::find(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const Backend& BackendRegistry::at(const std::string& name) const {
  const auto it = by_name_.find(name);
  ST_REQUIRE(it != by_name_.end(),
             "no backend registered under '" + name + "'");
  return *it->second;
}

bool BackendRegistry::contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const auto& b : order_) out.push_back(b->name());
  return out;
}

}  // namespace sparsetrain::sim
