// Chrome-trace export of simulation reports.
//
// Writes a SimReport's layer-stage timeline as a chrome://tracing /
// Perfetto-compatible JSON file ("trace event format"), one lane per
// training stage, so where the cycles go can be inspected visually.
#pragma once

#include <string>

#include "sim/report.hpp"

namespace sparsetrain::sim {

/// Writes `report` as trace events to `path`. Durations are in
/// microseconds of simulated time at the report's clock. Returns false on
/// I/O failure.
bool write_chrome_trace(const SimReport& report, const std::string& path);

}  // namespace sparsetrain::sim
