// Profiling seam for the exact engine.
//
// The sim layer must not depend on obs (the engine is usable without
// the serving tier), so the engine only sees this abstract interface.
// obs::EngineProfiler implements it on top of the metrics registry.
//
// The hook is called once per engine stage (forward, gta, gtw, fc)
// after the stage's tasks complete — never inside the per-task loop —
// so the zero-allocation, byte-identical hot path is untouched. When
// ExactOptions::profiler is null (the default) the engine takes no
// timestamps at all.
#pragma once

#include <cstdint>

namespace sparsetrain::sim {

class ExactProfiler {
 public:
  virtual ~ExactProfiler() = default;

  /// One engine stage finished. `seconds` is wall time for the whole
  /// stage (all tasks, all tiles), `tiles` is the number of parallel
  /// tiles actually used (1 for the serial path, 0 for an empty stage).
  virtual void record_stage(const char* stage, double seconds,
                            std::uint64_t tasks, std::uint64_t row_ops,
                            std::uint64_t tiles) noexcept = 0;
};

}  // namespace sparsetrain::sim
