#include "sim/trace.hpp"

#include <fstream>

namespace sparsetrain::sim {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

bool write_chrome_trace(const SimReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;

  const double us_per_cycle = 1.0 / (report.clock_ghz * 1e3);
  out << "{\"traceEvents\":[\n";

  // Stages execute back-to-back (barriers); lay them out sequentially,
  // one thread lane per training stage.
  double t = 0.0;
  bool first = true;
  for (const auto& s : report.stages) {
    const double dur = static_cast<double>(s.cycles) * us_per_cycle;
    const int tid = static_cast<int>(s.stage);
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"" << json_escape(s.layer_name) << "\","
        << "\"cat\":\"" << isa::stage_name(s.stage) << "\","
        << "\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ","
        << "\"ts\":" << t << ",\"dur\":" << dur << ","
        << "\"args\":{\"cycles\":" << s.cycles
        << ",\"macs\":" << s.activity.macs
        << ",\"sram_bytes\":" << s.activity.sram_bytes
        << ",\"onchip_uj\":" << s.energy.on_chip_pj() * 1e-6 << "}}";
    t += dur;
  }

  // Lane names.
  const char* lanes[] = {"Forward", "GTA", "GTW"};
  for (int i = 0; i < 3; ++i) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << i
        << ",\"args\":{\"name\":\"" << lanes[i] << "\"}}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace sparsetrain::sim
