// PE cost models.
//
// Two views of the same microarchitecture (paper Fig. 7c):
//
//  * PeExact — a cycle-stepped state machine that consumes real compressed
//    rows. Used by tests and small-scale runs: it IS the definition of the
//    PE's timing behaviour (1 nonzero ingested per cycle, K-wide MAC into
//    Reg-2, mask look-ahead skipping, OSRC chunk reloads).
//  * row_op_cost() — closed-form mean/variance of the same cost as a
//    function of row length and operand densities, used for ImageNet-scale
//    blocks where stepping every element would be pointless. Tests assert
//    the closed form matches PeExact in expectation.
#pragma once

#include <algorithm>
#include <cstddef>

#include "dataflow/row_ops.hpp"
#include "isa/instruction.hpp"
#include "tensor/bit_mask.hpp"
#include "tensor/sparse_row.hpp"
#include "util/rng.hpp"

namespace sparsetrain::sim {

/// Fixed microarchitecture timing parameters.
struct PeTiming {
  std::size_t weight_port_width = 2;  ///< weights loaded per cycle (Port-2)
  std::size_t pipeline_drain = 2;     ///< MAC pipeline flush at row end
};

/// Cycle/work outcome of one row op on one PE.
struct PeCost {
  std::size_t cycles = 0;  ///< occupancy of the PE
  std::size_t macs = 0;    ///< useful multiplies performed
  std::size_t ingested = 0;  ///< operand elements that cost a cycle
};

/// Exact cycle-stepped PE. Each call simulates one full row op. Operands
/// are lightweight views (an owning SparseRow converts implicitly), so
/// the exact engine can stream rows straight out of a CompressedRows
/// arena without touching the heap. The run_* bodies are inline for the
/// same reason the work counters are: they execute once per row op, and
/// fusing them into the engine's task loops is worth more than a tidy TU
/// boundary.
class PeExact {
 public:
  explicit PeExact(PeTiming timing = {}) : timing_(timing) {}

  /// Weight-buffer preload cycles for `geo`'s kernel row. Constant per
  /// stage (it depends only on the block), so the engine's tile kernels
  /// hoist it out of their op loops and feed it back through the
  /// `wl`-taking overloads below — the same arithmetic, folded once per
  /// stage instead of paying an integer division on every row op.
  std::size_t weight_load(const isa::RowBlock& geo) const {
    return (geo.kernel + timing_.weight_port_width - 1) /
           timing_.weight_port_width;
  }

  /// SRC: sparse input row against a K-length kernel row.
  PeCost run_src(SparseRowView input, const isa::RowBlock& geo) const {
    return run_src(input, geo, weight_load(geo));
  }

  /// SRC with the stage-constant weight-load cycles precomputed.
  PeCost run_src(SparseRowView input, const isa::RowBlock& geo,
                 std::size_t wl) const {
    const dataflow::RowOpWork w =
        dataflow::src_work(input, row_geometry(geo), geo.out_len);
    PeCost cost;
    cost.ingested = w.active_inputs;
    cost.macs = w.macs;
    cost.cycles = wl + w.active_inputs + timing_.pipeline_drain;
    return cost;
  }

  /// MSRC: sparse dO row scattered under an output mask; inputs whose whole
  /// window is masked are skipped by look-ahead (zero cycles).
  PeCost run_msrc(SparseRowView input, const BitMask& mask,
                  const isa::RowBlock& geo) const {
    return run_msrc(input, mask, geo, weight_load(geo));
  }

  /// MSRC with the stage-constant weight-load cycles precomputed.
  PeCost run_msrc(SparseRowView input, const BitMask& mask,
                  const isa::RowBlock& geo, std::size_t wl) const {
    const dataflow::RowOpWork w =
        dataflow::msrc_work(input, mask, row_geometry(geo), geo.out_len);
    PeCost cost;
    cost.ingested = w.active_inputs;  // look-ahead makes skips free
    cost.macs = w.macs;
    cost.cycles = wl + w.active_inputs + timing_.pipeline_drain;
    return cost;
  }

  /// MSRC against a prefix-popcount mask (see the dataflow overload):
  /// the GTA stage builds one prefix per task and pays O(1) per window.
  /// Costs are identical to the BitMask overloads for the same mask.
  PeCost run_msrc(SparseRowView input, const std::uint32_t* mask_prefix,
                  const isa::RowBlock& geo, std::size_t wl) const {
    const dataflow::RowOpWork w =
        dataflow::msrc_work(input, mask_prefix, row_geometry(geo),
                            geo.out_len);
    PeCost cost;
    cost.ingested = w.active_inputs;  // look-ahead makes skips free
    cost.macs = w.macs;
    cost.cycles = wl + w.active_inputs + timing_.pipeline_drain;
    return cost;
  }

  /// Compatibility overload for the sorted-offset mask representation
  /// (converts per call — test/reference paths only).
  PeCost run_msrc(SparseRowView input, const MaskRow& mask,
                  const isa::RowBlock& geo) const {
    return run_msrc(input, bitmask_from(mask), geo);
  }

  /// OSRC: dO nonzeros are cached in Reg-1 in chunks of K; every I nonzero
  /// is streamed once per chunk.
  PeCost run_osrc(SparseRowView input_acts, SparseRowView grad_out,
                  const isa::RowBlock& geo) const {
    const std::size_t chunks =
        grad_out.nnz() == 0
            ? 0
            : (grad_out.nnz() + geo.kernel - 1) / geo.kernel;
    return run_osrc(input_acts, grad_out, geo, weight_load(geo), chunks);
  }

  /// OSRC with the weight load and the dO chunk count precomputed: the
  /// chunk count depends only on grad_out, so the GTW kernel reuses it
  /// across every kernel tap the same dO row pairs with.
  PeCost run_osrc(SparseRowView input_acts, SparseRowView grad_out,
                  const isa::RowBlock& geo, std::size_t wl,
                  std::size_t chunks) const {
    const dataflow::RowOpWork w =
        dataflow::osrc_work(input_acts, grad_out, row_geometry(geo));
    PeCost cost;
    cost.macs = w.macs;
    // dO nonzeros are cached K at a time in Reg-1; each chunk streams every
    // I nonzero once past the scratchpad.
    cost.ingested = chunks * input_acts.nnz();
    cost.cycles = chunks * (wl + input_acts.nnz()) + timing_.pipeline_drain;
    return cost;
  }

 private:
  static dataflow::RowGeometry row_geometry(const isa::RowBlock& block) {
    dataflow::RowGeometry geo;
    geo.kernel = block.kernel;
    geo.stride = block.stride;
    geo.padding = block.padding;
    return geo;
  }

  PeTiming timing_;
};

/// Streaming fold of one group task's row-op costs into the group's
/// parallel-round timing (paper Fig. 7a): a group's PEs take the task's
/// ops `width` at a time and each round lasts as long as its slowest op.
/// The exact engine's tile kernels feed ops one at a time — no PeCost
/// list is ever materialised — and read the task's cycle count back from
/// end_task(); the busy/MAC/register counters accumulate across every
/// task fed since construction (one reducer per tile). All arithmetic is
/// the plain round fold, so the result is byte-identical to reducing a
/// materialised op list.
class PeGroupReducer {
 public:
  PeGroupReducer(std::size_t width, std::size_t lanes)
      : width_(width), lanes_(lanes) {}

  void begin_task() {
    task_cycles_ = 0;
    round_max_ = 0;
    in_round_ = 0;
  }

  void add(const PeCost& op) {
    ++row_ops_;
    busy_ += op.cycles;
    macs_ += op.macs;
    reg_ += op.ingested * 2 * lanes_ + lanes_;
    round_max_ = std::max(round_max_, op.cycles);
    if (++in_round_ == width_) {
      task_cycles_ += round_max_;
      round_max_ = 0;
      in_round_ = 0;
    }
  }

  /// Closes the task's partial round and returns its cycle count.
  std::size_t end_task() {
    if (in_round_ != 0) {
      task_cycles_ += round_max_;
      round_max_ = 0;
      in_round_ = 0;
    }
    return task_cycles_;
  }

  std::size_t row_ops() const { return row_ops_; }
  std::size_t busy() const { return busy_; }
  std::size_t macs() const { return macs_; }
  std::size_t reg() const { return reg_; }

 private:
  std::size_t width_;
  std::size_t lanes_;
  std::size_t task_cycles_ = 0;
  std::size_t round_max_ = 0;
  std::size_t in_round_ = 0;
  std::size_t row_ops_ = 0;
  std::size_t busy_ = 0;
  std::size_t macs_ = 0;
  std::size_t reg_ = 0;
};

/// Closed-form statistics of one row op's PE cost. Means are per
/// *scheduled* op: ops the controller never dispatches (OSRC with an
/// empty dO row) are excluded, and `sched_fraction` tells the scheduler
/// what fraction of a block's nominal ops is dispatched at all.
struct PeCostStats {
  double mean_cycles = 0.0;
  double var_cycles = 0.0;
  double mean_macs = 0.0;
  double sched_fraction = 1.0;  ///< P[the op is scheduled] (OSRC: dO ≠ 0)
};

/// Mean/variance of the PE cost for a row op drawn from `block`'s operand
/// distributions (binomial nonzero counts). `sparse_mode` false models the
/// dense baseline: every element costs a cycle and a MAC regardless of
/// value, and masks are ignored.
PeCostStats row_op_cost(const isa::RowBlock& block, const PeTiming& timing,
                        bool sparse_mode);

}  // namespace sparsetrain::sim
