// PE cost models.
//
// Two views of the same microarchitecture (paper Fig. 7c):
//
//  * PeExact — a cycle-stepped state machine that consumes real compressed
//    rows. Used by tests and small-scale runs: it IS the definition of the
//    PE's timing behaviour (1 nonzero ingested per cycle, K-wide MAC into
//    Reg-2, mask look-ahead skipping, OSRC chunk reloads).
//  * row_op_cost() — closed-form mean/variance of the same cost as a
//    function of row length and operand densities, used for ImageNet-scale
//    blocks where stepping every element would be pointless. Tests assert
//    the closed form matches PeExact in expectation.
#pragma once

#include <cstddef>

#include "isa/instruction.hpp"
#include "tensor/sparse_row.hpp"
#include "util/rng.hpp"

namespace sparsetrain::sim {

/// Fixed microarchitecture timing parameters.
struct PeTiming {
  std::size_t weight_port_width = 2;  ///< weights loaded per cycle (Port-2)
  std::size_t pipeline_drain = 2;     ///< MAC pipeline flush at row end
};

/// Cycle/work outcome of one row op on one PE.
struct PeCost {
  std::size_t cycles = 0;  ///< occupancy of the PE
  std::size_t macs = 0;    ///< useful multiplies performed
  std::size_t ingested = 0;  ///< operand elements that cost a cycle
};

/// Exact cycle-stepped PE. Each call simulates one full row op.
class PeExact {
 public:
  explicit PeExact(PeTiming timing = {}) : timing_(timing) {}

  /// SRC: sparse input row against a K-length kernel row.
  PeCost run_src(const SparseRow& input, const isa::RowBlock& geo) const;

  /// MSRC: sparse dO row scattered under an output mask; inputs whose whole
  /// window is masked are skipped by look-ahead (zero cycles).
  PeCost run_msrc(const SparseRow& input, const MaskRow& mask,
                  const isa::RowBlock& geo) const;

  /// OSRC: dO nonzeros are cached in Reg-1 in chunks of K; every I nonzero
  /// is streamed once per chunk.
  PeCost run_osrc(const SparseRow& input_acts, const SparseRow& grad_out,
                  const isa::RowBlock& geo) const;

 private:
  PeTiming timing_;
};

/// Closed-form statistics of one row op's PE cost. Means are per
/// *scheduled* op: ops the controller never dispatches (OSRC with an
/// empty dO row) are excluded, and `sched_fraction` tells the scheduler
/// what fraction of a block's nominal ops is dispatched at all.
struct PeCostStats {
  double mean_cycles = 0.0;
  double var_cycles = 0.0;
  double mean_macs = 0.0;
  double sched_fraction = 1.0;  ///< P[the op is scheduled] (OSRC: dO ≠ 0)
};

/// Mean/variance of the PE cost for a row op drawn from `block`'s operand
/// distributions (binomial nonzero counts). `sparse_mode` false models the
/// dense baseline: every element costs a cycle and a MAC regardless of
/// value, and masks are ignored.
PeCostStats row_op_cost(const isa::RowBlock& block, const PeTiming& timing,
                        bool sparse_mode);

}  // namespace sparsetrain::sim
