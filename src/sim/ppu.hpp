// Post Processing Unit functional model (paper Fig. 7b).
//
// The PPU sits behind each PE group and performs all point-wise work on
// the accumulated partial sums:
//   * accumulates the K partial row results from the group's PEs,
//   * optionally applies ReLU,
//   * converts the result row to the compressed format on its way to the
//     buffer, and
//   * during the GTA step accumulates Σg and Σ|g| of the gradients that
//     stream through — Σg per channel yields the bias gradients, Σ|g|
//     feeds threshold determination. This is why the pruning algorithm
//     costs no extra pass in hardware.
#pragma once

#include <span>
#include <vector>

#include "tensor/sparse_row.hpp"

namespace sparsetrain::sim {

class Ppu {
 public:
  /// Accumulates a partial-sum row into the current row buffer (sizes must
  /// match across calls until flush).
  void accumulate(std::span<const float> partial);

  /// Finalises the current row: optional ReLU, compression, statistics
  /// accumulation. Clears the row buffer for the next row.
  SparseRow flush(bool apply_relu);

  /// Σg since the last reset (bias-gradient accumulator).
  double grad_sum() const { return grad_sum_; }

  /// Σ|g| since the last reset (threshold-determination accumulator).
  double abs_sum() const { return abs_sum_; }

  /// Elements seen since the last reset.
  std::size_t count() const { return count_; }

  /// Clears the statistics accumulators (start of a new layer/batch).
  void reset_stats();

 private:
  std::vector<float> row_;
  bool row_open_ = false;
  double grad_sum_ = 0.0;
  double abs_sum_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace sparsetrain::sim
