// Pluggable simulation backends.
//
// A Backend is one named, runnable architecture: the SparseTrain
// accelerator, the Eyeriss-like dense baseline, or any ArchConfig variant
// an ablation wants to sweep. The BackendRegistry maps names to backends
// so drivers select architectures by string ("sparsetrain",
// "eyeriss-dense", "sparsetrain-28g", ...) instead of constructing bespoke
// Accelerator objects — core::Session evaluates submitted workloads
// against any subset of the registered backends.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/accelerator.hpp"
#include "sim/exact_engine.hpp"

namespace sparsetrain::sim {

/// Per-job simulation options (core::Session::JobOptions carries one).
/// `engine` selects which engine the job's programs are *compiled* for —
/// backends dispatch on the program's metadata, so the choice travels
/// with the program, not this struct. The exact knobs only affect
/// wall-clock time, never results.
struct SimOptions {
  isa::EngineKind engine = isa::EngineKind::Statistical;
  ExactOptions exact;  ///< worker budget / tile size for exact runs
};

/// One named, runnable architecture.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name (stable identifier used by Session::submit).
  virtual const std::string& name() const = 0;

  /// Execution kind ("accelerator" = engine follows the program's
  /// metadata, "exact" = pinned to the exact engine). Part of the
  /// persistent store's job canonicalisation (serve::fingerprint_v1):
  /// two backends with identical architectures but different kinds
  /// produce different reports and must never share a store key.
  virtual const char* kind() const = 0;

  /// The architecture this backend simulates.
  virtual const ArchConfig& arch() const = 0;

  /// Runs a compiled program with an explicit scheduling seed. `seed`
  /// replaces the architecture's configured seed so a caller (the
  /// Session job queue) can give every job its own deterministic stream.
  /// Which engine runs is the *program's* metadata (Program::engine);
  /// `exact` only sizes the parallelism of exact runs.
  virtual SimReport run(const isa::Program& program,
                        const workload::NetworkConfig& net,
                        const workload::SparsityProfile& profile,
                        std::uint64_t seed,
                        const ExactOptions& exact) const = 0;

  /// Runs with default parallelism.
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                std::uint64_t seed) const {
    return run(program, net, profile, seed, ExactOptions{});
  }

  /// Runs with the architecture's own seed.
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile) const {
    return run(program, net, profile, arch().seed, ExactOptions{});
  }

  /// Whether the backend exploits sparsity. Dense backends are handed an
  /// all-dense profile (and the matching program) by the Session.
  bool sparse() const { return arch().sparse; }
};

/// Backend wrapping the cycle-level Accelerator engine (both sparse and
/// dense modes — the dense baseline is `cfg.sparse = false`). Programs
/// compiled for the exact engine are re-driven through sim::run_exact
/// with the caller's exact options, provided the architecture is sparse;
/// dense architectures always use the statistical model (the exact
/// engine has no dense semantics).
class AcceleratorBackend : public Backend {
 public:
  AcceleratorBackend(std::string name, ArchConfig cfg);

  const std::string& name() const override { return name_; }
  const char* kind() const override { return "accelerator"; }
  const ArchConfig& arch() const override { return accel_.config(); }

  using Backend::run;
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                std::uint64_t seed, const ExactOptions& exact) const override;

 private:
  std::string name_;
  Accelerator accel_;
};

/// Backend pinned to the exact tensor-driven engine: every program runs
/// through sim::run_exact with the parallelism options fixed at
/// registration, whatever engine the program was compiled for (only its
/// stage structure is read). Register one next to its statistical twin to
/// A/B the two engines on identical submissions. Holds one long-lived
/// engine (and worker pool) for its lifetime; concurrent jobs share it.
class ExactBackend : public Backend {
 public:
  ExactBackend(std::string name, ArchConfig cfg, ExactOptions opts = {});

  const std::string& name() const override { return name_; }
  const char* kind() const override { return "exact"; }
  const ArchConfig& arch() const override { return engine_.config(); }
  const ExactOptions& exact_options() const { return engine_.options(); }

  using Backend::run;
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                std::uint64_t seed, const ExactOptions& exact) const override;

 private:
  std::string name_;
  ExactEngine engine_;
};

/// Name → backend map with stable registration order.
///
/// Mutation (add/register_arch) is not thread-safe; register everything
/// before submitting jobs. Lookups from concurrent readers are fine once
/// registration has stopped.
class BackendRegistry {
 public:
  /// Registers a backend under its own name. Names must be unique and
  /// non-empty.
  void add(std::shared_ptr<Backend> backend);

  /// Convenience: registers an AcceleratorBackend for `cfg` under `name`
  /// and returns it.
  std::shared_ptr<Backend> register_arch(std::string name, ArchConfig cfg);

  /// Convenience: registers an ExactBackend (exact tensor-driven engine,
  /// parallelised per `opts`) for `cfg` under `name` and returns it.
  std::shared_ptr<Backend> register_exact(std::string name, ArchConfig cfg,
                                          ExactOptions opts = {});

  /// nullptr when no backend has that name.
  std::shared_ptr<const Backend> find(const std::string& name) const;

  /// Throws ContractError when no backend has that name.
  const Backend& at(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::size_t size() const { return order_.size(); }

  /// Names in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<std::shared_ptr<Backend>> order_;
  std::unordered_map<std::string, std::shared_ptr<Backend>> by_name_;
};

}  // namespace sparsetrain::sim
