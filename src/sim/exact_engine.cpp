#include "sim/exact_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>

#include "sim/profile_hook.hpp"
#include "util/require.hpp"

namespace sparsetrain::sim {

namespace {

/// The contiguous ky range of output row oy whose input rows
/// iy = oy·S + ky − P exist (are not padding), plus the iy of the first
/// valid ky. iy is monotone in ky, so validity is one interval — the
/// per-(channel, tap) padding test of the stage kernels collapses to a
/// per-task range computation.
struct KyRange {
  std::size_t lo;   ///< first valid ky
  std::size_t hi;   ///< one past the last valid ky (hi ≤ lo: none)
  std::size_t iy0;  ///< input row of ky == lo (iy of ky k is iy0 + k − lo)
};

KyRange valid_ky_range(std::size_t oy, const dataflow::ConvGeometry& geo,
                       std::size_t in_h) {
  const std::int64_t base = static_cast<std::int64_t>(oy * geo.stride) -
                            static_cast<std::int64_t>(geo.padding);
  const std::int64_t lo = base < 0 ? -base : 0;
  std::int64_t hi = static_cast<std::int64_t>(in_h) - base;
  if (hi > static_cast<std::int64_t>(geo.kernel))
    hi = static_cast<std::int64_t>(geo.kernel);
  if (hi < lo) hi = lo;
  return KyRange{static_cast<std::size_t>(lo), static_cast<std::size_t>(hi),
                 static_cast<std::size_t>(base + lo)};
}

isa::RowBlock block_from(const dataflow::ConvGeometry& geo,
                         std::size_t in_len, std::size_t out_len,
                         isa::RowOpKind kind) {
  isa::RowBlock b;
  b.kind = kind;
  b.in_len = in_len;
  b.out_len = out_len;
  b.kernel = static_cast<std::uint32_t>(geo.kernel);
  b.stride = static_cast<std::uint32_t>(geo.stride);
  b.padding = static_cast<std::uint32_t>(geo.padding);
  return b;
}

/// Per-worker-thread scratch. Capacities grow to the stage's steady state
/// within the first few tasks, after which evaluating a task performs no
/// heap allocation at all (the zero-alloc contract of the hot path).
struct TaskScratch {
  std::vector<std::uint32_t> mask_prefix;  ///< masked GTA: prefix popcount
  std::vector<std::uint32_t> gta_oy;  ///< ky → source oy (kNoRow: padding)
};

constexpr std::uint32_t kNoRow = ~std::uint32_t{0};

TaskScratch& task_scratch() {
  thread_local TaskScratch scratch;
  return scratch;
}

/// Flat indexed d-ary min-heap over the PE groups' loads, keyed by
/// (load, group id) — the identical order std::priority_queue<pair,
/// greater<>> gave the old merge, so task→group assignment (and thus
/// every makespan) is byte-identical to the PR-3 engine. Only the root
/// ever changes (assign = add to the least-loaded group, sift down), and
/// the final makespan is a direct scan of the load array instead of
/// destructively popping a heap.
class GroupHeap {
 public:
  GroupHeap(std::size_t* loads, std::uint32_t* heap, std::size_t n)
      : loads_(loads), heap_(heap), n_(n) {}

  /// Assigns a task of `cycles` to the least-loaded group.
  void assign(std::size_t cycles) {
    loads_[heap_[0]] += cycles;
    sift_down_root();
  }

  std::size_t max_load() const {
    std::size_t m = 0;
    for (std::size_t g = 0; g < n_; ++g) m = std::max(m, loads_[g]);
    return m;
  }

 private:
  static constexpr std::size_t kArity = 4;

  bool before(std::uint32_t a, std::uint32_t b) const {
    return loads_[a] != loads_[b] ? loads_[a] < loads_[b] : a < b;
  }

  void sift_down_root() {
    std::size_t i = 0;
    const std::uint32_t moved = heap_[0];
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n_) break;
      const std::size_t last = std::min(first + kArity, n_);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], moved)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = moved;
  }

  std::size_t* loads_;
  std::uint32_t* heap_;
  std::size_t n_;
};

/// Shared coordination state of one tiled stage. Heap-held behind a
/// shared_ptr: helper tasks that reach the pool after the stage finished
/// must still fail their tile claim safely. Helpers touch the kernel and
/// arena (whose lifetimes end with run_tasks' frame) only after a
/// successful claim, and the merging caller cannot return before every
/// claimed tile's ready flag rose — so those references are always alive
/// when dereferenced.
struct TileRun {
  explicit TileRun(std::size_t tiles) : ready(tiles, 0) {}
  std::atomic<std::size_t> next{0};  ///< tile claim counter
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint8_t> ready;   ///< guarded by mu
  std::exception_ptr error;          ///< first tile error (guarded by mu)

  void mark_ready(std::size_t t) {
    {
      std::lock_guard lock(mu);
      ready[t] = 1;
    }
    cv.notify_all();
  }

  void record_error() {
    std::lock_guard lock(mu);
    if (!error) error = std::current_exception();
  }
};

}  // namespace

double ExactStageResult::utilization(std::size_t total_pes) const {
  if (cycles == 0 || total_pes == 0) return 0.0;
  return static_cast<double>(activity.busy_cycles) /
         (static_cast<double>(cycles) * static_cast<double>(total_pes));
}

ExactEngine::ExactEngine(ArchConfig cfg, ExactOptions opts)
    : cfg_(std::move(cfg)), opts_(opts), pe_(cfg_.timing) {
  ST_REQUIRE(cfg_.sparse, "the exact engine models the sparse architecture");
  ST_REQUIRE(cfg_.pe_groups > 0 && cfg_.pes_per_group > 0,
             "architecture needs PEs");
  if (opts_.shared_pool == nullptr && opts_.workers != 1) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.workers);
  }
}

ExactEngine::~ExactEngine() = default;

ExactEngine::ArenaLease::~ArenaLease() {
  if (engine != nullptr && arena != nullptr) {
    engine->release_arena(std::move(arena));
  }
}

ExactEngine::ArenaLease ExactEngine::acquire_arena() const {
  std::unique_lock lock(arenas_mu_);
  if (!free_arenas_.empty()) {
    auto arena = std::move(free_arenas_.back());
    free_arenas_.pop_back();
    return ArenaLease(this, std::move(arena));
  }
  lock.unlock();
  return ArenaLease(this, std::make_unique<StageArena>());
}

void ExactEngine::release_arena(std::unique_ptr<StageArena> arena) const {
  std::lock_guard lock(arenas_mu_);
  free_arenas_.push_back(std::move(arena));
}

ExactEngine::RowSet ExactEngine::compress(const Tensor& t) const {
  return compress_tensor(t, worker_pool());
}

std::size_t ExactEngine::tile_for(std::size_t task_count,
                                  std::size_t est_ops_per_task) const {
  if (opts_.tile_tasks != 0) return opts_.tile_tasks;
  // Aim for a roughly constant amount of work per tile: GTW tasks often
  // schedule only a handful of row ops (sparse dO rows skip whole
  // slices) and pack thousands of tasks per tile, while op-heavy forward
  // tasks split finely. Then cap so the stage still spreads over the
  // pool with slack for load balance. Tile size affects wall-clock only,
  // never results (the merge consumes tasks in index order regardless).
  constexpr std::size_t kTileRowOps = 2048;
  constexpr std::size_t kMaxTile = 4096;
  std::size_t tile =
      kTileRowOps / std::max<std::size_t>(1, est_ops_per_task);
  tile = std::clamp<std::size_t>(tile, 1, kMaxTile);
  const util::ThreadPool* pool = worker_pool();
  const std::size_t threads =
      (pool != nullptr ? pool->worker_count() : 0) + 1;
  const std::size_t balance_cap =
      std::max<std::size_t>(1, task_count / (4 * threads));
  return std::max<std::size_t>(1, std::min(tile, balance_cap));
}

template <typename Kernel>
ExactStageResult ExactEngine::run_tasks(std::size_t task_count,
                                        std::size_t est_ops_per_task,
                                        const Kernel& kernel) const {
  ExactStageResult result;
  result.tasks = task_count;

  // The profiler is the only source of timing in the engine: when it is
  // null (the default) no clock is read anywhere on this path.
  ExactProfiler* const profiler = opts_.profiler;
  std::chrono::steady_clock::time_point prof_start{};
  if (profiler != nullptr) prof_start = std::chrono::steady_clock::now();
  const auto prof_record = [&](std::uint64_t tiles_used) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      prof_start)
            .count();
    profiler->record_stage(Kernel::kStage, seconds, result.tasks,
                           result.row_ops, tiles_used);
  };

  ArenaLease lease = acquire_arena();
  StageArena& arena = *lease.arena;

  // Group scheduler state. heap[i] = i is a valid (load, id) min-heap
  // when every load is zero, because parent indices are smaller ids.
  arena.loads.assign(cfg_.pe_groups, 0);
  arena.heap.resize(cfg_.pe_groups);
  for (std::size_t g = 0; g < cfg_.pe_groups; ++g) {
    arena.heap[g] = static_cast<std::uint32_t>(g);
  }
  GroupHeap sched(arena.loads.data(), arena.heap.data(), cfg_.pe_groups);

  if (task_count == 0) {
    if (profiler != nullptr) prof_record(0);
    return result;
  }

  util::ThreadPool* pool = worker_pool();
  const std::size_t tile = tile_for(task_count, est_ops_per_task);
  const std::size_t tiles = (task_count + tile - 1) / tile;

  TileTotals totals;
  if (pool == nullptr || tiles <= 1) {
    // Serial: evaluation and merge fuse into one streaming loop — each
    // task's cycle count goes straight into the scheduler, no per-task
    // storage at all.
    PeGroupReducer red(cfg_.pes_per_group, kernel.lanes);
    for (std::size_t i = 0; i < task_count; ++i) {
      sched.assign(kernel(i, red));
    }
    totals = TileTotals{red.row_ops(), red.busy(), red.macs(), red.reg()};
  } else {
    arena.cycles.resize(task_count);
    arena.tile_totals.assign(tiles, TileTotals{});

    auto run = std::make_shared<TileRun>(tiles);
    auto eval_tile = [&](std::size_t t) {
      try {
        const std::size_t first = t * tile;
        const std::size_t last = std::min(first + tile, task_count);
        PeGroupReducer red(cfg_.pes_per_group, kernel.lanes);
        for (std::size_t i = first; i < last; ++i) {
          arena.cycles[i] = kernel(i, red);
        }
        arena.tile_totals[t] =
            TileTotals{red.row_ops(), red.busy(), red.macs(), red.reg()};
      } catch (...) {
        run->record_error();
      }
      run->mark_ready(t);
    };

    // Helpers claim tiles from the shared counter; the caller claims too
    // while the tile it must merge next is not ready, so progress never
    // depends on the pool's queue draining (nested stages are safe).
    const std::size_t helpers =
        std::min(pool->worker_count(), tiles - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
      try {
        pool->submit([run, &eval_tile] {
          for (;;) {
            const std::size_t t =
                run->next.fetch_add(1, std::memory_order_relaxed);
            if (t >= run->ready.size()) return;
            eval_tile(t);
          }
        });
      } catch (...) {
        run->record_error();
        break;
      }
    }

    // Merge tiles strictly in tile order (= task order), overlapping the
    // merge of tile t with the evaluation of later tiles.
    std::size_t merged = 0;
    while (merged < tiles) {
      bool is_ready;
      {
        std::lock_guard lock(run->mu);
        is_ready = run->ready[merged] != 0;
      }
      if (!is_ready) {
        const std::size_t t =
            run->next.fetch_add(1, std::memory_order_relaxed);
        if (t < tiles) {
          eval_tile(t);
          continue;
        }
        std::unique_lock lock(run->mu);
        run->cv.wait(lock, [&] { return run->ready[merged] != 0; });
      }
      const std::size_t first = merged * tile;
      const std::size_t last = std::min(first + tile, task_count);
      for (std::size_t i = first; i < last; ++i) {
        sched.assign(arena.cycles[i]);
      }
      const TileTotals& tt = arena.tile_totals[merged];
      totals.row_ops += tt.row_ops;
      totals.busy += tt.busy;
      totals.macs += tt.macs;
      totals.reg += tt.reg;
      ++merged;
    }

    std::exception_ptr error;
    {
      std::lock_guard lock(run->mu);
      error = run->error;
    }
    if (error) std::rethrow_exception(error);
  }

  result.row_ops = totals.row_ops;
  result.activity.busy_cycles = totals.busy;
  result.activity.macs = totals.macs;
  result.activity.reg_accesses = totals.reg;
  result.cycles = sched.max_load();
  if (profiler != nullptr) {
    prof_record(pool == nullptr || tiles <= 1 ? 1 : tiles);
  }
  return result;
}

namespace {

/// Forward stage kernel: one task per output row (n, f, oy), C·K SRC ops.
///
/// The SRC cost of an op is a pure function of (input row, block) — it
/// does not depend on the task's output channel f at all, so evaluating
/// it inline would recompute each input row's cost F times per oy (and
/// K more times across overlapping oy windows). run_forward instead
/// precomputes one PeCost per physical input row (`row_costs`, N·C·IH
/// entries) and the kernel folds table entries. The reducer consumes the
/// identical PeCost sequence in the identical order, so every simulated
/// field is byte-identical to the inline evaluation.
struct ForwardKernel {
  static constexpr const char* kStage = "forward";
  const PeCost* row_costs;
  const dataflow::ConvGeometry& geo;
  Shape in_shape;
  Shape out_shape;
  std::size_t lanes;

  std::size_t operator()(std::size_t index, PeGroupReducer& red) const {
    const std::size_t oy = index % out_shape.h;
    const std::size_t n = index / (out_shape.h * geo.out_channels);
    // iy = oy·S + ky − P is monotone in ky, so the valid taps form one
    // contiguous ky range — resolve it once per task instead of testing
    // every (c, ky) pair. Iteration order (c-major, ky ascending) and
    // thus the reducer's fold are unchanged.
    const auto [ky_lo, ky_hi, iy0] = valid_ky_range(oy, geo, in_shape.h);
    const std::size_t taps = ky_hi - ky_lo;
    red.begin_task();
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      const PeCost* cost = row_costs + (n * in_shape.c + c) * in_shape.h + iy0;
      for (std::size_t t = 0; t < taps; ++t) {
        red.add(cost[t]);
      }
    }
    return red.end_task();
  }
};

/// GTA stage kernel: one task per dI row (n, c, iy), F·K MSRC ops
/// scattering into it.
///
/// The task's mask is shared by all its ops, so it is lowered once per
/// task into a prefix-popcount table (prefix[i] = allowed outputs before
/// position i): each op's window queries become two loads and a subtract
/// instead of a per-window word-funnel popcount, identical counts.
struct GtaKernel {
  static constexpr const char* kStage = "gta";
  const CompressedRows& go_rows;
  const dataflow::ConvGeometry& geo;
  Shape out;
  Shape in_shape;
  isa::RowBlock b;
  const PeExact& pe;
  const std::uint32_t* all_pass_prefix;  ///< unmasked: prefix[i] = i
  const Tensor* prev_mask;
  std::size_t wl;  ///< stage-constant weight-load cycles (hoisted)
  std::size_t lanes;

  std::size_t operator()(std::size_t index, PeGroupReducer& red) const {
    const std::size_t iy = index % in_shape.h;
    const std::size_t c = (index / in_shape.h) % geo.in_channels;
    const std::size_t n = index / (in_shape.h * geo.in_channels);
    TaskScratch& scratch = task_scratch();
    const std::uint32_t* prefix = all_pass_prefix;
    if (prev_mask != nullptr) {
      const std::span<const float> dense = prev_mask->row(n, c, iy);
      std::vector<std::uint32_t>& pre = scratch.mask_prefix;
      pre.resize(dense.size() + 1);
      std::uint32_t acc = 0;
      for (std::size_t x = 0; x < dense.size(); ++x) {
        pre[x] = acc;
        acc += dense[x] != 0.0f ? 1u : 0u;
      }
      pre[dense.size()] = acc;
      prefix = pre.data();
    }
    // oy·S + ky − P = iy → every (oy, ky) pair writing this row. The
    // mapping depends only on iy, so resolve it once per task instead of
    // once per (f, ky).
    std::vector<std::uint32_t>& oy_of = scratch.gta_oy;
    oy_of.assign(geo.kernel, kNoRow);
    for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
      const std::int64_t num = static_cast<std::int64_t>(iy) +
                               static_cast<std::int64_t>(geo.padding) -
                               static_cast<std::int64_t>(ky);
      if (num < 0 || num % static_cast<std::int64_t>(geo.stride) != 0)
        continue;
      const auto oy = static_cast<std::size_t>(
          num / static_cast<std::int64_t>(geo.stride));
      if (oy >= out.h) continue;
      oy_of[ky] = static_cast<std::uint32_t>(oy);
    }
    red.begin_task();
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
        if (oy_of[ky] == kNoRow) continue;
        red.add(pe.run_msrc(
            go_rows.row((n * out.c + f) * out.h + oy_of[ky]), prefix, b, wl));
      }
    }
    return red.end_task();
  }
};

/// GTW stage kernel: one task per (n, f, c) kernel slice, OH·K OSRC ops
/// (zero dO rows schedule nothing).
struct GtwKernel {
  static constexpr const char* kStage = "gtw";
  const CompressedRows& go_rows;
  const CompressedRows& in_rows;
  const dataflow::ConvGeometry& geo;
  Shape out;
  Shape in;
  isa::RowBlock b;
  const PeExact& pe;
  std::size_t wl;  ///< stage-constant weight-load cycles (hoisted)
  std::size_t lanes;

  std::size_t operator()(std::size_t index, PeGroupReducer& red) const {
    const std::size_t c = index % geo.in_channels;
    const std::size_t f = (index / geo.in_channels) % geo.out_channels;
    const std::size_t n = index / (geo.in_channels * geo.out_channels);
    const std::size_t go_base = (n * out.c + f) * out.h;
    const std::size_t in_base = (n * in.c + c) * in.h;
    red.begin_task();
    for (std::size_t oy = 0; oy < out.h; ++oy) {
      const SparseRowView go = go_rows.row(go_base + oy);
      if (go.empty()) continue;  // zero dO row: nothing scheduled
      // The dO chunk count depends only on this oy's row — reuse it for
      // every kernel tap the row pairs with.
      const std::size_t chunks = (go.nnz() + geo.kernel - 1) / geo.kernel;
      // Valid taps are one contiguous ky range (see valid_ky_range); the
      // op order per oy — ky ascending — is the same as the per-tap test.
      const auto [ky_lo, ky_hi, iy0] = valid_ky_range(oy, geo, in.h);
      for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
        red.add(pe.run_osrc(in_rows.row(in_base + iy0 + (ky - ky_lo)), go, b,
                            wl, chunks));
      }
    }
    return red.end_task();
  }
};

/// FC stage kernel: one task per (sample, lane group); every task streams
/// the sample's compressed vector once into `lanes` accumulators (no
/// kernel preload — weight columns arrive from the buffer per ingested
/// element).
struct FcKernel {
  static constexpr const char* kStage = "fc";
  const CompressedRows& rows;
  std::size_t groups_per_sample;
  std::size_t drain;
  std::size_t lanes;

  std::size_t operator()(std::size_t index, PeGroupReducer& red) const {
    const std::size_t n = index / groups_per_sample;
    const SparseRowView vec = rows.row(n);
    PeCost op;
    op.ingested = vec.nnz();
    op.macs = vec.nnz() * lanes;
    op.cycles = vec.nnz() + drain;
    red.begin_task();
    red.add(op);
    return red.end_task();
  }
};

}  // namespace

ExactStageResult ExactEngine::run_forward(
    const Tensor& input, const dataflow::ConvGeometry& geo) const {
  return run_forward(compress(input), input.shape(), geo);
}

ExactStageResult ExactEngine::run_forward(
    const RowSet& rows, const Shape& in_shape,
    const dataflow::ConvGeometry& geo) const {
  const Shape out_shape = dataflow::conv_output_shape(geo, in_shape);
  const isa::RowBlock b =
      block_from(geo, in_shape.w, out_shape.w, isa::RowOpKind::SRC);

  // Fill the per-input-row cost table the kernel folds (see
  // ForwardKernel). The lease outlives run_tasks (which takes its own
  // arena), so worker threads read a stable table; both arenas return to
  // the pool afterwards and steady-state stages stay allocation-free.
  ArenaLease lease = acquire_arena();
  std::vector<PeCost>& costs = lease.arena->src_costs;
  costs.resize(rows.rows());
  const std::size_t wl = pe_.weight_load(b);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    costs[r] = pe_.run_src(rows.row(r), b, wl);
  }

  const std::size_t task_count =
      in_shape.n * geo.out_channels * out_shape.h;
  const ForwardKernel kernel{costs.data(), geo, in_shape, out_shape,
                             geo.kernel};
  return run_tasks(task_count, geo.in_channels * geo.kernel, kernel);
}

ExactStageResult ExactEngine::run_gta(const Tensor& grad_output,
                                      const Shape& input_shape,
                                      const Tensor* prev_mask,
                                      const dataflow::ConvGeometry& geo) const {
  return run_gta(compress(grad_output), grad_output.shape(), input_shape,
                 prev_mask, geo);
}

ExactStageResult ExactEngine::run_gta(const RowSet& go_rows,
                                      const Shape& out, const Shape& input_shape,
                                      const Tensor* prev_mask,
                                      const dataflow::ConvGeometry& geo) const {
  const isa::RowBlock b =
      block_from(geo, out.w, input_shape.w, isa::RowOpKind::MSRC);

  // The all-pass prefix (prefix[i] = i) is one shared constant — every
  // unmasked task reads it in place. Masked tasks lower their row's mask
  // into per-thread scratch (see GtaKernel).
  std::vector<std::uint32_t> all_pass(input_shape.w + 1);
  for (std::size_t i = 0; i < all_pass.size(); ++i) {
    all_pass[i] = static_cast<std::uint32_t>(i);
  }

  const std::size_t task_count =
      out.n * geo.in_channels * input_shape.h;
  const GtaKernel kernel{go_rows,     geo,       out,
                         input_shape, b,         pe_,
                         all_pass.data(), prev_mask, pe_.weight_load(b),
                         geo.kernel};
  return run_tasks(task_count, geo.out_channels * geo.kernel, kernel);
}

ExactStageResult ExactEngine::run_gtw(const Tensor& grad_output,
                                      const Tensor& input,
                                      const dataflow::ConvGeometry& geo) const {
  return run_gtw(compress(grad_output), grad_output.shape(),
                 compress(input), input.shape(), geo);
}

ExactStageResult ExactEngine::run_gtw(const RowSet& go_rows,
                                      const Shape& out, const RowSet& in_rows,
                                      const Shape& in,
                                      const dataflow::ConvGeometry& geo) const {
  isa::RowBlock b = block_from(geo, out.w, geo.kernel, isa::RowOpKind::OSRC);
  b.second_len = in.w;

  const std::size_t task_count =
      out.n * geo.out_channels * geo.in_channels;
  // GTW tasks skip every zero dO row outright, so the realistic op count
  // per task is the nonempty-row fraction of the nominal OH·K (sparse
  // gradients make this a small handful — big tiles, few claims).
  const std::size_t est_ops = std::max<std::size_t>(
      1, go_rows.rows() == 0
             ? 1
             : go_rows.nonempty_rows() * out.h * geo.kernel /
                   go_rows.rows());
  const GtwKernel kernel{go_rows, in_rows, geo,      out,
                         in,      b,       pe_,      pe_.weight_load(b),
                         geo.kernel};
  return run_tasks(task_count, est_ops, kernel);
}

ExactStageResult ExactEngine::run_fc(const Tensor& operands,
                                     std::size_t groups_per_sample,
                                     std::size_t lanes) const {
  const Shape& s = operands.shape();
  ST_REQUIRE(s.c == 1 && s.h == 1,
             "FC operands must be {N, 1, 1, L} (one vector per sample)");
  ST_REQUIRE(groups_per_sample > 0 && lanes > 0,
             "FC stage needs lane groups");

  const RowSet rows = compress(operands);

  const std::size_t task_count = s.n * groups_per_sample;
  const FcKernel kernel{rows, groups_per_sample, cfg_.timing.pipeline_drain,
                        lanes};
  return run_tasks(task_count, 1, kernel);
}

}  // namespace sparsetrain::sim
