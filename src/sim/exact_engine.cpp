#include "sim/exact_engine.hpp"

#include <algorithm>
#include <queue>

#include "util/require.hpp"

namespace sparsetrain::sim {

namespace {

/// iy = oy·S + ky − P, or false when the row lies in padding.
bool input_row_index(std::size_t oy, std::size_t ky,
                     const dataflow::ConvGeometry& geo, std::size_t in_h,
                     std::size_t& iy) {
  const std::int64_t v = static_cast<std::int64_t>(oy * geo.stride + ky) -
                         static_cast<std::int64_t>(geo.padding);
  if (v < 0 || v >= static_cast<std::int64_t>(in_h)) return false;
  iy = static_cast<std::size_t>(v);
  return true;
}

isa::RowBlock block_from(const dataflow::ConvGeometry& geo,
                         std::size_t in_len, std::size_t out_len,
                         isa::RowOpKind kind) {
  isa::RowBlock b;
  b.kind = kind;
  b.in_len = in_len;
  b.out_len = out_len;
  b.kernel = static_cast<std::uint32_t>(geo.kernel);
  b.stride = static_cast<std::uint32_t>(geo.stride);
  b.padding = static_cast<std::uint32_t>(geo.padding);
  return b;
}

}  // namespace

double ExactStageResult::utilization(std::size_t total_pes) const {
  if (cycles == 0 || total_pes == 0) return 0.0;
  return static_cast<double>(activity.busy_cycles) /
         (static_cast<double>(cycles) * static_cast<double>(total_pes));
}

ExactEngine::ExactEngine(ArchConfig cfg)
    : cfg_(std::move(cfg)), pe_(cfg_.timing) {
  ST_REQUIRE(cfg_.sparse, "the exact engine models the sparse architecture");
}

ExactStageResult ExactEngine::run_forward(
    const Tensor& input, const dataflow::ConvGeometry& geo) const {
  const Shape out_shape = dataflow::conv_output_shape(geo, input.shape());
  const isa::RowBlock b =
      block_from(geo, input.shape().w, out_shape.w, isa::RowOpKind::SRC);

  // Pre-compress each distinct input row once (the buffer holds it once;
  // every consuming row op streams the same compressed bytes).
  std::vector<std::vector<SparseRow>> rows(input.shape().n *
                                           input.shape().c);
  for (std::size_t n = 0; n < input.shape().n; ++n)
    for (std::size_t c = 0; c < input.shape().c; ++c) {
      auto& channel_rows = rows[n * input.shape().c + c];
      channel_rows.reserve(input.shape().h);
      for (std::size_t y = 0; y < input.shape().h; ++y)
        channel_rows.push_back(compress_row(input.row(n, c, y)));
    }

  // One task per output row (n, f, oy): C·K row ops.
  std::vector<std::vector<PeCost>> tasks;
  tasks.reserve(input.shape().n * geo.out_channels * out_shape.h);
  for (std::size_t n = 0; n < input.shape().n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t oy = 0; oy < out_shape.h; ++oy) {
        std::vector<PeCost> ops;
        ops.reserve(geo.in_channels * geo.kernel);
        for (std::size_t c = 0; c < geo.in_channels; ++c) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, input.shape().h, iy)) continue;
            ops.push_back(
                pe_.run_src(rows[n * input.shape().c + c][iy], b));
          }
        }
        tasks.push_back(std::move(ops));
      }
    }
  }
  return schedule(std::move(tasks), geo.kernel);
}

ExactStageResult ExactEngine::run_gta(const Tensor& grad_output,
                                      const Shape& input_shape,
                                      const Tensor* prev_mask,
                                      const dataflow::ConvGeometry& geo) const {
  const Shape& out = grad_output.shape();
  const isa::RowBlock b =
      block_from(geo, out.w, input_shape.w, isa::RowOpKind::MSRC);

  std::vector<std::vector<SparseRow>> go_rows(out.n * out.c);
  for (std::size_t n = 0; n < out.n; ++n)
    for (std::size_t f = 0; f < out.c; ++f) {
      auto& channel = go_rows[n * out.c + f];
      channel.reserve(out.h);
      for (std::size_t y = 0; y < out.h; ++y)
        channel.push_back(compress_row(grad_output.row(n, f, y)));
    }

  MaskRow all_pass;
  all_pass.length = static_cast<std::uint32_t>(input_shape.w);
  for (std::uint32_t i = 0; i < input_shape.w; ++i)
    all_pass.offsets.push_back(i);

  // One task per dI row (n, c, iy): F·K row ops scatter into it.
  std::vector<std::vector<PeCost>> tasks;
  tasks.reserve(out.n * geo.in_channels * input_shape.h);
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      for (std::size_t iy = 0; iy < input_shape.h; ++iy) {
        const MaskRow mask =
            prev_mask != nullptr
                ? mask_from_dense(prev_mask->row(n, c, iy))
                : all_pass;
        std::vector<PeCost> ops;
        ops.reserve(geo.out_channels * geo.kernel);
        for (std::size_t f = 0; f < geo.out_channels; ++f) {
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            // oy·S + ky − P = iy → every (oy, ky) pair writing this row.
            const std::int64_t num = static_cast<std::int64_t>(iy) +
                                     static_cast<std::int64_t>(geo.padding) -
                                     static_cast<std::int64_t>(ky);
            if (num < 0 || num % static_cast<std::int64_t>(geo.stride) != 0)
              continue;
            const auto oy = static_cast<std::size_t>(
                num / static_cast<std::int64_t>(geo.stride));
            if (oy >= out.h) continue;
            ops.push_back(
                pe_.run_msrc(go_rows[n * out.c + f][oy], mask, b));
          }
        }
        tasks.push_back(std::move(ops));
      }
    }
  }
  return schedule(std::move(tasks), geo.kernel);
}

ExactStageResult ExactEngine::run_gtw(const Tensor& grad_output,
                                      const Tensor& input,
                                      const dataflow::ConvGeometry& geo) const {
  const Shape& out = grad_output.shape();
  const Shape& in = input.shape();
  isa::RowBlock b = block_from(geo, out.w, geo.kernel, isa::RowOpKind::OSRC);
  b.second_len = in.w;

  std::vector<std::vector<SparseRow>> go_rows(out.n * out.c);
  for (std::size_t n = 0; n < out.n; ++n)
    for (std::size_t f = 0; f < out.c; ++f) {
      auto& channel = go_rows[n * out.c + f];
      for (std::size_t y = 0; y < out.h; ++y)
        channel.push_back(compress_row(grad_output.row(n, f, y)));
    }
  std::vector<std::vector<SparseRow>> in_rows(in.n * in.c);
  for (std::size_t n = 0; n < in.n; ++n)
    for (std::size_t c = 0; c < in.c; ++c) {
      auto& channel = in_rows[n * in.c + c];
      for (std::size_t y = 0; y < in.h; ++y)
        channel.push_back(compress_row(input.row(n, c, y)));
    }

  // One task per (n, f, c) kernel slice: OH·K row ops.
  std::vector<std::vector<PeCost>> tasks;
  tasks.reserve(out.n * geo.out_channels * geo.in_channels);
  for (std::size_t n = 0; n < out.n; ++n) {
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t c = 0; c < geo.in_channels; ++c) {
        std::vector<PeCost> ops;
        ops.reserve(out.h * geo.kernel);
        for (std::size_t oy = 0; oy < out.h; ++oy) {
          const SparseRow& go = go_rows[n * out.c + f][oy];
          if (go.empty()) continue;  // zero dO row: nothing scheduled
          for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
            std::size_t iy;
            if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
            ops.push_back(pe_.run_osrc(in_rows[n * in.c + c][iy], go, b));
          }
        }
        tasks.push_back(std::move(ops));
      }
    }
  }
  return schedule(std::move(tasks), geo.kernel);
}

ExactStageResult ExactEngine::schedule(
    std::vector<std::vector<PeCost>> tasks, std::size_t lanes) const {
  ExactStageResult result;
  result.tasks = tasks.size();

  using Slot = std::pair<std::size_t, std::size_t>;  // (load, group)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t g = 0; g < cfg_.pe_groups; ++g) heap.emplace(0, g);

  for (const auto& ops : tasks) {
    // The group's PEs take the task's row ops in parallel rounds; each
    // round lasts as long as its slowest op.
    std::size_t task_cycles = 0;
    for (std::size_t i = 0; i < ops.size(); i += cfg_.pes_per_group) {
      std::size_t round = 0;
      for (std::size_t j = i;
           j < std::min(i + cfg_.pes_per_group, ops.size()); ++j) {
        round = std::max(round, ops[j].cycles);
        result.activity.busy_cycles += ops[j].cycles;
        result.activity.macs += ops[j].macs;
        result.activity.reg_accesses +=
            ops[j].ingested * 2 * lanes + lanes;
      }
      task_cycles += round;
    }
    result.row_ops += ops.size();
    auto [load, g] = heap.top();
    heap.pop();
    heap.emplace(load + task_cycles, g);
  }

  std::size_t makespan = 0;
  while (!heap.empty()) {
    makespan = std::max(makespan, heap.top().first);
    heap.pop();
  }
  result.cycles = makespan;
  return result;
}

}  // namespace sparsetrain::sim
