#include "sim/exact_engine.hpp"

#include <algorithm>
#include <queue>

#include "util/require.hpp"

namespace sparsetrain::sim {

namespace {

/// iy = oy·S + ky − P, or false when the row lies in padding.
bool input_row_index(std::size_t oy, std::size_t ky,
                     const dataflow::ConvGeometry& geo, std::size_t in_h,
                     std::size_t& iy) {
  const std::int64_t v = static_cast<std::int64_t>(oy * geo.stride + ky) -
                         static_cast<std::int64_t>(geo.padding);
  if (v < 0 || v >= static_cast<std::int64_t>(in_h)) return false;
  iy = static_cast<std::size_t>(v);
  return true;
}

isa::RowBlock block_from(const dataflow::ConvGeometry& geo,
                         std::size_t in_len, std::size_t out_len,
                         isa::RowOpKind kind) {
  isa::RowBlock b;
  b.kind = kind;
  b.in_len = in_len;
  b.out_len = out_len;
  b.kernel = static_cast<std::uint32_t>(geo.kernel);
  b.stride = static_cast<std::uint32_t>(geo.stride);
  b.padding = static_cast<std::uint32_t>(geo.padding);
  return b;
}

/// Per-worker-thread scratch. Capacities grow to the stage's steady state
/// within the first few tasks, after which evaluating a task performs no
/// heap allocation at all (the zero-alloc contract of the hot path).
struct TaskScratch {
  std::vector<PeCost> ops;
  BitMask mask;
  std::vector<std::uint32_t> gta_oy;  ///< ky → source oy (kNoRow: padding)
};

constexpr std::uint32_t kNoRow = ~std::uint32_t{0};

TaskScratch& task_scratch() {
  thread_local TaskScratch scratch;
  return scratch;
}

}  // namespace

double ExactStageResult::utilization(std::size_t total_pes) const {
  if (cycles == 0 || total_pes == 0) return 0.0;
  return static_cast<double>(activity.busy_cycles) /
         (static_cast<double>(cycles) * static_cast<double>(total_pes));
}

ExactEngine::ExactEngine(ArchConfig cfg, ExactOptions opts)
    : cfg_(std::move(cfg)), opts_(opts), pe_(cfg_.timing) {
  ST_REQUIRE(cfg_.sparse, "the exact engine models the sparse architecture");
  ST_REQUIRE(cfg_.pe_groups > 0 && cfg_.pes_per_group > 0,
             "architecture needs PEs");
  if (opts_.workers != 1) {
    pool_ = std::make_unique<util::ThreadPool>(opts_.workers);
  }
}

ExactEngine::~ExactEngine() = default;

ExactEngine::RowSet ExactEngine::compress(const Tensor& t) const {
  return compress_tensor(t, pool_.get());
}

ExactEngine::TaskCost ExactEngine::reduce_task(std::span<const PeCost> ops,
                                               std::size_t lanes) const {
  // The group's PEs take the task's row ops in parallel rounds; each
  // round lasts as long as its slowest op.
  TaskCost cost;
  cost.row_ops = ops.size();
  for (std::size_t i = 0; i < ops.size(); i += cfg_.pes_per_group) {
    std::size_t round = 0;
    for (std::size_t j = i; j < std::min(i + cfg_.pes_per_group, ops.size());
         ++j) {
      round = std::max(round, ops[j].cycles);
      cost.busy += ops[j].cycles;
      cost.macs += ops[j].macs;
      cost.reg += ops[j].ingested * 2 * lanes + lanes;
    }
    cost.cycles += round;
  }
  return cost;
}

ExactStageResult ExactEngine::run_tasks(
    std::size_t task_count,
    const std::function<TaskCost(std::size_t)>& eval) const {
  // Evaluate: tiles of contiguous task indices step their PEs in
  // parallel, each writing only its own pre-sized slots. Tile boundaries
  // depend only on (task_count, tile_tasks), never on the worker count.
  std::vector<TaskCost> costs(task_count);
  util::parallel_for(pool_.get(), task_count, tile_tasks(),
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t i = first; i < last; ++i)
                         costs[i] = eval(i);
                     });

  // Merge: consume the per-task cycle list in task order — the identical
  // deterministic stream the serial path produces — through the
  // least-loaded-group scheduler.
  ExactStageResult result;
  result.tasks = task_count;

  using Slot = std::pair<std::size_t, std::size_t>;  // (load, group)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (std::size_t g = 0; g < cfg_.pe_groups; ++g) heap.emplace(0, g);

  for (const TaskCost& cost : costs) {
    result.row_ops += cost.row_ops;
    result.activity.busy_cycles += cost.busy;
    result.activity.macs += cost.macs;
    result.activity.reg_accesses += cost.reg;
    auto [load, g] = heap.top();
    heap.pop();
    heap.emplace(load + cost.cycles, g);
  }

  std::size_t makespan = 0;
  while (!heap.empty()) {
    makespan = std::max(makespan, heap.top().first);
    heap.pop();
  }
  result.cycles = makespan;
  return result;
}

ExactStageResult ExactEngine::run_forward(
    const Tensor& input, const dataflow::ConvGeometry& geo) const {
  return run_forward(compress(input), input.shape(), geo);
}

ExactStageResult ExactEngine::run_forward(
    const RowSet& rows, const Shape& in_shape,
    const dataflow::ConvGeometry& geo) const {
  const Shape out_shape = dataflow::conv_output_shape(geo, in_shape);
  const isa::RowBlock b =
      block_from(geo, in_shape.w, out_shape.w, isa::RowOpKind::SRC);

  // One task per output row (n, f, oy): C·K row ops.
  const std::size_t task_count =
      in_shape.n * geo.out_channels * out_shape.h;
  return run_tasks(task_count, [&, b](std::size_t index) {
    const std::size_t oy = index % out_shape.h;
    const std::size_t n = index / (out_shape.h * geo.out_channels);
    std::vector<PeCost>& ops = task_scratch().ops;
    ops.clear();
    for (std::size_t c = 0; c < geo.in_channels; ++c) {
      for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
        std::size_t iy;
        if (!input_row_index(oy, ky, geo, in_shape.h, iy)) continue;
        ops.push_back(
            pe_.run_src(rows.row((n * in_shape.c + c) * in_shape.h + iy), b));
      }
    }
    return reduce_task(ops, geo.kernel);
  });
}

ExactStageResult ExactEngine::run_gta(const Tensor& grad_output,
                                      const Shape& input_shape,
                                      const Tensor* prev_mask,
                                      const dataflow::ConvGeometry& geo) const {
  return run_gta(compress(grad_output), grad_output.shape(), input_shape,
                 prev_mask, geo);
}

ExactStageResult ExactEngine::run_gta(const RowSet& go_rows,
                                      const Shape& out, const Shape& input_shape,
                                      const Tensor* prev_mask,
                                      const dataflow::ConvGeometry& geo) const {
  const isa::RowBlock b =
      block_from(geo, out.w, input_shape.w, isa::RowOpKind::MSRC);

  // The all-pass mask is one shared constant — every unmasked task reads
  // it in place. Masked tasks rebuild their row's BitMask in per-thread
  // scratch instead of copying offset lists around.
  BitMask all_pass;
  all_pass.assign_all(static_cast<std::uint32_t>(input_shape.w));

  // One task per dI row (n, c, iy): F·K row ops scatter into it.
  const std::size_t task_count =
      out.n * geo.in_channels * input_shape.h;
  return run_tasks(task_count, [&, b](std::size_t index) {
    const std::size_t iy = index % input_shape.h;
    const std::size_t c = (index / input_shape.h) % geo.in_channels;
    const std::size_t n = index / (input_shape.h * geo.in_channels);
    TaskScratch& scratch = task_scratch();
    const BitMask* mask = &all_pass;
    if (prev_mask != nullptr) {
      scratch.mask.assign_from_dense(prev_mask->row(n, c, iy));
      mask = &scratch.mask;
    }
    // oy·S + ky − P = iy → every (oy, ky) pair writing this row. The
    // mapping depends only on iy, so resolve it once per task instead of
    // once per (f, ky).
    std::vector<std::uint32_t>& oy_of = scratch.gta_oy;
    oy_of.assign(geo.kernel, kNoRow);
    for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
      const std::int64_t num = static_cast<std::int64_t>(iy) +
                               static_cast<std::int64_t>(geo.padding) -
                               static_cast<std::int64_t>(ky);
      if (num < 0 || num % static_cast<std::int64_t>(geo.stride) != 0)
        continue;
      const auto oy = static_cast<std::size_t>(
          num / static_cast<std::int64_t>(geo.stride));
      if (oy >= out.h) continue;
      oy_of[ky] = static_cast<std::uint32_t>(oy);
    }
    std::vector<PeCost>& ops = scratch.ops;
    ops.clear();
    for (std::size_t f = 0; f < geo.out_channels; ++f) {
      for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
        if (oy_of[ky] == kNoRow) continue;
        ops.push_back(pe_.run_msrc(
            go_rows.row((n * out.c + f) * out.h + oy_of[ky]), *mask, b));
      }
    }
    return reduce_task(ops, geo.kernel);
  });
}

ExactStageResult ExactEngine::run_gtw(const Tensor& grad_output,
                                      const Tensor& input,
                                      const dataflow::ConvGeometry& geo) const {
  return run_gtw(compress(grad_output), grad_output.shape(),
                 compress(input), input.shape(), geo);
}

ExactStageResult ExactEngine::run_gtw(const RowSet& go_rows,
                                      const Shape& out, const RowSet& in_rows,
                                      const Shape& in,
                                      const dataflow::ConvGeometry& geo) const {
  isa::RowBlock b = block_from(geo, out.w, geo.kernel, isa::RowOpKind::OSRC);
  b.second_len = in.w;

  // One task per (n, f, c) kernel slice: OH·K row ops.
  const std::size_t task_count =
      out.n * geo.out_channels * geo.in_channels;
  return run_tasks(task_count, [&, b](std::size_t index) {
    const std::size_t c = index % geo.in_channels;
    const std::size_t f = (index / geo.in_channels) % geo.out_channels;
    const std::size_t n = index / (geo.in_channels * geo.out_channels);
    std::vector<PeCost>& ops = task_scratch().ops;
    ops.clear();
    for (std::size_t oy = 0; oy < out.h; ++oy) {
      const SparseRowView go = go_rows.row((n * out.c + f) * out.h + oy);
      if (go.empty()) continue;  // zero dO row: nothing scheduled
      for (std::size_t ky = 0; ky < geo.kernel; ++ky) {
        std::size_t iy;
        if (!input_row_index(oy, ky, geo, in.h, iy)) continue;
        ops.push_back(
            pe_.run_osrc(in_rows.row((n * in.c + c) * in.h + iy), go, b));
      }
    }
    return reduce_task(ops, geo.kernel);
  });
}

ExactStageResult ExactEngine::run_fc(const Tensor& operands,
                                     std::size_t groups_per_sample,
                                     std::size_t lanes) const {
  const Shape& s = operands.shape();
  ST_REQUIRE(s.c == 1 && s.h == 1,
             "FC operands must be {N, 1, 1, L} (one vector per sample)");
  ST_REQUIRE(groups_per_sample > 0 && lanes > 0,
             "FC stage needs lane groups");

  const RowSet rows = compress(operands);

  // One task per (sample, lane group); every task streams the sample's
  // compressed vector once into `lanes` accumulators (no kernel preload —
  // weight columns arrive from the buffer per ingested element).
  const std::size_t task_count = s.n * groups_per_sample;
  const std::size_t drain = cfg_.timing.pipeline_drain;
  return run_tasks(task_count, [&, drain, lanes](std::size_t index) {
    const std::size_t n = index / groups_per_sample;
    const SparseRowView vec = rows.row(n);
    PeCost op;
    op.ingested = vec.nnz();
    op.macs = vec.nnz() * lanes;
    op.cycles = vec.nnz() + drain;
    return reduce_task(std::span<const PeCost>(&op, 1), lanes);
  });
}

}  // namespace sparsetrain::sim
