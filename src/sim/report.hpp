// Simulation results: per layer-stage and aggregate.
#pragma once

#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "sim/energy_model.hpp"

namespace sparsetrain::sim {

/// Outcome of one layer-stage (between barriers).
struct StageReport {
  std::size_t layer_index = 0;
  std::string layer_name;
  isa::Stage stage = isa::Stage::Forward;
  std::size_t cycles = 0;  ///< makespan of this stage across the PE array
  ActivityCounts activity;
  EnergyBreakdown energy;
};

/// Outcome of a whole program run.
struct SimReport {
  std::string program_name;
  std::string arch_name;
  std::string backend;      ///< registry name of the backend that produced it
  std::string profile_name; ///< sparsity profile the program was run with
  /// Which engine produced the numbers (exact runs leave SRAM/DRAM
  /// counters at zero — see sim/exact_network.hpp).
  isa::EngineKind engine = isa::EngineKind::Statistical;
  double clock_ghz = 0.8;
  std::size_t total_pes = 0;  ///< PE count of the producing architecture
  std::vector<StageReport> stages;
  std::size_t total_cycles = 0;
  ActivityCounts activity;
  EnergyBreakdown energy;

  double latency_ms() const {
    return static_cast<double>(total_cycles) / (clock_ghz * 1e9) * 1e3;
  }
  double energy_uj() const { return energy.total_pj() * 1e-6; }

  /// Cycles summed over one training stage.
  std::size_t stage_cycles(isa::Stage stage) const;

  /// Mean PE utilisation: busy PE-cycles / (total cycles × PE count).
  double utilization(std::size_t total_pes) const;

  /// Utilisation against the producing architecture's own PE count.
  double utilization() const { return utilization(total_pes); }
};

}  // namespace sparsetrain::sim
