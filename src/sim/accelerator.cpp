#include "sim/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::sim {

void ArchConfig::validate() const {
  const auto field = [this](const std::string& what) {
    return "architecture '" + name + "': " + what;
  };
  ST_REQUIRE(pe_groups > 0, field("pe_groups must be positive"));
  ST_REQUIRE(pe_groups <= (1u << 16),
             field("pe_groups = " + std::to_string(pe_groups) +
                   " exceeds 65536 (not a buildable array)"));
  ST_REQUIRE(pes_per_group > 0, field("pes_per_group must be positive"));
  ST_REQUIRE(pes_per_group <= 1024,
             field("pes_per_group = " + std::to_string(pes_per_group) +
                   " exceeds 1024 (group fan-out is a crossbar)"));
  ST_REQUIRE(buffer_bytes >= 1024,
             field("buffer_bytes = " + std::to_string(buffer_bytes) +
                   " is below 1 KiB (cannot hold one compressed row)"));
  ST_REQUIRE(buffer_bytes <= (std::size_t{1} << 30),
             field("buffer_bytes = " + std::to_string(buffer_bytes) +
                   " exceeds 1 GiB (not an on-chip buffer)"));
  ST_REQUIRE(clock_ghz > 0.0, field("clock_ghz must be positive"));
  ST_REQUIRE(clock_ghz <= 100.0,
             field("clock_ghz = " + std::to_string(clock_ghz) +
                   " exceeds 100 GHz"));
  ST_REQUIRE(max_sched_samples > 0,
             field("max_sched_samples must be positive"));
  ST_REQUIRE(timing.weight_port_width > 0,
             field("timing.weight_port_width must be positive"));
  ST_REQUIRE(energy.mac_pj >= 0.0 && energy.reg_pj >= 0.0 &&
                 energy.sram_pj >= 0.0 && energy.dram_pj >= 0.0 &&
                 energy.ctrl_pj_cycle >= 0.0,
             field("per-event energies must be non-negative"));
}

namespace {

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// E[max of m iid normals] − mean, in units of σ.
double max_order_factor(std::size_t m) {
  static const double table[] = {0.0,    0.0,    0.5642, 0.8463,
                                 1.0294, 1.1630, 1.2672, 1.3522};
  if (m < std::size(table)) return table[m];
  return std::sqrt(2.0 * std::log(static_cast<double>(m)));
}

/// Bytes of one tensor when streamed through the buffer.
/// Sparse mode uses the bitmap+values encoding the PPU emits (1 presence
/// bit per position + 16-bit values for nonzeros); dense mode is two bytes
/// per element.
double tensor_bytes(std::size_t elements, double density, bool sparse) {
  if (!sparse) return static_cast<double>(elements) * 2.0;
  return static_cast<double>(elements) * (density * 2.0 + 1.0 / 8.0);
}

/// Bytes of one compressed (or dense) row of length L at density ρ.
/// Sparse reads pay a fixed overhead per row (descriptor fetch, bank
/// alignment waste, pointer indirection) that dense streaming avoids.
double row_bytes(double len, double density, bool sparse) {
  if (!sparse) return len * 2.0;
  return 10.0 + len / 8.0 + len * density * 2.0;
}

/// Per-layer-stage tensor footprints for the DRAM model.
struct StageFootprint {
  double operand_bytes = 0.0;  ///< streamed activation/gradient tensors
  double weight_bytes = 0.0;
  double output_bytes = 0.0;

  double working_set() const {
    return operand_bytes + weight_bytes + output_bytes;
  }
};

StageFootprint footprint(const workload::LayerConfig& l,
                         const workload::LayerDensities& d, isa::Stage stage,
                         bool sparse) {
  StageFootprint fp;
  const std::size_t in_elems = l.in_channels * l.in_h * l.in_w;
  const std::size_t out_elems = l.out_channels * l.out_h() * l.out_w();
  const std::size_t w_elems =
      l.out_channels * l.in_channels * l.kernel * l.kernel;
  fp.weight_bytes = static_cast<double>(w_elems) * 2.0;
  switch (stage) {
    case isa::Stage::Forward:
      fp.operand_bytes = tensor_bytes(in_elems, d.input_acts, sparse);
      fp.output_bytes =
          tensor_bytes(out_elems, l.relu_after ? d.mask : 1.0, sparse);
      break;
    case isa::Stage::GTA:
      fp.operand_bytes = tensor_bytes(out_elems, d.output_grads, sparse);
      fp.output_bytes = tensor_bytes(in_elems, d.mask, sparse);
      break;
    case isa::Stage::GTW:
      fp.operand_bytes = tensor_bytes(out_elems, d.output_grads, sparse) +
                         tensor_bytes(in_elems, d.input_acts, sparse);
      fp.output_bytes = static_cast<double>(w_elems) * 2.0;  // dW dense
      break;
  }
  return fp;
}

/// SRAM bytes one row op moves (streamed rows + weights / mask / chunk
/// re-reads), given the block geometry and densities. FC ops exclude the
/// operand vector, which is broadcast once per group (see the Run handler).
double row_op_sram_bytes(const isa::RowBlock& b, bool sparse) {
  const auto L = static_cast<double>(b.in_len);
  const auto K = static_cast<double>(b.kernel);
  const double rho_in = sparse ? b.density_in : 1.0;
  const double operand = row_bytes(L, rho_in, sparse);
  switch (b.kind) {
    case isa::RowOpKind::SRC:
      return operand + K * 2.0;  // operand row + kernel row
    case isa::RowOpKind::MSRC: {
      // The mask arrives as a presence bitmap.
      const double mask_bytes =
          sparse ? static_cast<double>(b.out_len) / 8.0 : 0.0;
      return operand + K * 2.0 + mask_bytes;
    }
    case isa::RowOpKind::OSRC: {
      const auto Li = static_cast<double>(b.second_len);
      const double rho_i = sparse ? b.density_second : 1.0;
      const double i_row = row_bytes(Li, rho_i, sparse);
      const double chunks = std::max(1.0, std::ceil(L * rho_in / K));
      // dO row read once into the Reg-1 cache; I row streamed per chunk;
      // dW scratchpad written back once (K values, 32-bit accumulators).
      return operand + chunks * i_row + K * 4.0;
    }
    case isa::RowOpKind::FC: {
      // Only the weight columns of nonzero operand elements are fetched
      // (fc_lanes 16-bit weights per ingested element).
      return L * rho_in * static_cast<double>(b.fc_lanes) * 2.0;
    }
  }
  return 0.0;
}

}  // namespace

Accelerator::Accelerator(ArchConfig cfg) : cfg_(std::move(cfg)) {
  ST_REQUIRE(cfg_.pe_groups > 0 && cfg_.pes_per_group > 0,
             "architecture needs PEs");
  ST_REQUIRE(cfg_.buffer_bytes > 0, "architecture needs a buffer");
  ST_REQUIRE(cfg_.clock_ghz > 0.0, "clock must be positive");
}

SimReport Accelerator::run(const isa::Program& program,
                           const workload::NetworkConfig& net,
                           const workload::SparsityProfile& profile) const {
  return run(program, net, profile, cfg_.seed);
}

SimReport Accelerator::run(const isa::Program& program,
                           const workload::NetworkConfig& net,
                           const workload::SparsityProfile& profile,
                           std::uint64_t seed) const {
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");
  Rng rng(seed);

  SimReport report;
  report.program_name = program.name;
  report.arch_name = cfg_.name;
  report.clock_ghz = cfg_.clock_ghz;
  report.profile_name = profile.name();
  report.total_pes = total_pes();

  std::vector<double> group_load(cfg_.pe_groups, 0.0);
  StageReport stage;
  bool stage_open = false;

  auto open_stage = [&](const isa::Instruction& inst) {
    stage = StageReport{};
    stage.layer_index = inst.layer_index;
    ST_REQUIRE(inst.layer_index < net.layers.size(),
               "instruction references unknown layer");
    stage.layer_name = net.layers[inst.layer_index].name;
    stage.stage = inst.stage;
    stage_open = true;
    std::fill(group_load.begin(), group_load.end(), 0.0);
  };

  auto close_stage = [&]() {
    if (!stage_open) return;
    const double makespan =
        *std::max_element(group_load.begin(), group_load.end());
    stage.cycles = static_cast<std::size_t>(std::llround(makespan));
    stage.energy = price(stage.activity, cfg_.energy);
    report.total_cycles += stage.cycles;
    report.activity += stage.activity;
    report.energy += stage.energy;
    report.stages.push_back(stage);
    stage_open = false;
  };

  for (const auto& inst : program.instructions) {
    switch (inst.op) {
      case isa::Opcode::ConfigLayer: {
        close_stage();
        open_stage(inst);
        break;
      }
      case isa::Opcode::LoadWeights: {
        ST_REQUIRE(stage_open, "LoadWeights outside a stage");
        const auto& l = net.layers[inst.layer_index];
        const auto& d = profile.layer(inst.layer_index);
        const StageFootprint fp = footprint(l, d, inst.stage, cfg_.sparse);
        const double act_bytes = fp.operand_bytes + fp.output_bytes;
        const double refetch =
            fp.working_set() > static_cast<double>(cfg_.buffer_bytes)
                ? std::ceil(act_bytes / static_cast<double>(cfg_.buffer_bytes))
                : 1.0;
        const double w_bytes = static_cast<double>(inst.elements) * 2.0;
        stage.activity.sram_bytes += static_cast<std::size_t>(w_bytes);
        stage.activity.dram_bytes +=
            static_cast<std::size_t>(w_bytes * refetch);
        break;
      }
      case isa::Opcode::Run: {
        ST_REQUIRE(stage_open, "Run outside a stage");
        const isa::RowBlock& b = inst.block;
        ST_REQUIRE(b.tasks > 0 && b.ops_per_task > 0, "empty row block");

        const PeCostStats op =
            row_op_cost(b, cfg_.timing, cfg_.sparse);
        const std::size_t pes = cfg_.pes_per_group;
        // Only the dispatched fraction of a block's nominal ops occupies
        // PE rounds (OSRC skips empty dO rows entirely).
        const double eff_ops =
            static_cast<double>(b.ops_per_task) * op.sched_fraction;
        const double rounds =
            std::ceil(eff_ops / static_cast<double>(pes));
        const std::size_t par = std::min(pes, b.ops_per_task);
        const double op_sd = std::sqrt(std::max(0.0, op.var_cycles));
        const double round_mean =
            op.mean_cycles + max_order_factor(par) * op_sd;
        const double task_mean = rounds * round_mean;
        const double task_var = rounds * op.var_cycles;

        // Dynamic dispatch to the least-loaded group, with bundling so
        // huge blocks do not need millions of samples.
        const std::size_t samples = std::min(b.tasks, cfg_.max_sched_samples);
        const std::size_t bundle = b.tasks / samples;
        std::size_t remainder = b.tasks % samples;
        using Slot = std::pair<double, std::size_t>;
        std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
        for (std::size_t g = 0; g < cfg_.pe_groups; ++g)
          heap.emplace(group_load[g], g);
        for (std::size_t s = 0; s < samples; ++s) {
          std::size_t tasks_here = bundle + (remainder > 0 ? 1 : 0);
          if (remainder > 0) --remainder;
          if (tasks_here == 0) continue;
          const double mean = task_mean * static_cast<double>(tasks_here);
          const double sd =
              std::sqrt(task_var * static_cast<double>(tasks_here));
          const double t = std::max(
              static_cast<double>(tasks_here), rng.normal(mean, sd));
          auto [load, g] = heap.top();
          heap.pop();
          heap.emplace(load + t, g);
        }
        while (!heap.empty()) {
          group_load[heap.top().second] = heap.top().first;
          heap.pop();
        }

        // Expected-value activity accounting (dispatched ops only).
        const double ops_total = static_cast<double>(b.tasks) *
                                 static_cast<double>(b.ops_per_task) *
                                 op.sched_fraction;
        const bool is_fc = b.kind == isa::RowOpKind::FC;
        const double wload =
            is_fc ? 0.0
                  : static_cast<double>(
                        ceil_div(b.kernel, cfg_.timing.weight_port_width));
        const double drain = static_cast<double>(cfg_.timing.pipeline_drain);
        const double ingest = std::max(0.0, op.mean_cycles - wload - drain);
        const double lanes =
            static_cast<double>(is_fc ? b.fc_lanes : b.kernel);
        stage.activity.busy_cycles +=
            static_cast<std::size_t>(ops_total * op.mean_cycles);
        stage.activity.macs +=
            static_cast<std::size_t>(ops_total * op.mean_macs);
        // Reg-1 read + Reg-2 accumulate per MAC lane per ingest cycle,
        // plus the weight-load writes.
        stage.activity.reg_accesses += static_cast<std::size_t>(
            ops_total * (ingest * 2.0 * lanes + lanes));
        stage.activity.sram_bytes += static_cast<std::size_t>(
            ops_total * row_op_sram_bytes(b, cfg_.sparse));
        if (is_fc) {
          // The operand vector is broadcast once per PE group and cached
          // there for the whole block.
          stage.activity.sram_bytes += static_cast<std::size_t>(
              static_cast<double>(cfg_.pe_groups) *
              row_bytes(static_cast<double>(b.in_len),
                        cfg_.sparse ? b.density_in : 1.0, cfg_.sparse));
        }

        // Streamed operand tensors enter from DRAM once per stage.
        const auto& l = net.layers[inst.layer_index];
        const auto& d = profile.layer(inst.layer_index);
        const StageFootprint fp = footprint(l, d, inst.stage, cfg_.sparse);
        stage.activity.dram_bytes +=
            static_cast<std::size_t>(fp.operand_bytes);
        break;
      }
      case isa::Opcode::StoreOutputs: {
        ST_REQUIRE(stage_open, "StoreOutputs outside a stage");
        const double bytes =
            tensor_bytes(inst.elements, inst.store_density, cfg_.sparse);
        stage.activity.sram_bytes += static_cast<std::size_t>(bytes);
        stage.activity.dram_bytes += static_cast<std::size_t>(bytes);
        break;
      }
      case isa::Opcode::Barrier: {
        close_stage();
        break;
      }
    }
  }
  close_stage();
  return report;
}

}  // namespace sparsetrain::sim
