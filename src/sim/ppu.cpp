#include "sim/ppu.hpp"

#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::sim {

void Ppu::accumulate(std::span<const float> partial) {
  if (!row_open_) {
    row_.assign(partial.begin(), partial.end());
    row_open_ = true;
    return;
  }
  ST_REQUIRE(partial.size() == row_.size(),
             "PPU partial-sum length mismatch");
  for (std::size_t i = 0; i < row_.size(); ++i) row_[i] += partial[i];
}

SparseRow Ppu::flush(bool apply_relu) {
  ST_REQUIRE(row_open_, "PPU flush without accumulated partials");
  for (float& x : row_) {
    if (apply_relu && x < 0.0f) x = 0.0f;
    grad_sum_ += x;
    abs_sum_ += std::abs(x);
  }
  count_ += row_.size();
  SparseRow out = compress_row(row_);
  row_.clear();
  row_open_ = false;
  return out;
}

void Ppu::reset_stats() {
  grad_sum_ = 0.0;
  abs_sum_ = 0.0;
  count_ = 0;
}

}  // namespace sparsetrain::sim
