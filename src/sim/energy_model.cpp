#include "sim/energy_model.hpp"

namespace sparsetrain::sim {

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  comb_pj += other.comb_pj;
  reg_pj += other.reg_pj;
  sram_pj += other.sram_pj;
  dram_pj += other.dram_pj;
  return *this;
}

ActivityCounts& ActivityCounts::operator+=(const ActivityCounts& other) {
  macs += other.macs;
  reg_accesses += other.reg_accesses;
  sram_bytes += other.sram_bytes;
  dram_bytes += other.dram_bytes;
  busy_cycles += other.busy_cycles;
  return *this;
}

EnergyBreakdown price(const ActivityCounts& counts,
                      const EnergyParams& params) {
  EnergyBreakdown e;
  e.comb_pj = static_cast<double>(counts.macs) * params.mac_pj +
              static_cast<double>(counts.busy_cycles) * params.ctrl_pj_cycle;
  e.reg_pj = static_cast<double>(counts.reg_accesses) * params.reg_pj;
  // 16-bit datapath: one access moves two bytes.
  e.sram_pj = static_cast<double>(counts.sram_bytes) / 2.0 * params.sram_pj;
  e.dram_pj = static_cast<double>(counts.dram_bytes) / 2.0 * params.dram_pj;
  return e;
}

}  // namespace sparsetrain::sim
