#include "sim/exact_network.hpp"

#include <atomic>
#include <mutex>
#include <optional>

#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain::sim {

namespace {

/// Operand tags for the per-tensor stream derivation: mix64 over (seed,
/// layer, tag) — the same decorrelation the Session's seeding uses — so
/// every synthesised tensor gets an independent stream whatever stage
/// subset the program contains.
enum : std::uint64_t { kInput = 1, kGrad = 2, kMask = 3, kFcBase = 4 };

Rng stream(std::uint64_t seed, std::size_t layer, std::uint64_t tag) {
  return Rng(mix64(mix64(seed, layer), tag));
}

/// Lazily synthesised operands of one layer, held in compressed-row form
/// so every stage sharing a tensor (Forward + GTW share I, GTA + GTW
/// share dO) compresses it exactly once per whole-program run — whatever
/// order the stage graph executes its units in (call_once gates each
/// operand, so a unit that needs a tensor another unit is already
/// synthesising simply waits for it: the "operand-cache readiness" edges
/// of the graph). `pending` counts this layer's units not yet finished;
/// when it hits zero the operands are released, so the roughly
/// program-ordered claim loop still keeps only a few layers' tensors
/// alive at a time.
struct LayerOperands {
  std::once_flag input_once;
  std::once_flag grad_once;
  std::once_flag mask_once;
  std::optional<ExactEngine::RowSet> input;
  Shape input_shape;
  std::optional<ExactEngine::RowSet> grad;
  Shape grad_shape;
  std::optional<Tensor> mask;  ///< engaged only when the mask gates (ρ < 1)
  std::atomic<std::size_t> pending{0};

  void release() {
    input.reset();
    grad.reset();
    mask.reset();
  }
};

}  // namespace

SimReport run_exact(const ArchConfig& cfg, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed, const ExactOptions& opts) {
  return run_exact(ExactEngine(cfg, opts), program, net, profile, seed);
}

SimReport run_exact(const ExactEngine& engine, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed) {
  const ArchConfig& cfg = engine.config();
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");
  ST_REQUIRE(program.batch > 0, "program batch must be positive");
  const std::size_t batch = program.batch;

  SimReport report;
  report.program_name = program.name;
  report.arch_name = cfg.name;
  report.profile_name = profile.name();
  report.clock_ghz = cfg.clock_ghz;
  report.total_pes = cfg.pe_groups * cfg.pes_per_group;
  report.engine = isa::EngineKind::Exact;

  // The stage graph's units: every Run instruction is one independent
  // (layer, stage) node, gated only by its layer's operand readiness.
  std::vector<const isa::Instruction*> units;
  std::vector<LayerOperands> operands(net.layers.size());
  for (const auto& inst : program.instructions) {
    if (inst.op != isa::Opcode::Run) continue;
    ST_REQUIRE(inst.layer_index < net.layers.size(),
               "instruction references unknown layer");
    operands[inst.layer_index].pending.fetch_add(
        1, std::memory_order_relaxed);
    units.push_back(&inst);
  }

  auto input_of = [&](std::size_t li) -> const ExactEngine::RowSet& {
    LayerOperands& t = operands[li];
    std::call_once(t.input_once, [&] {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kInput);
      Tensor x(Shape{batch, l.in_channels, l.in_h, l.in_w});
      x.fill_sparse_normal(rng, profile.layer(li).input_acts);
      t.input_shape = x.shape();
      t.input = engine.compress(x);
    });
    return *t.input;
  };
  auto grad_of = [&](std::size_t li) -> const ExactEngine::RowSet& {
    LayerOperands& t = operands[li];
    std::call_once(t.grad_once, [&] {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kGrad);
      Tensor g(Shape{batch, l.out_channels, l.out_h(), l.out_w()});
      g.fill_sparse_normal(rng, profile.layer(li).output_grads);
      t.grad_shape = g.shape();
      t.grad = engine.compress(g);
    });
    return *t.grad;
  };
  auto mask_of = [&](std::size_t li) -> const Tensor* {
    const double rho = profile.layer(li).mask;
    if (rho >= 1.0) return nullptr;  // all-pass
    LayerOperands& t = operands[li];
    std::call_once(t.mask_once, [&] {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kMask);
      Tensor m(Shape{batch, l.in_channels, l.in_h, l.in_w});
      m.fill_sparse_normal(rng, rho);
      for (float& v : m.flat())
        if (v != 0.0f) v = 1.0f;
      t.mask = std::move(m);
    });
    return &*t.mask;
  };

  // Runs one unit and writes its pre-sized result slot; every unit's
  // numbers are a pure function of (program, net, profile, seed), so the
  // execution order across units never shows in the report.
  std::vector<StageReport> stages(units.size());
  auto run_unit = [&](std::size_t u) {
    const isa::Instruction& inst = *units[u];
    const std::size_t li = inst.layer_index;
    LayerOperands& t = operands[li];
    const auto& l = net.layers[li];
    const isa::RowBlock& b = inst.block;

    ExactStageResult r;
    switch (b.kind) {
      case isa::RowOpKind::SRC: {
        const auto& in = input_of(li);  // fills t.input_shape
        r = engine.run_forward(in, t.input_shape, dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::MSRC: {
        const auto& go = grad_of(li);  // fills t.grad_shape
        r = engine.run_gta(go, t.grad_shape,
                           Shape{batch, l.in_channels, l.in_h, l.in_w},
                           mask_of(li), dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::OSRC: {
        const auto& go = grad_of(li);
        const auto& in = input_of(li);
        r = engine.run_gtw(go, t.grad_shape, in, t.input_shape,
                           dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::FC: {
        // The block already encodes the compiler's lane packing: tasks =
        // batch × lane groups over the useful outputs of this stage.
        ST_REQUIRE(b.tasks % batch == 0,
                   "FC block tasks not divisible by program batch");
        const std::size_t groups = b.tasks / batch;
        Rng rng = stream(seed, li,
                         kFcBase + static_cast<std::uint64_t>(inst.stage));
        Tensor vec(Shape{batch, 1, 1, b.in_len});
        vec.fill_sparse_normal(rng, b.density_in);
        r = engine.run_fc(vec, groups, b.fc_lanes);
        break;
      }
    }

    StageReport& stage = stages[u];
    stage.layer_index = li;
    stage.layer_name = l.name;
    stage.stage = inst.stage;
    stage.cycles = r.cycles;
    stage.activity = r.activity;
    stage.energy = price(r.activity, cfg.energy);

    const std::size_t prev =
        t.pending.fetch_sub(1, std::memory_order_acq_rel);
    ST_REQUIRE(prev > 0, "run refcount underflow");
    if (prev == 1) t.release();
  };

  // Two-level parallelism: units are claimed concurrently (in program
  // order, preserving the operand-cache locality of the old serial
  // sweep), and each unit's stage tiles fan out over the same pool — so
  // a program of many small stages fills the pool even when no single
  // stage could. parallel_for's claim loop makes this safe even when
  // run_exact is itself running on a pool worker (Session exact jobs):
  // the caller participates and never blocks on the pool's queue.
  util::parallel_for(engine.worker_pool(), units.size(), /*grain=*/1,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t u = first; u < last; ++u) {
                         run_unit(u);
                       }
                     });

  // Deterministic assembly in program order — the identical accumulation
  // sequence (integer counters and float energy alike) the serial sweep
  // performed, whatever order the units actually ran in.
  for (StageReport& stage : stages) {
    report.total_cycles += stage.cycles;
    report.activity += stage.activity;
    report.energy += stage.energy;
    report.stages.push_back(std::move(stage));
  }
  return report;
}

}  // namespace sparsetrain::sim
