#include "sim/exact_network.hpp"

#include <optional>

#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace sparsetrain::sim {

namespace {

/// Operand tags for the per-tensor stream derivation: mix64 over (seed,
/// layer, tag) — the same decorrelation the Session's seeding uses — so
/// every synthesised tensor gets an independent stream whatever stage
/// subset the program contains.
enum : std::uint64_t { kInput = 1, kGrad = 2, kMask = 3, kFcBase = 4 };

Rng stream(std::uint64_t seed, std::size_t layer, std::uint64_t tag) {
  return Rng(mix64(mix64(seed, layer), tag));
}

/// Lazily synthesised operands of one layer, held in compressed-row form
/// so every stage sharing a tensor (Forward + GTW share I, GTA + GTW
/// share dO) compresses it exactly once per whole-program run — whatever
/// order the program emits its Run instructions in. `pending_runs` is the
/// number of this layer's Run instructions not yet executed; when it hits
/// zero the operands are released, so a layer-contiguous program still
/// keeps only ~one layer's tensors alive at a time.
struct LayerOperands {
  std::optional<ExactEngine::RowSet> input;
  Shape input_shape;
  std::optional<ExactEngine::RowSet> grad;
  Shape grad_shape;
  std::optional<Tensor> mask;  ///< engaged only when the mask gates (ρ < 1)
  std::size_t pending_runs = 0;

  void release() {
    input.reset();
    grad.reset();
    mask.reset();
  }
};

}  // namespace

SimReport run_exact(const ArchConfig& cfg, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed, const ExactOptions& opts) {
  return run_exact(ExactEngine(cfg, opts), program, net, profile, seed);
}

SimReport run_exact(const ExactEngine& engine, const isa::Program& program,
                    const workload::NetworkConfig& net,
                    const workload::SparsityProfile& profile,
                    std::uint64_t seed) {
  const ArchConfig& cfg = engine.config();
  ST_REQUIRE(profile.size() == net.layers.size(),
             "profile does not match network");
  ST_REQUIRE(program.batch > 0, "program batch must be positive");
  const std::size_t batch = program.batch;

  SimReport report;
  report.program_name = program.name;
  report.arch_name = cfg.name;
  report.profile_name = profile.name();
  report.clock_ghz = cfg.clock_ghz;
  report.total_pes = cfg.pe_groups * cfg.pes_per_group;
  report.engine = isa::EngineKind::Exact;

  // One operand slot per layer, filled lazily and released after the
  // layer's last Run instruction: each activation/gradient tensor of a
  // whole-program run is synthesised and compressed exactly once, even if
  // the program interleaves layers (e.g. a forward sweep followed by a
  // reverse backward sweep).
  std::vector<LayerOperands> operands(net.layers.size());
  for (const auto& inst : program.instructions) {
    if (inst.op != isa::Opcode::Run) continue;
    ST_REQUIRE(inst.layer_index < net.layers.size(),
               "instruction references unknown layer");
    ++operands[inst.layer_index].pending_runs;
  }

  auto input_of = [&](std::size_t li) -> const ExactEngine::RowSet& {
    LayerOperands& t = operands[li];
    if (!t.input) {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kInput);
      Tensor x(Shape{batch, l.in_channels, l.in_h, l.in_w});
      x.fill_sparse_normal(rng, profile.layer(li).input_acts);
      t.input_shape = x.shape();
      t.input = engine.compress(x);
    }
    return *t.input;
  };
  auto grad_of = [&](std::size_t li) -> const ExactEngine::RowSet& {
    LayerOperands& t = operands[li];
    if (!t.grad) {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kGrad);
      Tensor g(Shape{batch, l.out_channels, l.out_h(), l.out_w()});
      g.fill_sparse_normal(rng, profile.layer(li).output_grads);
      t.grad_shape = g.shape();
      t.grad = engine.compress(g);
    }
    return *t.grad;
  };
  auto mask_of = [&](std::size_t li) -> const Tensor* {
    const double rho = profile.layer(li).mask;
    if (rho >= 1.0) return nullptr;  // all-pass
    LayerOperands& t = operands[li];
    if (!t.mask) {
      const auto& l = net.layers[li];
      Rng rng = stream(seed, li, kMask);
      Tensor m(Shape{batch, l.in_channels, l.in_h, l.in_w});
      m.fill_sparse_normal(rng, rho);
      for (float& v : m.flat())
        if (v != 0.0f) v = 1.0f;
      t.mask = std::move(m);
    }
    return &*t.mask;
  };

  for (const auto& inst : program.instructions) {
    if (inst.op != isa::Opcode::Run) continue;
    const std::size_t li = inst.layer_index;
    LayerOperands& t = operands[li];
    const auto& l = net.layers[li];
    const isa::RowBlock& b = inst.block;

    ExactStageResult r;
    switch (b.kind) {
      case isa::RowOpKind::SRC: {
        const auto& in = input_of(li);  // fills t.input_shape
        r = engine.run_forward(in, t.input_shape, dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::MSRC: {
        const auto& go = grad_of(li);  // fills t.grad_shape
        r = engine.run_gta(go, t.grad_shape,
                           Shape{batch, l.in_channels, l.in_h, l.in_w},
                           mask_of(li), dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::OSRC: {
        const auto& go = grad_of(li);
        const auto& in = input_of(li);
        r = engine.run_gtw(go, t.grad_shape, in, t.input_shape,
                           dataflow::layer_geometry(l));
        break;
      }
      case isa::RowOpKind::FC: {
        // The block already encodes the compiler's lane packing: tasks =
        // batch × lane groups over the useful outputs of this stage.
        ST_REQUIRE(b.tasks % batch == 0,
                   "FC block tasks not divisible by program batch");
        const std::size_t groups = b.tasks / batch;
        Rng rng = stream(seed, li,
                         kFcBase + static_cast<std::uint64_t>(inst.stage));
        Tensor vec(Shape{batch, 1, 1, b.in_len});
        vec.fill_sparse_normal(rng, b.density_in);
        r = engine.run_fc(vec, groups, b.fc_lanes);
        break;
      }
    }

    StageReport stage;
    stage.layer_index = li;
    stage.layer_name = l.name;
    stage.stage = inst.stage;
    stage.cycles = r.cycles;
    stage.activity = r.activity;
    stage.energy = price(r.activity, cfg.energy);
    report.total_cycles += stage.cycles;
    report.activity += stage.activity;
    report.energy += stage.energy;
    report.stages.push_back(std::move(stage));

    ST_REQUIRE(t.pending_runs > 0, "run refcount underflow");
    if (--t.pending_runs == 0) t.release();
  }
  return report;
}

}  // namespace sparsetrain::sim
