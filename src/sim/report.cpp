#include "sim/report.hpp"

namespace sparsetrain::sim {

std::size_t SimReport::stage_cycles(isa::Stage stage) const {
  std::size_t total = 0;
  for (const auto& s : stages)
    if (s.stage == stage) total += s.cycles;
  return total;
}

double SimReport::utilization(std::size_t total_pes) const {
  if (total_cycles == 0 || total_pes == 0) return 0.0;
  return static_cast<double>(activity.busy_cycles) /
         (static_cast<double>(total_cycles) *
          static_cast<double>(total_pes));
}

}  // namespace sparsetrain::sim
