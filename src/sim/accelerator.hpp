// The SparseTrain accelerator simulator (paper §V, Fig. 7a).
//
// Components modelled:
//   * PE groups (default 56 groups × 3 PEs = the paper's 168 PEs): each
//     group task (one output row / kernel slice) runs its row ops on the
//     group's PEs in parallel rounds; per-op cycle counts follow the PE
//     model (1 nonzero per cycle, K-wide MAC, mask look-ahead, OSRC chunk
//     reloads) with binomially distributed nonzero counts.
//   * Controller: dispatches tasks dynamically to the least-loaded group;
//     a stage's cycle count is the makespan over groups; Barrier
//     instructions synchronise (stragglers bound the stage).
//   * Global buffer (386 KB default): all operand rows stream through it
//     in compressed offset+value format; traffic is priced by the energy
//     model. When a layer-stage's working set exceeds the buffer, weights
//     are re-fetched from DRAM per activation tile.
//   * PPU: ReLU + format conversion + the Σ|g| accumulation are free in
//     time (pipelined behind the PEs) but their output traffic is counted.
//
// The same engine with `sparse = false` models the Eyeriss-like dense
// baseline: every element costs a cycle and a MAC, rows move uncompressed,
// and no mask skipping happens (see src/baseline).
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"
#include "sim/energy_model.hpp"
#include "sim/pe_model.hpp"
#include "sim/report.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::sim {

struct ArchConfig {
  std::string name = "SparseTrain";
  std::size_t pe_groups = 56;
  std::size_t pes_per_group = 3;
  std::size_t buffer_bytes = 386 * 1024;
  double clock_ghz = 0.8;
  bool sparse = true;  ///< false = dense (baseline) semantics
  PeTiming timing;
  EnergyParams energy;
  std::uint64_t seed = 1;
  /// Tasks are bundled so at most this many scheduling samples are drawn
  /// per Run instruction (keeps ImageNet-scale sims fast without changing
  /// the makespan statistics materially).
  std::size_t max_sched_samples = 20000;

  /// Throws ContractError naming the offending field when the
  /// configuration cannot describe a buildable accelerator (zero PE
  /// groups/PEs, zero or absurd clock, buffer smaller than one compressed
  /// row or beyond on-chip SRAM scale, ...). A bad config would otherwise
  /// silently produce nonsense cycle counts; BackendRegistry::add and
  /// dse::SpaceSpec::validate call this so every architecture that can
  /// run has been checked.
  void validate() const;
};

class Accelerator {
 public:
  explicit Accelerator(ArchConfig cfg);

  const ArchConfig& config() const { return cfg_; }
  std::size_t total_pes() const { return cfg_.pe_groups * cfg_.pes_per_group; }

  /// Executes a compiled program. `net`/`profile` provide the per-layer
  /// tensor footprints and densities needed for the DRAM traffic model and
  /// must be the ones the program was compiled from. Uses the
  /// architecture's configured scheduling seed.
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile) const;

  /// Same, but with an explicit scheduling-noise seed. core::Session uses
  /// this to give every submitted job its own deterministic stream, so
  /// results do not depend on which pool worker runs the job.
  SimReport run(const isa::Program& program,
                const workload::NetworkConfig& net,
                const workload::SparsityProfile& profile,
                std::uint64_t seed) const;

 private:
  ArchConfig cfg_;
};

}  // namespace sparsetrain::sim
