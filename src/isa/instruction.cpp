#include "isa/instruction.hpp"

namespace sparsetrain::isa {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::Forward:
      return "Forward";
    case Stage::GTA:
      return "GTA";
    case Stage::GTW:
      return "GTW";
  }
  return "?";
}

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::Statistical:
      return "statistical";
    case EngineKind::Exact:
      return "exact";
  }
  return "?";
}

const char* row_op_name(RowOpKind k) {
  switch (k) {
    case RowOpKind::SRC:
      return "SRC";
    case RowOpKind::MSRC:
      return "MSRC";
    case RowOpKind::OSRC:
      return "OSRC";
    case RowOpKind::FC:
      return "FC";
  }
  return "?";
}

std::size_t Program::count(Opcode op) const {
  std::size_t n = 0;
  for (const auto& inst : instructions)
    if (inst.op == op) ++n;
  return n;
}

}  // namespace sparsetrain::isa
