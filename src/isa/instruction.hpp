// Internal instruction set of the SparseTrain accelerator.
//
// The compiler lowers a network description into a linear program of these
// instructions; the controller of the (simulated) accelerator executes
// them. Run instructions carry *homogeneous row-op blocks*: a count of
// identical-geometry 1-D row convolutions plus the operand densities, which
// is all the cycle/energy model needs. (Materialising millions of
// individual row tasks for ImageNet-scale layers would be pure overhead.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sparsetrain::isa {

/// Training stage a block belongs to.
enum class Stage : std::uint8_t { Forward, GTA, GTW };

const char* stage_name(Stage s);

/// Which simulation engine a program is compiled for. Statistical programs
/// are executed from the row-block densities (sim::Accelerator); Exact
/// programs are re-driven through real synthesised tensors on the
/// cycle-stepped PE model (sim::run_exact). The choice is program
/// *metadata*: the instruction stream is identical, but carrying it here
/// keys the program cache and lets backends dispatch without a side
/// channel.
enum class EngineKind : std::uint8_t { Statistical, Exact };

const char* engine_name(EngineKind k);

/// Which dataflow primitive the PEs run. SRC/MSRC/OSRC are the paper's
/// three row convolutions; FC is the dot-product mapping used for
/// fully-connected layers (the PE streams the compressed operand vector
/// and multiplies each element into `fc_lanes` output accumulators, with
/// only the weight columns of nonzero operands fetched).
enum class RowOpKind : std::uint8_t { SRC, MSRC, OSRC, FC };

const char* row_op_name(RowOpKind k);

/// A homogeneous block of row ops (one layer-stage's worth of work).
struct RowBlock {
  RowOpKind kind = RowOpKind::SRC;
  /// Number of *group tasks*: one task = one output row (all contributing
  /// kernel rows and input channels), the unit the controller dispatches.
  std::size_t tasks = 0;
  /// Row ops per task (C·K for conv stages).
  std::size_t ops_per_task = 0;
  std::size_t in_len = 0;     ///< dense length of the streamed operand row
  std::size_t out_len = 0;    ///< output row length (K for OSRC)
  std::size_t second_len = 0; ///< OSRC second-operand (I) row length
  std::uint32_t kernel = 3;
  std::uint32_t stride = 1;
  std::uint32_t padding = 0;
  double density_in = 1.0;      ///< streamed operand density (I or dO)
  double density_mask = 1.0;    ///< MSRC output-mask density (1 = off)
  double density_second = 1.0;  ///< OSRC second operand (I) density
  std::size_t fc_lanes = 4;     ///< FC: output accumulators per PE
};

enum class Opcode : std::uint8_t {
  ConfigLayer,   ///< select layer geometry / stage
  LoadWeights,   ///< stream weights into the array (bytes)
  Run,           ///< execute a RowBlock across the PE groups
  StoreOutputs,  ///< drain PPU outputs to the buffer (dense element count)
  Barrier,       ///< wait for all groups (end of a layer stage)
};

struct Instruction {
  Opcode op = Opcode::Barrier;
  std::size_t layer_index = 0;
  Stage stage = Stage::Forward;
  RowBlock block;              ///< valid when op == Run
  std::size_t elements = 0;    ///< LoadWeights / StoreOutputs element count
  double store_density = 1.0;  ///< compressed-store density for StoreOutputs
};

/// A compiled workload: the instruction stream plus bookkeeping.
struct Program {
  std::string name;
  EngineKind engine = EngineKind::Statistical;
  std::size_t batch = 1;  ///< samples per iteration the blocks were sized for
  std::vector<Instruction> instructions;

  std::size_t count(Opcode op) const;
};

}  // namespace sparsetrain::isa
