#include "tensor/sparse_row.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace sparsetrain {

double SparseRow::density() const {
  return SparseRowView(*this).density();
}

std::size_t SparseRow::encoded_bytes() const {
  return SparseRowView(*this).encoded_bytes();
}

bool SparseRow::valid() const { return SparseRowView(*this).valid(); }

double SparseRowView::density() const {
  if (length == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(length);
}

std::size_t SparseRowView::encoded_bytes() const {
  // Modelled encoding: a presence bitmap (1 bit per dense position) plus
  // 16-bit values for the nonzeros, plus a 2-byte row descriptor. This is
  // what the PPU's format converter emits; it beats offset+value encodings
  // for the short, moderately dense rows CNN layers produce.
  return 2 + (length + 7) / 8 + nnz() * 2;
}

bool SparseRowView::valid() const {
  if (offsets.size() != values.size()) return false;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    if (offsets[i] >= length) return false;
    if (i > 0 && offsets[i] <= offsets[i - 1]) return false;
    if (values[i] == 0.0f) return false;
  }
  return true;
}

SparseRow compress_row(std::span<const float> dense) {
  SparseRow row;
  row.length = static_cast<std::uint32_t>(dense.size());
  for (std::uint32_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0f) {
      row.offsets.push_back(i);
      row.values.push_back(dense[i]);
    }
  }
  return row;
}

std::vector<float> decompress_row(const SparseRow& row) {
  ST_REQUIRE(row.valid(), "decompress_row: malformed sparse row");
  std::vector<float> dense(row.length, 0.0f);
  decompress_into(row, dense);
  return dense;
}

void decompress_into(SparseRowView row, std::span<float> dense) {
  ST_REQUIRE(dense.size() == row.length, "decompress_into length mismatch");
  std::fill(dense.begin(), dense.end(), 0.0f);
  for (std::size_t i = 0; i < row.nnz(); ++i)
    dense[row.offsets[i]] = row.values[i];
}

SparseRow materialize(SparseRowView row) {
  SparseRow out;
  out.length = row.length;
  out.offsets.assign(row.offsets.begin(), row.offsets.end());
  out.values.assign(row.values.begin(), row.values.end());
  return out;
}

double MaskRow::density() const {
  if (length == 0) return 0.0;
  return static_cast<double>(allowed()) / static_cast<double>(length);
}

bool MaskRow::allows(std::uint32_t p) const {
  return std::binary_search(offsets.begin(), offsets.end(), p);
}

MaskRow mask_from_dense(std::span<const float> dense) {
  MaskRow mask;
  mask.length = static_cast<std::uint32_t>(dense.size());
  for (std::uint32_t i = 0; i < dense.size(); ++i)
    if (dense[i] != 0.0f) mask.offsets.push_back(i);
  return mask;
}

void apply_mask(std::span<float> dense, const MaskRow& mask) {
  ST_REQUIRE(dense.size() == mask.length, "apply_mask length mismatch");
  std::size_t k = 0;
  for (std::uint32_t i = 0; i < dense.size(); ++i) {
    if (k < mask.offsets.size() && mask.offsets[k] == i) {
      ++k;  // allowed position, keep the value
    } else {
      dense[i] = 0.0f;
    }
  }
}

}  // namespace sparsetrain
