// Arena-backed CSR storage for a whole tensor's compressed rows.
//
// The exact engine used to hold a tensor as vector<vector<SparseRow>> —
// every row owning two heap vectors, so a VGG-scale activation tensor
// scattered tens of thousands of small allocations across the heap and
// the PE loops chased pointers instead of streaming memory. This type
// stores all rows of one tensor in three contiguous arrays (one offsets
// arena, one values arena, a row-pointer index) and hands the hot loops
// lightweight SparseRowView spans into them. Rows of an NCHW tensor are
// indexed flat in (n, c, y) order — the same contiguous order as the
// tensor's own storage — so row (n, c, y) is row((n·C + c)·H + y).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/sparse_row.hpp"
#include "util/require.hpp"

namespace sparsetrain {

class Tensor;

namespace util {
class ThreadPool;
}

class CompressedRows {
 public:
  CompressedRows() = default;

  std::size_t rows() const {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  /// Dense length shared by every row (NCHW rows all have length W).
  std::uint32_t row_length() const { return row_len_; }
  std::size_t total_nnz() const { return values_.size(); }
  bool empty() const { return rows() == 0; }

  /// Rows with at least one nonzero (counted once at build time). The
  /// exact engine's adaptive tile sizing uses the nonempty fraction to
  /// estimate how many GTW row ops a task actually schedules.
  std::size_t nonempty_rows() const { return nonempty_rows_; }

  /// View of row i — two spans into the arena, no ownership.
  SparseRowView row(std::size_t i) const {
    ST_REQUIRE(i + 1 < row_ptr_.size(), "CompressedRows row out of range");
    const std::size_t b = row_ptr_[i];
    const std::size_t e = row_ptr_[i + 1];
    return SparseRowView(
        row_len_,
        std::span<const std::uint32_t>(offsets_).subspan(b, e - b),
        std::span<const float>(values_).subspan(b, e - b));
  }

  /// Fraction of nonzeros over all rows; 0 when empty.
  double density() const;

  /// Every row's SparseRowView invariants plus a monotone row index.
  bool valid() const;

  // ----------------------------------------------------------- builder
  // compress_tensor() builds in two tiled passes: start() turns per-row
  // nonzero counts into the row-pointer index and sizes both arenas in
  // one shot; fill_row() then compresses each dense row into its
  // pre-sized slice (disjoint slices, so the fill pass parallelises
  // without synchronisation).

  /// Allocates the arena for rows of dense length `row_len` whose
  /// per-row nonzero counts are `counts`.
  void start(std::uint32_t row_len, std::span<const std::uint32_t> counts);

  /// Compresses `dense` (length row_length()) into row i's slice. The
  /// nonzero count must match what start() was told for this row.
  void fill_row(std::size_t i, std::span<const float> dense);

 private:
  std::uint32_t row_len_ = 0;
  std::size_t nonempty_rows_ = 0;       ///< rows with nnz > 0
  std::vector<std::uint32_t> offsets_;  ///< all rows' offsets, concatenated
  std::vector<float> values_;           ///< all rows' values, concatenated
  std::vector<std::size_t> row_ptr_;    ///< row i spans [ptr[i], ptr[i+1])
};

/// Compresses every row of `t` into one arena. Both passes (count, fill)
/// are tiled across `pool` when one is given; the resulting layout is
/// byte-identical for any pool/worker count (and to the serial build).
CompressedRows compress_tensor(const Tensor& t,
                               util::ThreadPool* pool = nullptr);

}  // namespace sparsetrain
