#include "tensor/shape.hpp"

#include <sstream>

#include "util/require.hpp"

namespace sparsetrain {

std::size_t Shape::index(std::size_t in_, std::size_t ic, std::size_t ih,
                         std::size_t iw) const {
  ST_REQUIRE(in_ < n && ic < c && ih < h && iw < w,
             "tensor index out of bounds for " + to_string());
  return ((in_ * c + ic) * h + ih) * w + iw;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << "(" << n << "," << c << "," << h << "," << w << ")";
  return os.str();
}

}  // namespace sparsetrain
