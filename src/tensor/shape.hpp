// 4-D shape algebra in NCHW order.
//
// Everything in CNN training is at most rank 4 (weights K×K×C×F are stored
// as F×C×K×K here); lower-rank data uses leading dimensions of size 1, so a
// single shape type serves the whole library.
#pragma once

#include <cstddef>
#include <string>

namespace sparsetrain {

/// Dimensions of a rank-≤4 tensor in (n, c, h, w) order.
struct Shape {
  std::size_t n = 1;  ///< batch (or output-channel count for weights)
  std::size_t c = 1;  ///< channels (or input-channel count for weights)
  std::size_t h = 1;  ///< rows
  std::size_t w = 1;  ///< columns

  constexpr std::size_t size() const { return n * c * h * w; }

  /// Flat index of element (in_, ic, ih, iw). Bounds are contract-checked.
  std::size_t index(std::size_t in_, std::size_t ic, std::size_t ih,
                    std::size_t iw) const;

  constexpr bool operator==(const Shape&) const = default;

  std::string to_string() const;

  /// 1-D shape of the given length.
  static constexpr Shape vec(std::size_t len) { return Shape{1, 1, 1, len}; }
  /// 2-D (rows × cols) shape.
  static constexpr Shape mat(std::size_t rows, std::size_t cols) {
    return Shape{1, 1, rows, cols};
  }
  /// 3-D (channels × rows × cols) shape, the per-sample activation layout.
  static constexpr Shape chw(std::size_t c, std::size_t h, std::size_t w) {
    return Shape{1, c, h, w};
  }
};

}  // namespace sparsetrain
