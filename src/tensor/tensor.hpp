// Dense float tensor in NCHW layout.
//
// This is the numeric workhorse of the NN substrate. It is deliberately a
// plain owning container (contiguous std::vector storage, value semantics)
// rather than an expression-template library: the reproduction needs
// predictable, inspectable numerics more than peak FLOPs.
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/require.hpp"

namespace sparsetrain {

class Rng;

/// Owning dense tensor of float32 with rank-≤4 NCHW shape.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape) : shape_(shape), data_(shape.size(), 0.0f) {}

  /// Tensor with explicit contents (size must match the shape).
  Tensor(Shape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {
    ST_REQUIRE(data_.size() == shape_.size(),
               "tensor data size does not match shape " + shape_.to_string());
  }

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[shape_.index(n, c, h, w)];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[shape_.index(n, c, h, w)];
  }

  /// Flat element access (contract-checked).
  float& operator[](std::size_t i) {
    ST_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    ST_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  /// Contiguous row (n, c, h, ·) as a span of length shape().w.
  std::span<float> row(std::size_t n, std::size_t c, std::size_t h) {
    return std::span<float>(data_).subspan(shape_.index(n, c, h, 0),
                                           shape_.w);
  }
  std::span<const float> row(std::size_t n, std::size_t c,
                             std::size_t h) const {
    return std::span<const float>(data_).subspan(shape_.index(n, c, h, 0),
                                                 shape_.w);
  }

  /// Sets every element to v.
  void fill(float v);

  /// Sets every element to 0.
  void zero() { fill(0.0f); }

  /// Fills with N(mean, stddev) samples.
  void fill_normal(Rng& rng, float mean, float stddev);

  /// Fills with U[lo, hi) samples.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// Randomly zeroes elements so that roughly `density` of them stay
  /// nonzero; survivors are N(0, 1) draws. Used by workload generators.
  void fill_sparse_normal(Rng& rng, double density);

  /// Reshapes in place; the element count must be preserved.
  void reshape(Shape new_shape);

  /// this += other (shapes must match).
  void add(const Tensor& other);

  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);

  /// this *= alpha.
  void scale(float alpha);

  /// Number of nonzero elements.
  std::size_t nnz() const;

  /// Fraction of nonzero elements (paper's ρ_nnz); 0 for empty tensors.
  double density() const;

 private:
  Shape shape_{};
  std::vector<float> data_;
};

/// Max |a - b| over two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// True when all elements differ by at most tol.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace sparsetrain
