// Compressed sparse row format — the accelerator's on-wire data layout.
//
// The SparseTrain architecture moves activation / gradient rows between the
// global buffer and the PEs in an offset+value format (the PPU's "Format
// Converter" produces it, the PE's converters consume it). The same type is
// used by the functional dataflow reference and by the cycle simulator, so
// there is exactly one definition of what "compressed row" means.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sparsetrain {

/// One sparse row: strictly increasing offsets with matching nonzero
/// values, plus the logical (dense) length.
struct SparseRow {
  std::uint32_t length = 0;            ///< dense length of the row
  std::vector<std::uint32_t> offsets;  ///< positions of nonzeros, ascending
  std::vector<float> values;           ///< values[i] lives at offsets[i]

  std::size_t nnz() const { return offsets.size(); }
  bool empty() const { return offsets.empty(); }

  /// Fraction of nonzeros; 0 for zero-length rows.
  double density() const;

  /// Storage cost in bytes for the modelled 16-bit value + 16-bit offset
  /// encoding used in the traffic/energy model.
  std::size_t encoded_bytes() const;

  /// Checks the representation invariants (sorted unique offsets in range,
  /// no stored zeros, matching array sizes). Used by tests and debug paths.
  bool valid() const;
};

/// Non-owning view of one compressed row. This is what the hot paths pass
/// around: two spans that may point into an owning SparseRow or into a
/// CompressedRows arena. Trivially copyable — pass by value.
struct SparseRowView {
  std::uint32_t length = 0;            ///< dense length of the row
  std::span<const std::uint32_t> offsets;
  std::span<const float> values;

  SparseRowView() = default;
  SparseRowView(std::uint32_t len, std::span<const std::uint32_t> offs,
                std::span<const float> vals)
      : length(len), offsets(offs), values(vals) {}
  /*implicit*/ SparseRowView(const SparseRow& row)
      : length(row.length), offsets(row.offsets), values(row.values) {}

  std::size_t nnz() const { return offsets.size(); }
  bool empty() const { return offsets.empty(); }

  /// Fraction of nonzeros; 0 for zero-length rows.
  double density() const;

  /// Same modelled encoding as SparseRow::encoded_bytes().
  std::size_t encoded_bytes() const;

  /// Representation invariants (sorted unique offsets in range, no stored
  /// zeros, matching span sizes).
  bool valid() const;
};

/// Compresses a dense row (exact zeros are dropped).
SparseRow compress_row(std::span<const float> dense);

/// Expands back to dense; output size is row.length.
std::vector<float> decompress_row(const SparseRow& row);

/// Expands a view into caller-provided storage (dense.size() must equal
/// row.length; positions without a nonzero are zeroed).
void decompress_into(SparseRowView row, std::span<float> dense);

/// Owning copy of a view (for callers that outlive the arena).
SparseRow materialize(SparseRowView row);

/// Positions a ReLU/MaxPool mask allows (mask nonzero). The GTA step uses
/// this to skip computing gradients the following mask would zero anyway.
struct MaskRow {
  std::uint32_t length = 0;
  std::vector<std::uint32_t> offsets;  ///< allowed (pass-through) positions

  std::size_t allowed() const { return offsets.size(); }
  double density() const;

  /// True when position p survives the mask. O(log n).
  bool allows(std::uint32_t p) const;
};

/// Builds a MaskRow from a dense 0/1 (or boolean-ish) row: any nonzero
/// entry is an allowed position.
MaskRow mask_from_dense(std::span<const float> dense);

/// Applies a mask to a dense row in place (disallowed positions zeroed).
void apply_mask(std::span<float> dense, const MaskRow& mask);

}  // namespace sparsetrain
