#include "tensor/compressed_rows.hpp"

#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain {

double CompressedRows::density() const {
  const std::size_t dense =
      rows() * static_cast<std::size_t>(row_len_);
  if (dense == 0) return 0.0;
  return static_cast<double>(total_nnz()) / static_cast<double>(dense);
}

bool CompressedRows::valid() const {
  if (row_ptr_.empty()) return offsets_.empty() && values_.empty();
  if (row_ptr_.front() != 0 || row_ptr_.back() != values_.size()) return false;
  if (offsets_.size() != values_.size()) return false;
  for (std::size_t i = 0; i + 1 < row_ptr_.size(); ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) return false;
    if (!row(i).valid()) return false;
  }
  return true;
}

void CompressedRows::start(std::uint32_t row_len,
                           std::span<const std::uint32_t> counts) {
  row_len_ = row_len;
  nonempty_rows_ = 0;
  row_ptr_.resize(counts.size() + 1);
  row_ptr_[0] = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ST_REQUIRE(counts[i] <= row_len, "CompressedRows: count exceeds row");
    if (counts[i] > 0) ++nonempty_rows_;
    row_ptr_[i + 1] = row_ptr_[i] + counts[i];
  }
  offsets_.resize(row_ptr_.back());
  values_.resize(row_ptr_.back());
}

void CompressedRows::fill_row(std::size_t i, std::span<const float> dense) {
  ST_REQUIRE(i + 1 < row_ptr_.size(), "CompressedRows fill_row out of range");
  ST_REQUIRE(dense.size() == row_len_, "CompressedRows fill_row length");
  std::size_t k = row_ptr_[i];
  for (std::uint32_t p = 0; p < dense.size(); ++p) {
    if (dense[p] != 0.0f) {
      ST_REQUIRE(k < row_ptr_[i + 1],
                 "CompressedRows fill_row: more nonzeros than counted");
      offsets_[k] = p;
      values_[k] = dense[p];
      ++k;
    }
  }
  ST_REQUIRE(k == row_ptr_[i + 1],
             "CompressedRows fill_row: fewer nonzeros than counted");
}

CompressedRows compress_tensor(const Tensor& t, util::ThreadPool* pool) {
  const Shape& s = t.shape();
  const std::size_t n_rows = s.n * s.c * s.h;
  const std::span<const float> flat = t.flat();
  const std::size_t w = s.w;

  // Pass 1: per-row nonzero counts (tiled; each chunk writes its own
  // slots, so the count array is identical for any worker count).
  std::vector<std::uint32_t> counts(n_rows);
  constexpr std::size_t kGrain = 64;
  util::parallel_for(pool, n_rows, kGrain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t r = first; r < last; ++r) {
                         std::uint32_t c = 0;
                         for (const float v : flat.subspan(r * w, w))
                           c += (v != 0.0f);
                         counts[r] = c;
                       }
                     });

  // Pass 2: prefix-sum the index, then fill each row's disjoint slice.
  CompressedRows rows;
  rows.start(static_cast<std::uint32_t>(w), counts);
  util::parallel_for(pool, n_rows, kGrain,
                     [&](std::size_t first, std::size_t last) {
                       for (std::size_t r = first; r < last; ++r)
                         rows.fill_row(r, flat.subspan(r * w, w));
                     });
  return rows;
}

}  // namespace sparsetrain
