// Word-packed mask of allowed row positions.
//
// The GTA step skips gradient positions the following ReLU mask zeroes.
// MaskRow keeps those positions as a sorted offset list, which makes
// allows() a per-position binary search — the single hottest query of the
// exact engine's MSRC path. BitMask stores the same set as 64-bit words:
// allows() is one shift-and-test, allowed() is a popcount sum, and the
// look-ahead window test of MSRC (is anything allowed in [lo, hi)?)
// collapses to a couple of word operations. The assign_* methods reuse
// the word storage, so a per-thread scratch BitMask rebuilds from a dense
// mask row with zero steady-state allocations.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/sparse_row.hpp"

namespace sparsetrain {

class BitMask {
 public:
  BitMask() = default;

  /// All positions of [0, length) allowed.
  void assign_all(std::uint32_t length);

  /// No positions allowed.
  void assign_none(std::uint32_t length);

  /// Any nonzero entry of `dense` is an allowed position.
  void assign_from_dense(std::span<const float> dense);

  /// Same set as `mask` (the sorted-offset representation).
  void assign(const MaskRow& mask);

  std::uint32_t length() const { return length_; }

  /// True when position p survives the mask; false beyond length() (the
  /// same total-function contract as MaskRow::allows). O(1).
  bool allows(std::uint32_t p) const {
    return p < length_ && ((words_[p >> 6] >> (p & 63)) & 1u);
  }

  /// Number of allowed positions (popcount sum over the words).
  std::size_t allowed() const;

  /// allowed() / length; 0 for zero-length masks.
  double density() const;

  /// Allowed positions in [lo, hi) ∩ [0, length). The MSRC inner loop
  /// uses this as its window test: a window of K consecutive output
  /// positions spans at most two words.
  std::size_t count_in(std::uint32_t lo, std::uint32_t hi) const;

  /// Word-level access for word-skipping iteration (bits ≥ length() are
  /// guaranteed zero). Excludes the guard words.
  std::span<const std::uint64_t> words() const {
    return std::span<const std::uint64_t>(words_.data(), word_count());
  }

  /// Number of payload words, ⌈length() / 64⌉.
  std::size_t word_count() const {
    return (static_cast<std::size_t>(length_) + 63) / 64;
  }

  /// Raw word pointer for windowed kernels. The storage always carries
  /// two zero guard words past word_count(), so a two-word window read
  /// words[w], words[w + 1] is in-bounds for every w ≤ word_count() —
  /// the AVX2 MSRC kernel gathers both window words branch-free even
  /// when a clamped window starts exactly at length(). Never null once
  /// assigned (zero-length masks still hold the guards).
  const std::uint64_t* word_data() const { return words_.data(); }

 private:
  /// Sizes the word array for `length` bits plus guards, zero-filled.
  void reset_words(std::uint32_t length);

  std::uint32_t length_ = 0;
  std::vector<std::uint64_t> words_;  ///< word_count() payload + 2 guards
};

/// Value-returning conveniences (tests, reference paths).
BitMask bitmask_all(std::uint32_t length);
BitMask bitmask_from_dense(std::span<const float> dense);
BitMask bitmask_from(const MaskRow& mask);

}  // namespace sparsetrain
