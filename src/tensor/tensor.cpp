#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace sparsetrain {

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& x : data_)
    x = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_)
    x = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_sparse_normal(Rng& rng, double density) {
  ST_REQUIRE(density >= 0.0 && density <= 1.0, "density must be in [0,1]");
  for (float& x : data_)
    x = rng.bernoulli(density) ? static_cast<float>(rng.normal()) : 0.0f;
}

void Tensor::reshape(Shape new_shape) {
  ST_REQUIRE(new_shape.size() == shape_.size(),
             "reshape must preserve element count: " + shape_.to_string() +
                 " -> " + new_shape.to_string());
  shape_ = new_shape;
}

void Tensor::add(const Tensor& other) { axpy(1.0f, other); }

void Tensor::axpy(float alpha, const Tensor& other) {
  ST_REQUIRE(shape_ == other.shape_, "axpy shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::scale(float alpha) {
  for (float& x : data_) x *= alpha;
}

std::size_t Tensor::nnz() const {
  std::size_t count = 0;
  for (float x : data_)
    if (x != 0.0f) ++count;
  return count;
}

double Tensor::density() const {
  if (data_.empty()) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(data_.size());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  ST_REQUIRE(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  return a.shape() == b.shape() && max_abs_diff(a, b) <= tol;
}

}  // namespace sparsetrain
