#include "tensor/bit_mask.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace sparsetrain {

void BitMask::reset_words(std::uint32_t length) {
  length_ = length;
  const std::size_t n = (static_cast<std::size_t>(length) + 63) / 64;
  // Two zero guard words past the payload (see word_data()) so windowed
  // kernels read words [w, w+1] unconditionally for any w ≤ n.
  words_.assign(n + 2, 0);  // reuses capacity: no allocation once warm
}

void BitMask::assign_all(std::uint32_t length) {
  reset_words(length);
  if (length == 0) return;
  const std::size_t n = word_count();
  std::fill(words_.begin(), words_.begin() + n, ~std::uint64_t{0});
  const std::uint32_t tail = length & 63;
  if (tail != 0) words_[n - 1] = (std::uint64_t{1} << tail) - 1;
}

void BitMask::assign_none(std::uint32_t length) { reset_words(length); }

void BitMask::assign_from_dense(std::span<const float> dense) {
  reset_words(static_cast<std::uint32_t>(dense.size()));
  for (std::size_t i = 0; i < dense.size(); ++i)
    if (dense[i] != 0.0f) words_[i >> 6] |= std::uint64_t{1} << (i & 63);
}

void BitMask::assign(const MaskRow& mask) {
  reset_words(mask.length);
  for (const std::uint32_t p : mask.offsets) {
    ST_REQUIRE(p < length_, "BitMask: mask offset out of range");
    words_[p >> 6] |= std::uint64_t{1} << (p & 63);
  }
}

std::size_t BitMask::allowed() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words()) n += std::popcount(w);
  return n;
}

double BitMask::density() const {
  if (length_ == 0) return 0.0;
  return static_cast<double>(allowed()) / static_cast<double>(length_);
}

std::size_t BitMask::count_in(std::uint32_t lo, std::uint32_t hi) const {
  hi = std::min(hi, length_);
  if (lo >= hi) return 0;
  const std::uint32_t width = hi - lo;
  if (width <= 64) {
    // Narrow window (the MSRC case: width ≤ kernel ≤ 64): funnel the at
    // most two straddled words into one and popcount once. The guard
    // words make words_[w + 1] readable for every start word, and the
    // double shift keeps the s == 0 case defined (shift counts stay
    // ≤ 63).
    const std::size_t w = lo >> 6;
    const std::uint32_t s = lo & 63;
    const std::uint64_t span =
        (words_[w] >> s) | ((words_[w + 1] << 1) << (63 - s));
    const std::uint64_t keep = ~std::uint64_t{0} >> (64 - width);
    return static_cast<std::size_t>(std::popcount(span & keep));
  }
  const std::size_t wlo = lo >> 6;
  const std::size_t whi = (hi - 1) >> 6;
  const std::uint64_t lo_keep = ~std::uint64_t{0} << (lo & 63);
  const std::uint64_t hi_keep =
      ~std::uint64_t{0} >> (63 - ((hi - 1) & 63));
  if (wlo == whi) return std::popcount(words_[wlo] & lo_keep & hi_keep);
  std::size_t n = std::popcount(words_[wlo] & lo_keep);
  for (std::size_t w = wlo + 1; w < whi; ++w)
    n += std::popcount(words_[w]);
  return n + std::popcount(words_[whi] & hi_keep);
}

BitMask bitmask_all(std::uint32_t length) {
  BitMask m;
  m.assign_all(length);
  return m;
}

BitMask bitmask_from_dense(std::span<const float> dense) {
  BitMask m;
  m.assign_from_dense(dense);
  return m;
}

BitMask bitmask_from(const MaskRow& mask) {
  BitMask m;
  m.assign(mask);
  return m;
}

}  // namespace sparsetrain
