#include "baseline/eyeriss_like.hpp"

#include "util/require.hpp"

namespace sparsetrain::baseline {

sim::ArchConfig eyeriss_like_config() {
  sim::ArchConfig cfg;
  cfg.name = "Eyeriss-like dense";
  cfg.sparse = false;
  // Same 168-PE / 386 KB budget as the SparseTrain configuration.
  cfg.pe_groups = 56;
  cfg.pes_per_group = 3;
  cfg.buffer_bytes = 386 * 1024;
  return cfg;
}

EyerissLikeBaseline::EyerissLikeBaseline(sim::ArchConfig cfg)
    : accel_([&] {
        ST_REQUIRE(!cfg.sparse, "the baseline must run in dense mode");
        return std::move(cfg);
      }()) {}

}  // namespace sparsetrain::baseline
