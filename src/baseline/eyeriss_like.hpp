// Dense training baseline (paper §VI: "we modify the architecture of
// Eyeriss to support the dense training process", 168 PEs, same buffer).
//
// The baseline shares the PE array geometry and buffer budget with
// SparseTrain but is sparsity-blind: every row element costs a cycle and a
// MAC whether it is zero or not, operands move uncompressed, and the GTA
// step computes every dI value including the ones the ReLU mask will
// discard. That is exactly the `sparse = false` mode of the simulation
// engine; this module packages it with the paper's baseline parameters.
#pragma once

#include "sim/accelerator.hpp"

namespace sparsetrain::baseline {

/// Architecture parameters of the dense baseline (same compute/buffer
/// budget as the SparseTrain configuration it is compared against).
sim::ArchConfig eyeriss_like_config();

/// Convenience wrapper: a dense-mode Accelerator. Programs must be
/// compiled with a dense profile (the baseline cannot exploit sparsity,
/// and its cycle model ignores densities anyway).
class EyerissLikeBaseline {
 public:
  explicit EyerissLikeBaseline(sim::ArchConfig cfg = eyeriss_like_config());

  const sim::ArchConfig& config() const { return accel_.config(); }

  sim::SimReport run(const isa::Program& program,
                     const workload::NetworkConfig& net,
                     const workload::SparsityProfile& profile) const {
    return accel_.run(program, net, profile);
  }

 private:
  sim::Accelerator accel_;
};

}  // namespace sparsetrain::baseline
