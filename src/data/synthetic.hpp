// Synthetic class-conditional image data.
//
// Real CIFAR/ImageNet files are not available offline, so experiments use a
// generated classification task with the same tensor shapes: each class has
// a smooth random template; samples are template + Gaussian noise (+ random
// shift), which a small CNN can learn to high accuracy and which exercises
// the exact code paths (ReLU/pool natural sparsity, gradient distributions)
// the paper's algorithm depends on.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace sparsetrain::data {

struct SyntheticConfig {
  std::size_t classes = 10;
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t samples = 512;
  float noise = 0.35f;        ///< stddev of additive pixel noise
  std::size_t max_shift = 2;  ///< random translation of the template
  std::uint64_t seed = 1234;
};

/// Materialised synthetic dataset (images generated once, then immutable).
class SyntheticDataset final : public Dataset {
 public:
  explicit SyntheticDataset(const SyntheticConfig& cfg);

  std::size_t size() const override { return labels_.size(); }
  std::size_t num_classes() const override { return cfg_.classes; }
  Shape sample_shape() const override {
    return Shape{1, cfg_.channels, cfg_.height, cfg_.width};
  }
  Batch batch(std::size_t first, std::size_t count) const override;

  /// A second dataset drawn from the same class templates (held-out split).
  SyntheticDataset held_out(std::size_t samples, std::uint64_t seed) const;

 private:
  SyntheticDataset(const SyntheticConfig& cfg, const Tensor& templates,
                   std::uint64_t seed, std::size_t samples);
  void generate(Rng& rng, std::size_t samples);

  SyntheticConfig cfg_;
  Tensor templates_;  ///< {classes, C, H, W} smooth class prototypes
  std::vector<Tensor> images_;
  std::vector<std::uint32_t> labels_;
};

}  // namespace sparsetrain::data
