#include "data/synthetic.hpp"

#include <cmath>

#include "util/require.hpp"

namespace sparsetrain::data {

namespace {

/// Smooth random field: coarse 4×4 noise grid, bilinearly upsampled.
Tensor make_templates(const SyntheticConfig& cfg, Rng& rng) {
  const std::size_t GH = 4, GW = 4;
  Tensor out(Shape{cfg.classes, cfg.channels, cfg.height, cfg.width});
  for (std::size_t k = 0; k < cfg.classes; ++k) {
    for (std::size_t c = 0; c < cfg.channels; ++c) {
      float grid[GH][GW];
      for (auto& row : grid)
        for (auto& v : row) v = static_cast<float>(rng.normal());
      for (std::size_t y = 0; y < cfg.height; ++y) {
        for (std::size_t x = 0; x < cfg.width; ++x) {
          const float gy = static_cast<float>(y) /
                           static_cast<float>(cfg.height - 1) *
                           static_cast<float>(GH - 1);
          const float gx = static_cast<float>(x) /
                           static_cast<float>(cfg.width - 1) *
                           static_cast<float>(GW - 1);
          const auto y0 = static_cast<std::size_t>(gy);
          const auto x0 = static_cast<std::size_t>(gx);
          const std::size_t y1 = std::min(y0 + 1, GH - 1);
          const std::size_t x1 = std::min(x0 + 1, GW - 1);
          const float fy = gy - static_cast<float>(y0);
          const float fx = gx - static_cast<float>(x0);
          const float v = grid[y0][x0] * (1 - fy) * (1 - fx) +
                          grid[y1][x0] * fy * (1 - fx) +
                          grid[y0][x1] * (1 - fy) * fx +
                          grid[y1][x1] * fy * fx;
          out.at(k, c, y, x) = v;
        }
      }
    }
  }
  return out;
}

}  // namespace

SyntheticDataset::SyntheticDataset(const SyntheticConfig& cfg)
    : cfg_(cfg), templates_(Shape{1, 1, 1, 1}) {
  ST_REQUIRE(cfg_.classes >= 2, "need at least two classes");
  ST_REQUIRE(cfg_.height >= 4 && cfg_.width >= 4, "images must be >= 4x4");
  Rng rng(cfg_.seed);
  templates_ = make_templates(cfg_, rng);
  generate(rng, cfg_.samples);
}

SyntheticDataset::SyntheticDataset(const SyntheticConfig& cfg,
                                   const Tensor& templates, std::uint64_t seed,
                                   std::size_t samples)
    : cfg_(cfg), templates_(templates) {
  Rng rng(seed);
  generate(rng, samples);
}

void SyntheticDataset::generate(Rng& rng, std::size_t samples) {
  images_.reserve(samples);
  labels_.reserve(samples);
  const auto shift_range = static_cast<std::ptrdiff_t>(cfg_.max_shift);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto label =
        static_cast<std::uint32_t>(rng.uniform_index(cfg_.classes));
    const std::ptrdiff_t dy =
        shift_range == 0
            ? 0
            : static_cast<std::ptrdiff_t>(
                  rng.uniform_index(2 * cfg_.max_shift + 1)) -
                  shift_range;
    const std::ptrdiff_t dx =
        shift_range == 0
            ? 0
            : static_cast<std::ptrdiff_t>(
                  rng.uniform_index(2 * cfg_.max_shift + 1)) -
                  shift_range;

    Tensor img(Shape{1, cfg_.channels, cfg_.height, cfg_.width});
    for (std::size_t c = 0; c < cfg_.channels; ++c) {
      for (std::size_t y = 0; y < cfg_.height; ++y) {
        for (std::size_t x = 0; x < cfg_.width; ++x) {
          const std::ptrdiff_t sy = static_cast<std::ptrdiff_t>(y) + dy;
          const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(x) + dx;
          float v = 0.0f;
          if (sy >= 0 && sy < static_cast<std::ptrdiff_t>(cfg_.height) &&
              sx >= 0 && sx < static_cast<std::ptrdiff_t>(cfg_.width)) {
            v = templates_.at(label, c, static_cast<std::size_t>(sy),
                              static_cast<std::size_t>(sx));
          }
          img.at(0, c, y, x) =
              v + static_cast<float>(rng.normal(0.0, cfg_.noise));
        }
      }
    }
    images_.push_back(std::move(img));
    labels_.push_back(label);
  }
}

Batch SyntheticDataset::batch(std::size_t first, std::size_t count) const {
  ST_REQUIRE(count > 0, "batch count must be positive");
  ST_REQUIRE(!images_.empty(), "dataset is empty");
  Batch b;
  b.images = Tensor(Shape{count, cfg_.channels, cfg_.height, cfg_.width});
  b.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = (first + i) % images_.size();
    const Tensor& img = images_[src];
    for (std::size_t c = 0; c < cfg_.channels; ++c)
      for (std::size_t y = 0; y < cfg_.height; ++y)
        for (std::size_t x = 0; x < cfg_.width; ++x)
          b.images.at(i, c, y, x) = img.at(0, c, y, x);
    b.labels[i] = labels_[src];
  }
  return b;
}

SyntheticDataset SyntheticDataset::held_out(std::size_t samples,
                                            std::uint64_t seed) const {
  return SyntheticDataset(cfg_, templates_, seed, samples);
}

}  // namespace sparsetrain::data
