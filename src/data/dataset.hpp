// Labelled image dataset interface + batch view.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace sparsetrain::data {

/// One minibatch: images {N,C,H,W} and integer labels.
struct Batch {
  Tensor images;
  std::vector<std::uint32_t> labels;

  std::size_t size() const { return labels.size(); }
};

/// In-memory labelled image dataset.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::size_t size() const = 0;
  virtual std::size_t num_classes() const = 0;
  virtual Shape sample_shape() const = 0;  ///< {1,C,H,W}

  /// Copies samples [first, first+count) into a batch (wraps around).
  virtual Batch batch(std::size_t first, std::size_t count) const = 0;
};

}  // namespace sparsetrain::data
