#include "serve/io_hooks.hpp"

#include <cerrno>
#include <cstdio>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace sparsetrain::serve {

std::FILE* IoHooks::open(const std::string& path, const char* mode) {
  return std::fopen(path.c_str(), mode);
}

std::size_t IoHooks::write(std::FILE* f, const void* data, std::size_t n) {
  return std::fwrite(data, 1, n, f);
}

int IoHooks::flush(std::FILE* f) { return std::fflush(f); }

int IoHooks::sync(std::FILE* f) {
#ifndef _WIN32
  return ::fsync(::fileno(f));
#else
  (void)f;
  return 0;  // no fsync on this platform; flush already happened
#endif
}

int IoHooks::close(std::FILE* f) { return std::fclose(f); }

int IoHooks::rename(const std::string& from, const std::string& to) {
  return std::rename(from.c_str(), to.c_str());
}

int IoHooks::remove(const std::string& path) {
  return std::remove(path.c_str());
}

bool IoHooks::read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

const std::shared_ptr<IoHooks>& IoHooks::real() {
  static const std::shared_ptr<IoHooks> instance = std::make_shared<IoHooks>();
  return instance;
}

// ------------------------------------------------------------- injection

void FaultIoHooks::arm(Fault fault) {
  std::lock_guard lock(mu_);
  fault_ = fault;
  ops_ = 0;
}

std::uint64_t FaultIoHooks::ops() const {
  std::lock_guard lock(mu_);
  return ops_;
}

bool FaultIoHooks::firing(const char* what) {
  std::lock_guard lock(mu_);
  const std::uint64_t n = ++ops_;
  if (fault_.crash_at != 0 && n == fault_.crash_at) {
    throw InjectedCrash("injected crash at io op " + std::to_string(n) +
                        " (" + what + ")");
  }
  const bool fail =
      fault_.fail_at != 0 &&
      (n == fault_.fail_at || (fault_.sticky && n > fault_.fail_at));
  if (fail) errno = fault_.error;
  return fail;
}

std::FILE* FaultIoHooks::open(const std::string& path, const char* mode) {
  if (firing("open")) return nullptr;
  return IoHooks::open(path, mode);
}

std::size_t FaultIoHooks::write(std::FILE* f, const void* data,
                                std::size_t n) {
  if (firing("write")) {
    bool short_write;
    int error;
    {
      std::lock_guard lock(mu_);
      short_write = fault_.short_write;
      error = fault_.error;
    }
    if (short_write && n > 1) {
      // A torn write: half the bytes land, then the device gives out.
      const std::size_t wrote = IoHooks::write(f, data, n / 2);
      errno = error;
      return wrote;
    }
    return 0;
  }
  return IoHooks::write(f, data, n);
}

int FaultIoHooks::flush(std::FILE* f) {
  if (firing("flush")) return EOF;
  return IoHooks::flush(f);
}

int FaultIoHooks::sync(std::FILE* f) {
  if (firing("fsync")) return -1;
  return IoHooks::sync(f);
}

int FaultIoHooks::close(std::FILE* f) {
  bool fail = false;
  try {
    fail = firing("close");
  } catch (...) {
    // Even a simulated process death releases the stream — a real dead
    // process frees its FILEs — so crash-matrix tests stay leak-free.
    IoHooks::close(f);
    throw;
  }
  if (fail) {
    // The resource is always released — a failed fclose still frees the
    // stream — so callers never leak on an injected close failure.
    const int saved = errno;
    IoHooks::close(f);
    errno = saved;
    return EOF;
  }
  return IoHooks::close(f);
}

int FaultIoHooks::rename(const std::string& from, const std::string& to) {
  if (firing("rename")) return -1;
  return IoHooks::rename(from, to);
}

int FaultIoHooks::remove(const std::string& path) {
  if (firing("remove")) return -1;
  return IoHooks::remove(path);
}

bool FaultIoHooks::read_file(const std::string& path, std::string& out) {
  if (firing("read")) return false;
  return IoHooks::read_file(path, out);
}

}  // namespace sparsetrain::serve
