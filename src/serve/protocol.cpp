#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace sparsetrain::serve {

namespace {

std::string num(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::uint64_t parse_hex16(const std::string& s) {
  ST_REQUIRE(!s.empty() && s.size() <= 16,
             "protocol: bad fingerprint '" + s + "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      ST_REQUIRE(false, "protocol: bad fingerprint '" + s + "'");
    }
  }
  return v;
}

std::size_t non_negative_int(const JsonValue& obj, const std::string& key,
                             double fallback) {
  const double v = obj.get_number(key, fallback);
  ST_REQUIRE(v >= 0 && std::floor(v) == v,
             "protocol: '" + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(v);
}

}  // namespace

std::string hex_encode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::string hex_decode(std::string_view hex) {
  ST_REQUIRE(hex.size() % 2 == 0,
             "protocol: hex payload has odd length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    ST_REQUIRE(false, std::string("protocol: bad hex character '") + c +
                          "'");
    return 0;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  }
  return out;
}

Request parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  ST_REQUIRE(doc.is_object(), "protocol: request is not a JSON object");

  Request r;
  r.type = doc.get_string("type", "");
  ST_REQUIRE(r.type == "eval" || r.type == "stats" || r.type == "status" ||
                 r.type == "metrics" || r.type == "shutdown" ||
                 r.type == "put",
             "protocol: unknown request type '" + r.type + "'");
  r.id = doc.get_string("id", "");
  const std::string trace = doc.get_string("trace", "");
  if (!trace.empty()) {
    r.trace = parse_hex16(trace);
    const std::string span = doc.get_string("span", "");
    if (!span.empty()) r.parent_span = parse_hex16(span);
  }
  if (r.type == "metrics") {
    r.format = doc.get_string("format", "json");
    ST_REQUIRE(r.format == "json" || r.format == "prometheus",
               "protocol: unknown metrics format '" + r.format + "'");
    return r;
  }
  if (r.type == "put") {
    const std::string fp = doc.get_string("fingerprint", "");
    ST_REQUIRE(!fp.empty(), "protocol: put needs a fingerprint");
    r.fingerprint = parse_hex16(fp);
    r.report_hex = doc.get_string("report", "");
    ST_REQUIRE(!r.report_hex.empty(), "protocol: put needs a report");
    ST_REQUIRE(r.report_hex.size() % 2 == 0,
               "protocol: put report hex has odd length");
    return r;
  }
  if (r.type != "eval") return r;

  r.workload = doc.get_string("workload", r.workload);
  r.backend = doc.get_string("backend", r.backend);
  r.scenario = doc.get_string("scenario", r.scenario);
  ST_REQUIRE(r.scenario == "dense" || r.scenario == "natural" ||
                 r.scenario == "pruned" || r.scenario == "calibrated",
             "protocol: unknown scenario '" + r.scenario + "'");
  r.p = doc.get_number("p", r.p);
  r.act_density = doc.get_number("act_density", r.act_density);
  r.do_density = doc.get_number("do_density", r.do_density);
  r.engine = doc.get_string("engine", r.engine);
  ST_REQUIRE(r.engine == "statistical" || r.engine == "exact",
             "protocol: unknown engine '" + r.engine + "'");
  r.batch = non_negative_int(doc, "batch", 0);
  r.timeout_ms =
      static_cast<long>(non_negative_int(doc, "timeout_ms", 0));
  r.include_report = doc.get_bool("include_report", false);
  return r;
}

std::string format_response(const Response& r) {
  std::ostringstream os;
  os << "{\"id\": \"" << json_escape(r.id) << "\", \"type\": \""
     << json_escape(r.type) << "\", \"status\": \"" << json_escape(r.status)
     << '"';
  if (!r.error.empty()) {
    os << ", \"error\": \"" << json_escape(r.error) << '"';
  }
  if (!r.source.empty()) {
    os << ", \"source\": \"" << json_escape(r.source) << '"';
  }
  if (!r.shard.empty()) {
    os << ", \"shard\": \"" << json_escape(r.shard) << '"';
  }
  if (r.elapsed_ms >= 0.0) {
    os << ", \"elapsed_ms\": " << num(r.elapsed_ms);
  }
  if (r.type == "result" && r.status == "ok") {
    os << ", \"workload\": \"" << json_escape(r.workload)
       << "\", \"backend\": \"" << json_escape(r.backend)
       << "\", \"engine\": \"" << json_escape(r.engine)
       << "\", \"fingerprint\": \"" << hex16(r.fingerprint)
       << "\", \"cycles\": " << r.cycles
       << ", \"latency_ms\": " << num(r.latency_ms)
       << ", \"utilization\": " << num(r.utilization)
       << ", \"on_chip_uj\": " << num(r.on_chip_uj)
       << ", \"dram_uj\": " << num(r.dram_uj);
    if (!r.report_hex.empty()) {
      os << ", \"report\": \"" << r.report_hex << '"';  // hex: no escapes
    }
  }
  if (!r.payload_json.empty()) {
    os << ", \"payload\": " << r.payload_json;
  }
  os << '}';
  return os.str();
}

Response parse_response(const std::string& line) {
  const JsonValue doc = parse_json(line);
  ST_REQUIRE(doc.is_object(), "protocol: response is not a JSON object");

  Response r;
  r.id = doc.get_string("id", "");
  r.type = doc.get_string("type", "result");
  r.status = doc.get_string("status", "");
  ST_REQUIRE(!r.status.empty(), "protocol: response has no status");
  r.error = doc.get_string("error", "");
  r.source = doc.get_string("source", "");
  r.shard = doc.get_string("shard", "");
  r.report_hex = doc.get_string("report", "");
  r.workload = doc.get_string("workload", "");
  r.backend = doc.get_string("backend", "");
  r.engine = doc.get_string("engine", "");
  const std::string fp = doc.get_string("fingerprint", "");
  if (!fp.empty()) r.fingerprint = parse_hex16(fp);
  r.elapsed_ms = doc.get_number("elapsed_ms", -1.0);
  r.cycles = static_cast<std::uint64_t>(doc.get_number("cycles", 0));
  r.latency_ms = doc.get_number("latency_ms", 0.0);
  r.utilization = doc.get_number("utilization", 0.0);
  r.on_chip_uj = doc.get_number("on_chip_uj", 0.0);
  r.dram_uj = doc.get_number("dram_uj", 0.0);
  return r;
}

}  // namespace sparsetrain::serve
