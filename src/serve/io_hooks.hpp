// Fault-injection seam between the result store and the filesystem.
//
// Every mutating file operation ResultStore performs — open, write,
// flush, fsync, close, rename, remove — plus whole-file reads goes
// through exactly one virtual call on an IoHooks instance, so tests can
// make any individual step fail (ENOSPC, EIO, a short write) or "crash"
// the process at that step (throw InjectedCrash) and then assert the
// store recovers. Production uses IoHooks::real(), which forwards to the
// C stdio/POSIX calls unchanged.
//
// FaultIoHooks counts operations in call order (across all kinds) and
// triggers on the Nth one, which makes exhaustive crash matrices trivial:
// run one clean publication to learn its op count, then re-run it once
// per op index with crash_at = that index.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

namespace sparsetrain::serve {

/// Thrown by FaultIoHooks to simulate the process dying at an exact I/O
/// step. Never thrown by real I/O. Tests catch it at the call that would
/// have killed the process, then reopen the store and assert recovery —
/// so it deliberately does NOT derive from the store's error type (a
/// crash must not be "handled" by the degradation path).
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Virtual seam over the file operations the store performs. Return
/// conventions mirror the calls they wrap: open returns nullptr on
/// failure, write returns the byte count written, flush/sync/close/
/// rename/remove return 0 on success (errno holds the cause on failure),
/// read_file returns false when the file cannot be read in full.
class IoHooks {
 public:
  virtual ~IoHooks() = default;

  virtual std::FILE* open(const std::string& path, const char* mode);
  virtual std::size_t write(std::FILE* f, const void* data, std::size_t n);
  virtual int flush(std::FILE* f);
  /// fsync of the underlying descriptor — the store syncs a tmp record
  /// before renaming it into place, so a published record is durable.
  virtual int sync(std::FILE* f);
  virtual int close(std::FILE* f);
  virtual int rename(const std::string& from, const std::string& to);
  virtual int remove(const std::string& path);
  virtual bool read_file(const std::string& path, std::string& out);

  /// The shared real-I/O instance (no faults, plain syscalls).
  static const std::shared_ptr<IoHooks>& real();
};

/// Deterministic fault injection for tests. Operations are counted from
/// the most recent arm() in call order; the configured fault fires on the
/// Nth operation (1-based). A firing fault either fails the call with the
/// configured errno (the real operation is still performed for close —
/// the resource is always released — and skipped otherwise), performs a
/// short write, or throws InjectedCrash *instead of* the operation.
class FaultIoHooks : public IoHooks {
 public:
  struct Fault {
    std::uint64_t fail_at = 0;   ///< fail op N with `error`; 0 = never
    int error = EIO;             ///< errno for injected failures
    bool sticky = false;         ///< keep failing every op from N on
    bool short_write = false;    ///< fail writes by writing half the bytes
    std::uint64_t crash_at = 0;  ///< throw InjectedCrash instead of op N
  };

  /// Installs `fault` and resets the operation counter, so store-open
  /// bookkeeping (index scan, tmp cleanup) never shifts the indices of
  /// the operation sequence under test.
  void arm(Fault fault);

  /// Operations observed since the last arm().
  std::uint64_t ops() const;

  std::FILE* open(const std::string& path, const char* mode) override;
  std::size_t write(std::FILE* f, const void* data, std::size_t n) override;
  int flush(std::FILE* f) override;
  int sync(std::FILE* f) override;
  int close(std::FILE* f) override;
  int rename(const std::string& from, const std::string& to) override;
  int remove(const std::string& path) override;
  bool read_file(const std::string& path, std::string& out) override;

 private:
  /// Counts the op; throws on a crash point; returns true when the op
  /// must fail (errno already set to the injected error).
  bool firing(const char* what);

  mutable std::mutex mu_;
  Fault fault_;
  std::uint64_t ops_ = 0;
};

}  // namespace sparsetrain::serve
