// Wire protocol of the evaluation daemon.
//
// Newline-delimited JSON in both directions. Requests are flat objects
// with a "type":
//
//   {"type":"eval","id":"r1","workload":"AlexNet/CIFAR",
//    "backend":"sparsetrain","scenario":"pruned","p":0.9,
//    "engine":"statistical","batch":1,"timeout_ms":5000}
//   {"type":"stats","id":"s"}      — store + cache + request counters
//   {"type":"status","id":"q"}     — liveness + provenance (pid, uptime,
//                                    SIMD mode, schema versions)
//   {"type":"metrics","id":"m","format":"json"}
//       — full metrics-registry snapshot: "json" answers the
//         sparsetrain.metrics/v1 document, "prometheus" answers the text
//         exposition wrapped as {"format":"prometheus","text":...}
//   {"type":"shutdown","id":"z"}   — graceful drain, then a "bye" reply
//   {"type":"put","id":"p","fingerprint":"<hex16>","report":"<hex>"}
//       — insert a serialized report directly into the daemon's store
//         (the shard router replicates results this way; idempotent,
//         keyed by the same fingerprint_v1 the store uses)
//
// Any request may carry tracing context as optional "trace" (16-hex
// trace id) and "span" (16-hex parent span id) fields. The edge process
// mints the trace id; a daemon that receives one parents its spans under
// the given span id and propagates the pair on every forwarded or
// replicated request. Absence of "trace" means the request is unsampled
// (the edge strips the fields for unsampled traces), so the fields never
// appear on a fraction of a trace.
//
// An eval request may add "include_report": true to receive the full
// serialized report (serve::report_io, hex-encoded) as "report" in the
// response — the payload a router forwards to replicas as a put.
//
// Every response is one line carrying the request's "id" and a "status"
// of ok | error | rejected | timeout. Evaluation responses additionally
// say where the numbers came from: "source" = store (persistent-store
// hit), computed (freshly simulated), coalesced (attached to an
// identical in-flight request — the single-flight discipline
// compiler::ProgramCache uses, applied to whole evaluations) or
// replicated (a put accepted into the store). A response that crossed
// the shard router also carries "shard": the backend endpoint that
// served it.
#pragma once

#include <cstdint>
#include <string>

#include "serve/json.hpp"

namespace sparsetrain::serve {

struct Request {
  std::string type;  ///< eval | stats | status | metrics | shutdown | put
  std::string id;    ///< echoed verbatim in the response ("" when absent)
  /// Tracing context (0 = absent/unsampled; see the header comment).
  std::uint64_t trace = 0;
  std::uint64_t parent_span = 0;
  /// metrics requests only: "json" | "prometheus".
  std::string format = "json";
  // eval fields (defaults mirror the paper's operating point).
  std::string workload = "AlexNet/CIFAR";  ///< zoo name
  std::string backend = "sparsetrain";     ///< registered backend name
  std::string scenario = "pruned";  ///< dense | natural | pruned | calibrated
  double p = 0.9;                   ///< pruning rate (scenario=pruned)
  double act_density = 0.45;
  double do_density = 1.0;          ///< scenario=calibrated only
  std::string engine = "statistical";  ///< statistical | exact
  std::size_t batch = 0;               ///< 0 = session default
  long timeout_ms = 0;                 ///< 0 = server default / none
  /// eval: ask for the serialized report ("report" hex) in the response.
  bool include_report = false;
  // put fields.
  std::uint64_t fingerprint = 0;  ///< store key the report belongs under
  std::string report_hex;         ///< hex-encoded serve::report_io payload
};

/// Parses one request line. Throws ContractError on malformed JSON, a
/// missing/unknown "type", or out-of-domain fields — the server turns
/// the exception into an explicit error response.
Request parse_request(const std::string& line);

struct Response {
  std::string id;
  std::string type = "result";  ///< result | stats | status | metrics | bye
  std::string status = "ok";    ///< ok | error | rejected | timeout
  std::string error;            ///< human-readable cause when not ok
  std::string source;  ///< store | computed | coalesced | replicated
  std::string shard;   ///< router only: backend endpoint that served this
  /// Server-side wall time spent on this request, measured from intake
  /// to response assembly; < 0 = not measured (parse keeps -1 when the
  /// field is absent). Emitted on every daemon response so clients see
  /// server-side latency without tracing enabled.
  double elapsed_ms = -1.0;
  // Evaluation payload.
  std::string workload;
  std::string backend;
  std::string engine;
  std::uint64_t fingerprint = 0;
  std::uint64_t cycles = 0;
  double latency_ms = 0.0;
  double utilization = 0.0;
  double on_chip_uj = 0.0;
  double dram_uj = 0.0;
  /// Hex-encoded serialized report ("" unless the eval asked for it).
  std::string report_hex;
  /// Raw JSON object appended as "payload" (stats/status responses).
  std::string payload_json;
};

/// Hex codec for report payloads on the wire (lowercase, two digits per
/// byte). hex_decode throws ContractError on odd length or a non-hex
/// character.
std::string hex_encode(std::string_view bytes);
std::string hex_decode(std::string_view hex);

/// One response line (no trailing newline).
std::string format_response(const Response& r);

/// Client-side parse of a response line. Throws ContractError when the
/// line is not a response object.
Response parse_response(const std::string& line);

}  // namespace sparsetrain::serve
