// Wire protocol of the evaluation daemon.
//
// Newline-delimited JSON in both directions. Requests are flat objects
// with a "type":
//
//   {"type":"eval","id":"r1","workload":"AlexNet/CIFAR",
//    "backend":"sparsetrain","scenario":"pruned","p":0.9,
//    "engine":"statistical","batch":1,"timeout_ms":5000}
//   {"type":"stats","id":"s"}      — store + cache + request counters
//   {"type":"status","id":"q"}     — liveness: inflight/completed counts
//   {"type":"shutdown","id":"z"}   — graceful drain, then a "bye" reply
//
// Every response is one line carrying the request's "id" and a "status"
// of ok | error | rejected | timeout. Evaluation responses additionally
// say where the numbers came from: "source" = store (persistent-store
// hit), computed (freshly simulated) or coalesced (attached to an
// identical in-flight request — the single-flight discipline
// compiler::ProgramCache uses, applied to whole evaluations).
#pragma once

#include <cstdint>
#include <string>

#include "serve/json.hpp"

namespace sparsetrain::serve {

struct Request {
  std::string type;  ///< eval | stats | status | shutdown
  std::string id;    ///< echoed verbatim in the response ("" when absent)
  // eval fields (defaults mirror the paper's operating point).
  std::string workload = "AlexNet/CIFAR";  ///< zoo name
  std::string backend = "sparsetrain";     ///< registered backend name
  std::string scenario = "pruned";  ///< dense | natural | pruned | calibrated
  double p = 0.9;                   ///< pruning rate (scenario=pruned)
  double act_density = 0.45;
  double do_density = 1.0;          ///< scenario=calibrated only
  std::string engine = "statistical";  ///< statistical | exact
  std::size_t batch = 0;               ///< 0 = session default
  long timeout_ms = 0;                 ///< 0 = server default / none
};

/// Parses one request line. Throws ContractError on malformed JSON, a
/// missing/unknown "type", or out-of-domain fields — the server turns
/// the exception into an explicit error response.
Request parse_request(const std::string& line);

struct Response {
  std::string id;
  std::string type = "result";  ///< result | stats | status | bye
  std::string status = "ok";    ///< ok | error | rejected | timeout
  std::string error;            ///< human-readable cause when not ok
  std::string source;           ///< store | computed | coalesced (evals)
  // Evaluation payload.
  std::string workload;
  std::string backend;
  std::string engine;
  std::uint64_t fingerprint = 0;
  std::uint64_t cycles = 0;
  double latency_ms = 0.0;
  double utilization = 0.0;
  double on_chip_uj = 0.0;
  double dram_uj = 0.0;
  /// Raw JSON object appended as "payload" (stats/status responses).
  std::string payload_json;
};

/// One response line (no trailing newline).
std::string format_response(const Response& r);

/// Client-side parse of a response line. Throws ContractError when the
/// line is not a response object.
Response parse_response(const std::string& line);

}  // namespace sparsetrain::serve
