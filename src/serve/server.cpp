#include "serve/server.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/export.hpp"
#include "isa/instruction.hpp"
#include "util/require.hpp"

#ifndef _WIN32
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <thread>
#include <vector>
#endif

namespace sparsetrain::serve {

namespace {

std::shared_ptr<ResultStore> open_store(const ServerOptions& opts) {
  if (opts.store_dir.empty()) return nullptr;
  StoreOptions so;
  so.max_bytes = opts.store_max_bytes;
  return std::make_shared<ResultStore>(opts.store_dir, so);
}

core::SessionConfig session_config(const ServerOptions& opts) {
  core::SessionConfig cfg = opts.session;
  cfg.store = open_store(opts);
  return cfg;
}

workload::SparsityProfile profile_for(const workload::NetworkConfig& net,
                                      const Request& r) {
  if (r.scenario == "dense") return workload::SparsityProfile::dense(net);
  if (r.scenario == "natural") {
    return workload::SparsityProfile::natural(net, r.act_density);
  }
  if (r.scenario == "pruned") {
    return workload::SparsityProfile::pruned(net, r.p, r.act_density);
  }
  return workload::SparsityProfile::calibrated(net, r.act_density,
                                               r.do_density);
}

/// Collapses a pretty-printed JSON document onto one NDJSON-safe line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      session_(session_config(opts_)),
      eval_pool_(opts_.request_workers ? opts_.request_workers : 1) {}

Server::~Server() = default;

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

Response Server::handle(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.received;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    return resp;
  }
  return process(req);
}

Response Server::process(const Request& req) {
  if (req.type == "stats") return stats_response(req);
  if (req.type == "status") return status_response(req);
  if (req.type == "shutdown") {
    eval_pool_.wait_idle();  // drain in-flight evaluations
    return bye_response(req);
  }
  // eval: admission first — a full queue answers immediately instead of
  // growing without bound.
  if (pending_.load() >= opts_.max_queue) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.rejected;
    Response resp;
    resp.id = req.id;
    resp.status = "rejected";
    resp.error =
        "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
    return resp;
  }
  ++pending_;
  Response resp = process_eval(req);
  --pending_;
  return resp;
}

Response Server::process_eval(const Request& req) {
  Response resp;
  resp.id = req.id;
  try {
    const workload::NetworkConfig net =
        req.workload == "tiny" ? workload::tiny_workload()
                               : workload::find_workload(req.workload).net;
    const workload::SparsityProfile profile = profile_for(net, req);
    core::Session::JobOptions options;
    options.batch = req.batch;
    if (req.engine == "exact") options.sim.engine = isa::EngineKind::Exact;

    // The single-flight key is the store's own fingerprint, so "identical
    // request" means exactly "would hit the same store record".
    const std::uint64_t fp =
        session_.run_fingerprint(net, profile, req.backend, options);

    OutcomeFuture future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(fp);
      if (it != inflight_.end()) {
        future = it->second;
      } else {
        owner = true;
      }
    }
    if (owner) {
      auto promise = std::make_shared<
          std::promise<std::shared_ptr<const EvalOutcome>>>();
      future = promise->get_future().share();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.emplace(fp, future);
      }
      eval_pool_.submit([this, promise, fp, net, profile,
                         backend = req.backend, options]() {
        auto outcome = std::make_shared<EvalOutcome>();
        try {
          if (opts_.before_eval) opts_.before_eval();
          const core::EvalResult result =
              session_.evaluate(net, profile, {backend}, options);
          const core::BackendRun& run = result.runs.front();
          outcome->from_store = run.from_store;
          outcome->fingerprint = run.fingerprint != 0 ? run.fingerprint : fp;
          outcome->workload = net.name;
          outcome->engine = isa::engine_name(run.report.engine);
          outcome->cycles = run.report.total_cycles;
          outcome->latency_ms = run.report.latency_ms();
          outcome->utilization = run.report.utilization();
          outcome->on_chip_uj = run.report.energy.on_chip_pj() * 1e-6;
          outcome->dram_uj = run.report.energy.dram_pj * 1e-6;
        } catch (const std::exception& e) {
          outcome->error = e.what();
        }
        // Erase BEFORE resolving the promise: anyone who answers after
        // this evaluation completed must have either grabbed the future
        // while the entry existed (coalesced) or missed it entirely — in
        // which case the store (already published above) serves them. A
        // waiter can therefore never observe a completed response while
        // the entry lingers.
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(fp);
        }
        promise->set_value(std::move(outcome));
      });
    }

    const long timeout_ms =
        req.timeout_ms > 0 ? req.timeout_ms : opts_.default_timeout_ms;
    if (timeout_ms > 0 &&
        future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
      // The evaluation keeps running and still publishes to the store —
      // only this requester stops waiting.
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.timeouts;
      resp.status = "timeout";
      resp.error = "evaluation still running after " +
                   std::to_string(timeout_ms) + " ms";
      return resp;
    }

    const std::shared_ptr<const EvalOutcome> outcome = future.get();
    if (!outcome->error.empty()) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.errors;
      resp.status = "error";
      resp.error = outcome->error;
      return resp;
    }

    resp.status = "ok";
    resp.source = !owner ? "coalesced"
                         : (outcome->from_store ? "store" : "computed");
    resp.workload = outcome->workload;
    resp.backend = req.backend;
    resp.engine = outcome->engine;
    resp.fingerprint = outcome->fingerprint;
    resp.cycles = outcome->cycles;
    resp.latency_ms = outcome->latency_ms;
    resp.utilization = outcome->utilization;
    resp.on_chip_uj = outcome->on_chip_uj;
    resp.dram_uj = outcome->dram_uj;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.completed;
      if (!owner) {
        ++counters_.coalesced;
      } else if (outcome->from_store) {
        ++counters_.store_hits;
      } else {
        ++counters_.computed;
      }
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    resp.status = "error";
    resp.error = e.what();
  }
  return resp;
}

Response Server::stats_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  core::export_stats_json(core::service_stats(session_), os);
  resp.payload_json = one_line(os.str());
  return resp;
}

Response Server::status_response(const Request& req) const {
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"inflight\": " << pending_.load()
     << ", \"received\": " << c.received
     << ", \"completed\": " << c.completed
     << ", \"computed\": " << c.computed
     << ", \"store_hits\": " << c.store_hits
     << ", \"coalesced\": " << c.coalesced
     << ", \"errors\": " << c.errors << ", \"rejected\": " << c.rejected
     << ", \"timeouts\": " << c.timeouts << "}";
  resp.payload_json = os.str();
  return resp;
}

Response Server::bye_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "bye";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"completed\": " << c.completed << ", \"errors\": " << c.errors
     << ", \"rejected\": " << c.rejected << "}";
  resp.payload_json = os.str();
  return resp;
}

void Server::serve(std::istream& in, std::ostream& out) {
  util::ThreadPool responders(opts_.request_workers ? opts_.request_workers
                                                    : 1);
  std::mutex write_mu;
  const auto write_line = [&write_mu, &out](const Response& r) {
    std::lock_guard<std::mutex> lock(write_mu);
    out << format_response(r) << '\n' << std::flush;
  };

  std::string line;
  Request shutdown_req;
  bool saw_shutdown = false;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.received;
    }
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.errors;
      }
      Response err;
      err.status = "error";
      err.error = e.what();
      write_line(err);
      continue;
    }
    if (req.type == "shutdown") {
      shutdown_req = req;
      saw_shutdown = true;
      break;
    }
    if (req.type != "eval") {
      write_line(process(req));
      continue;
    }
    // Admission on the intake thread: what the cap bounds is dispatched
    // work, so the responder queue can never grow past max_queue.
    if (pending_.load() >= opts_.max_queue) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.rejected;
      }
      Response rej;
      rej.id = req.id;
      rej.status = "rejected";
      rej.error =
          "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
      write_line(rej);
      continue;
    }
    ++pending_;
    responders.submit([this, req, write_line]() {
      const Response resp = process_eval(req);
      --pending_;
      write_line(resp);
    });
  }
  responders.wait_idle();  // graceful drain: every admitted eval answers
  write_line(bye_response(saw_shutdown ? shutdown_req : Request{}));
}

#ifndef _WIN32

int Server::serve_unix_socket(const std::string& path) {
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_REQUIRE(listen_fd >= 0, "serve: cannot create a unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ST_REQUIRE(path.size() < sizeof(addr.sun_path),
             "serve: socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    ST_REQUIRE(false, "serve: cannot bind/listen on " + path);
  }

  std::mutex conns_mu;
  std::vector<int> conn_fds;  // open connections, for shutdown kicks
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  while (!stop.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listener shut down
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conn_fds.push_back(fd);
    }
    threads.emplace_back([this, fd, listen_fd, &stop, &conns_mu,
                          &conn_fds]() {
      FILE* f = ::fdopen(fd, "r+");
      if (f == nullptr) {
        ::close(fd);
        return;
      }
      char* buf = nullptr;
      std::size_t cap = 0;
      ssize_t n = 0;
      while ((n = ::getline(&buf, &cap, f)) > 0) {
        std::string line(buf, static_cast<std::size_t>(n));
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (line.empty()) continue;
        const Response resp = handle(line);
        const std::string out = format_response(resp) + "\n";
        if (std::fputs(out.c_str(), f) == EOF) break;
        std::fflush(f);
        if (resp.type == "bye") {
          // Shutdown: stop accepting and kick every other connection so
          // their reader loops end and the daemon can drain.
          stop.store(true);
          ::shutdown(listen_fd, SHUT_RDWR);
          std::lock_guard<std::mutex> lock(conns_mu);
          for (const int other : conn_fds) {
            if (other != fd) ::shutdown(other, SHUT_RDWR);
          }
          break;
        }
      }
      std::free(buf);
      std::fclose(f);  // also closes fd
    });
  }

  for (auto& t : threads) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  eval_pool_.wait_idle();
  return 0;
}

#else  // _WIN32

int Server::serve_unix_socket(const std::string& path) {
  ST_REQUIRE(false, "serve: unix sockets are unavailable on this platform ("
                    + path + ")");
}

#endif

}  // namespace sparsetrain::serve
