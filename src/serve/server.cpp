#include "serve/server.hpp"

#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include <memory>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "isa/instruction.hpp"
#include "util/require.hpp"

#ifndef _WIN32
#include <csignal>
#endif

namespace sparsetrain::serve {

namespace {

std::shared_ptr<ResultStore> open_store(const ServerOptions& opts) {
  if (opts.store_dir.empty()) return nullptr;
  StoreOptions so;
  so.max_bytes = opts.store_max_bytes;
  return std::make_shared<ResultStore>(opts.store_dir, so);
}

core::SessionConfig session_config(const ServerOptions& opts) {
  core::SessionConfig cfg = opts.session;
  cfg.store = open_store(opts);
  return cfg;
}

workload::SparsityProfile profile_for(const workload::NetworkConfig& net,
                                      const Request& r) {
  if (r.scenario == "dense") return workload::SparsityProfile::dense(net);
  if (r.scenario == "natural") {
    return workload::SparsityProfile::natural(net, r.act_density);
  }
  if (r.scenario == "pruned") {
    return workload::SparsityProfile::pruned(net, r.p, r.act_density);
  }
  return workload::SparsityProfile::calibrated(net, r.act_density,
                                               r.do_density);
}

/// Collapses a pretty-printed JSON document onto one NDJSON-safe line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      session_(session_config(opts_)),
      eval_pool_(opts_.request_workers ? opts_.request_workers : 1) {}

Server::~Server() = default;

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

Response Server::handle(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.received;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    return resp;
  }
  return process(req);
}

Response Server::process(const Request& req) {
  if (req.type == "stats") return stats_response(req);
  if (req.type == "status") return status_response(req);
  if (req.type == "shutdown") {
    eval_pool_.wait_idle();  // drain in-flight evaluations
    return bye_response(req);
  }
  // eval: admission first — a full queue answers immediately instead of
  // growing without bound.
  if (pending_.load() >= opts_.max_queue) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.rejected;
    Response resp;
    resp.id = req.id;
    resp.status = "rejected";
    resp.error =
        "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
    return resp;
  }
  ++pending_;
  Response resp = process_eval(req);
  --pending_;
  return resp;
}

Response Server::process_eval(const Request& req) {
  Response resp;
  resp.id = req.id;
  try {
    const workload::NetworkConfig net =
        req.workload == "tiny" ? workload::tiny_workload()
                               : workload::find_workload(req.workload).net;
    const workload::SparsityProfile profile = profile_for(net, req);
    core::Session::JobOptions options;
    options.batch = req.batch;
    if (req.engine == "exact") options.sim.engine = isa::EngineKind::Exact;

    // The single-flight key is the store's own fingerprint, so "identical
    // request" means exactly "would hit the same store record".
    const std::uint64_t fp =
        session_.run_fingerprint(net, profile, req.backend, options);

    OutcomeFuture future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(fp);
      if (it != inflight_.end()) {
        future = it->second;
      } else {
        owner = true;
      }
    }
    if (owner) {
      auto promise = std::make_shared<
          std::promise<std::shared_ptr<const EvalOutcome>>>();
      future = promise->get_future().share();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.emplace(fp, future);
      }
      eval_pool_.submit([this, promise, fp, net, profile,
                         backend = req.backend, options]() {
        auto outcome = std::make_shared<EvalOutcome>();
        try {
          if (opts_.before_eval) opts_.before_eval();
          const core::EvalResult result =
              session_.evaluate(net, profile, {backend}, options);
          const core::BackendRun& run = result.runs.front();
          outcome->from_store = run.from_store;
          outcome->fingerprint = run.fingerprint != 0 ? run.fingerprint : fp;
          outcome->workload = net.name;
          outcome->engine = isa::engine_name(run.report.engine);
          outcome->cycles = run.report.total_cycles;
          outcome->latency_ms = run.report.latency_ms();
          outcome->utilization = run.report.utilization();
          outcome->on_chip_uj = run.report.energy.on_chip_pj() * 1e-6;
          outcome->dram_uj = run.report.energy.dram_pj * 1e-6;
        } catch (const std::exception& e) {
          outcome->error = e.what();
        }
        // Erase BEFORE resolving the promise: anyone who answers after
        // this evaluation completed must have either grabbed the future
        // while the entry existed (coalesced) or missed it entirely — in
        // which case the store (already published above) serves them. A
        // waiter can therefore never observe a completed response while
        // the entry lingers.
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(fp);
        }
        promise->set_value(std::move(outcome));
      });
    }

    const long timeout_ms =
        req.timeout_ms > 0 ? req.timeout_ms : opts_.default_timeout_ms;
    if (timeout_ms > 0 &&
        future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
      // The evaluation keeps running and still publishes to the store —
      // only this requester stops waiting.
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.timeouts;
      resp.status = "timeout";
      resp.error = "evaluation still running after " +
                   std::to_string(timeout_ms) + " ms";
      return resp;
    }

    const std::shared_ptr<const EvalOutcome> outcome = future.get();
    if (!outcome->error.empty()) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.errors;
      resp.status = "error";
      resp.error = outcome->error;
      return resp;
    }

    resp.status = "ok";
    resp.source = !owner ? "coalesced"
                         : (outcome->from_store ? "store" : "computed");
    resp.workload = outcome->workload;
    resp.backend = req.backend;
    resp.engine = outcome->engine;
    resp.fingerprint = outcome->fingerprint;
    resp.cycles = outcome->cycles;
    resp.latency_ms = outcome->latency_ms;
    resp.utilization = outcome->utilization;
    resp.on_chip_uj = outcome->on_chip_uj;
    resp.dram_uj = outcome->dram_uj;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.completed;
      if (!owner) {
        ++counters_.coalesced;
      } else if (outcome->from_store) {
        ++counters_.store_hits;
      } else {
        ++counters_.computed;
      }
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    resp.status = "error";
    resp.error = e.what();
  }
  return resp;
}

Response Server::stats_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  core::export_stats_json(core::service_stats(session_), os);
  resp.payload_json = one_line(os.str());
  return resp;
}

Response Server::status_response(const Request& req) const {
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"inflight\": " << pending_.load()
     << ", \"received\": " << c.received
     << ", \"completed\": " << c.completed
     << ", \"computed\": " << c.computed
     << ", \"store_hits\": " << c.store_hits
     << ", \"coalesced\": " << c.coalesced
     << ", \"errors\": " << c.errors << ", \"rejected\": " << c.rejected
     << ", \"timeouts\": " << c.timeouts
     << ", \"overloaded\": " << c.overloaded
     << ", \"idle_closed\": " << c.idle_closed << "}";
  resp.payload_json = os.str();
  return resp;
}

Response Server::bye_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "bye";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"completed\": " << c.completed << ", \"errors\": " << c.errors
     << ", \"rejected\": " << c.rejected << "}";
  resp.payload_json = os.str();
  return resp;
}

void Server::serve(std::istream& in, std::ostream& out) {
  util::ThreadPool responders(opts_.request_workers ? opts_.request_workers
                                                    : 1);
  std::mutex write_mu;
  const auto write_line = [&write_mu, &out](const Response& r) {
    std::lock_guard<std::mutex> lock(write_mu);
    out << format_response(r) << '\n' << std::flush;
  };

  std::string line;
  Request shutdown_req;
  bool saw_shutdown = false;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.received;
    }
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.errors;
      }
      Response err;
      err.status = "error";
      err.error = e.what();
      write_line(err);
      continue;
    }
    if (req.type == "shutdown") {
      shutdown_req = req;
      saw_shutdown = true;
      break;
    }
    if (req.type != "eval") {
      write_line(process(req));
      continue;
    }
    // Admission on the intake thread: what the cap bounds is dispatched
    // work, so the responder queue can never grow past max_queue.
    if (pending_.load() >= opts_.max_queue) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.rejected;
      }
      Response rej;
      rej.id = req.id;
      rej.status = "rejected";
      rej.error =
          "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
      write_line(rej);
      continue;
    }
    ++pending_;
    responders.submit([this, req, write_line]() {
      const Response resp = process_eval(req);
      --pending_;
      write_line(resp);
    });
  }
  responders.wait_idle();  // graceful drain: every admitted eval answers
  write_line(bye_response(saw_shutdown ? shutdown_req : Request{}));
}

int Server::serve_listener(Listener& listener) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif
  ST_REQUIRE(listener.valid(), "serve: listener is not listening");

  // One thread per connection. All bookkeeping below (creation, reaping,
  // the final join) happens on the accept thread; a handler thread only
  // touches its own slot's conn and done flag, plus — on shutdown — the
  // other conns' thread-safe shutdown().
  struct ConnSlot {
    Conn conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conns_mu;
  std::vector<std::shared_ptr<ConnSlot>> conns;  // guarded by conns_mu
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> active{0};

  const auto reap_finished = [&]() {
    std::vector<std::shared_ptr<ConnSlot>> finished;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      auto it = conns.begin();
      while (it != conns.end()) {
        if ((*it)->done.load()) {
          finished.push_back(*it);
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& slot : finished) {
      if (slot->thread.joinable()) slot->thread.join();
    }
  };

  while (!stop.load()) {
    Conn conn = listener.accept();
    // accept() already retried every transient failure; an invalid Conn
    // means shutdown() fired or the listener itself is broken.
    if (!conn.valid()) break;
    reap_finished();  // bound the slot list by the live connection count
    if (opts_.max_connections > 0 && active.load() >= opts_.max_connections) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.overloaded;
      }
      Response rej;
      rej.status = "rejected";
      rej.error = "overloaded: " + std::to_string(opts_.max_connections) +
                  " connections already open, try again later";
      conn.write_line(format_response(rej));
      continue;  // conn closes on scope exit — an explicit no, not a hang
    }
    auto slot = std::make_shared<ConnSlot>();
    slot->conn = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(slot);
    }
    ++active;
    // Raw pointer into the slot: the accept thread keeps the shared_ptr
    // alive until after join (a shared_ptr capture would make the slot's
    // own thread keep the slot alive — a cycle that never frees).
    ConnSlot* s = slot.get();
    slot->thread = std::thread([this, s, &listener, &stop, &conns_mu,
                                &conns, &active]() {
      std::string line;
      for (;;) {
        const Conn::ReadStatus st =
            s->conn.read_line(line, opts_.idle_timeout_ms);
        if (st == Conn::ReadStatus::Timeout) {
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.idle_closed;
          }
          Response err;
          err.status = "error";
          err.error = "idle timeout: no request for " +
                      std::to_string(opts_.idle_timeout_ms) +
                      " ms, closing connection";
          s->conn.write_line(format_response(err));
          break;
        }
        if (st != Conn::ReadStatus::Ok) break;  // Eof / transport error
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        const Response resp = handle(line);
        if (!s->conn.write_line(format_response(resp))) break;
        if (resp.type == "bye") {
          // Shutdown: stop accepting and kick every other connection so
          // their reader loops end and the daemon can drain.
          stop.store(true);
          listener.shutdown();
          std::lock_guard<std::mutex> lock(conns_mu);
          for (const auto& other : conns) {
            if (other.get() != s) other->conn.shutdown();
          }
          break;
        }
      }
      // Half-close only — the fd is closed by the slot's destructor on
      // the accept thread after join, so a late shutdown() kick can
      // never race a concurrent close.
      s->conn.shutdown();
      --active;
      s->done.store(true);
    });
  }

  // Kick any connection still blocked in a read (idempotent after the
  // bye kick), then join everything.
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (const auto& slot : conns) slot->conn.shutdown();
  }
  std::vector<std::shared_ptr<ConnSlot>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    remaining.swap(conns);
  }
  for (const auto& slot : remaining) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  listener.close();
  eval_pool_.wait_idle();
  return 0;
}

int Server::serve_unix_socket(const std::string& path) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::Unix;
  ep.path = path;
  Listener listener = Listener::listen(ep);
  return serve_listener(listener);
}

int Server::serve_endpoint(const std::string& spec) {
  Listener listener = Listener::listen(spec);
  return serve_listener(listener);
}

}  // namespace sparsetrain::serve
