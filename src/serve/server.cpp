#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include <memory>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "dataflow/row_ops.hpp"
#include "isa/instruction.hpp"
#include "serve/line_server.hpp"
#include "serve/report_io.hpp"
#include "util/require.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <csignal>
#include <unistd.h>
#endif

namespace sparsetrain::serve {

namespace {

std::shared_ptr<ResultStore> open_store(const ServerOptions& opts,
                                        obs::Registry& metrics) {
  if (opts.store_dir.empty()) return nullptr;
  StoreOptions so;
  so.max_bytes = opts.store_max_bytes;
  so.metrics = &metrics;
  return std::make_shared<ResultStore>(opts.store_dir, so);
}

core::SessionConfig session_config(const ServerOptions& opts,
                                   obs::Registry& metrics) {
  core::SessionConfig cfg = opts.session;
  cfg.store = open_store(opts, metrics);
  cfg.metrics = &metrics;
  cfg.profile_engine = opts.profile_engine;
  return cfg;
}

std::unique_ptr<obs::Tracer> make_tracer(const ServerOptions& opts) {
  if (opts.trace_path.empty()) return nullptr;
  obs::TracerOptions to;
  to.path = opts.trace_path;
  to.sample_rate = opts.trace_sample_rate;
  to.seed = opts.trace_seed;
  to.process = "serve";
  return std::make_unique<obs::Tracer>(std::move(to));
}

int process_id() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(getpid());
#endif
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Collapses a pretty-printed JSON document onto one NDJSON-safe line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

workload::NetworkConfig request_network(const Request& r) {
  return r.workload == "tiny" ? workload::tiny_workload()
                              : workload::find_workload(r.workload).net;
}

workload::SparsityProfile request_profile(const workload::NetworkConfig& net,
                                          const Request& r) {
  if (r.scenario == "dense") return workload::SparsityProfile::dense(net);
  if (r.scenario == "natural") {
    return workload::SparsityProfile::natural(net, r.act_density);
  }
  if (r.scenario == "pruned") {
    return workload::SparsityProfile::pruned(net, r.p, r.act_density);
  }
  return workload::SparsityProfile::calibrated(net, r.act_density,
                                               r.do_density);
}

core::Session::JobOptions request_job_options(const Request& r) {
  core::Session::JobOptions options;
  options.batch = r.batch;
  if (r.engine == "exact") options.sim.engine = isa::EngineKind::Exact;
  return options;
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      tracer_(make_tracer(opts_)),
      session_(session_config(opts_, metrics_)),
      eval_pool_(opts_.request_workers ? opts_.request_workers : 1) {
  c_.received = &metrics_.counter("server_requests_received_total");
  c_.completed = &metrics_.counter("server_evals_completed_total");
  c_.computed =
      &metrics_.counter("server_evals_total", {{"source", "computed"}});
  c_.store_hits =
      &metrics_.counter("server_evals_total", {{"source", "store"}});
  c_.coalesced =
      &metrics_.counter("server_evals_total", {{"source", "coalesced"}});
  c_.errors = &metrics_.counter("server_errors_total");
  c_.rejected = &metrics_.counter("server_rejected_total");
  c_.timeouts = &metrics_.counter("server_timeouts_total");
  c_.overloaded = &metrics_.counter("server_connections_overloaded_total");
  c_.idle_closed = &metrics_.counter("server_connections_idle_closed_total");
  c_.puts = &metrics_.counter("server_puts_total");
  queue_hist_ = &metrics_.histogram("server_queue_seconds");
}

Server::~Server() = default;

Server::Counters Server::counters() const {
  Counters c;
  c.received = c_.received->value();
  c.completed = c_.completed->value();
  c.computed = c_.computed->value();
  c.store_hits = c_.store_hits->value();
  c.coalesced = c_.coalesced->value();
  c.errors = c_.errors->value();
  c.rejected = c_.rejected->value();
  c.timeouts = c_.timeouts->value();
  c.overloaded = c_.overloaded->value();
  c.idle_closed = c_.idle_closed->value();
  c.puts = c_.puts->value();
  return c;
}

void Server::finish(Response& resp, Clock::time_point admitted,
                    const char* type_label) {
  const double seconds = seconds_since(admitted);
  // An inner layer (a shard behind a router) may already have measured;
  // the outermost unmeasured layer stamps.
  if (resp.elapsed_ms < 0.0) resp.elapsed_ms = seconds * 1e3;
  metrics_
      .histogram("server_request_seconds",
                 {{"type", type_label}, {"status", resp.status}})
      .record(seconds);
}

obs::SpanContext Server::trace_context(const Request& req, bool edge) {
  if (tracer_ == nullptr) return {};
  if (req.trace != 0) return tracer_->join(req.trace, req.parent_span);
  return edge ? tracer_->start_trace() : obs::SpanContext{};
}

Response Server::handle(const std::string& line) {
  const Clock::time_point admitted = Clock::now();
  c_.received->inc();
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    c_.errors->inc();
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    finish(resp, admitted, "parse");
    return resp;
  }
  return process(req, admitted);
}

Response Server::process(const Request& req, Clock::time_point admitted) {
  if (req.type == "stats") {
    Response resp = stats_response(req);
    finish(resp, admitted, "stats");
    return resp;
  }
  if (req.type == "status") {
    Response resp = status_response(req);
    finish(resp, admitted, "status");
    return resp;
  }
  if (req.type == "metrics") {
    Response resp = metrics_response(req);
    finish(resp, admitted, "metrics");
    return resp;
  }
  if (req.type == "put") {
    Response resp = put_response(req);
    finish(resp, admitted, "put");
    return resp;
  }
  if (req.type == "shutdown") {
    eval_pool_.wait_idle();  // drain in-flight evaluations
    Response resp = bye_response(req);
    finish(resp, admitted, "shutdown");
    return resp;
  }
  // eval: admission first — a full queue answers immediately instead of
  // growing without bound.
  if (pending_.load() >= opts_.max_queue) {
    c_.rejected->inc();
    Response resp;
    resp.id = req.id;
    resp.status = "rejected";
    resp.error =
        "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
    finish(resp, admitted, "eval");
    return resp;
  }
  ++pending_;
  Response resp = process_eval(req, admitted);
  --pending_;
  return resp;
}

Response Server::process_eval(const Request& req,
                              Clock::time_point admitted) {
  // Root (or joined) span of the whole request. Built retroactively from
  // the admission stamp so its duration covers queue wait too.
  obs::Span req_span(trace_context(req, /*edge=*/true), "daemon.request",
                     admitted);
  if (req_span.active()) {
    if (!req.id.empty()) req_span.attr("id", req.id);
    req_span.attr("workload", req.workload);
    req_span.attr("backend", req.backend);
  }
  {
    // Queue wait: admission to the moment an evaluator thread picked the
    // request up (i.e. now) — the scope closes immediately.
    obs::Span queue_span(req_span.context(), "daemon.queue", admitted);
  }
  queue_hist_->record(seconds_since(admitted));

  // Every exit funnels through here: span status attr, elapsed stamp,
  // request-latency histogram.
  const auto done = [&](Response resp) {
    if (req_span.active()) {
      req_span.attr("status", resp.status);
      if (!resp.source.empty()) req_span.attr("source", resp.source);
    }
    finish(resp, admitted, "eval");
    return resp;
  };

  Response resp;
  resp.id = req.id;
  try {
    const workload::NetworkConfig net = request_network(req);
    const workload::SparsityProfile profile = request_profile(net, req);
    core::Session::JobOptions options = request_job_options(req);
    // Phase spans (store lookup / compile / simulate / publish) hang off
    // the request span; the context is plain values, safe to outlive us
    // when the requester times out but the evaluation keeps running.
    options.trace = req_span.context();

    // The single-flight key is the store's own fingerprint, so "identical
    // request" means exactly "would hit the same store record".
    const std::uint64_t fp =
        session_.run_fingerprint(net, profile, req.backend, options);

    OutcomeFuture future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(fp);
      if (it != inflight_.end()) {
        future = it->second;
      } else {
        owner = true;
      }
    }
    if (owner) {
      auto promise = std::make_shared<
          std::promise<std::shared_ptr<const EvalOutcome>>>();
      future = promise->get_future().share();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.emplace(fp, future);
      }
      eval_pool_.submit([this, promise, fp, net, profile,
                         backend = req.backend, options]() {
        auto outcome = std::make_shared<EvalOutcome>();
        try {
          if (opts_.before_eval) opts_.before_eval();
          const core::EvalResult result =
              session_.evaluate(net, profile, {backend}, options);
          const core::BackendRun& run = result.runs.front();
          outcome->from_store = run.from_store;
          outcome->fingerprint = run.fingerprint != 0 ? run.fingerprint : fp;
          outcome->workload = net.name;
          outcome->engine = isa::engine_name(run.report.engine);
          outcome->cycles = run.report.total_cycles;
          outcome->latency_ms = run.report.latency_ms();
          outcome->utilization = run.report.utilization();
          outcome->on_chip_uj = run.report.energy.on_chip_pj() * 1e-6;
          outcome->dram_uj = run.report.energy.dram_pj * 1e-6;
          // Serialized unconditionally: any of the coalesced requesters
          // may have asked for it, and the record is small next to the
          // simulation that produced it.
          outcome->report_payload = serialize_report(run.report);
        } catch (const std::exception& e) {
          outcome->error = e.what();
        }
        // Erase BEFORE resolving the promise: anyone who answers after
        // this evaluation completed must have either grabbed the future
        // while the entry existed (coalesced) or missed it entirely — in
        // which case the store (already published above) serves them. A
        // waiter can therefore never observe a completed response while
        // the entry lingers.
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(fp);
        }
        promise->set_value(std::move(outcome));
      });
    }

    const long timeout_ms =
        req.timeout_ms > 0 ? req.timeout_ms : opts_.default_timeout_ms;
    if (timeout_ms > 0 &&
        future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
      // The evaluation keeps running and still publishes to the store —
      // only this requester stops waiting.
      c_.timeouts->inc();
      resp.status = "timeout";
      resp.error = "evaluation still running after " +
                   std::to_string(timeout_ms) + " ms";
      return done(std::move(resp));
    }

    const std::shared_ptr<const EvalOutcome> outcome = future.get();
    if (!outcome->error.empty()) {
      c_.errors->inc();
      resp.status = "error";
      resp.error = outcome->error;
      return done(std::move(resp));
    }

    resp.status = "ok";
    resp.source = !owner ? "coalesced"
                         : (outcome->from_store ? "store" : "computed");
    resp.workload = outcome->workload;
    resp.backend = req.backend;
    resp.engine = outcome->engine;
    resp.fingerprint = outcome->fingerprint;
    resp.cycles = outcome->cycles;
    resp.latency_ms = outcome->latency_ms;
    resp.utilization = outcome->utilization;
    resp.on_chip_uj = outcome->on_chip_uj;
    resp.dram_uj = outcome->dram_uj;
    if (req.include_report) {
      resp.report_hex = hex_encode(outcome->report_payload);
    }
    c_.completed->inc();
    if (!owner) {
      c_.coalesced->inc();
    } else if (outcome->from_store) {
      c_.store_hits->inc();
    } else {
      c_.computed->inc();
    }
  } catch (const std::exception& e) {
    c_.errors->inc();
    resp.status = "error";
    resp.error = e.what();
  }
  return done(std::move(resp));
}

Response Server::put_response(const Request& req) {
  // Replication hop: adopt the router's trace so the publish appears in
  // the same tree as the forward that produced the report.
  obs::Span put_span(trace_context(req, /*edge=*/false), "daemon.put");
  Response resp;
  resp.id = req.id;
  resp.type = "put";
  try {
    const std::shared_ptr<ResultStore>& store = session_.result_store();
    ST_REQUIRE(store != nullptr,
               "put: this daemon serves without a persistent store");
    // Decode + parse BEFORE touching the store: a corrupt payload must be
    // an error response, never a half-written record.
    const sim::SimReport report = parse_report(hex_decode(req.report_hex));
    if (!store->put_result(req.fingerprint, report)) {
      c_.errors->inc();
      resp.status = "error";
      resp.error = "store did not accept the put (read-only or publish "
                   "failure)";
      if (put_span.active()) put_span.attr("status", resp.status);
      return resp;
    }
    resp.status = "ok";
    resp.source = "replicated";
    resp.fingerprint = req.fingerprint;
    c_.puts->inc();
  } catch (const std::exception& e) {
    c_.errors->inc();
    resp.status = "error";
    resp.error = e.what();
  }
  if (put_span.active()) put_span.attr("status", resp.status);
  return resp;
}

Response Server::stats_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  core::export_stats_json(core::service_stats(session_), os);
  resp.payload_json = one_line(os.str());
  return resp;
}

Response Server::status_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  const Counters c = counters();
  std::ostringstream os;
  os.precision(10);
  os << "{\"inflight\": " << pending_.load()
     << ", \"received\": " << c.received
     << ", \"completed\": " << c.completed
     << ", \"computed\": " << c.computed
     << ", \"store_hits\": " << c.store_hits
     << ", \"coalesced\": " << c.coalesced
     << ", \"errors\": " << c.errors << ", \"rejected\": " << c.rejected
     << ", \"timeouts\": " << c.timeouts
     << ", \"overloaded\": " << c.overloaded
     << ", \"idle_closed\": " << c.idle_closed << ", \"puts\": " << c.puts
     // Provenance: which process is this, how was it built, how long has
     // it been up, and which schema versions does it speak.
     << ", \"pid\": " << process_id()
     << ", \"uptime_s\": " << seconds_since(started_)
     << ", \"simd\": \"" << dataflow::simd_mode()
     << "\", \"tracing\": " << (tracer_ != nullptr ? "true" : "false")
     << ", \"schemas\": {\"metrics\": \"sparsetrain.metrics/v1\""
     << ", \"stats\": \"sparsetrain.store_stats/v2\""
     << ", \"store\": \"sparsetrain.store/v1\""
     << ", \"report\": \"sparsetrain.report/v1\"}}";
  resp.payload_json = os.str();
  return resp;
}

Response Server::metrics_response(const Request& req) {
  // Sampled state is refreshed at snapshot time — gauges carry the
  // moment's truth, counters and histograms accumulated on their own.
  metrics_.gauge("server_inflight")
      .set(static_cast<double>(pending_.load()));
  metrics_.gauge("process_uptime_seconds").set(seconds_since(started_));
  metrics_.gauge("program_cache_entries")
      .set(static_cast<double>(session_.program_cache().size()));
  if (session_.result_store() != nullptr) {
    const StoreStats ss = session_.result_store()->stats();
    metrics_.gauge("store_resident_bytes")
        .set(static_cast<double>(ss.bytes));
    metrics_.gauge("store_result_entries")
        .set(static_cast<double>(ss.entries));
    metrics_.gauge("store_program_entries")
        .set(static_cast<double>(ss.program_entries));
    metrics_.gauge("store_read_only").set(ss.read_only ? 1.0 : 0.0);
  }

  Response resp;
  resp.id = req.id;
  resp.type = "metrics";
  resp.status = "ok";
  if (req.format == "prometheus") {
    resp.payload_json = "{\"format\": \"prometheus\", \"text\": \"" +
                        json_escape(metrics_.prometheus()) + "\"}";
  } else {
    resp.payload_json = metrics_.json();
  }
  return resp;
}

Response Server::bye_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "bye";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"completed\": " << c.completed << ", \"errors\": " << c.errors
     << ", \"rejected\": " << c.rejected << "}";
  resp.payload_json = os.str();
  return resp;
}

void Server::serve(std::istream& in, std::ostream& out) {
  util::ThreadPool responders(opts_.request_workers ? opts_.request_workers
                                                    : 1);
  std::mutex write_mu;
  const auto write_line = [&write_mu, &out](const Response& r) {
    std::lock_guard<std::mutex> lock(write_mu);
    out << format_response(r) << '\n' << std::flush;
  };

  std::string line;
  Request shutdown_req;
  bool saw_shutdown = false;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Clock::time_point admitted = Clock::now();
    c_.received->inc();
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      c_.errors->inc();
      Response err;
      err.status = "error";
      err.error = e.what();
      finish(err, admitted, "parse");
      write_line(err);
      continue;
    }
    if (req.type == "shutdown") {
      shutdown_req = req;
      saw_shutdown = true;
      break;
    }
    if (req.type != "eval") {
      write_line(process(req, admitted));
      continue;
    }
    // Admission on the intake thread: what the cap bounds is dispatched
    // work, so the responder queue can never grow past max_queue.
    if (pending_.load() >= opts_.max_queue) {
      c_.rejected->inc();
      Response rej;
      rej.id = req.id;
      rej.status = "rejected";
      rej.error =
          "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
      finish(rej, admitted, "eval");
      write_line(rej);
      continue;
    }
    ++pending_;
    responders.submit([this, req, admitted, write_line]() {
      const Response resp = process_eval(req, admitted);
      --pending_;
      write_line(resp);
    });
  }
  responders.wait_idle();  // graceful drain: every admitted eval answers
  write_line(bye_response(saw_shutdown ? shutdown_req : Request{}));
}

int Server::serve_listener(Listener& listener) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif
  LineServerOptions lo;
  lo.max_connections = opts_.max_connections;
  lo.idle_timeout_ms = opts_.idle_timeout_ms;
  {
    Response rej;
    rej.status = "rejected";
    rej.error = "overloaded: " + std::to_string(opts_.max_connections) +
                " connections already open, try again later";
    lo.overloaded_line = format_response(rej);
    Response idle;
    idle.status = "error";
    idle.error = "idle timeout: no request for " +
                 std::to_string(opts_.idle_timeout_ms) +
                 " ms, closing connection";
    lo.idle_line = format_response(idle);
  }
  lo.on_overloaded = [this]() { c_.overloaded->inc(); };
  lo.on_idle_closed = [this]() { c_.idle_closed->inc(); };

  active_listener_.store(&listener);
  const int rc = run_line_server(
      listener, lo, [this](const std::string& line, bool* stop_serving) {
        const Response resp = handle(line);
        if (resp.type == "bye") *stop_serving = true;
        return format_response(resp);
      });
  active_listener_.store(nullptr);
  listener.close();
  eval_pool_.wait_idle();
  if (shutdown_requested_.load()) {
    // Signal-initiated drain: no connection carried a shutdown request,
    // so the final "bye" counters go to stderr instead.
    std::fprintf(stderr, "%s\n",
                 format_response(bye_response(Request{})).c_str());
  }
  return rc;
}

void Server::request_shutdown() {
  // Called from signal handlers: only async-signal-safe steps — an
  // atomic store plus Listener::shutdown() (atomic load + shutdown(2)).
  shutdown_requested_.store(true);
  Listener* listener = active_listener_.load();
  if (listener != nullptr) listener->shutdown();
}

int Server::serve_unix_socket(const std::string& path) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::Unix;
  ep.path = path;
  Listener listener = Listener::listen(ep);
  return serve_listener(listener);
}

int Server::serve_endpoint(const std::string& spec) {
  Listener listener = Listener::listen(spec);
  return serve_listener(listener);
}

}  // namespace sparsetrain::serve
