#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include <memory>
#include <thread>
#include <vector>

#include "core/export.hpp"
#include "isa/instruction.hpp"
#include "serve/line_server.hpp"
#include "serve/report_io.hpp"
#include "util/require.hpp"

#ifndef _WIN32
#include <csignal>
#endif

namespace sparsetrain::serve {

namespace {

std::shared_ptr<ResultStore> open_store(const ServerOptions& opts) {
  if (opts.store_dir.empty()) return nullptr;
  StoreOptions so;
  so.max_bytes = opts.store_max_bytes;
  return std::make_shared<ResultStore>(opts.store_dir, so);
}

core::SessionConfig session_config(const ServerOptions& opts) {
  core::SessionConfig cfg = opts.session;
  cfg.store = open_store(opts);
  return cfg;
}

/// Collapses a pretty-printed JSON document onto one NDJSON-safe line.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n') c = ' ';
  }
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

}  // namespace

workload::NetworkConfig request_network(const Request& r) {
  return r.workload == "tiny" ? workload::tiny_workload()
                              : workload::find_workload(r.workload).net;
}

workload::SparsityProfile request_profile(const workload::NetworkConfig& net,
                                          const Request& r) {
  if (r.scenario == "dense") return workload::SparsityProfile::dense(net);
  if (r.scenario == "natural") {
    return workload::SparsityProfile::natural(net, r.act_density);
  }
  if (r.scenario == "pruned") {
    return workload::SparsityProfile::pruned(net, r.p, r.act_density);
  }
  return workload::SparsityProfile::calibrated(net, r.act_density,
                                               r.do_density);
}

core::Session::JobOptions request_job_options(const Request& r) {
  core::Session::JobOptions options;
  options.batch = r.batch;
  if (r.engine == "exact") options.sim.engine = isa::EngineKind::Exact;
  return options;
}

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      session_(session_config(opts_)),
      eval_pool_(opts_.request_workers ? opts_.request_workers : 1) {}

Server::~Server() = default;

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

Response Server::handle(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.received;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    return resp;
  }
  return process(req);
}

Response Server::process(const Request& req) {
  if (req.type == "stats") return stats_response(req);
  if (req.type == "status") return status_response(req);
  if (req.type == "put") return put_response(req);
  if (req.type == "shutdown") {
    eval_pool_.wait_idle();  // drain in-flight evaluations
    return bye_response(req);
  }
  // eval: admission first — a full queue answers immediately instead of
  // growing without bound.
  if (pending_.load() >= opts_.max_queue) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.rejected;
    Response resp;
    resp.id = req.id;
    resp.status = "rejected";
    resp.error =
        "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
    return resp;
  }
  ++pending_;
  Response resp = process_eval(req);
  --pending_;
  return resp;
}

Response Server::process_eval(const Request& req) {
  Response resp;
  resp.id = req.id;
  try {
    const workload::NetworkConfig net = request_network(req);
    const workload::SparsityProfile profile = request_profile(net, req);
    const core::Session::JobOptions options = request_job_options(req);

    // The single-flight key is the store's own fingerprint, so "identical
    // request" means exactly "would hit the same store record".
    const std::uint64_t fp =
        session_.run_fingerprint(net, profile, req.backend, options);

    OutcomeFuture future;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      const auto it = inflight_.find(fp);
      if (it != inflight_.end()) {
        future = it->second;
      } else {
        owner = true;
      }
    }
    if (owner) {
      auto promise = std::make_shared<
          std::promise<std::shared_ptr<const EvalOutcome>>>();
      future = promise->get_future().share();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.emplace(fp, future);
      }
      eval_pool_.submit([this, promise, fp, net, profile,
                         backend = req.backend, options]() {
        auto outcome = std::make_shared<EvalOutcome>();
        try {
          if (opts_.before_eval) opts_.before_eval();
          const core::EvalResult result =
              session_.evaluate(net, profile, {backend}, options);
          const core::BackendRun& run = result.runs.front();
          outcome->from_store = run.from_store;
          outcome->fingerprint = run.fingerprint != 0 ? run.fingerprint : fp;
          outcome->workload = net.name;
          outcome->engine = isa::engine_name(run.report.engine);
          outcome->cycles = run.report.total_cycles;
          outcome->latency_ms = run.report.latency_ms();
          outcome->utilization = run.report.utilization();
          outcome->on_chip_uj = run.report.energy.on_chip_pj() * 1e-6;
          outcome->dram_uj = run.report.energy.dram_pj * 1e-6;
          // Serialized unconditionally: any of the coalesced requesters
          // may have asked for it, and the record is small next to the
          // simulation that produced it.
          outcome->report_payload = serialize_report(run.report);
        } catch (const std::exception& e) {
          outcome->error = e.what();
        }
        // Erase BEFORE resolving the promise: anyone who answers after
        // this evaluation completed must have either grabbed the future
        // while the entry existed (coalesced) or missed it entirely — in
        // which case the store (already published above) serves them. A
        // waiter can therefore never observe a completed response while
        // the entry lingers.
        {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          inflight_.erase(fp);
        }
        promise->set_value(std::move(outcome));
      });
    }

    const long timeout_ms =
        req.timeout_ms > 0 ? req.timeout_ms : opts_.default_timeout_ms;
    if (timeout_ms > 0 &&
        future.wait_for(std::chrono::milliseconds(timeout_ms)) !=
            std::future_status::ready) {
      // The evaluation keeps running and still publishes to the store —
      // only this requester stops waiting.
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.timeouts;
      resp.status = "timeout";
      resp.error = "evaluation still running after " +
                   std::to_string(timeout_ms) + " ms";
      return resp;
    }

    const std::shared_ptr<const EvalOutcome> outcome = future.get();
    if (!outcome->error.empty()) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.errors;
      resp.status = "error";
      resp.error = outcome->error;
      return resp;
    }

    resp.status = "ok";
    resp.source = !owner ? "coalesced"
                         : (outcome->from_store ? "store" : "computed");
    resp.workload = outcome->workload;
    resp.backend = req.backend;
    resp.engine = outcome->engine;
    resp.fingerprint = outcome->fingerprint;
    resp.cycles = outcome->cycles;
    resp.latency_ms = outcome->latency_ms;
    resp.utilization = outcome->utilization;
    resp.on_chip_uj = outcome->on_chip_uj;
    resp.dram_uj = outcome->dram_uj;
    if (req.include_report) {
      resp.report_hex = hex_encode(outcome->report_payload);
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.completed;
      if (!owner) {
        ++counters_.coalesced;
      } else if (outcome->from_store) {
        ++counters_.store_hits;
      } else {
        ++counters_.computed;
      }
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    resp.status = "error";
    resp.error = e.what();
  }
  return resp;
}

Response Server::put_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "put";
  try {
    const std::shared_ptr<ResultStore>& store = session_.result_store();
    ST_REQUIRE(store != nullptr,
               "put: this daemon serves without a persistent store");
    // Decode + parse BEFORE touching the store: a corrupt payload must be
    // an error response, never a half-written record.
    const sim::SimReport report = parse_report(hex_decode(req.report_hex));
    if (!store->put_result(req.fingerprint, report)) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.errors;
      resp.status = "error";
      resp.error = "store did not accept the put (read-only or publish "
                   "failure)";
      return resp;
    }
    resp.status = "ok";
    resp.source = "replicated";
    resp.fingerprint = req.fingerprint;
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.puts;
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.errors;
    resp.status = "error";
    resp.error = e.what();
  }
  return resp;
}

Response Server::stats_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  core::export_stats_json(core::service_stats(session_), os);
  resp.payload_json = one_line(os.str());
  return resp;
}

Response Server::status_response(const Request& req) const {
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"inflight\": " << pending_.load()
     << ", \"received\": " << c.received
     << ", \"completed\": " << c.completed
     << ", \"computed\": " << c.computed
     << ", \"store_hits\": " << c.store_hits
     << ", \"coalesced\": " << c.coalesced
     << ", \"errors\": " << c.errors << ", \"rejected\": " << c.rejected
     << ", \"timeouts\": " << c.timeouts
     << ", \"overloaded\": " << c.overloaded
     << ", \"idle_closed\": " << c.idle_closed << ", \"puts\": " << c.puts
     << "}";
  resp.payload_json = os.str();
  return resp;
}

Response Server::bye_response(const Request& req) {
  Response resp;
  resp.id = req.id;
  resp.type = "bye";
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"completed\": " << c.completed << ", \"errors\": " << c.errors
     << ", \"rejected\": " << c.rejected << "}";
  resp.payload_json = os.str();
  return resp;
}

void Server::serve(std::istream& in, std::ostream& out) {
  util::ThreadPool responders(opts_.request_workers ? opts_.request_workers
                                                    : 1);
  std::mutex write_mu;
  const auto write_line = [&write_mu, &out](const Response& r) {
    std::lock_guard<std::mutex> lock(write_mu);
    out << format_response(r) << '\n' << std::flush;
  };

  std::string line;
  Request shutdown_req;
  bool saw_shutdown = false;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.received;
    }
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.errors;
      }
      Response err;
      err.status = "error";
      err.error = e.what();
      write_line(err);
      continue;
    }
    if (req.type == "shutdown") {
      shutdown_req = req;
      saw_shutdown = true;
      break;
    }
    if (req.type != "eval") {
      write_line(process(req));
      continue;
    }
    // Admission on the intake thread: what the cap bounds is dispatched
    // work, so the responder queue can never grow past max_queue.
    if (pending_.load() >= opts_.max_queue) {
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.rejected;
      }
      Response rej;
      rej.id = req.id;
      rej.status = "rejected";
      rej.error =
          "queue full (" + std::to_string(opts_.max_queue) + " in flight)";
      write_line(rej);
      continue;
    }
    ++pending_;
    responders.submit([this, req, write_line]() {
      const Response resp = process_eval(req);
      --pending_;
      write_line(resp);
    });
  }
  responders.wait_idle();  // graceful drain: every admitted eval answers
  write_line(bye_response(saw_shutdown ? shutdown_req : Request{}));
}

int Server::serve_listener(Listener& listener) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif
  LineServerOptions lo;
  lo.max_connections = opts_.max_connections;
  lo.idle_timeout_ms = opts_.idle_timeout_ms;
  {
    Response rej;
    rej.status = "rejected";
    rej.error = "overloaded: " + std::to_string(opts_.max_connections) +
                " connections already open, try again later";
    lo.overloaded_line = format_response(rej);
    Response idle;
    idle.status = "error";
    idle.error = "idle timeout: no request for " +
                 std::to_string(opts_.idle_timeout_ms) +
                 " ms, closing connection";
    lo.idle_line = format_response(idle);
  }
  lo.on_overloaded = [this]() {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.overloaded;
  };
  lo.on_idle_closed = [this]() {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.idle_closed;
  };

  active_listener_.store(&listener);
  const int rc = run_line_server(
      listener, lo, [this](const std::string& line, bool* stop_serving) {
        const Response resp = handle(line);
        if (resp.type == "bye") *stop_serving = true;
        return format_response(resp);
      });
  active_listener_.store(nullptr);
  listener.close();
  eval_pool_.wait_idle();
  if (shutdown_requested_.load()) {
    // Signal-initiated drain: no connection carried a shutdown request,
    // so the final "bye" counters go to stderr instead.
    std::fprintf(stderr, "%s\n",
                 format_response(bye_response(Request{})).c_str());
  }
  return rc;
}

void Server::request_shutdown() {
  // Called from signal handlers: only async-signal-safe steps — an
  // atomic store plus Listener::shutdown() (atomic load + shutdown(2)).
  shutdown_requested_.store(true);
  Listener* listener = active_listener_.load();
  if (listener != nullptr) listener->shutdown();
}

int Server::serve_unix_socket(const std::string& path) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::Unix;
  ep.path = path;
  Listener listener = Listener::listen(ep);
  return serve_listener(listener);
}

int Server::serve_endpoint(const std::string& spec) {
  Listener listener = Listener::listen(spec);
  return serve_listener(listener);
}

}  // namespace sparsetrain::serve
