// Shared NDJSON accept loop for the serving daemons.
//
// serve::Server (the evaluation daemon) and serve::Router (the shard
// router) both speak one-line-in / one-line-out over a serve::Listener;
// this is the single implementation of that loop: one handler thread per
// connection, a connection cap answered with an explicit rejection line
// (never a silent hang), per-connection idle timeouts (a told close, and
// counted), and a clean stop protocol — when a handler marks its response
// as the daemon's last (the "bye" of a shutdown request) the listener
// stops and every other connection is kicked so their reader loops end.
//
// Thread discipline (inherited from the original Server loop): all slot
// bookkeeping — creation, reaping, the final join — happens on the
// accept thread; a handler thread touches only its own slot's conn and
// done flag, plus the other conns' thread-safe shutdown() on stop. A
// handler half-closes its conn; the fd itself is closed on the accept
// thread after join, so a late shutdown() kick can never race a close.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "serve/transport.hpp"

namespace sparsetrain::serve {

struct LineServerOptions {
  /// Connections beyond this are answered with `overloaded_line` and
  /// closed (0 = unlimited).
  std::size_t max_connections = 0;
  /// A connection with no complete request line for this long is sent
  /// `idle_line` and closed (0 = never).
  long idle_timeout_ms = 0;
  std::string overloaded_line;  ///< preformatted rejection response
  std::string idle_line;        ///< preformatted idle-close notice
  std::function<void()> on_overloaded;   ///< counter hook
  std::function<void()> on_idle_closed;  ///< counter hook
};

/// Handles one request line; returns the response line (without the
/// newline). Setting *stop_serving makes this response the daemon's
/// last: it is still written, then the listener stops and all other
/// connections are kicked.
using LineHandler =
    std::function<std::string(const std::string& line, bool* stop_serving)>;

/// Runs the accept loop until the listener stops — by a handler's
/// stop_serving, an external Listener::shutdown() (e.g. from a signal
/// handler), or an unrecoverable listener error. Every handler thread is
/// joined before returning. Blank input lines are skipped, not answered.
int run_line_server(Listener& listener, const LineServerOptions& opts,
                    const LineHandler& handle);

}  // namespace sparsetrain::serve
