#include "serve/store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <vector>

#include "serve/report_io.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"
#include "util/syscall.hpp"

namespace sparsetrain::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "sparsetrain.store/v1";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      v = v * 16 + static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = v * 16 + static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

std::string serialize_program_meta(const ProgramMeta& m) {
  std::ostringstream os;
  os << "name=" << m.name.size() << ':' << m.name << '\n'
     << "engine=" << static_cast<unsigned>(m.engine) << '\n'
     << "batch=" << m.batch << '\n'
     << "instructions=" << m.instructions << '\n';
  return os.str();
}

bool parse_program_meta(std::string_view payload, ProgramMeta& out) {
  // name=<len>:<bytes>\nengine=..\nbatch=..\ninstructions=..\n
  if (payload.rfind("name=", 0) != 0) return false;
  payload.remove_prefix(5);
  const std::size_t colon = payload.find(':');
  if (colon == std::string_view::npos) return false;
  std::size_t len = 0;
  for (const char c : payload.substr(0, colon)) {
    if (c < '0' || c > '9') return false;
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (colon + 1 + len >= payload.size()) return false;
  out.name = std::string(payload.substr(colon + 1, len));
  payload.remove_prefix(colon + 1 + len + 1);  // incl. '\n'
  unsigned engine = 0;
  unsigned long long batch = 0, instructions = 0;
  if (std::sscanf(std::string(payload).c_str(),
                  "engine=%u\nbatch=%llu\ninstructions=%llu", &engine, &batch,
                  &instructions) != 3) {
    return false;
  }
  if (engine > static_cast<unsigned>(isa::EngineKind::Exact)) return false;
  out.engine = static_cast<isa::EngineKind>(engine);
  out.batch = batch;
  out.instructions = instructions;
  return true;
}

/// Releases the FILE* on every exit path — including an InjectedCrash
/// unwinding out of a hooked write — so a publication that "dies"
/// mid-step never leaks the stream. The unwind path closes with plain
/// fclose (not the hooks) so cleanup cannot itself fault or shift the
/// injected op sequence.
class FileGuard {
 public:
  explicit FileGuard(std::FILE* f) : f_(f) {}
  ~FileGuard() {
    if (f_ != nullptr) std::fclose(f_);
  }
  FileGuard(const FileGuard&) = delete;
  FileGuard& operator=(const FileGuard&) = delete;
  std::FILE* release() {
    std::FILE* f = f_;
    f_ = nullptr;
    return f;
  }

 private:
  std::FILE* f_;
};

}  // namespace

ResultStore::ResultStore(std::string dir, StoreOptions opts)
    : dir_(std::move(dir)), opts_(opts),
      io_(opts.hooks ? opts.hooks : IoHooks::real()) {
  ST_REQUIRE(!dir_.empty(), "result store needs a directory");
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "results", ec);
  ST_REQUIRE(!ec, "cannot create store directory '" + dir_ + "': " +
                      ec.message());
  fs::create_directories(fs::path(dir_) / "programs", ec);
  ST_REQUIRE(!ec, "cannot create store directory '" + dir_ + "': " +
                      ec.message());
  fs::create_directories(fs::path(dir_) / "tmp", ec);
  ST_REQUIRE(!ec, "cannot create store directory '" + dir_ + "': " +
                      ec.message());
  obs::Registry* reg = opts_.metrics;
  if (reg == nullptr) {
    own_metrics_ = std::make_unique<obs::Registry>();
    reg = own_metrics_.get();
  }
  c_.hits = &reg->counter("store_hits_total");
  c_.misses = &reg->counter("store_misses_total");
  c_.puts = &reg->counter("store_puts_total");
  c_.evictions = &reg->counter("store_evictions_total");
  c_.torn_skipped = &reg->counter("store_torn_skipped_total");
  c_.tmp_cleaned = &reg->counter("store_tmp_cleaned_total");
  c_.publish_failures = &reg->counter("store_publish_failures_total");
  c_.dropped_publishes = &reg->counter("store_dropped_publishes_total");
  clean_tmp();
  scan_dir("results", "result");
  scan_dir("programs", "program");
}

std::string ResultStore::result_path(std::uint64_t fp) const {
  return (fs::path(dir_) / "results" / (hex16(fp) + ".rec")).string();
}

std::string ResultStore::program_path(std::uint64_t fp) const {
  return (fs::path(dir_) / "programs" / (hex16(fp) + ".rec")).string();
}

void ResultStore::clean_tmp() {
  // Anything under tmp/ is a publication that never reached its rename —
  // a crash mid-write. The record it was replacing (if any) is still
  // intact under results/, so stale tmp files are pure garbage.
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(fs::path(dir_) / "tmp", ec)) {
    std::error_code rm;
    fs::remove(de.path(), rm);
    if (!rm) c_.tmp_cleaned->inc();
  }
}

void ResultStore::scan_dir(const char* subdir, const char* kind) {
  // Recovery: every record must parse and checksum; anything torn (e.g. a
  // record truncated by a crash or a copy of a live directory) is skipped
  // and removed. Recency is seeded from modification times so eviction
  // order survives a reopen; ties (same mtime granularity) break by
  // filename for determinism.
  struct Found {
    std::uint64_t fp;
    std::uint64_t bytes;
    fs::file_time_type mtime;
    std::string name;
  };
  std::vector<Found> found;
  const fs::path base = fs::path(dir_) / subdir;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(base, ec)) {
    const std::string name = de.path().filename().string();
    std::uint64_t fp = 0;
    const bool named_ok = name.size() == 20 &&
                          name.compare(16, 4, ".rec") == 0 &&
                          parse_hex(name.substr(0, 16), fp);
    std::string payload;
    if (!named_ok || !read_record(de.path().string(), kind, fp, payload)) {
      c_.torn_skipped->inc();
      std::error_code rm;
      fs::remove(de.path(), rm);
      continue;
    }
    found.push_back({fp, payload.size(),
                     fs::last_write_time(de.path(), ec), name});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.name < b.name;
  });
  const bool is_results = std::string(subdir) == "results";
  auto& index = is_results ? results_ : programs_;
  for (const Found& f : found) {
    index[f.fp] = Entry{f.bytes, next_seq_++};
    if (is_results) bytes_ += f.bytes;
  }
}

std::uint64_t ResultStore::publish(const std::string& final_path,
                                   const char* kind, std::uint64_t fp,
                                   const std::string& payload) {
  // Header + payload to a unique tmp file — every step checked, fsync
  // before the rename — then atomic rename: a reader either sees the
  // whole durable record or no record, and a torn tmp file is never
  // renamed into place. Any failed step throws StoreIoError with the tmp
  // removed; an InjectedCrash propagates with the tmp left behind for
  // clean_tmp() at the next open, exactly like a real process death.
  std::ostringstream header;
  header << kMagic << ' ' << kind << ' ' << hex16(fp) << ' '
         << payload.size() << ' ' << hex16(fnv1a(payload)) << '\n';
  const std::string h = header.str();
  const std::string tmp =
      (fs::path(dir_) / "tmp" /
       (hex16(fp) + "." + std::to_string(++tmp_counter_) + ".tmp"))
          .string();
  auto fail = [&](const std::string& step) -> StoreIoError {
    const std::string cause = util::errno_text(errno);
    std::remove(tmp.c_str());  // best effort; clean_tmp() catches leftovers
    return StoreIoError(step + " '" + tmp + "': " + cause);
  };
  std::FILE* raw = io_->open(tmp, "wb");
  if (raw == nullptr) throw fail("cannot open");
  {
    FileGuard guard(raw);
    if (io_->write(raw, h.data(), h.size()) != h.size()) {
      throw fail("short write to");
    }
    if (!payload.empty() &&
        io_->write(raw, payload.data(), payload.size()) != payload.size()) {
      throw fail("short write to");
    }
    if (io_->flush(raw) != 0) throw fail("cannot flush");
    if (io_->sync(raw) != 0) throw fail("cannot fsync");
    if (io_->close(guard.release()) != 0) throw fail("cannot close");
  }
  if (io_->rename(tmp, final_path) != 0) {
    throw fail("cannot publish");
  }
  return payload.size();
}

void ResultStore::note_publish_failure(const std::string& cause) {
  c_.publish_failures->inc();
  last_publish_error_ = cause;
  ++consecutive_publish_failures_;
  if (opts_.read_only_after > 0 &&
      consecutive_publish_failures_ >= opts_.read_only_after) {
    read_only_ = true;
  }
}

bool ResultStore::read_record(const std::string& path, const char* kind,
                              std::uint64_t fp,
                              std::string& payload_out) const {
  std::string content;
  if (!io_->read_file(path, content)) return false;
  const std::size_t eol = content.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream hdr(content.substr(0, eol));
  std::string magic, got_kind, fp_hex, sum_hex;
  std::uint64_t size = 0;
  if (!(hdr >> magic >> got_kind >> fp_hex >> size >> sum_hex)) return false;
  std::uint64_t got_fp = 0, sum = 0;
  if (magic != kMagic || got_kind != kind || !parse_hex(fp_hex, got_fp) ||
      got_fp != fp || !parse_hex(sum_hex, sum)) {
    return false;
  }
  // Torn detection: the payload must be exactly the advertised length and
  // hash to the advertised checksum.
  if (content.size() - (eol + 1) != size) return false;
  std::string payload = content.substr(eol + 1);
  if (fnv1a(payload) != sum) return false;
  payload_out = std::move(payload);
  return true;
}

bool ResultStore::get_result(std::uint64_t fp, sim::SimReport& out) {
  std::lock_guard lock(mu_);
  const auto it = results_.find(fp);
  if (it == results_.end()) {
    c_.misses->inc();
    return false;
  }
  std::string payload;
  if (!read_record(result_path(fp), "result", fp, payload)) {
    // Evicted/garbled behind our back (another process): drop and miss.
    bytes_ -= it->second.bytes;
    results_.erase(it);
    c_.misses->inc();
    return false;
  }
  try {
    out = parse_report(payload);
  } catch (const ContractError&) {
    bytes_ -= it->second.bytes;
    results_.erase(it);
    c_.misses->inc();
    return false;
  }
  it->second.seq = next_seq_++;
  c_.hits->inc();
  return true;
}

bool ResultStore::put_result(std::uint64_t fp, const sim::SimReport& report) {
  const std::string payload = serialize_report(report);
  std::lock_guard lock(mu_);
  if (read_only_) {
    c_.dropped_publishes->inc();
    return false;
  }
  std::uint64_t bytes = 0;
  try {
    bytes = publish(result_path(fp), "result", fp, payload);
  } catch (const StoreIoError& e) {
    note_publish_failure(e.what());
    return false;
  }
  consecutive_publish_failures_ = 0;
  auto& entry = results_[fp];
  bytes_ += bytes - entry.bytes;  // overwrite replaces the old payload
  entry.bytes = bytes;
  entry.seq = next_seq_++;
  c_.puts->inc();
  if (opts_.max_bytes > 0) evict_over_cap(fp);
  return true;
}

void ResultStore::evict_over_cap(std::uint64_t keep_fp) {
  while (bytes_ > opts_.max_bytes && results_.size() > 1) {
    auto victim = results_.end();
    for (auto it = results_.begin(); it != results_.end(); ++it) {
      if (it->first == keep_fp) continue;
      if (victim == results_.end() || it->second.seq < victim->second.seq) {
        victim = it;
      }
    }
    if (victim == results_.end()) break;
    io_->remove(result_path(victim->first));  // failure: reopen reindexes it
    bytes_ -= victim->second.bytes;
    results_.erase(victim);
    c_.evictions->inc();
  }
}

bool ResultStore::get_program(std::uint64_t fp, ProgramMeta& out) {
  std::lock_guard lock(mu_);
  const auto it = programs_.find(fp);
  if (it == programs_.end()) return false;
  std::string payload;
  if (!read_record(program_path(fp), "program", fp, payload) ||
      !parse_program_meta(payload, out)) {
    programs_.erase(it);
    return false;
  }
  it->second.seq = next_seq_++;
  return true;
}

bool ResultStore::put_program(std::uint64_t fp, const ProgramMeta& meta) {
  const std::string payload = serialize_program_meta(meta);
  std::lock_guard lock(mu_);
  if (read_only_) {
    c_.dropped_publishes->inc();
    return false;
  }
  std::uint64_t bytes = 0;
  try {
    bytes = publish(program_path(fp), "program", fp, payload);
  } catch (const StoreIoError& e) {
    note_publish_failure(e.what());
    return false;
  }
  consecutive_publish_failures_ = 0;
  programs_[fp] = Entry{bytes, next_seq_++};
  return true;
}

bool ResultStore::contains_result(std::uint64_t fp) const {
  std::lock_guard lock(mu_);
  return results_.count(fp) != 0;
}

bool ResultStore::contains_program(std::uint64_t fp) const {
  std::lock_guard lock(mu_);
  return programs_.count(fp) != 0;
}

bool ResultStore::read_only() const {
  std::lock_guard lock(mu_);
  return read_only_;
}

std::string ResultStore::last_publish_error() const {
  std::lock_guard lock(mu_);
  return last_publish_error_;
}

StoreStats ResultStore::stats() const {
  std::lock_guard lock(mu_);
  StoreStats s;
  s.hits = c_.hits->value();
  s.misses = c_.misses->value();
  s.puts = c_.puts->value();
  s.evictions = c_.evictions->value();
  s.torn_skipped = c_.torn_skipped->value();
  s.tmp_cleaned = c_.tmp_cleaned->value();
  s.publish_failures = c_.publish_failures->value();
  s.dropped_publishes = c_.dropped_publishes->value();
  s.read_only = read_only_;
  s.entries = results_.size();
  s.program_entries = programs_.size();
  s.bytes = bytes_;
  return s;
}

void ResultStore::reset_stats() {
  std::lock_guard lock(mu_);
  c_.hits->reset();
  c_.misses->reset();
  c_.puts->reset();
  c_.evictions->reset();
  c_.torn_skipped->reset();
  c_.tmp_cleaned->reset();
  c_.publish_failures->reset();
  c_.dropped_publishes->reset();
}

}  // namespace sparsetrain::serve
