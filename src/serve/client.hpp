// Client side of the evaluation daemon.
//
// One Client = one connection to a daemon's unix socket; request() sends
// one NDJSON line and blocks for the matching response line (the daemon
// answers each connection's requests in order). Open several clients for
// concurrent submissions — identical in-flight jobs coalesce server-side.
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace sparsetrain::serve {

class Client {
 public:
  /// Connects to the daemon at `socket_path`; throws ContractError when
  /// the socket cannot be reached.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line, returns the raw response line (no newline).
  /// Throws ContractError when the connection drops mid-exchange.
  std::string request_raw(const std::string& json_line);

  /// request_raw + parse_response.
  Response request(const std::string& json_line);

  /// Convenience wrappers over request().
  Response submit(const Request& eval_request);
  Response stats();
  Response status();
  Response shutdown();

 private:
  int fd_ = -1;
  void* file_ = nullptr;  ///< FILE* of the buffered duplex stream
};

/// Formats `r` as one request line (inverse of parse_request for the
/// fields the protocol defines).
std::string format_request(const Request& r);

}  // namespace sparsetrain::serve
