// Client side of the evaluation daemon.
//
// One Client = one connection to a daemon endpoint — a unix-socket path
// or "host:port" for TCP (see serve::parse_endpoint); request() sends one
// NDJSON line and blocks for the matching response line (the daemon
// answers each connection's requests in order). Open several clients for
// concurrent submissions — identical in-flight jobs coalesce server-side.
//
// Resilience: with `retries > 0` the client survives a daemon restart.
// A failed connect, a dropped connection mid-exchange, or an admission
// rejection ("rejected" status) is retried after an exponential backoff
// with decorrelated jitter — each retry reconnects from scratch. This is
// safe for eval requests because evaluations are idempotent: the daemon
// keys work by the store fingerprint, so a retried request coalesces with
// a surviving twin or is served from the store rather than recomputed.
// `deadline_ms` bounds the whole exchange (connect + retries + response
// wait); past it the client throws instead of retrying further. The
// final attempt's "rejected" response, if any, is returned as-is so the
// caller sees why.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "util/rng.hpp"

namespace sparsetrain::serve {

struct ClientOptions {
  /// Extra attempts after the first (0 = fail fast, the default).
  int retries = 0;
  /// Overall budget in ms for one request() call, covering connects,
  /// backoff sleeps, and the response wait; 0 = no deadline.
  long deadline_ms = 0;
  /// Per-attempt connect budget (non-blocking connect + poll). Without
  /// it a TCP connect to a blackholed host blocks for the kernel's SYN
  /// retry default (~2 minutes), defeating deadline_ms; with it the
  /// attempt fails after this long and the retry/deadline machinery
  /// stays in charge. When deadline_ms is also set, each connect is
  /// additionally capped by the time remaining. 0 = blocking connect.
  long connect_timeout_ms = 0;
  /// Backoff: sleep_n = min(cap, uniform(base, 3 * sleep_{n-1})) —
  /// exponential growth with decorrelated jitter, so a burst of clients
  /// retrying against a restarting daemon spreads out instead of
  /// stampeding in lockstep.
  long backoff_base_ms = 25;
  long backoff_cap_ms = 1000;
  std::uint64_t backoff_seed = 0x5eed;
  /// Retry "rejected" (admission-control) responses too, not just
  /// transport failures.
  bool retry_rejected = true;
  /// Test seam: called with each backoff duration instead of sleeping.
  std::function<void(long)> sleeper;
  /// Registry the client's counters live on (client_attempts_total, ...),
  /// labeled {endpoint=<the endpoint spec>}; must outlive the client.
  /// Handy for a process holding many clients (the router labels one
  /// counter family per shard; counts survive client recreation because
  /// the registry deduplicates instruments). nullptr = private counters.
  obs::Registry* metrics = nullptr;
};

class Client {
 public:
  /// Parses `endpoint_spec` and connects. With `retries == 0` an
  /// unreachable daemon throws ContractError immediately (fail fast);
  /// with retries the first request() keeps trying instead.
  explicit Client(const std::string& endpoint_spec, ClientOptions opts = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// What the retry machinery actually did, for tests and diagnostics —
  /// a view assembled from the counter handles (which may live on an
  /// injected registry shared with other clients of the same endpoint).
  struct Stats {
    std::uint64_t attempts = 0;          ///< request transmissions tried
    std::uint64_t connects = 0;          ///< successful connects
    std::uint64_t reconnects = 0;        ///< connects after the first
    std::uint64_t retries = 0;           ///< backoff sleeps taken
    std::uint64_t rejected_retries = 0;  ///< retries caused by "rejected"
  };
  Stats retry_stats() const;

  bool connected() const { return conn_.valid(); }

  /// Sends one request line, returns the raw response line (no newline).
  /// Retries per ClientOptions; throws ContractError once retries and/or
  /// the deadline are exhausted.
  std::string request_raw(const std::string& json_line);

  /// request_raw + parse_response.
  Response request(const std::string& json_line);

  /// Convenience wrappers over request().
  Response submit(const Request& eval_request);
  Response stats();
  Response status();
  Response shutdown();

 private:
  /// `budget_ms` caps the connect attempt (<= 0 = opts_ default only).
  bool ensure_connected(std::string& error, long budget_ms = 0);
  long remaining_ms(long elapsed_ms) const;
  long connect_budget_ms(long elapsed_ms) const;

  Endpoint ep_;
  ClientOptions opts_;
  Conn conn_;
  /// Counter handles (registry instruments when ClientOptions::metrics is
  /// set, the private fallbacks below otherwise).
  struct Counters {
    obs::Counter* attempts = nullptr;
    obs::Counter* connects = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* rejected_retries = nullptr;
  };
  obs::Counter own_[5];
  Counters c_;
  Rng rng_;
};

/// Formats `r` as one request line (inverse of parse_request for the
/// fields the protocol defines).
std::string format_request(const Request& r);

}  // namespace sparsetrain::serve
