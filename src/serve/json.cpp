#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/require.hpp"

namespace sparsetrain::serve {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    // Both caps turn pathological inputs into ordinary parse errors (an
    // NDJSON error response) instead of resource exhaustion: the size cap
    // bounds the multi-MiB-line case, the depth cap bounds the `[[[[…`
    // recursion that would otherwise overflow the stack and abort.
    ST_REQUIRE(text_.size() <= kMaxInput,
               "json: input exceeds " + std::to_string(kMaxInput) + " bytes");
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    ST_REQUIRE(pos_ == text_.size(),
               "json: trailing bytes at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    ST_REQUIRE(false,
               "json: " + what + " at offset " + std::to_string(pos_));
    __builtin_unreachable();
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': {
        if (++depth_ > kMaxDepth) fail("nesting too deep");
        JsonValue v = parse_object();
        --depth_;
        return v;
      }
      case '[': {
        if (++depth_ > kMaxDepth) fail("nesting too deep");
        JsonValue v = parse_array();
        --depth_;
        return v;
      }
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::make_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.set(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare
            // in request traffic; each half encodes independently).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      out += c;
    }
  }

  JsonValue parse_number() {
    // The RFC 8259 grammar, validated before strtod: -?(0|[1-9][0-9]*)
    // (.[0-9]+)?([eE][+-]?[0-9]+)?. strtod alone is laxer ("+1", "01",
    // "1.", ".5", "0x10", "inf" all convert) and would make the NDJSON
    // dialect drift from every other JSON parser a client might use.
    const std::size_t start = pos_;
    const auto digit_at = [this](std::size_t p) {
      return p < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[p]));
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) {
      pos_ = start;
      fail("expected a value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero stands alone: "0", "0.5" — never "01"
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit_at(pos_)) {
        pos_ = start;
        fail("malformed number (expected digits after '.')");
      }
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit_at(pos_)) {
        pos_ = start;
        fail("malformed number (expected exponent digits)");
      }
      while (digit_at(pos_)) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) {
      // 1e999 overflows to ±inf, which the emitter could never round-trip.
      pos_ = start;
      fail("number out of range '" + token + "'");
    }
    return JsonValue::make_number(v);
  }

  /// Grammar caps (see parse_document): generous for real request
  /// traffic — the largest legitimate line is a DSE scenario list well
  /// under 64 KiB — yet small enough that abuse degrades into an error
  /// response.
  static constexpr std::size_t kMaxInput = 1u << 20;  // 1 MiB per document
  static constexpr int kMaxDepth = 64;                // nested containers

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  ST_REQUIRE(kind_ == Kind::Bool, "json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  ST_REQUIRE(kind_ == Kind::Number, "json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  ST_REQUIRE(kind_ == Kind::String, "json: value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  ST_REQUIRE(kind_ == Kind::Array, "json: value is not an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  ST_REQUIRE(kind_ == Kind::Object, "json: value is not an object");
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_string();
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_number();
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr || v->is_null() ? fallback : v->as_bool();
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::String;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array() {
  JsonValue j;
  j.kind_ = Kind::Array;
  return j;
}

JsonValue JsonValue::make_object() {
  JsonValue j;
  j.kind_ = Kind::Object;
  return j;
}

void JsonValue::set(std::string key, JsonValue v) {
  ST_REQUIRE(kind_ == Kind::Object, "json: value is not an object");
  object_[std::move(key)] = std::move(v);
}

void JsonValue::push_back(JsonValue v) {
  ST_REQUIRE(kind_ == Kind::Array, "json: value is not an array");
  array_.push_back(std::move(v));
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace sparsetrain::serve
