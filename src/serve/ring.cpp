#include "serve/ring.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/require.hpp"

namespace sparsetrain::serve {

Ring::Ring(std::vector<std::string> endpoints, RingOptions opts)
    : endpoints_(std::move(endpoints)) {
  ST_REQUIRE(!endpoints_.empty(), "ring: needs at least one endpoint");
  ST_REQUIRE(opts.vnodes > 0, "ring: vnodes must be positive");
  std::unordered_set<std::string> seen;
  for (const std::string& ep : endpoints_) {
    ST_REQUIRE(!ep.empty(), "ring: empty endpoint spec");
    ST_REQUIRE(seen.insert(ep).second,
               "ring: duplicate endpoint '" + ep + "'");
  }
  points_.reserve(endpoints_.size() * opts.vnodes);
  for (std::size_t s = 0; s < endpoints_.size(); ++s) {
    const std::uint64_t base = fnv1a(endpoints_[s]);
    for (std::size_t v = 0; v < opts.vnodes; ++v) {
      points_.push_back(
          Point{mix64(base, static_cast<std::uint64_t>(v)),
                static_cast<std::uint32_t>(s)});
    }
  }
  // Tie-break by shard index so a (vanishingly unlikely) hash collision
  // between two endpoints' points still orders deterministically.
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.shard < b.shard;
            });
}

std::size_t Ring::at(std::uint64_t key) const {
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  const std::size_t idx =
      static_cast<std::size_t>(it - points_.begin());
  return idx == points_.size() ? 0 : idx;  // wrap past the top point
}

std::size_t Ring::owner(std::uint64_t key) const {
  return points_[at(key)].shard;
}

std::vector<std::size_t> Ring::successors(std::uint64_t key,
                                          std::size_t count) const {
  const std::size_t want = std::min(count + 1, endpoints_.size());
  std::vector<std::size_t> order;
  order.reserve(want);
  std::vector<bool> taken(endpoints_.size(), false);
  const std::size_t start = at(key);
  for (std::size_t i = 0; i < points_.size() && order.size() < want; ++i) {
    const std::uint32_t shard = points_[(start + i) % points_.size()].shard;
    if (!taken[shard]) {
      taken[shard] = true;
      order.push_back(shard);
    }
  }
  return order;
}

}  // namespace sparsetrain::serve
