// Content-addressed on-disk result store.
//
// Maps a job fingerprint (serve::fingerprint_v1) to a serialized
// SimReport, and a program fingerprint (compiler::ProgramCache::
// fingerprint) to compiled-program metadata, persistently across
// processes and users. core::Session consults an attached store before
// simulating and publishes after, so a warm store serves repeat
// evaluation traffic with zero simulations and zero compiles.
//
// Layout: one record per file under <dir>/results and <dir>/programs,
// named by the fingerprint hex. Records carry a versioned header with the
// payload length and checksum; they are written to <dir>/tmp and
// published by atomic rename, so readers (and other store instances on
// the same directory) never observe a half-written record. open()
// rebuilds the in-memory index by scanning the record directories;
// torn/truncated/corrupt records are skipped (and removed) rather than
// trusted — a crash mid-write costs at most the record being written.
//
// Eviction: when `max_bytes > 0`, publishing a result evicts
// least-recently-used result records until the resident payload size is
// back under the cap (the record just published is never evicted, so a
// single oversized record still persists its run). Recency is seeded
// from file modification times at open and bumped by hits and puts.
//
// Concurrency: all operations are thread-safe within one instance (a
// single mutex — store traffic is tiny next to a simulation). Two
// *processes* on one directory are safe against corruption thanks to the
// rename discipline, but each instance only sees the other's records
// published before its own open(); a get() whose file was evicted by
// another instance degrades to a miss.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "isa/instruction.hpp"
#include "sim/report.hpp"

namespace sparsetrain::serve {

struct StoreOptions {
  /// Cap on the total result-payload bytes resident on disk; 0 = no cap.
  std::uint64_t max_bytes = 0;
};

/// Counter snapshot (process-lifetime for this instance, plus the
/// resident index sizes).
struct StoreStats {
  std::size_t hits = 0;          ///< get_result found a record
  std::size_t misses = 0;        ///< get_result found nothing
  std::size_t puts = 0;          ///< result records published
  std::size_t evictions = 0;     ///< result records evicted by the cap
  std::size_t torn_skipped = 0;  ///< corrupt records skipped at open()
  std::size_t entries = 0;       ///< result records in the index
  std::size_t program_entries = 0;  ///< program-metadata records
  std::uint64_t bytes = 0;       ///< resident result payload bytes

  std::size_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// Metadata kept per compiled program (the program itself is recompiled
/// on a result miss; the metadata makes the store auditable without
/// replaying anything).
struct ProgramMeta {
  std::string name;
  isa::EngineKind engine = isa::EngineKind::Statistical;
  std::size_t batch = 1;
  std::size_t instructions = 0;
};

class ResultStore {
 public:
  /// Opens (creating directories as needed) and rebuilds the index.
  explicit ResultStore(std::string dir, StoreOptions opts = {});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Loads the stored report for `fp` into `out`. Counts a hit or miss;
  /// an unreadable/corrupt record degrades to a miss.
  bool get_result(std::uint64_t fp, sim::SimReport& out);

  /// Publishes `report` under `fp` (atomic rename), then applies the
  /// eviction cap. Overwrites any previous record for `fp`.
  void put_result(std::uint64_t fp, const sim::SimReport& report);

  bool get_program(std::uint64_t fp, ProgramMeta& out);
  void put_program(std::uint64_t fp, const ProgramMeta& meta);

  /// True when a result record for `fp` is resident (no stat counted).
  bool contains_result(std::uint64_t fp) const;

  /// True when a program-metadata record for `fp` is resident.
  bool contains_program(std::uint64_t fp) const;

  StoreStats stats() const;
  void reset_stats();  ///< zeroes the counters; the index is untouched

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;  ///< LRU recency (higher = more recent)
  };

  std::string result_path(std::uint64_t fp) const;
  std::string program_path(std::uint64_t fp) const;
  /// Serialise + tmp-write + rename. Returns the payload size.
  std::uint64_t publish(const std::string& final_path, const char* kind,
                        std::uint64_t fp, const std::string& payload);
  /// Validates a record file and returns its payload; empty optional when
  /// the record is torn/corrupt/missing.
  bool read_record(const std::string& path, const char* kind,
                   std::uint64_t fp, std::string& payload_out) const;
  void scan_dir(const char* subdir, const char* kind);
  void evict_over_cap(std::uint64_t keep_fp);

  std::string dir_;
  StoreOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> results_;
  std::unordered_map<std::uint64_t, Entry> programs_;
  StoreStats stats_;
  std::uint64_t bytes_ = 0;     ///< resident result payload bytes
  std::uint64_t next_seq_ = 1;  ///< LRU clock
  std::uint64_t tmp_counter_ = 0;
};

}  // namespace sparsetrain::serve
