// Content-addressed on-disk result store.
//
// Maps a job fingerprint (serve::fingerprint_v1) to a serialized
// SimReport, and a program fingerprint (compiler::ProgramCache::
// fingerprint) to compiled-program metadata, persistently across
// processes and users. core::Session consults an attached store before
// simulating and publishes after, so a warm store serves repeat
// evaluation traffic with zero simulations and zero compiles.
//
// Layout: one record per file under <dir>/results and <dir>/programs,
// named by the fingerprint hex. Records carry a versioned header with the
// payload length and checksum; they are written to <dir>/tmp — every
// write/flush checked, fsync'd before publication — and published by
// atomic rename, so readers (and other store instances on the same
// directory) never observe a half-written record and a torn tmp file is
// never renamed into place. open() rebuilds the in-memory index by
// scanning the record directories; torn/truncated/corrupt records are
// skipped (and removed) rather than trusted, and stale tmp files left by
// a crash mid-publication are cleaned up — a crash at any point costs at
// most the record being written.
//
// Fault tolerance: all file I/O goes through an injectable serve::IoHooks
// seam (StoreOptions::hooks), so tests can fail or kill any individual
// step. A failed publication NEVER throws out of put_result/put_program —
// the put reports failure, and after `read_only_after` consecutive
// publication failures (a sick disk, not a one-off) the store degrades to
// read-only: gets keep serving, puts are dropped and counted, and the
// read_only flag is exported through stats() so operators see it. The
// attached Session keeps computing either way — serving never dies
// because the disk did.
//
// Eviction: when `max_bytes > 0`, publishing a result evicts
// least-recently-used result records until the resident payload size is
// back under the cap (the record just published is never evicted, so a
// single oversized record still persists its run). Recency is seeded
// from file modification times at open and bumped by hits and puts.
//
// Concurrency: all operations are thread-safe within one instance (a
// single mutex — store traffic is tiny next to a simulation). Two
// *processes* on one directory are safe against corruption thanks to the
// rename discipline, but each instance only sees the other's records
// published before its own open(); a get() whose file was evicted by
// another instance degrades to a miss.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "isa/instruction.hpp"
#include "obs/metrics.hpp"
#include "serve/io_hooks.hpp"
#include "sim/report.hpp"

namespace sparsetrain::serve {

/// Internal signal that one publication step failed (carries the step and
/// errno text). Never escapes put_result/put_program — it is what the
/// degradation path catches. Distinct from InjectedCrash, which simulates
/// process death and must propagate.
class StoreIoError : public std::runtime_error {
 public:
  explicit StoreIoError(const std::string& what) : std::runtime_error(what) {}
};

struct StoreOptions {
  /// Cap on the total result-payload bytes resident on disk; 0 = no cap.
  std::uint64_t max_bytes = 0;
  /// Consecutive publication failures before the store flips read-only
  /// (0 = never degrade, keep attempting every put).
  int read_only_after = 3;
  /// File-I/O seam; nullptr = real file I/O (IoHooks::real()).
  std::shared_ptr<IoHooks> hooks;
  /// Registry the store's counters live on (store_hits_total, ...); the
  /// registry must outlive the store. nullptr = the store keeps a private
  /// registry, and stats() works the same either way.
  obs::Registry* metrics = nullptr;
};

/// Counter snapshot (process-lifetime for this instance, plus the
/// resident index sizes). A view assembled from the store's registry
/// instruments, so a "stats" response and a "metrics" response can never
/// disagree.
struct StoreStats {
  std::size_t hits = 0;          ///< get_result found a record
  std::size_t misses = 0;        ///< get_result found nothing
  std::size_t puts = 0;          ///< result records published
  std::size_t evictions = 0;     ///< result records evicted by the cap
  std::size_t torn_skipped = 0;  ///< corrupt records skipped at open()
  std::size_t tmp_cleaned = 0;   ///< stale tmp files removed at open()
  std::size_t publish_failures = 0;   ///< failed publication attempts
  std::size_t dropped_publishes = 0;  ///< puts dropped while read-only
  bool read_only = false;        ///< store degraded: serving gets only
  std::size_t entries = 0;       ///< result records in the index
  std::size_t program_entries = 0;  ///< program-metadata records
  std::uint64_t bytes = 0;       ///< resident result payload bytes

  std::size_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// Metadata kept per compiled program (the program itself is recompiled
/// on a result miss; the metadata makes the store auditable without
/// replaying anything).
struct ProgramMeta {
  std::string name;
  isa::EngineKind engine = isa::EngineKind::Statistical;
  std::size_t batch = 1;
  std::size_t instructions = 0;
};

class ResultStore {
 public:
  /// Opens (creating directories as needed), cleans stale tmp files, and
  /// rebuilds the index.
  explicit ResultStore(std::string dir, StoreOptions opts = {});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Loads the stored report for `fp` into `out`. Counts a hit or miss;
  /// an unreadable/corrupt record degrades to a miss.
  bool get_result(std::uint64_t fp, sim::SimReport& out);

  /// Publishes `report` under `fp` (checked write + fsync + atomic
  /// rename), then applies the eviction cap. Overwrites any previous
  /// record for `fp`. Returns false — without throwing — when the
  /// publication failed or the store is read-only; the previous record
  /// for `fp`, if any, stays intact and readable.
  bool put_result(std::uint64_t fp, const sim::SimReport& report);

  bool get_program(std::uint64_t fp, ProgramMeta& out);
  /// Same degradation contract as put_result.
  bool put_program(std::uint64_t fp, const ProgramMeta& meta);

  /// True when a result record for `fp` is resident (no stat counted).
  bool contains_result(std::uint64_t fp) const;

  /// True when a program-metadata record for `fp` is resident.
  bool contains_program(std::uint64_t fp) const;

  /// True once the store has degraded to read-only (see StoreOptions::
  /// read_only_after). Reads keep working; puts are dropped.
  bool read_only() const;

  /// Cause of the most recent publication failure ("" when none).
  std::string last_publish_error() const;

  StoreStats stats() const;
  void reset_stats();  ///< zeroes the counters; the index is untouched

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;  ///< LRU recency (higher = more recent)
  };

  std::string result_path(std::uint64_t fp) const;
  std::string program_path(std::uint64_t fp) const;
  /// Serialise + tmp-write + fsync + rename. Returns the payload size;
  /// throws StoreIoError (with the tmp file removed) on any failed step.
  std::uint64_t publish(const std::string& final_path, const char* kind,
                        std::uint64_t fp, const std::string& payload);
  /// Records one publication failure; flips read-only after
  /// `read_only_after` consecutive ones.
  void note_publish_failure(const std::string& cause);
  /// Validates a record file and returns its payload; false when the
  /// record is torn/corrupt/missing.
  bool read_record(const std::string& path, const char* kind,
                   std::uint64_t fp, std::string& payload_out) const;
  void scan_dir(const char* subdir, const char* kind);
  void clean_tmp();
  void evict_over_cap(std::uint64_t keep_fp);

  std::string dir_;
  StoreOptions opts_;
  std::shared_ptr<IoHooks> io_;  ///< never null after construction
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> results_;
  std::unordered_map<std::uint64_t, Entry> programs_;
  /// Counter handles, resolved in the constructor (before the recovery
  /// scan, which already counts) from StoreOptions::metrics or the
  /// private fallback registry.
  struct Counters {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* puts = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* torn_skipped = nullptr;
    obs::Counter* tmp_cleaned = nullptr;
    obs::Counter* publish_failures = nullptr;
    obs::Counter* dropped_publishes = nullptr;
  };
  std::unique_ptr<obs::Registry> own_metrics_;
  Counters c_;
  int consecutive_publish_failures_ = 0;
  bool read_only_ = false;
  std::string last_publish_error_;
  std::uint64_t bytes_ = 0;     ///< resident result payload bytes
  std::uint64_t next_seq_ = 1;  ///< LRU clock
  std::uint64_t tmp_counter_ = 0;
};

}  // namespace sparsetrain::serve
