// Minimal JSON for the serving protocol.
//
// The daemon speaks newline-delimited JSON; requests are small flat
// objects, so this is a strict, allocation-light recursive-descent parser
// over std::string_view plus a tiny writer. Full JSON is accepted
// (nesting, arrays, escapes, scientific numbers); anything malformed
// throws ContractError with a position, which the server turns into an
// explicit error response instead of dying.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sparsetrain::serve {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw ContractError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object field, or nullptr when absent (throws when not an object).
  const JsonValue* find(const std::string& key) const;

  /// Convenience lookups with defaults (absent field = default; a present
  /// field of the wrong type throws).
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();

  /// Builder mutators (throw ContractError on a kind mismatch).
  void set(std::string key, JsonValue v);
  void push_back(JsonValue v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;  ///< sorted keys (canonical)
};

/// Parses exactly one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Numbers follow the strict RFC 8259
/// grammar (no "+1"/"01"/"1."/".5", no hex, no infinities), container
/// nesting is capped at 64 levels and documents at 1 MiB — oversized or
/// pathological inputs fail like any other malformed line, they never
/// exhaust the process. Throws ContractError when malformed.
JsonValue parse_json(std::string_view text);

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

}  // namespace sparsetrain::serve
