#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

#include "util/require.hpp"

namespace sparsetrain::serve {

namespace {

using Clock = std::chrono::steady_clock;

long ms_since(Clock::time_point start) {
  return static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                               Clock::now() - start)
                               .count());
}

}  // namespace

std::string format_request(const Request& r) {
  std::ostringstream os;
  os.precision(10);
  os << "{\"type\": \"" << json_escape(r.type) << '"';
  if (!r.id.empty()) os << ", \"id\": \"" << json_escape(r.id) << '"';
  if (r.trace != 0) {
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(r.trace));
    os << ", \"trace\": \"" << hex << '"';
    if (r.parent_span != 0) {
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(r.parent_span));
      os << ", \"span\": \"" << hex << '"';
    }
  }
  if (r.type == "metrics" && r.format != "json") {
    os << ", \"format\": \"" << json_escape(r.format) << '"';
  }
  if (r.type == "eval") {
    os << ", \"workload\": \"" << json_escape(r.workload)
       << "\", \"backend\": \"" << json_escape(r.backend)
       << "\", \"scenario\": \"" << json_escape(r.scenario)
       << "\", \"p\": " << r.p << ", \"act_density\": " << r.act_density
       << ", \"do_density\": " << r.do_density << ", \"engine\": \""
       << json_escape(r.engine) << "\", \"batch\": " << r.batch
       << ", \"timeout_ms\": " << r.timeout_ms;
    if (r.include_report) os << ", \"include_report\": true";
  } else if (r.type == "put") {
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    os << ", \"fingerprint\": \"" << fp << "\", \"report\": \""
       << r.report_hex << '"';  // hex: no escapes needed
  }
  os << '}';
  return os.str();
}

Client::Client(const std::string& endpoint_spec, ClientOptions opts)
    : ep_(parse_endpoint(endpoint_spec)), opts_(opts),
      rng_(opts.backoff_seed) {
  if (opts_.metrics != nullptr) {
    const obs::Labels labels = {{"endpoint", endpoint_spec}};
    c_.attempts = &opts_.metrics->counter("client_attempts_total", labels);
    c_.connects = &opts_.metrics->counter("client_connects_total", labels);
    c_.reconnects =
        &opts_.metrics->counter("client_reconnects_total", labels);
    c_.retries = &opts_.metrics->counter("client_retries_total", labels);
    c_.rejected_retries =
        &opts_.metrics->counter("client_rejected_retries_total", labels);
  } else {
    c_.attempts = &own_[0];
    c_.connects = &own_[1];
    c_.reconnects = &own_[2];
    c_.retries = &own_[3];
    c_.rejected_retries = &own_[4];
  }
  std::string error;
  if (!ensure_connected(error) && opts_.retries <= 0) {
    ST_REQUIRE(false, "client: cannot connect to " + ep_.describe() + ": " +
                          error);
  }
  // With retries configured an unreachable daemon is not fatal here —
  // the first request() keeps trying (the daemon may be restarting).
}

Client::~Client() = default;

bool Client::ensure_connected(std::string& error, long budget_ms) {
  if (conn_.valid()) return true;
  conn_ = connect_endpoint(ep_, &error,
                           budget_ms > 0 ? budget_ms
                                         : opts_.connect_timeout_ms);
  if (!conn_.valid()) return false;
  c_.connects->inc();
  if (c_.connects->value() > 1) c_.reconnects->inc();
  return true;
}

Client::Stats Client::retry_stats() const {
  Stats s;
  s.attempts = c_.attempts->value();
  s.connects = c_.connects->value();
  s.reconnects = c_.reconnects->value();
  s.retries = c_.retries->value();
  s.rejected_retries = c_.rejected_retries->value();
  return s;
}

long Client::remaining_ms(long elapsed_ms) const {
  if (opts_.deadline_ms <= 0) return 0;  // 0 = wait forever downstream
  return std::max(1L, opts_.deadline_ms - elapsed_ms);
}

long Client::connect_budget_ms(long elapsed_ms) const {
  // The tighter of the per-attempt connect timeout and what is left of
  // the overall deadline — so neither can defeat the other.
  const long remain = remaining_ms(elapsed_ms);
  if (opts_.connect_timeout_ms <= 0) return remain;
  if (remain <= 0) return opts_.connect_timeout_ms;
  return std::min(opts_.connect_timeout_ms, remain);
}

std::string Client::request_raw(const std::string& json_line) {
  const Clock::time_point start = Clock::now();
  long sleep_ms = opts_.backoff_base_ms;
  std::string last_error = "no attempt made";
  std::string rejected_line;  // last "rejected" response, returned when
                              // retries run out

  for (int attempt = 0;; ++attempt) {
    const bool last = attempt >= opts_.retries;
    std::string error;
    bool retry_this = false;

    if (!ensure_connected(error, connect_budget_ms(ms_since(start)))) {
      last_error = "cannot connect to " + ep_.describe() + ": " + error;
      retry_this = true;
      if (opts_.deadline_ms > 0 &&
          ms_since(start) >= opts_.deadline_ms) {
        ST_REQUIRE(false, "client: deadline of " +
                              std::to_string(opts_.deadline_ms) +
                              " ms exceeded connecting to " +
                              ep_.describe() + " (" + error + ")");
      }
    } else {
      c_.attempts->inc();
      if (!conn_.write_line(json_line)) {
        last_error = "connection lost while sending";
        conn_.close();
        retry_this = true;
      } else {
        std::string line;
        const Conn::ReadStatus st =
            conn_.read_line(line, remaining_ms(ms_since(start)));
        if (st == Conn::ReadStatus::Timeout) {
          conn_.close();  // the late response would desync the stream
          ST_REQUIRE(false, "client: deadline of " +
                                std::to_string(opts_.deadline_ms) +
                                " ms exceeded waiting for " +
                                ep_.describe());
        }
        if (st != Conn::ReadStatus::Ok) {
          last_error = "connection closed before a response";
          conn_.close();
          retry_this = true;
        } else {
          // An admission rejection is retryable by policy: the daemon is
          // alive but briefly full, exactly what backoff is for.
          bool rejected = false;
          if (opts_.retry_rejected && !last) {
            try {
              rejected = parse_response(line).status == "rejected";
            } catch (const std::exception&) {
              rejected = false;  // unparseable: hand it to the caller
            }
          }
          if (!rejected) return line;
          rejected_line = line;
          last_error = "request rejected (server overloaded)";
          c_.rejected_retries->inc();
          // Reconnect on the retry: a connection-cap rejection closed the
          // socket server-side (a queue-full one didn't, but a fresh
          // connect is correct for both).
          conn_.close();
          retry_this = true;
        }
      }
    }

    if (!retry_this || last) {
      if (!rejected_line.empty()) return rejected_line;
      ST_REQUIRE(false, "client: " + last_error + " (after " +
                            std::to_string(attempt + 1) + " attempt(s) to " +
                            ep_.describe() + ")");
    }

    // Exponential backoff with decorrelated jitter: each sleep is drawn
    // from [base, 3 * previous], capped — growth without lockstep.
    const double lo = static_cast<double>(opts_.backoff_base_ms);
    const double hi = std::max(lo + 1.0, 3.0 * static_cast<double>(sleep_ms));
    sleep_ms = std::min(opts_.backoff_cap_ms,
                        static_cast<long>(rng_.uniform(lo, hi)));
    if (opts_.deadline_ms > 0 &&
        ms_since(start) + sleep_ms >= opts_.deadline_ms) {
      ST_REQUIRE(false, "client: deadline of " +
                            std::to_string(opts_.deadline_ms) +
                            " ms exceeded retrying " + ep_.describe() +
                            " (last failure: " + last_error + ")");
    }
    c_.retries->inc();
    if (opts_.sleeper) {
      opts_.sleeper(sleep_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
}

Response Client::request(const std::string& json_line) {
  return parse_response(request_raw(json_line));
}

Response Client::submit(const Request& eval_request) {
  return request(format_request(eval_request));
}

Response Client::stats() {
  Request r;
  r.type = "stats";
  return request(format_request(r));
}

Response Client::status() {
  Request r;
  r.type = "status";
  return request(format_request(r));
}

Response Client::shutdown() {
  Request r;
  r.type = "shutdown";
  return request(format_request(r));
}

}  // namespace sparsetrain::serve
