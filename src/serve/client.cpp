#include "serve/client.hpp"

#include <sstream>

#include "util/require.hpp"

#ifndef _WIN32
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace sparsetrain::serve {

std::string format_request(const Request& r) {
  std::ostringstream os;
  os.precision(10);
  os << "{\"type\": \"" << json_escape(r.type) << '"';
  if (!r.id.empty()) os << ", \"id\": \"" << json_escape(r.id) << '"';
  if (r.type == "eval") {
    os << ", \"workload\": \"" << json_escape(r.workload)
       << "\", \"backend\": \"" << json_escape(r.backend)
       << "\", \"scenario\": \"" << json_escape(r.scenario)
       << "\", \"p\": " << r.p << ", \"act_density\": " << r.act_density
       << ", \"do_density\": " << r.do_density << ", \"engine\": \""
       << json_escape(r.engine) << "\", \"batch\": " << r.batch
       << ", \"timeout_ms\": " << r.timeout_ms;
  }
  os << '}';
  return os.str();
}

#ifndef _WIN32

Client::Client(const std::string& socket_path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ST_REQUIRE(fd_ >= 0, "client: cannot create a unix socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ST_REQUIRE(socket_path.size() < sizeof(addr.sun_path),
             "client: socket path too long: " + socket_path);
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    ST_REQUIRE(false, "client: cannot connect to " + socket_path);
  }
  file_ = ::fdopen(fd_, "r+");
  if (file_ == nullptr) {
    ::close(fd_);
    fd_ = -1;
    ST_REQUIRE(false, "client: fdopen failed for " + socket_path);
  }
}

Client::~Client() {
  if (file_ != nullptr) {
    std::fclose(static_cast<FILE*>(file_));  // also closes fd_
  } else if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string Client::request_raw(const std::string& json_line) {
  FILE* f = static_cast<FILE*>(file_);
  ST_REQUIRE(f != nullptr, "client: not connected");
  const std::string out = json_line + "\n";
  ST_REQUIRE(std::fputs(out.c_str(), f) != EOF && std::fflush(f) == 0,
             "client: connection lost while sending");
  char* buf = nullptr;
  std::size_t cap = 0;
  const ssize_t n = ::getline(&buf, &cap, f);
  if (n <= 0) {
    std::free(buf);
    ST_REQUIRE(false, "client: connection closed before a response");
  }
  std::string line(buf, static_cast<std::size_t>(n));
  std::free(buf);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

#else  // _WIN32

Client::Client(const std::string& socket_path) {
  ST_REQUIRE(false, "client: unix sockets are unavailable on this platform ("
                    + socket_path + ")");
}

Client::~Client() = default;

std::string Client::request_raw(const std::string&) {
  ST_REQUIRE(false, "client: not connected");
}

#endif

Response Client::request(const std::string& json_line) {
  return parse_response(request_raw(json_line));
}

Response Client::submit(const Request& eval_request) {
  return request(format_request(eval_request));
}

Response Client::stats() {
  Request r;
  r.type = "stats";
  return request(format_request(r));
}

Response Client::status() {
  Request r;
  r.type = "status";
  return request(format_request(r));
}

Response Client::shutdown() {
  Request r;
  r.type = "shutdown";
  return request(format_request(r));
}

}  // namespace sparsetrain::serve
