// Consistent-hash ring over daemon endpoints.
//
// The shard router places every evaluation on the ring by its store
// fingerprint: each endpoint contributes `vnodes` points whose positions
// are derived purely from the endpoint *string* (mix64 over its FNV-1a
// hash and the virtual-node index), so placement is a function of which
// endpoints exist — not of list order, construction history, or anything
// process-local. Two routers configured with the same pool agree on every
// key, and a router restart changes nothing.
//
// The memcached property this buys: adding a shard moves only the keys
// that now fall on the new shard's points (~1/N of the space), and
// removing a shard moves only the keys it owned — everything else stays
// put, so a pool resize invalidates almost none of the shards' warm
// stores. tests/test_serve_router.cpp pins both directions.
//
// successors() is the replication/failover order: the distinct shards
// whose points follow the key clockwise. The owner is successors()[0];
// a router that finds the owner down walks the same list, and replicas
// go to the next R entries — so failover traffic lands exactly where
// the replicas were sent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sparsetrain::serve {

struct RingOptions {
  /// Points per endpoint. More virtual nodes flatten the load split
  /// between shards (64 keeps the max/min ratio under ~1.5 for small
  /// pools) at O(N * vnodes * log) build cost.
  std::size_t vnodes = 64;
};

class Ring {
 public:
  /// Builds the ring. Endpoint specs must be non-empty and distinct
  /// (duplicates would silently double one shard's share); throws
  /// ContractError otherwise.
  explicit Ring(std::vector<std::string> endpoints, RingOptions opts = {});

  std::size_t size() const { return endpoints_.size(); }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const std::string& endpoint(std::size_t shard) const {
    return endpoints_[shard];
  }

  /// Shard index owning `key` (the first ring point at or after it,
  /// wrapping at the top).
  std::size_t owner(std::uint64_t key) const;

  /// The first `count` *distinct* shards in ring order starting at the
  /// owner — owner first, then its failover/replication successors.
  /// Capped at size(); count = 0 yields just the owner.
  std::vector<std::size_t> successors(std::uint64_t key,
                                      std::size_t count) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t at(std::uint64_t key) const;  ///< index into points_

  std::vector<std::string> endpoints_;
  std::vector<Point> points_;  ///< sorted by (hash, shard)
};

}  // namespace sparsetrain::serve
