// The evaluation daemon.
//
// serve::Server wraps a core::Session (with an optional persistent
// ResultStore attached) behind the NDJSON protocol of serve/protocol.hpp.
// Three properties the loop guarantees:
//
//  * Single-flight coalescing — concurrent requests whose store
//    fingerprints (Session::run_fingerprint) are identical share one
//    evaluation: the first becomes the owner, later arrivals attach to
//    its future and answer with source "coalesced".
//  * Bounded admission — at most `max_queue` evaluations may be pending
//    at once; excess requests get an immediate "rejected" response
//    instead of growing an unbounded queue.
//  * Graceful drain — EOF or a shutdown request stops intake, waits for
//    every in-flight evaluation, then answers with a final "bye" line.
//
// A per-request timeout (request field or server default) bounds how
// long the *requester* waits; a timed-out evaluation keeps running in
// the background and still publishes its report to the store, so the
// retry is a store hit.
//
// Transport is pluggable: serve(in, out) speaks over any stream pair
// (the CLI uses stdin/stdout), serve_listener(listener) accepts
// connections from any serve::Listener — AF_UNIX via serve_unix_socket,
// TCP or unix via serve_endpoint — and handle(line) answers one request
// synchronously for in-process use and tests. Socket serving defends
// itself: transient accept failures are retried, connections past
// `max_connections` get an explicit "rejected" response instead of a
// silent hang, and a connection idle past `idle_timeout_ms` is told so
// and closed (slow or vanished clients cannot pin threads forever).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"
#include "util/thread_pool.hpp"

namespace sparsetrain::serve {

/// Shared request → session translation, used by Server and Router so
/// both resolve an eval request to exactly the same network / profile /
/// job options (and therefore the same store fingerprint).
workload::NetworkConfig request_network(const Request& r);
workload::SparsityProfile request_profile(const workload::NetworkConfig& net,
                                          const Request& r);
core::Session::JobOptions request_job_options(const Request& r);

struct ServerOptions {
  /// Session configuration (arches, batch, sim workers, seed). The
  /// `store` field is overridden when `store_dir` is set.
  core::SessionConfig session;
  /// Persistent store directory; empty = serve without a store (every
  /// eval simulates, coalescing still applies).
  std::string store_dir;
  std::uint64_t store_max_bytes = 0;  ///< 0 = unbounded
  /// Threads answering requests (waiters/responders). Evaluations run on
  /// a separate internal pool of the same size, so a thread waiting on a
  /// coalesced future never starves the evaluation it waits for.
  std::size_t request_workers = 2;
  /// Max evaluations admitted at once; further evals are rejected.
  std::size_t max_queue = 64;
  long default_timeout_ms = 0;  ///< 0 = wait forever
  /// Socket serving only: connections above this count are answered with
  /// one "rejected" line and closed (0 = unlimited).
  std::size_t max_connections = 64;
  /// Socket serving only: a connection that sends no complete request
  /// line for this long is told "idle timeout" and closed (0 = never).
  long idle_timeout_ms = 0;
  /// JSONL trace log path; empty = tracing disabled (requests carrying a
  /// trace id are still parsed, just not recorded).
  std::string trace_path;
  /// Fraction of daemon-edge traces sampled (requests arriving WITH a
  /// trace id are always recorded — the edge already decided).
  double trace_sample_rate = 0.0;
  /// Seed of the trace-id sequence and sampling decision.
  std::uint64_t trace_seed = 1;
  /// Record per-stage exact-engine profiles into the metrics registry.
  bool profile_engine = false;
  /// Test seam: runs in the evaluator thread right before the session
  /// submit (e.g. to hold an evaluation open while coalescers arrive).
  std::function<void()> before_eval;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  core::Session& session() { return session_; }
  const core::Session& session() const { return session_; }

  /// The daemon's metrics registry (everything the "metrics" request
  /// snapshots: server counters, session phase histograms, store and
  /// program-cache counters, engine profiles).
  obs::Registry& metrics() { return metrics_; }

  /// Request-level counters (evaluation-source breakdown included) — a
  /// view assembled from the registry, so "stats"/"status" responses and
  /// "metrics" snapshots can never disagree.
  struct Counters {
    std::uint64_t received = 0;   ///< lines read / handle() calls
    std::uint64_t completed = 0;  ///< ok eval responses
    std::uint64_t computed = 0;   ///< ok evals that simulated
    std::uint64_t store_hits = 0; ///< ok evals served from the store
    std::uint64_t coalesced = 0;  ///< ok evals attached to an in-flight twin
    std::uint64_t errors = 0;     ///< malformed / failed requests
    std::uint64_t rejected = 0;   ///< admission-control rejections
    std::uint64_t timeouts = 0;   ///< requester gave up waiting
    std::uint64_t overloaded = 0; ///< connections refused at the cap
    std::uint64_t idle_closed = 0;///< connections closed by idle timeout
    std::uint64_t puts = 0;       ///< replicated reports accepted
  };
  Counters counters() const;

  /// Evaluations currently admitted (owners + waiters).
  std::size_t inflight() const { return pending_.load(); }

  /// Parses and answers one request line synchronously. Never throws:
  /// malformed input becomes a status "error" response. A "shutdown"
  /// request drains in-flight evaluations and answers "bye" (the next
  /// handle() still works — lifecycle belongs to the transport loop).
  Response handle(const std::string& line);

  /// NDJSON loop: one request per input line, one response line each
  /// (responses complete in evaluation order, not input order). Returns
  /// after EOF or a "shutdown" request, once every in-flight evaluation
  /// drained and the final "bye" line was written.
  void serve(std::istream& in, std::ostream& out);

  /// Accepts connections from `listener`, one NDJSON loop per connection
  /// (each in its own thread). Returns 0 after a clean shutdown-drain: a
  /// "shutdown" request answers "bye", stops the listener, and kicks the
  /// remaining connections.
  int serve_listener(Listener& listener);

  /// Listens on a unix-domain socket. Throws ContractError (with the
  /// errno text) when the socket cannot be created or bound.
  int serve_unix_socket(const std::string& path);

  /// Listens on an endpoint spec — "host:port" for TCP, anything else a
  /// unix path (see parse_endpoint). Same contract as serve_unix_socket.
  int serve_endpoint(const std::string& spec);

  /// Async-signal-safe shutdown trigger (atomic store + a shutdown(2)
  /// kick of the active listener). serve_listener then drains exactly as
  /// if a "shutdown" request had arrived, writing the final "bye"
  /// counters to stderr since no connection asked for them.
  void request_shutdown();

 private:
  struct EvalOutcome {
    std::string error;  ///< nonempty = evaluation failed
    bool from_store = false;
    std::uint64_t fingerprint = 0;
    std::string workload;
    std::string engine;
    std::uint64_t cycles = 0;
    double latency_ms = 0.0;
    double utilization = 0.0;
    double on_chip_uj = 0.0;
    double dram_uj = 0.0;
    std::string report_payload;  ///< serialized report (report_io v1)
  };
  using OutcomeFuture = std::shared_future<std::shared_ptr<const EvalOutcome>>;

  using Clock = std::chrono::steady_clock;

  Response process(const Request& req, Clock::time_point admitted);
  Response process_eval(const Request& req, Clock::time_point admitted);
  Response put_response(const Request& req);
  Response stats_response(const Request& req);
  Response status_response(const Request& req);
  Response metrics_response(const Request& req);
  Response bye_response(const Request& req);

  /// Stamps `elapsed_ms` (when not already set by an inner layer) and
  /// records server_request_seconds{type,status}. Every response path
  /// funnels through here exactly once.
  void finish(Response& resp, Clock::time_point admitted,
              const char* type_label);
  /// Tracing context of an incoming request: joins a propagated trace,
  /// or (for `edge` = true, i.e. eval requests) mints a new one.
  obs::SpanContext trace_context(const Request& req, bool edge);

  ServerOptions opts_;
  /// Declared before session_: the session instruments itself on this
  /// registry, so it must outlive (construct before) the session.
  obs::Registry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;  ///< null = tracing disabled
  core::Session session_;
  Clock::time_point started_ = Clock::now();
  std::atomic<std::size_t> pending_{0};
  std::atomic<Listener*> active_listener_{nullptr};
  std::atomic<bool> shutdown_requested_{false};

  /// Counter handles into metrics_, resolved once in the constructor.
  struct CounterSet {
    obs::Counter* received = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* computed = nullptr;
    obs::Counter* store_hits = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* overloaded = nullptr;
    obs::Counter* idle_closed = nullptr;
    obs::Counter* puts = nullptr;
  };
  CounterSet c_;
  obs::Histogram* queue_hist_ = nullptr;  ///< server_queue_seconds

  std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, OutcomeFuture> inflight_;

  /// Declared last: members destroy in reverse order, so the pool joins
  /// its evaluator threads while session_ (which they use) is still
  /// alive.
  util::ThreadPool eval_pool_;
};

}  // namespace sparsetrain::serve
