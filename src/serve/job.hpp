// One evaluation job, canonicalised for content addressing.
//
// The persistent result store keys every stored SimReport by a fingerprint
// of *everything that determines the simulated numbers*: the compiler
// inputs (network geometry, operand densities, compile options — reusing
// compiler::ProgramCache::key so the two canonicalisations cannot drift
// apart), the full architecture configuration (including timing, energy
// prices and the scheduling-sample budget), the backend's registry name
// and execution kind, and the derived per-run scheduling seed. Exact-mode
// parallelism knobs (workers, tile size, shared pool) are deliberately
// excluded: they change wall-clock time, never results.
//
// The canonicalisation is explicit and versioned: fingerprint_v1() is
// frozen — tests/test_serve_store.cpp pins a golden value — so on-disk
// keys cannot silently drift when a field is added somewhere upstream.
// Growing core::Session::JobOptions (or ArchConfig) with a field that
// affects results REQUIRES adding it here and introducing fingerprint_v2
// alongside a store schema bump; forgetting it makes the golden test the
// tripwire reviewers see.
#pragma once

#include <cstdint>
#include <string>

#include "compiler/compiler.hpp"
#include "sim/accelerator.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::serve {

/// Everything that determines one backend run's SimReport. `profile` and
/// `copts` are the ones actually run (core::Session substitutes an
/// all-dense profile and a statistical-engine compile for dense
/// backends *before* building the job).
struct EvalJob {
  workload::NetworkConfig net;
  workload::SparsityProfile profile;
  compiler::CompileOptions copts;
  std::string backend;       ///< registry name
  std::string backend_kind;  ///< sim::Backend::kind(): "accelerator"/"exact"
  sim::ArchConfig arch;
  std::uint64_t run_seed = 0;  ///< seed actually passed to Backend::run
};

/// Canonical v1 serialisation of the job (doubles as IEEE-754 bit
/// patterns, strings length-prefixed). Prefixed with the version tag so a
/// future v2 can never collide with a v1 key. The component-reference
/// form lets core::Session fingerprint a run without copying the network
/// or profile into an EvalJob first.
std::string canonical_job_key_v1(const workload::NetworkConfig& net,
                                 const workload::SparsityProfile& profile,
                                 const compiler::CompileOptions& copts,
                                 const std::string& backend,
                                 const std::string& backend_kind,
                                 const sim::ArchConfig& arch,
                                 std::uint64_t run_seed);
std::string canonical_job_key_v1(const EvalJob& job);

/// 64-bit FNV-1a of canonical_job_key_v1(). The on-disk store key.
std::uint64_t fingerprint_v1(const workload::NetworkConfig& net,
                             const workload::SparsityProfile& profile,
                             const compiler::CompileOptions& copts,
                             const std::string& backend,
                             const std::string& backend_kind,
                             const sim::ArchConfig& arch,
                             std::uint64_t run_seed);
std::uint64_t fingerprint_v1(const EvalJob& job);

}  // namespace sparsetrain::serve
