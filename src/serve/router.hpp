// Replicated shard router — the serving tier that survives node loss.
//
// serve::Router fronts a pool of evaluation daemons (serve::Server
// behind serve::Listener endpoints). Each eval request is placed on a
// consistent-hash ring (serve/ring.hpp) by its *store fingerprint* —
// computed with the same Session::run_fingerprint the daemons key their
// stores and single-flight coalescing on — so identical requests always
// land on the same shard and its warm store, no matter which client or
// router instance sent them.
//
// Fault tolerance, in routing order:
//
//  * Per-shard circuit breaker — `breaker_threshold` consecutive
//    transport failures open the breaker: the shard is Down and skipped
//    instantly (no connect timeout paid per request). After
//    `breaker_cooldown_ms` the breaker half-opens and admits one probe
//    request; success closes it, failure re-opens it.
//  * Failover — a request whose preferred shard is down (or fails) walks
//    the ring's successor list, so it lands exactly where replicas were
//    sent. Losing k of N shards loses no requests, only warm-store
//    locality for the keys the dead shards owned.
//  * Replication — an "ok" evaluation is re-submitted (best effort, as a
//    "put" carrying the serialized report) to the next `replicas`
//    distinct shards after the one that served it, so a later failover
//    for the same key finds a store hit instead of recomputing. A down
//    replica is skipped and counted, never waited on.
//  * Health probing — with `probe_interval_ms > 0` a background thread
//    pings non-Up shards with "status" requests; a recovered daemon
//    rejoins the pool without a router restart.
//
// Degraded behavior is explicit: when every shard is down the router
// answers a "rejected" response naming the condition ("all shards
// down") within the per-forward deadline, never a hang.
//
// Requests the router answers itself: "stats" returns the
// router_stats/v1 payload (per-shard health + forward/failover/
// replication counters); "status" a liveness summary; "shutdown" stops
// the serving loop with a "bye". Everything else — eval errors, store
// semantics — is the backend shard's answer, annotated with "shard":
// the endpoint that served it.
//
// Two front ends: RouterClient embeds a Router behind the Client call
// surface (submit/stats/status/shutdown) for in-process use with a
// multi-endpoint spec ("a:1234,b:1235,unix:/tmp/s.sock"); and
// tools/sparsetrain_route serves the same NDJSON protocol over a
// listener, so existing serve::Client code talks to the pool unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/ring.hpp"
#include "serve/transport.hpp"

namespace sparsetrain::serve {

struct RouterOptions {
  /// Backend daemon endpoints (unix paths or host:port specs). Must be
  /// non-empty and distinct.
  std::vector<std::string> endpoints;
  RingOptions ring;
  /// Successor shards each ok evaluation is replicated to (capped at
  /// pool size - 1). 0 = no replication.
  std::size_t replicas = 1;
  /// Consecutive transport failures that open a shard's breaker.
  int breaker_threshold = 3;
  /// How long an open breaker rejects before half-opening one probe.
  long breaker_cooldown_ms = 1000;
  /// Per-forward client config. retries stays 0 here by default — the
  /// router's failover IS the retry policy; deadline_ms and
  /// connect_timeout_ms bound how long one shard may be tried.
  ClientOptions client = client_defaults();
  /// Background health-probe period (0 = no prober). Probes target
  /// non-Up shards only, with `probe_deadline_ms` per ping.
  long probe_interval_ms = 0;
  long probe_deadline_ms = 250;
  /// Socket serving (serve_listener) limits — same semantics as
  /// ServerOptions.
  std::size_t max_connections = 64;
  long idle_timeout_ms = 0;
  /// JSONL trace log path; empty = tracing disabled. The router is the
  /// usual trace edge: it mints ids for requests arriving without one
  /// and propagates them to the shards as "trace"/"span" wire fields.
  std::string trace_path;
  /// Fraction of router-edge traces sampled (requests arriving WITH a
  /// trace id are always recorded — the upstream edge already decided).
  double trace_sample_rate = 0.0;
  /// Seed of the trace-id sequence and sampling decision.
  std::uint64_t trace_seed = 1;

  static ClientOptions client_defaults() {
    ClientOptions c;
    c.retries = 0;
    c.deadline_ms = 5000;
    c.connect_timeout_ms = 500;
    c.retry_rejected = false;  // rejections fail over, not retry in place
    return c;
  }
};

class Router {
 public:
  explicit Router(RouterOptions opts);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const Ring& ring() const { return ring_; }

  /// The router's metrics registry (router counters, per-shard counters
  /// and forward-latency histograms, per-endpoint client counters).
  obs::Registry& metrics() { return metrics_; }

  /// Breaker state of one shard, as exported in router_stats/v1.
  enum class Health { Up, Open, HalfOpen };

  /// Per-shard view assembled from registry handles (plus the live
  /// breaker state), so "stats" and "metrics" can never disagree.
  struct ShardStats {
    std::string endpoint;
    Health health = Health::Up;
    std::uint64_t forwards = 0;       ///< requests sent (incl. probes: no)
    std::uint64_t served = 0;         ///< responses returned to callers
    std::uint64_t failures = 0;       ///< transport failures observed
    std::uint64_t skipped = 0;        ///< times bypassed while down
    std::uint64_t replications = 0;   ///< puts accepted by this shard
    std::uint64_t replication_failures = 0;  ///< puts failed or refused
    std::uint64_t replication_skipped = 0;   ///< puts not tried (down)
    std::uint64_t probes = 0;         ///< health pings sent
    std::uint64_t recoveries = 0;     ///< Down -> Up transitions
  };

  struct Stats {
    std::uint64_t received = 0;    ///< handle() calls
    std::uint64_t routed = 0;      ///< evals/puts answered by a shard
    std::uint64_t failovers = 0;   ///< forwards past the preferred shard
    std::uint64_t rejected = 0;    ///< all-shards-down (or all-rejecting)
    std::uint64_t errors = 0;      ///< malformed requests
    std::vector<ShardStats> shards;
  };
  Stats stats() const;

  /// The ring placement key for an eval request: the store fingerprint
  /// the daemons themselves key on; for requests the fingerprint cannot
  /// be computed for (unknown workload/backend — the shard will answer
  /// the error), a deterministic hash of the request's identity fields.
  std::uint64_t placement_key(const Request& req) const;

  /// Routes one request line; never throws. Same contract as
  /// Server::handle, with routing semantics documented above.
  Response handle(const std::string& line);

  /// NDJSON serving over a listener — the counterpart of
  /// Server::serve_listener, built on the same shared loop.
  int serve_listener(Listener& listener);
  int serve_endpoint(const std::string& spec);

  /// Async-signal-safe drain trigger (see Server::request_shutdown).
  void request_shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct Shard {
    std::string endpoint;
    mutable std::mutex mu;  ///< guards everything below + the client
    std::unique_ptr<Client> client;
    Health health = Health::Up;
    int consecutive_failures = 0;
    Clock::time_point open_until{};
    /// Handles into the router registry, labeled {shard=endpoint};
    /// resolved once in the constructor. Counter increments are atomic,
    /// so they need no mu (reads for the stats view neither).
    struct Handles {
      obs::Counter* forwards = nullptr;
      obs::Counter* served = nullptr;
      obs::Counter* failures = nullptr;
      obs::Counter* skipped = nullptr;
      obs::Counter* replications = nullptr;
      obs::Counter* replication_failures = nullptr;
      obs::Counter* replication_skipped = nullptr;
      obs::Counter* probes = nullptr;
      obs::Counter* recoveries = nullptr;
      obs::Histogram* forward_seconds = nullptr;
    };
    Handles c;
  };

  /// One forward to one shard (takes the shard's mu, so per-shard
  /// traffic — requests, replication puts, probes — fully serializes).
  enum class ForwardResult {
    Skipped,   ///< breaker open: not sent
    Answered,  ///< shard responded (any status) — resp filled
    Failed,    ///< transport failure — counted against the breaker
  };
  ForwardResult forward(std::size_t shard, const std::string& line,
                        Response* resp);

  /// Breaker admission for shard `s` (mu held by caller): true = send.
  bool admit_locked(Shard& s, Clock::time_point now);
  void on_success_locked(Shard& s);
  void on_failure_locked(Shard& s, Clock::time_point now);

  Response route_eval(const Request& req, const obs::SpanContext& trace);
  Response route_put(const Request& req, const obs::SpanContext& trace);
  /// `fwd` is re-formatted per attempt so each hop carries its own span
  /// id ("router.forward" for the preferred shard, "router.failover"
  /// past it).
  Response route(const Request& req, std::uint64_t key, const Request& fwd,
                 const obs::SpanContext& trace, bool replicate_ok);
  void replicate(std::uint64_t key, std::size_t served_by,
                 const Response& ok_resp, const obs::SpanContext& trace);
  Response stats_response(const Request& req) const;
  Response status_response(const Request& req) const;
  Response metrics_response(const Request& req);
  Response all_down_response(const Request& req);

  /// Stamps `elapsed_ms` (overwriting a shard's own measurement: the
  /// router is the outermost layer, so its number includes the network)
  /// and records router_request_seconds{type,status}.
  void finish(Response& resp, Clock::time_point admitted,
              const std::string& type_label);
  /// Edge trace context: joins an incoming trace or mints a new one.
  obs::SpanContext trace_context(const Request& req);

  void prober_loop();
  void probe(std::size_t shard);

  RouterOptions opts_;
  Ring ring_;
  /// Declared before shards_ and tracer-using code: shards hold handles
  /// into this registry.
  obs::Registry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;  ///< null = tracing disabled
  /// Placement-only session: fingerprints requests exactly as the shards
  /// do; never simulates (workers = 1, no store).
  core::Session session_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Clock::time_point started_ = Clock::now();

  /// Router-level counter handles, resolved once in the constructor.
  struct CounterSet {
    obs::Counter* received = nullptr;
    obs::Counter* routed = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* errors = nullptr;
  };
  CounterSet c_;

  std::atomic<Listener*> active_listener_{nullptr};
  std::atomic<bool> shutdown_requested_{false};

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;  ///< declared last: joined before members die
};

/// Client-compatible front end over an embedded Router. The spec is a
/// comma-separated endpoint list; options default to RouterOptions
/// (pass one to tune replication/breakers).
class RouterClient {
 public:
  explicit RouterClient(const std::string& endpoints_spec,
                        RouterOptions opts = {});

  Response request(const std::string& json_line);
  Response submit(const Request& eval_request);
  Response stats();
  Response status();
  Response shutdown();

  Router& router() { return router_; }

 private:
  Router router_;
};

/// Splits "a:1234,b:1235,unix:/tmp/s.sock" into endpoint specs
/// (whitespace around entries trimmed; empty entries rejected).
std::vector<std::string> split_endpoints(const std::string& spec);

}  // namespace sparsetrain::serve
