// Byte-exact SimReport serialisation for the persistent result store.
//
// A stored report must replay *identically* to a fresh simulation —
// drivers diff warm-store output against cold output byte for byte — so
// every double travels as its IEEE-754 bit pattern (hex), never as a
// rounded decimal, and strings are length-prefixed so embedded
// newlines/separators cannot break framing. The format is a versioned
// line-oriented text record ("sparsetrain.report/v1"); parse() rejects
// anything it does not fully understand rather than guessing.
#pragma once

#include <string>
#include <string_view>

#include "sim/report.hpp"

namespace sparsetrain::serve {

/// Serialises `report` into the v1 record payload.
std::string serialize_report(const sim::SimReport& report);

/// Parses a v1 payload. Throws ContractError on any malformed, truncated
/// or version-mismatched input.
sim::SimReport parse_report(std::string_view payload);

}  // namespace sparsetrain::serve
