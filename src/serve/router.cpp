#include "serve/router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "dataflow/row_ops.hpp"
#include "serve/line_server.hpp"
#include "serve/server.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <csignal>
#include <unistd.h>
#endif

namespace sparsetrain::serve {

namespace {

using Clock = std::chrono::steady_clock;

core::SessionConfig placement_session() {
  // The router never simulates — its session exists only to compute the
  // same run_fingerprint the shards key their stores on.
  core::SessionConfig cfg;
  cfg.workers = 1;
  return cfg;
}

std::unique_ptr<obs::Tracer> make_tracer(const RouterOptions& opts) {
  if (opts.trace_path.empty()) return nullptr;
  obs::TracerOptions to;
  to.path = opts.trace_path;
  to.sample_rate = opts.trace_sample_rate;
  to.seed = opts.trace_seed;
  to.process = "router";
  return std::make_unique<obs::Tracer>(std::move(to));
}

int process_id() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(getpid());
#endif
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Stamps one hop's span ids onto the request about to cross the wire,
/// so the shard's spans parent under this hop.
void stamp_trace(Request& r, const obs::SpanContext& hop) {
  if (!hop.active()) return;
  r.trace = hop.trace_id;
  r.parent_span = hop.span_id;
}

const char* health_name(Router::Health h) {
  switch (h) {
    case Router::Health::Up:
      return "up";
    case Router::Health::Open:
      return "open";
    default:
      return "half_open";
  }
}

}  // namespace

std::vector<std::string> split_endpoints(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    const std::size_t first = entry.find_first_not_of(" \t");
    const std::size_t last = entry.find_last_not_of(" \t");
    entry = first == std::string::npos
                ? std::string()
                : entry.substr(first, last - first + 1);
    ST_REQUIRE(!entry.empty(),
               "router: empty endpoint in spec '" + spec + "'");
    out.push_back(std::move(entry));
    if (end == spec.size()) break;
    begin = end + 1;
  }
  ST_REQUIRE(!out.empty(), "router: empty endpoint spec");
  return out;
}

Router::Router(RouterOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.endpoints, opts_.ring),
      tracer_(make_tracer(opts_)),
      session_(placement_session()) {
  // R copies need R distinct successors; a pool of N supports at most
  // N - 1 of them.
  opts_.replicas = std::min(opts_.replicas, ring_.size() - 1);
  ST_REQUIRE(opts_.breaker_threshold > 0,
             "router: breaker_threshold must be positive");
  c_.received = &metrics_.counter("router_requests_received_total");
  c_.routed = &metrics_.counter("router_routed_total");
  c_.failovers = &metrics_.counter("router_failovers_total");
  c_.rejected = &metrics_.counter("router_rejected_total");
  c_.errors = &metrics_.counter("router_errors_total");
  shards_.reserve(ring_.size());
  for (const std::string& ep : ring_.endpoints()) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = ep;
    const obs::Labels labels = {{"shard", ep}};
    Shard::Handles& h = shard->c;
    h.forwards = &metrics_.counter("router_shard_forwards_total", labels);
    h.served = &metrics_.counter("router_shard_served_total", labels);
    h.failures = &metrics_.counter("router_shard_failures_total", labels);
    h.skipped = &metrics_.counter("router_shard_skipped_total", labels);
    h.replications =
        &metrics_.counter("router_shard_replications_total", labels);
    h.replication_failures =
        &metrics_.counter("router_shard_replication_failures_total", labels);
    h.replication_skipped =
        &metrics_.counter("router_shard_replication_skipped_total", labels);
    h.probes = &metrics_.counter("router_shard_probes_total", labels);
    h.recoveries = &metrics_.counter("router_shard_recoveries_total", labels);
    h.forward_seconds =
        &metrics_.histogram("router_forward_seconds", labels);
    shards_.push_back(std::move(shard));
  }
  if (opts_.probe_interval_ms > 0) {
    prober_ = std::thread([this]() { prober_loop(); });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::uint64_t Router::placement_key(const Request& req) const {
  if (req.type == "put") return req.fingerprint;
  try {
    const workload::NetworkConfig net = request_network(req);
    const workload::SparsityProfile profile = request_profile(net, req);
    return session_.run_fingerprint(net, profile, req.backend,
                                    request_job_options(req));
  } catch (const std::exception&) {
    // Unknown workload/backend: the shard will answer the error — a
    // deterministic fallback key just has to route it *somewhere*
    // consistently.
    const auto bits = [](double v) {
      std::uint64_t b = 0;
      std::memcpy(&b, &v, sizeof b);
      return b;
    };
    std::uint64_t h = fnv1a(req.workload + '|' + req.backend + '|' +
                            req.scenario + '|' + req.engine);
    h = mix64(h, bits(req.p));
    h = mix64(h, bits(req.act_density));
    h = mix64(h, bits(req.do_density));
    return mix64(h, static_cast<std::uint64_t>(req.batch));
  }
}

bool Router::admit_locked(Shard& s, Clock::time_point now) {
  switch (s.health) {
    case Health::Up:
      return true;
    case Health::HalfOpen:
      // The shard mutex serializes forwards, so at most one half-open
      // probe request is ever in flight.
      return true;
    case Health::Open:
      if (now < s.open_until) return false;
      s.health = Health::HalfOpen;
      return true;
  }
  return true;  // unreachable
}

void Router::on_success_locked(Shard& s) {
  s.consecutive_failures = 0;
  if (s.health != Health::Up) {
    s.health = Health::Up;
    s.c.recoveries->inc();
  }
}

void Router::on_failure_locked(Shard& s, Clock::time_point now) {
  ++s.consecutive_failures;
  if (s.health == Health::HalfOpen ||
      s.consecutive_failures >= opts_.breaker_threshold) {
    s.health = Health::Open;
    s.open_until =
        now + std::chrono::milliseconds(opts_.breaker_cooldown_ms);
  }
}

Router::ForwardResult Router::forward(std::size_t shard,
                                      const std::string& line,
                                      Response* resp) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Clock::time_point now = Clock::now();
  if (!admit_locked(s, now)) {
    s.c.skipped->inc();
    return ForwardResult::Skipped;
  }
  try {
    if (!s.client) {
      // retries = 0 makes an unreachable endpoint throw here (fail
      // fast); connect_timeout_ms bounds how long "unreachable" takes.
      // The client's own attempt/connect counters land in the router
      // registry, labeled by endpoint — they survive this reset/remake
      // cycle because the registry dedupes by (name, labels).
      ClientOptions co = opts_.client;
      co.metrics = &metrics_;
      s.client = std::make_unique<Client>(s.endpoint, co);
    }
    s.c.forwards->inc();
    *resp = s.client->request(line);
    s.c.forward_seconds->record(seconds_since(now));
    on_success_locked(s);
    return ForwardResult::Answered;
  } catch (const std::exception&) {
    s.c.failures->inc();
    s.client.reset();  // the stream may be desynced: reconnect next time
    on_failure_locked(s, now);
    return ForwardResult::Failed;
  }
}

Response Router::route(const Request& req, std::uint64_t key,
                       const Request& fwd, const obs::SpanContext& trace,
                       bool replicate_ok) {
  // Full preference order: owner first, then every distinct successor —
  // the first 1 + replicas entries are where replicas live, so failover
  // lands on warm stores before cold ones.
  const std::vector<std::size_t> order =
      ring_.successors(key, ring_.size() - 1);
  Response rejected;
  bool saw_rejected = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    // One span per attempt: a failover chain shows up as sibling hops
    // under the request span, each naming its shard and outcome.
    obs::Span hop(trace, i == 0 ? "router.forward" : "router.failover");
    Request attempt = fwd;
    if (hop.active()) {
      hop.attr("shard", ring_.endpoint(idx));
      stamp_trace(attempt, hop.context());
    }
    Response resp;
    const ForwardResult fr = forward(idx, format_request(attempt), &resp);
    if (fr == ForwardResult::Skipped || fr == ForwardResult::Failed) {
      if (hop.active()) {
        hop.attr("outcome", fr == ForwardResult::Skipped
                                ? "skipped"
                                : "transport_failure");
      }
      continue;  // breaker open / transport failure: walk the ring
    }
    resp.shard = ring_.endpoint(idx);
    if (resp.status == "rejected") {
      // The shard is alive but full — remember its answer, try the next
      // successor rather than queueing behind it.
      if (hop.active()) hop.attr("outcome", "rejected");
      saw_rejected = true;
      rejected = resp;
      continue;
    }
    // ok / error / timeout are this shard's authoritative answer.
    if (hop.active()) hop.attr("outcome", resp.status);
    c_.routed->inc();
    if (i > 0) c_.failovers->inc();
    shards_[idx]->c.served->inc();
    if (replicate_ok && resp.status == "ok") {
      replicate(key, idx, resp, trace);
    }
    return resp;
  }
  if (saw_rejected) {
    c_.rejected->inc();
    return rejected;
  }
  return all_down_response(req);
}

void Router::replicate(std::uint64_t key, std::size_t served_by,
                       const Response& ok_resp,
                       const obs::SpanContext& trace) {
  if (opts_.replicas == 0) return;
  if (ok_resp.fingerprint == 0 || ok_resp.report_hex.empty()) return;
  Request put;
  put.type = "put";
  put.id = ok_resp.id;
  put.fingerprint = ok_resp.fingerprint;
  put.report_hex = ok_resp.report_hex;
  // Best effort into the key's preference set (minus whoever already has
  // it): a down replica is skipped and counted, never waited on beyond
  // the breaker's verdict.
  for (const std::size_t idx : ring_.successors(key, opts_.replicas)) {
    if (idx == served_by) continue;
    obs::Span rep(trace, "router.replicate");
    Request attempt = put;
    if (rep.active()) {
      rep.attr("shard", ring_.endpoint(idx));
      stamp_trace(attempt, rep.context());
    }
    Response resp;
    const ForwardResult fr = forward(idx, format_request(attempt), &resp);
    if (fr == ForwardResult::Skipped) {
      shards_[idx]->c.replication_skipped->inc();
      if (rep.active()) rep.attr("outcome", "skipped");
    } else if (fr == ForwardResult::Answered && resp.status == "ok") {
      shards_[idx]->c.replications->inc();
      if (rep.active()) rep.attr("outcome", "ok");
    } else {
      shards_[idx]->c.replication_failures->inc();
      if (rep.active()) rep.attr("outcome", "failed");
    }
  }
}

Response Router::route_eval(const Request& req,
                            const obs::SpanContext& trace) {
  Request fwd = req;
  // Replication needs the serialized report riding on the response; the
  // caller only sees it if they asked.
  if (opts_.replicas > 0) fwd.include_report = true;
  const std::uint64_t key = placement_key(req);
  Response resp = route(req, key, fwd, trace,
                        /*replicate_ok=*/opts_.replicas > 0);
  if (!req.include_report) resp.report_hex.clear();
  return resp;
}

Response Router::route_put(const Request& req,
                           const obs::SpanContext& trace) {
  // A put targets the key's whole replica set, not one shard: ok when
  // any member accepted it.
  const std::uint64_t key = placement_key(req);
  Response first_ok;
  Response last;
  bool any_answered = false;
  bool any_ok = false;
  for (const std::size_t idx : ring_.successors(key, opts_.replicas)) {
    obs::Span hop(trace, "router.put");
    Request attempt = req;
    if (hop.active()) {
      hop.attr("shard", ring_.endpoint(idx));
      stamp_trace(attempt, hop.context());
    }
    Response resp;
    const ForwardResult fr = forward(idx, format_request(attempt), &resp);
    if (fr != ForwardResult::Answered) {
      if (hop.active()) hop.attr("outcome", "unreachable");
      continue;
    }
    resp.shard = ring_.endpoint(idx);
    if (hop.active()) hop.attr("outcome", resp.status);
    any_answered = true;
    last = resp;
    if (resp.status == "ok" && !any_ok) {
      any_ok = true;
      first_ok = resp;
    }
  }
  if (any_ok) {
    c_.routed->inc();
    return first_ok;
  }
  if (any_answered) {
    c_.routed->inc();
    return last;
  }
  return all_down_response(req);
}

Response Router::all_down_response(const Request& req) {
  c_.rejected->inc();
  Response resp;
  resp.id = req.id;
  resp.status = "rejected";
  resp.error = "all shards down (" + std::to_string(ring_.size()) +
               " endpoint(s) unreachable or circuit-open)";
  return resp;
}

void Router::finish(Response& resp, Clock::time_point admitted,
                    const std::string& type_label) {
  const double seconds = seconds_since(admitted);
  // Overwrites the shard's measurement on purpose: the router is the
  // outermost layer, so the caller's number includes forwarding,
  // failover walking and replication.
  resp.elapsed_ms = seconds * 1e3;
  metrics_
      .histogram("router_request_seconds",
                 {{"type", type_label}, {"status", resp.status}})
      .record(seconds);
}

obs::SpanContext Router::trace_context(const Request& req) {
  if (tracer_ == nullptr) return {};
  if (req.trace != 0) return tracer_->join(req.trace, req.parent_span);
  return tracer_->start_trace();
}

Response Router::handle(const std::string& line) {
  const Clock::time_point admitted = Clock::now();
  c_.received->inc();
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    c_.errors->inc();
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    finish(resp, admitted, "parse");
    return resp;
  }
  Response resp;
  if (req.type == "stats") {
    resp = stats_response(req);
  } else if (req.type == "status") {
    resp = status_response(req);
  } else if (req.type == "metrics") {
    resp = metrics_response(req);
  } else if (req.type == "shutdown") {
    // Stops the router's serving loop only — the backend shards keep
    // running (they belong to their own lifecycles).
    resp.id = req.id;
    resp.type = "bye";
    const Stats s = stats();
    std::ostringstream os;
    os << "{\"routed\": " << s.routed << ", \"failovers\": " << s.failovers
       << ", \"rejected\": " << s.rejected << "}";
    resp.payload_json = os.str();
  } else {
    // eval / put cross the wire: this is the trace edge. The root span
    // covers placement, every forward/failover hop and replication.
    obs::Span root(trace_context(req), "router.request", admitted);
    if (root.active()) {
      if (!req.id.empty()) root.attr("id", req.id);
      root.attr("type", req.type);
    }
    resp = req.type == "put" ? route_put(req, root.context())
                             : route_eval(req, root.context());
    if (root.active()) {
      root.attr("status", resp.status);
      if (!resp.shard.empty()) root.attr("shard", resp.shard);
    }
  }
  finish(resp, admitted, req.type);
  return resp;
}

Router::Stats Router::stats() const {
  Stats out;
  out.received = c_.received->value();
  out.routed = c_.routed->value();
  out.failovers = c_.failovers->value();
  out.rejected = c_.rejected->value();
  out.errors = c_.errors->value();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.endpoint = shard->endpoint;
    s.forwards = shard->c.forwards->value();
    s.served = shard->c.served->value();
    s.failures = shard->c.failures->value();
    s.skipped = shard->c.skipped->value();
    s.replications = shard->c.replications->value();
    s.replication_failures = shard->c.replication_failures->value();
    s.replication_skipped = shard->c.replication_skipped->value();
    s.probes = shard->c.probes->value();
    s.recoveries = shard->c.recoveries->value();
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      s.health = shard->health;
    }
    out.shards.push_back(std::move(s));
  }
  return out;
}

Response Router::stats_response(const Request& req) const {
  const Stats s = stats();
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  os << "{\"version\": \"router_stats/v1\", \"received\": " << s.received
     << ", \"routed\": " << s.routed << ", \"failovers\": " << s.failovers
     << ", \"rejected\": " << s.rejected << ", \"errors\": " << s.errors
     << ", \"replicas\": " << opts_.replicas << ", \"shards\": [";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardStats& sh = s.shards[i];
    if (i > 0) os << ", ";
    os << "{\"endpoint\": \"" << json_escape(sh.endpoint)
       << "\", \"health\": \"" << health_name(sh.health)
       << "\", \"forwards\": " << sh.forwards
       << ", \"served\": " << sh.served
       << ", \"failures\": " << sh.failures
       << ", \"skipped\": " << sh.skipped
       << ", \"replications\": " << sh.replications
       << ", \"replication_failures\": " << sh.replication_failures
       << ", \"replication_skipped\": " << sh.replication_skipped
       << ", \"probes\": " << sh.probes
       << ", \"recoveries\": " << sh.recoveries << "}";
  }
  os << "]}";
  resp.payload_json = os.str();
  return resp;
}

Response Router::status_response(const Request& req) const {
  const Stats s = stats();
  std::size_t up = 0;
  for (const ShardStats& sh : s.shards) {
    if (sh.health == Health::Up) ++up;
  }
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  std::ostringstream os;
  os.precision(10);
  os << "{\"shards\": " << s.shards.size() << ", \"up\": " << up
     << ", \"received\": " << s.received << ", \"routed\": " << s.routed
     << ", \"failovers\": " << s.failovers
     << ", \"rejected\": " << s.rejected
     // Provenance, mirroring the daemon's status fields.
     << ", \"pid\": " << process_id()
     << ", \"uptime_s\": " << seconds_since(started_)
     << ", \"simd\": \"" << dataflow::simd_mode()
     << "\", \"tracing\": " << (tracer_ != nullptr ? "true" : "false")
     << ", \"schemas\": {\"metrics\": \"sparsetrain.metrics/v1\""
     << ", \"stats\": \"router_stats/v1\"}}";
  resp.payload_json = os.str();
  return resp;
}

Response Router::metrics_response(const Request& req) {
  // Gauges sampled at snapshot time: breaker state per shard (1 = up,
  // 0.5 = half-open probing, 0 = open) and process uptime.
  for (const auto& shard : shards_) {
    double v = 0.0;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      v = shard->health == Health::Up
              ? 1.0
              : (shard->health == Health::HalfOpen ? 0.5 : 0.0);
    }
    metrics_.gauge("router_shard_healthy", {{"shard", shard->endpoint}})
        .set(v);
  }
  metrics_.gauge("process_uptime_seconds").set(seconds_since(started_));

  Response resp;
  resp.id = req.id;
  resp.type = "metrics";
  resp.status = "ok";
  if (req.format == "prometheus") {
    resp.payload_json = "{\"format\": \"prometheus\", \"text\": \"" +
                        json_escape(metrics_.prometheus()) + "\"}";
  } else {
    resp.payload_json = metrics_.json();
  }
  return resp;
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  for (;;) {
    prober_cv_.wait_for(
        lock, std::chrono::milliseconds(opts_.probe_interval_ms),
        [this]() { return prober_stop_; });
    if (prober_stop_) return;
    lock.unlock();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      bool needs_probe = false;
      {
        std::lock_guard<std::mutex> shard_lock(shards_[i]->mu);
        needs_probe = shards_[i]->health != Health::Up;
      }
      if (needs_probe) probe(i);
    }
    lock.lock();
  }
}

void Router::probe(std::size_t shard) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Clock::time_point now = Clock::now();
  s.c.probes->inc();
  // A probe deliberately ignores the breaker cooldown — recovery should
  // not wait for live traffic to half-open the shard. No metrics on the
  // throwaway ping client: its connects are not traffic.
  ClientOptions po = opts_.client;
  po.retries = 0;
  po.deadline_ms = opts_.probe_deadline_ms;
  po.connect_timeout_ms =
      po.connect_timeout_ms > 0
          ? std::min(po.connect_timeout_ms, opts_.probe_deadline_ms)
          : opts_.probe_deadline_ms;
  try {
    Client ping(s.endpoint, po);
    Request r;
    r.type = "status";
    r.id = "router-probe";
    (void)ping.request(format_request(r));
    on_success_locked(s);
    s.client.reset();  // traffic reconnects with the real client options
  } catch (const std::exception&) {
    on_failure_locked(s, now);
  }
}

int Router::serve_listener(Listener& listener) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif
  LineServerOptions lo;
  lo.max_connections = opts_.max_connections;
  lo.idle_timeout_ms = opts_.idle_timeout_ms;
  {
    Response rej;
    rej.status = "rejected";
    rej.error = "overloaded: " + std::to_string(opts_.max_connections) +
                " connections already open, try again later";
    lo.overloaded_line = format_response(rej);
    Response idle;
    idle.status = "error";
    idle.error = "idle timeout: no request for " +
                 std::to_string(opts_.idle_timeout_ms) +
                 " ms, closing connection";
    lo.idle_line = format_response(idle);
  }

  active_listener_.store(&listener);
  const int rc = run_line_server(
      listener, lo, [this](const std::string& line, bool* stop_serving) {
        const Response resp = handle(line);
        if (resp.type == "bye") *stop_serving = true;
        return format_response(resp);
      });
  active_listener_.store(nullptr);
  listener.close();
  if (shutdown_requested_.load()) {
    Request none;
    std::fprintf(stderr, "%s\n",
                 format_response(status_response(none)).c_str());
  }
  return rc;
}

int Router::serve_endpoint(const std::string& spec) {
  Listener listener = Listener::listen(spec);
  return serve_listener(listener);
}

void Router::request_shutdown() {
  // Called from signal handlers: only async-signal-safe steps — an
  // atomic store plus Listener::shutdown() (atomic load + shutdown(2)).
  shutdown_requested_.store(true);
  Listener* listener = active_listener_.load();
  if (listener != nullptr) listener->shutdown();
}

RouterClient::RouterClient(const std::string& endpoints_spec,
                           RouterOptions opts)
    : router_([&]() {
        opts.endpoints = split_endpoints(endpoints_spec);
        return std::move(opts);
      }()) {}

Response RouterClient::request(const std::string& json_line) {
  return router_.handle(json_line);
}

Response RouterClient::submit(const Request& eval_request) {
  return router_.handle(format_request(eval_request));
}

Response RouterClient::stats() {
  Request r;
  r.type = "stats";
  return router_.handle(format_request(r));
}

Response RouterClient::status() {
  Request r;
  r.type = "status";
  return router_.handle(format_request(r));
}

Response RouterClient::shutdown() {
  Request r;
  r.type = "shutdown";
  return router_.handle(format_request(r));
}

}  // namespace sparsetrain::serve
