#include "serve/router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "serve/line_server.hpp"
#include "serve/server.hpp"
#include "util/hash.hpp"
#include "util/require.hpp"

#ifndef _WIN32
#include <csignal>
#endif

namespace sparsetrain::serve {

namespace {

using Clock = std::chrono::steady_clock;

core::SessionConfig placement_session() {
  // The router never simulates — its session exists only to compute the
  // same run_fingerprint the shards key their stores on.
  core::SessionConfig cfg;
  cfg.workers = 1;
  return cfg;
}

const char* health_name(Router::Health h) {
  switch (h) {
    case Router::Health::Up:
      return "up";
    case Router::Health::Open:
      return "open";
    default:
      return "half_open";
  }
}

}  // namespace

std::vector<std::string> split_endpoints(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(begin, end - begin);
    const std::size_t first = entry.find_first_not_of(" \t");
    const std::size_t last = entry.find_last_not_of(" \t");
    entry = first == std::string::npos
                ? std::string()
                : entry.substr(first, last - first + 1);
    ST_REQUIRE(!entry.empty(),
               "router: empty endpoint in spec '" + spec + "'");
    out.push_back(std::move(entry));
    if (end == spec.size()) break;
    begin = end + 1;
  }
  ST_REQUIRE(!out.empty(), "router: empty endpoint spec");
  return out;
}

Router::Router(RouterOptions opts)
    : opts_(std::move(opts)),
      ring_(opts_.endpoints, opts_.ring),
      session_(placement_session()) {
  // R copies need R distinct successors; a pool of N supports at most
  // N - 1 of them.
  opts_.replicas = std::min(opts_.replicas, ring_.size() - 1);
  ST_REQUIRE(opts_.breaker_threshold > 0,
             "router: breaker_threshold must be positive");
  shards_.reserve(ring_.size());
  for (const std::string& ep : ring_.endpoints()) {
    auto shard = std::make_unique<Shard>();
    shard->endpoint = ep;
    shards_.push_back(std::move(shard));
  }
  if (opts_.probe_interval_ms > 0) {
    prober_ = std::thread([this]() { prober_loop(); });
  }
}

Router::~Router() {
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::uint64_t Router::placement_key(const Request& req) const {
  if (req.type == "put") return req.fingerprint;
  try {
    const workload::NetworkConfig net = request_network(req);
    const workload::SparsityProfile profile = request_profile(net, req);
    return session_.run_fingerprint(net, profile, req.backend,
                                    request_job_options(req));
  } catch (const std::exception&) {
    // Unknown workload/backend: the shard will answer the error — a
    // deterministic fallback key just has to route it *somewhere*
    // consistently.
    const auto bits = [](double v) {
      std::uint64_t b = 0;
      std::memcpy(&b, &v, sizeof b);
      return b;
    };
    std::uint64_t h = fnv1a(req.workload + '|' + req.backend + '|' +
                            req.scenario + '|' + req.engine);
    h = mix64(h, bits(req.p));
    h = mix64(h, bits(req.act_density));
    h = mix64(h, bits(req.do_density));
    return mix64(h, static_cast<std::uint64_t>(req.batch));
  }
}

bool Router::admit_locked(Shard& s, Clock::time_point now) {
  switch (s.health) {
    case Health::Up:
      return true;
    case Health::HalfOpen:
      // The shard mutex serializes forwards, so at most one half-open
      // probe request is ever in flight.
      return true;
    case Health::Open:
      if (now < s.open_until) return false;
      s.health = Health::HalfOpen;
      return true;
  }
  return true;  // unreachable
}

void Router::on_success_locked(Shard& s) {
  s.consecutive_failures = 0;
  if (s.health != Health::Up) {
    s.health = Health::Up;
    ++s.stats.recoveries;
  }
}

void Router::on_failure_locked(Shard& s, Clock::time_point now) {
  ++s.consecutive_failures;
  if (s.health == Health::HalfOpen ||
      s.consecutive_failures >= opts_.breaker_threshold) {
    s.health = Health::Open;
    s.open_until =
        now + std::chrono::milliseconds(opts_.breaker_cooldown_ms);
  }
}

Router::ForwardResult Router::forward(std::size_t shard,
                                      const std::string& line,
                                      Response* resp) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Clock::time_point now = Clock::now();
  if (!admit_locked(s, now)) {
    ++s.stats.skipped;
    return ForwardResult::Skipped;
  }
  try {
    if (!s.client) {
      // retries = 0 makes an unreachable endpoint throw here (fail
      // fast); connect_timeout_ms bounds how long "unreachable" takes.
      s.client = std::make_unique<Client>(s.endpoint, opts_.client);
    }
    ++s.stats.forwards;
    *resp = s.client->request(line);
    on_success_locked(s);
    return ForwardResult::Answered;
  } catch (const std::exception&) {
    ++s.stats.failures;
    s.client.reset();  // the stream may be desynced: reconnect next time
    on_failure_locked(s, now);
    return ForwardResult::Failed;
  }
}

Response Router::route(const Request& req, std::uint64_t key,
                       const std::string& line, bool replicate_ok) {
  // Full preference order: owner first, then every distinct successor —
  // the first 1 + replicas entries are where replicas live, so failover
  // lands on warm stores before cold ones.
  const std::vector<std::size_t> order =
      ring_.successors(key, ring_.size() - 1);
  Response rejected;
  bool saw_rejected = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t idx = order[i];
    Response resp;
    const ForwardResult fr = forward(idx, line, &resp);
    if (fr == ForwardResult::Skipped || fr == ForwardResult::Failed) {
      continue;  // breaker open / transport failure: walk the ring
    }
    resp.shard = ring_.endpoint(idx);
    if (resp.status == "rejected") {
      // The shard is alive but full — remember its answer, try the next
      // successor rather than queueing behind it.
      saw_rejected = true;
      rejected = resp;
      continue;
    }
    // ok / error / timeout are this shard's authoritative answer.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.routed;
      if (i > 0) ++stats_.failovers;
    }
    {
      std::lock_guard<std::mutex> lock(shards_[idx]->mu);
      ++shards_[idx]->stats.served;
    }
    if (replicate_ok && resp.status == "ok") replicate(key, idx, resp);
    return resp;
  }
  if (saw_rejected) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
    return rejected;
  }
  return all_down_response(req);
}

void Router::replicate(std::uint64_t key, std::size_t served_by,
                       const Response& ok_resp) {
  if (opts_.replicas == 0) return;
  if (ok_resp.fingerprint == 0 || ok_resp.report_hex.empty()) return;
  Request put;
  put.type = "put";
  put.id = ok_resp.id;
  put.fingerprint = ok_resp.fingerprint;
  put.report_hex = ok_resp.report_hex;
  const std::string line = format_request(put);
  // Best effort into the key's preference set (minus whoever already has
  // it): a down replica is skipped and counted, never waited on beyond
  // the breaker's verdict.
  for (const std::size_t idx : ring_.successors(key, opts_.replicas)) {
    if (idx == served_by) continue;
    Response resp;
    const ForwardResult fr = forward(idx, line, &resp);
    std::lock_guard<std::mutex> lock(shards_[idx]->mu);
    if (fr == ForwardResult::Skipped) {
      ++shards_[idx]->stats.replication_skipped;
    } else if (fr == ForwardResult::Answered && resp.status == "ok") {
      ++shards_[idx]->stats.replications;
    } else {
      ++shards_[idx]->stats.replication_failures;
    }
  }
}

Response Router::route_eval(const Request& req, const std::string&) {
  Request fwd = req;
  // Replication needs the serialized report riding on the response; the
  // caller only sees it if they asked.
  if (opts_.replicas > 0) fwd.include_report = true;
  const std::uint64_t key = placement_key(req);
  Response resp = route(req, key, format_request(fwd),
                        /*replicate_ok=*/opts_.replicas > 0);
  if (!req.include_report) resp.report_hex.clear();
  return resp;
}

Response Router::route_put(const Request& req, const std::string& line) {
  // A put targets the key's whole replica set, not one shard: ok when
  // any member accepted it.
  const std::uint64_t key = placement_key(req);
  Response first_ok;
  Response last;
  bool any_answered = false;
  bool any_ok = false;
  for (const std::size_t idx : ring_.successors(key, opts_.replicas)) {
    Response resp;
    const ForwardResult fr = forward(idx, line, &resp);
    if (fr != ForwardResult::Answered) continue;
    resp.shard = ring_.endpoint(idx);
    any_answered = true;
    last = resp;
    if (resp.status == "ok" && !any_ok) {
      any_ok = true;
      first_ok = resp;
    }
  }
  if (any_ok) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.routed;
    return first_ok;
  }
  if (any_answered) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.routed;
    return last;
  }
  return all_down_response(req);
}

Response Router::all_down_response(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
  }
  Response resp;
  resp.id = req.id;
  resp.status = "rejected";
  resp.error = "all shards down (" + std::to_string(ring_.size()) +
               " endpoint(s) unreachable or circuit-open)";
  return resp;
}

Response Router::handle(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.received;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.errors;
    Response resp;
    resp.status = "error";
    resp.error = e.what();
    return resp;
  }
  if (req.type == "stats") return stats_response(req);
  if (req.type == "status") return status_response(req);
  if (req.type == "shutdown") {
    // Stops the router's serving loop only — the backend shards keep
    // running (they belong to their own lifecycles).
    Response resp;
    resp.id = req.id;
    resp.type = "bye";
    const Stats s = stats();
    std::ostringstream os;
    os << "{\"routed\": " << s.routed << ", \"failovers\": " << s.failovers
       << ", \"rejected\": " << s.rejected << "}";
    resp.payload_json = os.str();
    return resp;
  }
  if (req.type == "put") return route_put(req, line);
  return route_eval(req, line);
}

Router::Stats Router::stats() const {
  Stats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  out.shards.clear();
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ShardStats s = shard->stats;
    s.endpoint = shard->endpoint;
    s.health = shard->health;
    out.shards.push_back(std::move(s));
  }
  return out;
}

Response Router::stats_response(const Request& req) const {
  const Stats s = stats();
  Response resp;
  resp.id = req.id;
  resp.type = "stats";
  std::ostringstream os;
  os << "{\"version\": \"router_stats/v1\", \"received\": " << s.received
     << ", \"routed\": " << s.routed << ", \"failovers\": " << s.failovers
     << ", \"rejected\": " << s.rejected << ", \"errors\": " << s.errors
     << ", \"replicas\": " << opts_.replicas << ", \"shards\": [";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ShardStats& sh = s.shards[i];
    if (i > 0) os << ", ";
    os << "{\"endpoint\": \"" << json_escape(sh.endpoint)
       << "\", \"health\": \"" << health_name(sh.health)
       << "\", \"forwards\": " << sh.forwards
       << ", \"served\": " << sh.served
       << ", \"failures\": " << sh.failures
       << ", \"skipped\": " << sh.skipped
       << ", \"replications\": " << sh.replications
       << ", \"replication_failures\": " << sh.replication_failures
       << ", \"replication_skipped\": " << sh.replication_skipped
       << ", \"probes\": " << sh.probes
       << ", \"recoveries\": " << sh.recoveries << "}";
  }
  os << "]}";
  resp.payload_json = os.str();
  return resp;
}

Response Router::status_response(const Request& req) const {
  const Stats s = stats();
  std::size_t up = 0;
  for (const ShardStats& sh : s.shards) {
    if (sh.health == Health::Up) ++up;
  }
  Response resp;
  resp.id = req.id;
  resp.type = "status";
  std::ostringstream os;
  os << "{\"shards\": " << s.shards.size() << ", \"up\": " << up
     << ", \"received\": " << s.received << ", \"routed\": " << s.routed
     << ", \"failovers\": " << s.failovers
     << ", \"rejected\": " << s.rejected << "}";
  resp.payload_json = os.str();
  return resp;
}

void Router::prober_loop() {
  std::unique_lock<std::mutex> lock(prober_mu_);
  for (;;) {
    prober_cv_.wait_for(
        lock, std::chrono::milliseconds(opts_.probe_interval_ms),
        [this]() { return prober_stop_; });
    if (prober_stop_) return;
    lock.unlock();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      bool needs_probe = false;
      {
        std::lock_guard<std::mutex> shard_lock(shards_[i]->mu);
        needs_probe = shards_[i]->health != Health::Up;
      }
      if (needs_probe) probe(i);
    }
    lock.lock();
  }
}

void Router::probe(std::size_t shard) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  const Clock::time_point now = Clock::now();
  ++s.stats.probes;
  // A probe deliberately ignores the breaker cooldown — recovery should
  // not wait for live traffic to half-open the shard.
  ClientOptions po = opts_.client;
  po.retries = 0;
  po.deadline_ms = opts_.probe_deadline_ms;
  po.connect_timeout_ms =
      po.connect_timeout_ms > 0
          ? std::min(po.connect_timeout_ms, opts_.probe_deadline_ms)
          : opts_.probe_deadline_ms;
  try {
    Client ping(s.endpoint, po);
    Request r;
    r.type = "status";
    r.id = "router-probe";
    (void)ping.request(format_request(r));
    on_success_locked(s);
    s.client.reset();  // traffic reconnects with the real client options
  } catch (const std::exception&) {
    on_failure_locked(s, now);
  }
}

int Router::serve_listener(Listener& listener) {
#ifndef _WIN32
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif
  LineServerOptions lo;
  lo.max_connections = opts_.max_connections;
  lo.idle_timeout_ms = opts_.idle_timeout_ms;
  {
    Response rej;
    rej.status = "rejected";
    rej.error = "overloaded: " + std::to_string(opts_.max_connections) +
                " connections already open, try again later";
    lo.overloaded_line = format_response(rej);
    Response idle;
    idle.status = "error";
    idle.error = "idle timeout: no request for " +
                 std::to_string(opts_.idle_timeout_ms) +
                 " ms, closing connection";
    lo.idle_line = format_response(idle);
  }

  active_listener_.store(&listener);
  const int rc = run_line_server(
      listener, lo, [this](const std::string& line, bool* stop_serving) {
        const Response resp = handle(line);
        if (resp.type == "bye") *stop_serving = true;
        return format_response(resp);
      });
  active_listener_.store(nullptr);
  listener.close();
  if (shutdown_requested_.load()) {
    Request none;
    std::fprintf(stderr, "%s\n",
                 format_response(status_response(none)).c_str());
  }
  return rc;
}

int Router::serve_endpoint(const std::string& spec) {
  Listener listener = Listener::listen(spec);
  return serve_listener(listener);
}

void Router::request_shutdown() {
  // Called from signal handlers: only async-signal-safe steps — an
  // atomic store plus Listener::shutdown() (atomic load + shutdown(2)).
  shutdown_requested_.store(true);
  Listener* listener = active_listener_.load();
  if (listener != nullptr) listener->shutdown();
}

RouterClient::RouterClient(const std::string& endpoints_spec,
                           RouterOptions opts)
    : router_([&]() {
        opts.endpoints = split_endpoints(endpoints_spec);
        return std::move(opts);
      }()) {}

Response RouterClient::request(const std::string& json_line) {
  return router_.handle(json_line);
}

Response RouterClient::submit(const Request& eval_request) {
  return router_.handle(format_request(eval_request));
}

Response RouterClient::stats() {
  Request r;
  r.type = "stats";
  return router_.handle(format_request(r));
}

Response RouterClient::status() {
  Request r;
  r.type = "status";
  return router_.handle(format_request(r));
}

Response RouterClient::shutdown() {
  Request r;
  r.type = "shutdown";
  return router_.handle(format_request(r));
}

}  // namespace sparsetrain::serve
