#include "serve/job.hpp"

#include <bit>
#include <sstream>

#include "compiler/program_cache.hpp"
#include "util/hash.hpp"

namespace sparsetrain::serve {

namespace {

void put_double(std::ostringstream& os, double v) {
  os << std::bit_cast<std::uint64_t>(v) << ';';
}

void put_name(std::ostringstream& os, const std::string& name) {
  os << name.size() << ':' << name << ';';
}

}  // namespace

std::string canonical_job_key_v1(const workload::NetworkConfig& net,
                                 const workload::SparsityProfile& profile,
                                 const compiler::CompileOptions& copts,
                                 const std::string& backend,
                                 const std::string& backend_kind,
                                 const sim::ArchConfig& a,
                                 std::uint64_t run_seed) {
  std::ostringstream os;
  os << "sparsetrain.evaljob/v1;";
  // Compiler inputs: reuse the ProgramCache canonicalisation verbatim, so
  // the store and the compile cache can never disagree about what makes
  // two programs "the same".
  os << "program=";
  put_name(os, compiler::ProgramCache::key(net, profile, copts));
  os << "backend=";
  put_name(os, backend);
  put_name(os, backend_kind);
  os << "arch=";
  put_name(os, a.name);
  os << a.pe_groups << ',' << a.pes_per_group << ',' << a.buffer_bytes << ','
     << a.sparse << ',' << a.seed << ',' << a.max_sched_samples << ','
     << a.timing.weight_port_width << ',' << a.timing.pipeline_drain << ';';
  put_double(os, a.clock_ghz);
  put_double(os, a.energy.mac_pj);
  put_double(os, a.energy.reg_pj);
  put_double(os, a.energy.sram_pj);
  put_double(os, a.energy.dram_pj);
  put_double(os, a.energy.ctrl_pj_cycle);
  os << "seed=" << run_seed;
  return os.str();
}

std::string canonical_job_key_v1(const EvalJob& job) {
  return canonical_job_key_v1(job.net, job.profile, job.copts, job.backend,
                              job.backend_kind, job.arch, job.run_seed);
}

std::uint64_t fingerprint_v1(const workload::NetworkConfig& net,
                             const workload::SparsityProfile& profile,
                             const compiler::CompileOptions& copts,
                             const std::string& backend,
                             const std::string& backend_kind,
                             const sim::ArchConfig& arch,
                             std::uint64_t run_seed) {
  return fnv1a(canonical_job_key_v1(net, profile, copts, backend,
                                    backend_kind, arch, run_seed));
}

std::uint64_t fingerprint_v1(const EvalJob& job) {
  return fnv1a(canonical_job_key_v1(job));
}

}  // namespace sparsetrain::serve
