// Stream transport for the evaluation daemon: AF_UNIX and TCP behind one
// Listener/Conn abstraction.
//
// An Endpoint is parsed from one spec string: "host:port" (numeric port)
// means TCP, "unix:<path>" or anything else means a unix-domain socket
// path — so "--listen 127.0.0.1:7117" and "--socket /tmp/st.sock" go
// through the same code. Listeners retry transient accept failures
// (EINTR, ECONNABORTED, fd exhaustion with a backoff) instead of exiting,
// and report fatal bind/listen failures with the errno text. Conn does
// EINTR-safe full-read/full-write loops (partial writes are completed,
// never dropped), line framing with a hard per-line size cap, and
// poll-based read deadlines — the pieces per-connection idle timeouts and
// client deadlines are built from.
//
// shutdown() on either class is thread-safe and wakes the blocked peer
// loop: kicking a connection makes its read return Eof, stopping a
// listener makes accept() return an invalid Conn exactly once per caller.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace sparsetrain::serve {

struct Endpoint {
  enum class Kind { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;         ///< unix-socket path (Kind::Unix)
  std::string host;         ///< numeric or named host (Kind::Tcp)
  std::uint16_t port = 0;   ///< 0 = ephemeral (listeners only)

  std::string describe() const;
};

/// Parses an endpoint spec. "unix:<path>" and any spec containing '/'
/// are unix paths; otherwise "host:port" with a numeric port is TCP
/// (port > 65535 throws); anything else is a unix path. Empty specs
/// throw ContractError.
Endpoint parse_endpoint(const std::string& spec);

/// One connected stream socket. Move-only; the destructor closes the fd.
class Conn {
 public:
  /// Longest accepted request/response line. The JSON layer caps
  /// documents at 1 MiB; a peer streaming more than this without a
  /// newline is not speaking the protocol and gets dropped.
  static constexpr std::size_t kMaxLine = 4u << 20;

  enum class ReadStatus { Ok, Eof, Timeout, Error };

  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();

  Conn(Conn&& other) noexcept;
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads the next newline-terminated line into `out` (the terminator
  /// and any trailing '\r' are stripped). `timeout_ms > 0` bounds the
  /// wait for the complete line; <= 0 waits forever. Eof is returned on
  /// a clean peer close, Error on a transport failure or a line past
  /// kMaxLine.
  ReadStatus read_line(std::string& out, long timeout_ms = 0);

  /// Writes all `n` bytes, looping over partial writes and EINTR.
  /// Never raises SIGPIPE; returns false when the peer is gone.
  bool write_all(const void* data, std::size_t n);
  bool write_line(const std::string& line);  ///< write_all of line + '\n'

  /// Half-closes both directions (thread-safe): a peer loop blocked in
  /// read_line wakes up with Eof. The fd stays valid until close().
  void shutdown();
  void close();

 private:
  int fd_ = -1;
  std::string buf_;           ///< receive buffer (line framing)
  std::size_t buf_pos_ = 0;   ///< consumed prefix of buf_
};

/// Connects to `ep`. Returns an invalid Conn on failure, with the cause
/// in `*error` when given. `connect_timeout_ms > 0` bounds the connect
/// itself (non-blocking connect + poll, so a blackholed host fails after
/// the timeout instead of the kernel's multi-minute SYN retry default);
/// <= 0 keeps the blocking connect.
Conn connect_endpoint(const Endpoint& ep, std::string* error = nullptr,
                      long connect_timeout_ms = 0);

/// A listening socket (AF_UNIX or TCP). Move-only; unix paths are
/// unlinked on close.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `ep`. Throws ContractError carrying the errno
  /// text when the socket cannot be created/bound. For TCP with port 0
  /// the chosen ephemeral port is reflected in endpoint().
  static Listener listen(const Endpoint& ep, int backlog = 64);
  static Listener listen(const std::string& spec, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  const Endpoint& endpoint() const { return ep_; }

  /// Blocks for the next connection. Transient failures — EINTR,
  /// ECONNABORTED, EAGAIN, and fd/buffer exhaustion (with a short
  /// backoff) — are retried; only shutdown() or an unrecoverable
  /// listener error yields an invalid Conn.
  Conn accept();

  /// Stops the listener (thread-safe): a blocked accept() returns an
  /// invalid Conn, and later accepts fail fast.
  void shutdown();
  void close();

 private:
  int fd_ = -1;
  Endpoint ep_;
  std::string unlink_path_;  ///< bound unix path, removed at close
  std::shared_ptr<struct ListenerStop> stop_;  ///< shared stop flag
};

}  // namespace sparsetrain::serve
