#include "serve/report_io.hpp"

#include <bit>
#include <cstdlib>
#include <sstream>

#include "util/require.hpp"

namespace sparsetrain::serve {

namespace {

constexpr const char* kVersion = "sparsetrain.report/v1";

void put_str(std::ostringstream& os, const char* key, const std::string& v) {
  os << key << '=' << v.size() << ':' << v << '\n';
}

void put_u64(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << key << '=' << v << '\n';
}

void put_f64(std::ostringstream& os, const char* key, double v) {
  os << key << '=' << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec
     << '\n';
}

void put_activity(std::ostringstream& os, const sim::ActivityCounts& a) {
  os << "activity=" << a.macs << ',' << a.reg_accesses << ',' << a.sram_bytes
     << ',' << a.dram_bytes << ',' << a.busy_cycles << '\n';
}

void put_energy(std::ostringstream& os, const sim::EnergyBreakdown& e) {
  os << "energy=" << std::hex << std::bit_cast<std::uint64_t>(e.comb_pj)
     << ',' << std::bit_cast<std::uint64_t>(e.reg_pj) << ','
     << std::bit_cast<std::uint64_t>(e.sram_pj) << ','
     << std::bit_cast<std::uint64_t>(e.dram_pj) << std::dec << '\n';
}

/// Cursor over the payload; every take_* advances and throws on mismatch.
class Reader {
 public:
  explicit Reader(std::string_view payload) : rest_(payload) {}

  bool done() const { return rest_.empty(); }

  /// Consumes one "key=value\n" line and returns the value.
  std::string_view take(const char* key) {
    const std::size_t eol = rest_.find('\n');
    ST_REQUIRE(eol != std::string_view::npos,
               std::string("report record truncated at key '") + key + "'");
    std::string_view line = rest_.substr(0, eol);
    const std::size_t eq = line.find('=');
    ST_REQUIRE(eq != std::string_view::npos && line.substr(0, eq) == key,
               "report record: expected key '" + std::string(key) +
                   "', got line '" + std::string(line) + "'");
    // Length-prefixed values may themselves contain '\n': re-frame.
    std::string_view value = line.substr(eq + 1);
    const std::size_t colon = value.find(':');
    if (colon != std::string_view::npos &&
        value.find_first_not_of("0123456789") == colon) {
      const std::size_t len = parse_u64(value.substr(0, colon));
      const std::size_t start = eq + 1 + colon + 1;
      ST_REQUIRE(start + len <= rest_.size() &&
                     (start + len == rest_.size() || rest_[start + len] == '\n'),
                 "report record: bad string framing for key '" +
                     std::string(key) + "'");
      value = rest_.substr(start, len);
      rest_.remove_prefix(start + len < rest_.size() ? start + len + 1
                                                     : start + len);
      return value;
    }
    rest_.remove_prefix(eol + 1);
    return value;
  }

  static std::uint64_t parse_u64(std::string_view s) {
    ST_REQUIRE(!s.empty() && s.find_first_not_of("0123456789") ==
                                 std::string_view::npos,
               "report record: malformed integer '" + std::string(s) + "'");
    std::uint64_t v = 0;
    for (const char c : s) {
      ST_REQUIRE(v <= (UINT64_MAX - (c - '0')) / 10,
                 "report record: integer overflow");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  }

  static std::uint64_t parse_hex64(std::string_view s) {
    ST_REQUIRE(!s.empty() && s.size() <= 16 &&
                   s.find_first_not_of("0123456789abcdef") ==
                       std::string_view::npos,
               "report record: malformed hex '" + std::string(s) + "'");
    std::uint64_t v = 0;
    for (const char c : s) {
      v = v * 16 + static_cast<std::uint64_t>(
                       c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return v;
  }

  std::uint64_t take_u64(const char* key) { return parse_u64(take(key)); }
  double take_f64(const char* key) {
    return std::bit_cast<double>(parse_hex64(take(key)));
  }

  /// Comma-separated fixed-arity field list.
  std::vector<std::string_view> take_fields(const char* key,
                                            std::size_t arity) {
    std::string_view v = take(key);
    std::vector<std::string_view> out;
    while (true) {
      const std::size_t comma = v.find(',');
      out.push_back(v.substr(0, comma));
      if (comma == std::string_view::npos) break;
      v.remove_prefix(comma + 1);
    }
    ST_REQUIRE(out.size() == arity, "report record: key '" +
                                        std::string(key) + "' has " +
                                        std::to_string(out.size()) +
                                        " fields, expected " +
                                        std::to_string(arity));
    return out;
  }

  sim::ActivityCounts take_activity() {
    const auto f = take_fields("activity", 5);
    sim::ActivityCounts a;
    a.macs = parse_u64(f[0]);
    a.reg_accesses = parse_u64(f[1]);
    a.sram_bytes = parse_u64(f[2]);
    a.dram_bytes = parse_u64(f[3]);
    a.busy_cycles = parse_u64(f[4]);
    return a;
  }

  sim::EnergyBreakdown take_energy() {
    const auto f = take_fields("energy", 4);
    sim::EnergyBreakdown e;
    e.comb_pj = std::bit_cast<double>(parse_hex64(f[0]));
    e.reg_pj = std::bit_cast<double>(parse_hex64(f[1]));
    e.sram_pj = std::bit_cast<double>(parse_hex64(f[2]));
    e.dram_pj = std::bit_cast<double>(parse_hex64(f[3]));
    return e;
  }

 private:
  std::string_view rest_;
};

}  // namespace

std::string serialize_report(const sim::SimReport& r) {
  std::ostringstream os;
  os << kVersion << '\n';
  put_str(os, "program", r.program_name);
  put_str(os, "arch", r.arch_name);
  put_str(os, "backend", r.backend);
  put_str(os, "profile", r.profile_name);
  put_u64(os, "engine", static_cast<std::uint64_t>(r.engine));
  put_f64(os, "clock_ghz", r.clock_ghz);
  put_u64(os, "total_pes", r.total_pes);
  put_u64(os, "total_cycles", r.total_cycles);
  put_activity(os, r.activity);
  put_energy(os, r.energy);
  put_u64(os, "stages", r.stages.size());
  for (const sim::StageReport& s : r.stages) {
    os << "stage=" << s.layer_index << ','
       << static_cast<unsigned>(static_cast<std::uint8_t>(s.stage)) << ','
       << s.cycles << '\n';
    put_str(os, "layer", s.layer_name);
    put_activity(os, s.activity);
    put_energy(os, s.energy);
  }
  return os.str();
}

sim::SimReport parse_report(std::string_view payload) {
  const std::size_t eol = payload.find('\n');
  ST_REQUIRE(eol != std::string_view::npos && payload.substr(0, eol) ==
                                                  kVersion,
             "report record: missing or unknown version header");
  Reader rd(payload.substr(eol + 1));

  sim::SimReport r;
  r.program_name = std::string(rd.take("program"));
  r.arch_name = std::string(rd.take("arch"));
  r.backend = std::string(rd.take("backend"));
  r.profile_name = std::string(rd.take("profile"));
  const std::uint64_t engine = rd.take_u64("engine");
  ST_REQUIRE(engine <= static_cast<std::uint64_t>(isa::EngineKind::Exact),
             "report record: unknown engine kind");
  r.engine = static_cast<isa::EngineKind>(engine);
  r.clock_ghz = rd.take_f64("clock_ghz");
  r.total_pes = rd.take_u64("total_pes");
  r.total_cycles = rd.take_u64("total_cycles");
  r.activity = rd.take_activity();
  r.energy = rd.take_energy();
  const std::uint64_t n_stages = rd.take_u64("stages");
  r.stages.reserve(n_stages);
  for (std::uint64_t i = 0; i < n_stages; ++i) {
    const auto f = rd.take_fields("stage", 3);
    sim::StageReport s;
    s.layer_index = Reader::parse_u64(f[0]);
    const std::uint64_t stage = Reader::parse_u64(f[1]);
    ST_REQUIRE(stage <= static_cast<std::uint64_t>(isa::Stage::GTW),
               "report record: unknown stage");
    s.stage = static_cast<isa::Stage>(stage);
    s.cycles = Reader::parse_u64(f[2]);
    s.layer_name = std::string(rd.take("layer"));
    s.activity = rd.take_activity();
    s.energy = rd.take_energy();
    r.stages.push_back(std::move(s));
  }
  ST_REQUIRE(rd.done(), "report record: trailing bytes after last stage");
  return r;
}

}  // namespace sparsetrain::serve
