#include "serve/transport.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/require.hpp"
#include "util/syscall.hpp"

#ifndef _WIN32
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace sparsetrain::serve {

struct ListenerStop {
  std::atomic<bool> stopping{false};
};

std::string Endpoint::describe() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  ST_REQUIRE(!spec.empty(), "transport: empty endpoint spec");
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.path = spec.substr(5);
    ST_REQUIRE(!ep.path.empty(), "transport: empty unix path in '" + spec +
                                     "'");
    return ep;
  }
  // A '/' anywhere means a filesystem path, ':' or not ("/tmp/a:b.sock"
  // is a legal socket path).
  if (spec.find('/') == std::string::npos) {
    const std::size_t colon = spec.rfind(':');
    if (colon != std::string::npos && colon > 0 &&
        colon + 1 < spec.size()) {
      const std::string port_str = spec.substr(colon + 1);
      bool digits = true;
      for (const char c : port_str) digits = digits && c >= '0' && c <= '9';
      if (digits) {
        unsigned long port = 0;
        for (const char c : port_str) {
          port = port * 10 + static_cast<unsigned long>(c - '0');
          ST_REQUIRE(port <= 65535,
                     "transport: port out of range in '" + spec + "'");
        }
        ep.kind = Endpoint::Kind::Tcp;
        ep.host = spec.substr(0, colon);
        ep.port = static_cast<std::uint16_t>(port);
        return ep;
      }
    }
  }
  ep.path = spec;
  return ep;
}

#ifndef _WIN32

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  const int err = errno;
  ST_REQUIRE(false, what + ": " + util::errno_text(err));
  __builtin_unreachable();
}

/// getaddrinfo over the endpoint's host/port; calls `fn(fd, addr, len)`
/// for each candidate until it returns true. Returns the winning fd, or
/// -1 with `error` set.
template <typename Fn>
int each_tcp_addr(const Endpoint& ep, std::string& error, Fn&& fn) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port = std::to_string(ep.port);
  const int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    error = "cannot resolve '" + ep.host + "': " + ::gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  error = "no usable address for '" + ep.host + "'";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = "socket: " + util::errno_text(errno);
      continue;
    }
    if (fn(fd, ai->ai_addr, ai->ai_addrlen)) break;
    error = util::errno_text(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ST_REQUIRE(path.size() < sizeof(addr.sun_path),
             "transport: unix-socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

/// connect() bounded by `timeout_ms`: the socket goes non-blocking for
/// the connect, a poll(POLLOUT) waits for completion, SO_ERROR reports
/// the outcome, and blocking mode is restored for the Conn. With
/// timeout_ms <= 0 this is a plain blocking connect. Returns 0 on
/// success; otherwise -1 with errno set (ETIMEDOUT for a poll timeout).
int timed_connect(int fd, const sockaddr* addr, socklen_t len,
                  long timeout_ms) {
  if (timeout_ms <= 0) {
    return static_cast<int>(
        util::retry_eintr([&] { return ::connect(fd, addr, len); }));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return -1;
  int rc = static_cast<int>(
      util::retry_eintr([&] { return ::connect(fd, addr, len); }));
  if (rc != 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    const int pr = static_cast<int>(util::retry_eintr(
        [&] { return ::poll(&p, 1, static_cast<int>(timeout_ms)); }));
    if (pr == 0) {
      errno = ETIMEDOUT;
      rc = -1;
    } else if (pr < 0) {
      rc = -1;
    } else {
      int soerr = 0;
      socklen_t slen = sizeof soerr;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0) {
        rc = -1;
      } else if (soerr != 0) {
        errno = soerr;
        rc = -1;
      } else {
        rc = 0;
      }
    }
  }
  const int saved = errno;
  ::fcntl(fd, F_SETFL, flags);  // the Conn reads/writes in blocking mode
  errno = saved;
  return rc;
}

}  // namespace

// ------------------------------------------------------------------ Conn

Conn::~Conn() { close(); }

Conn::Conn(Conn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      buf_pos_(std::exchange(other.buf_pos_, 0)) {}

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
    buf_pos_ = std::exchange(other.buf_pos_, 0);
  }
  return *this;
}

Conn::ReadStatus Conn::read_line(std::string& out, long timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0);
  for (;;) {
    const std::size_t nl = buf_.find('\n', buf_pos_);
    if (nl != std::string::npos) {
      out.assign(buf_, buf_pos_, nl - buf_pos_);
      while (!out.empty() && out.back() == '\r') out.pop_back();
      buf_pos_ = nl + 1;
      if (buf_pos_ == buf_.size()) {
        buf_.clear();
        buf_pos_ = 0;
      }
      return ReadStatus::Ok;
    }
    if (fd_ < 0) return ReadStatus::Error;
    if (buf_.size() - buf_pos_ > kMaxLine) {
      return ReadStatus::Error;  // peer is streaming, not speaking NDJSON
    }
    if (timeout_ms > 0) {
      const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - clock::now())
                              .count();
      if (remain <= 0) return ReadStatus::Timeout;
      pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      const int pr = ::poll(&p, 1, static_cast<int>(remain));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return ReadStatus::Error;
      }
      if (pr == 0) return ReadStatus::Timeout;
    }
    char chunk[1 << 14];
    const ssize_t n = util::retry_eintr(
        [&] { return ::read(fd_, chunk, sizeof chunk); });
    if (n == 0) return ReadStatus::Eof;
    if (n < 0) return ReadStatus::Error;
    if (buf_pos_ > 0 && buf_pos_ == buf_.size()) {
      buf_.clear();
      buf_pos_ = 0;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Conn::write_all(const void* data, std::size_t n) {
  if (fd_ < 0) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a vanished peer is a false return, never a SIGPIPE.
    const ssize_t w = util::retry_eintr(
        [&] { return ::send(fd_, p + off, n - off, MSG_NOSIGNAL); });
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

bool Conn::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return write_all(framed.data(), framed.size());
}

void Conn::shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Conn connect_endpoint(const Endpoint& ep, std::string* error,
                      long connect_timeout_ms) {
  std::string err;
  if (ep.kind == Endpoint::Kind::Unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      err = "socket: " + util::errno_text(errno);
    } else {
      const sockaddr_un addr = unix_addr(ep.path);
      if (timed_connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr), connect_timeout_ms) == 0) {
        return Conn(fd);
      }
      err = "connect " + ep.path + ": " + util::errno_text(errno);
      ::close(fd);
    }
  } else {
    const int fd =
        each_tcp_addr(ep, err, [connect_timeout_ms](int s, sockaddr* a,
                                                    socklen_t len) {
          return timed_connect(s, a, len, connect_timeout_ms) == 0;
        });
    if (fd >= 0) return Conn(fd);
    err = "connect " + ep.describe() + ": " + err;
  }
  if (error != nullptr) *error = err;
  return Conn{};
}

// -------------------------------------------------------------- Listener

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      ep_(std::move(other.ep_)),
      unlink_path_(std::move(other.unlink_path_)),
      stop_(std::move(other.stop_)) {
  other.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    ep_ = std::move(other.ep_);
    unlink_path_ = std::move(other.unlink_path_);
    other.unlink_path_.clear();
    stop_ = std::move(other.stop_);
  }
  return *this;
}

Listener Listener::listen(const std::string& spec, int backlog) {
  return listen(parse_endpoint(spec), backlog);
}

Listener Listener::listen(const Endpoint& ep, int backlog) {
  Listener l;
  l.ep_ = ep;
  l.stop_ = std::make_shared<ListenerStop>();
  if (ep.kind == Endpoint::Kind::Unix) {
    l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (l.fd_ < 0) fail_errno("listen: cannot create unix socket");
    const sockaddr_un addr = unix_addr(ep.path);
    ::unlink(ep.path.c_str());
    if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("listen: cannot bind " + ep.path);
    }
    l.unlink_path_ = ep.path;
    if (::listen(l.fd_, backlog) != 0) {
      fail_errno("listen: cannot listen on " + ep.path);
    }
    return l;
  }

  std::string err;
  l.fd_ = each_tcp_addr(ep, err, [backlog](int s, sockaddr* a,
                                           socklen_t len) {
    // REUSEADDR: a restarted daemon rebinds its port immediately instead
    // of failing for a TIME_WAIT period — the restart path clients retry
    // against must come back fast.
    const int one = 1;
    ::setsockopt(s, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    return ::bind(s, a, len) == 0 && ::listen(s, backlog) == 0;
  });
  ST_REQUIRE(l.fd_ >= 0,
             "listen: cannot bind/listen on " + ep.describe() + ": " + err);
  sockaddr_storage bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    if (bound.ss_family == AF_INET) {
      l.ep_.port =
          ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      l.ep_.port =
          ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return l;
}

Conn Listener::accept() {
  for (;;) {
    if (fd_ < 0 || (stop_ != nullptr && stop_->stopping.load())) {
      return Conn{};
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (stop_ != nullptr && stop_->stopping.load()) {
        ::close(fd);  // raced a shutdown: refuse, do not serve
        return Conn{};
      }
      return Conn(fd);
    }
    if (stop_ != nullptr && stop_->stopping.load()) return Conn{};
    switch (errno) {
      case EINTR:
      case ECONNABORTED:
      case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
        continue;  // transient: the listener must outlive flaky peers
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        // Resource exhaustion: back off and retry rather than dying —
        // connections will close and free descriptors.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      default:
        return Conn{};  // unrecoverable listener error
    }
  }
}

void Listener::shutdown() {
  if (stop_ != nullptr) stop_->stopping.store(true);
  // Wakes a blocked accept (Linux: it fails with EINVAL afterwards).
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

#else  // _WIN32

Conn::~Conn() = default;
Conn::Conn(Conn&&) noexcept = default;
Conn& Conn::operator=(Conn&&) noexcept = default;
Conn::ReadStatus Conn::read_line(std::string&, long) {
  return ReadStatus::Error;
}
bool Conn::write_all(const void*, std::size_t) { return false; }
bool Conn::write_line(const std::string&) { return false; }
void Conn::shutdown() {}
void Conn::close() { fd_ = -1; }

Conn connect_endpoint(const Endpoint& ep, std::string* error, long) {
  if (error != nullptr) {
    *error = "sockets are unavailable on this platform (" + ep.describe() +
             ")";
  }
  return Conn{};
}

Listener::~Listener() = default;
Listener::Listener(Listener&&) noexcept = default;
Listener& Listener::operator=(Listener&&) noexcept = default;
Listener Listener::listen(const Endpoint& ep, int) {
  ST_REQUIRE(false, "listen: sockets are unavailable on this platform (" +
                        ep.describe() + ")");
}
Listener Listener::listen(const std::string& spec, int backlog) {
  return listen(parse_endpoint(spec), backlog);
}
Conn Listener::accept() { return Conn{}; }
void Listener::shutdown() {}
void Listener::close() { fd_ = -1; }

#endif

}  // namespace sparsetrain::serve
