#include "serve/line_server.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/require.hpp"

namespace sparsetrain::serve {

int run_line_server(Listener& listener, const LineServerOptions& opts,
                    const LineHandler& handle) {
  ST_REQUIRE(listener.valid(), "serve: listener is not listening");

  struct ConnSlot {
    Conn conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conns_mu;
  std::vector<std::shared_ptr<ConnSlot>> conns;  // guarded by conns_mu
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> active{0};

  const auto reap_finished = [&]() {
    std::vector<std::shared_ptr<ConnSlot>> finished;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      auto it = conns.begin();
      while (it != conns.end()) {
        if ((*it)->done.load()) {
          finished.push_back(*it);
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& slot : finished) {
      if (slot->thread.joinable()) slot->thread.join();
    }
  };

  while (!stop.load()) {
    Conn conn = listener.accept();
    // accept() already retried every transient failure; an invalid Conn
    // means shutdown() fired or the listener itself is broken.
    if (!conn.valid()) break;
    reap_finished();  // bound the slot list by the live connection count
    if (opts.max_connections > 0 && active.load() >= opts.max_connections) {
      if (opts.on_overloaded) opts.on_overloaded();
      conn.write_line(opts.overloaded_line);
      continue;  // conn closes on scope exit — an explicit no, not a hang
    }
    auto slot = std::make_shared<ConnSlot>();
    slot->conn = std::move(conn);
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(slot);
    }
    ++active;
    // Raw pointer into the slot: the accept thread keeps the shared_ptr
    // alive until after join (a shared_ptr capture would make the slot's
    // own thread keep the slot alive — a cycle that never frees).
    ConnSlot* s = slot.get();
    slot->thread = std::thread([&opts, &handle, s, &listener, &stop,
                                &conns_mu, &conns, &active]() {
      std::string line;
      for (;;) {
        const Conn::ReadStatus st =
            s->conn.read_line(line, opts.idle_timeout_ms);
        if (st == Conn::ReadStatus::Timeout) {
          if (opts.on_idle_closed) opts.on_idle_closed();
          if (!opts.idle_line.empty()) s->conn.write_line(opts.idle_line);
          break;
        }
        if (st != Conn::ReadStatus::Ok) break;  // Eof / transport error
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        bool stop_serving = false;
        const std::string resp = handle(line, &stop_serving);
        if (!s->conn.write_line(resp)) break;
        if (stop_serving) {
          // Shutdown: stop accepting and kick every other connection so
          // their reader loops end and the daemon can drain.
          stop.store(true);
          listener.shutdown();
          std::lock_guard<std::mutex> lock(conns_mu);
          for (const auto& other : conns) {
            if (other.get() != s) other->conn.shutdown();
          }
          break;
        }
      }
      // Half-close only — the fd is closed by the slot's destructor on
      // the accept thread after join, so a late shutdown() kick can
      // never race a concurrent close.
      s->conn.shutdown();
      --active;
      s->done.store(true);
    });
  }

  // Kick any connection still blocked in a read (idempotent after the
  // stop kick), then join everything.
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (const auto& slot : conns) slot->conn.shutdown();
  }
  std::vector<std::shared_ptr<ConnSlot>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    remaining.swap(conns);
  }
  for (const auto& slot : remaining) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  return 0;
}

}  // namespace sparsetrain::serve
