// Top-level SparseTrain API.
//
// A Session owns the architecture configurations of the SparseTrain
// accelerator and the dense baseline and evaluates workloads on both —
// the comparison behind the paper's Fig. 8 (latency/speedup) and Fig. 9
// (energy breakdown/efficiency).
//
// Typical use (see examples/quickstart.cpp):
//   core::Session session;
//   auto net = workload::alexnet_cifar();
//   auto profile = workload::SparsityProfile::pruned(net, 0.9);
//   auto result = session.compare(net, profile);
//   result.speedup();            // SparseTrain vs dense baseline
//   result.energy_efficiency();  // dense baseline energy / SparseTrain
#pragma once

#include "baseline/eyeriss_like.hpp"
#include "sim/accelerator.hpp"
#include "workload/layer_config.hpp"
#include "workload/sparsity_profile.hpp"

namespace sparsetrain::core {

struct SessionConfig {
  sim::ArchConfig sparse_arch;            ///< defaults to SparseTrain 168 PE
  sim::ArchConfig baseline_arch;          ///< defaults to the dense baseline
  std::size_t batch = 1;                  ///< samples per iteration

  SessionConfig();
};

/// Both simulators' results on one workload.
struct ComparisonResult {
  workload::NetworkConfig net;
  sim::SimReport sparse;
  sim::SimReport dense;

  /// Training latency improvement (dense cycles / sparse cycles).
  double speedup() const;

  /// Energy improvement (dense total energy / sparse total energy).
  double energy_efficiency() const;

  /// Per-sample latency in milliseconds.
  double sparse_latency_ms() const { return sparse.latency_ms(); }
  double dense_latency_ms() const { return dense.latency_ms(); }
};

class Session {
 public:
  explicit Session(SessionConfig cfg = SessionConfig{});

  const SessionConfig& config() const { return cfg_; }

  /// Runs `net` with `profile` on SparseTrain and with a dense profile on
  /// the baseline.
  ComparisonResult compare(const workload::NetworkConfig& net,
                           const workload::SparsityProfile& profile) const;

  /// Runs only the SparseTrain side (for sweeps/ablations).
  sim::SimReport run_sparse(const workload::NetworkConfig& net,
                            const workload::SparsityProfile& profile) const;

  /// Runs only the dense baseline.
  sim::SimReport run_dense(const workload::NetworkConfig& net) const;

 private:
  SessionConfig cfg_;
  sim::Accelerator sparse_accel_;
  baseline::EyerissLikeBaseline baseline_;
};

}  // namespace sparsetrain::core
